"""Quickstart: fabricate a chip, deploy a configurable RO PUF, read a secret.

This walks the paper's full life cycle on simulated silicon:

1. fabricate a chip of delay units (inverter + bypass MUX per unit);
2. deploy configurable ROs in pairs (Fig. 1) and measure each unit's
   ``ddiff`` with the leave-one-out scheme (Sec. III.B);
3. select the inverters that maximise each pair's delay difference
   (Sec. III.D, Case-2) and record the reference bits;
4. regenerate the response at harsh corners and count bit flips;
5. compare against the traditional RO PUF on the same silicon.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import ChipROPUF, FabricationProcess, OperatingPoint

CORNERS = [
    OperatingPoint(0.98, 25.0),
    OperatingPoint(1.44, 25.0),
    OperatingPoint(1.20, 65.0),
    OperatingPoint(0.98, 65.0),
]


def main() -> None:
    rng = np.random.default_rng(2014)
    chip = FabricationProcess().fabricate(128, rng, name="demo-chip")
    print(f"fabricated {chip.name!r} with {chip.unit_count} delay units")

    for method in ("case2", "traditional"):
        puf = ChipROPUF.deploy(chip, stage_count=4, method=method)
        enrollment = puf.enroll()  # 1.20 V / 25 C test corner
        bits = "".join("1" if b else "0" for b in enrollment.bits)
        print(f"\n[{method}] enrolled {puf.bit_count} bits: {bits}")
        print(
            f"[{method}] mean |margin| "
            f"{np.mean(np.abs(enrollment.margins)) * 1e12:.1f} ps"
        )
        for corner in CORNERS:
            response = puf.response(corner, enrollment)
            flips = int(np.sum(response != enrollment.bits))
            print(
                f"[{method}] response at {corner.label():>12}: "
                f"{flips} bit flip(s) of {puf.bit_count}"
            )


if __name__ == "__main__":
    main()
