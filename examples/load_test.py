"""Load-test the CRP authentication service end to end, in process.

Spins up the whole serving stack — synthetic device fleet, crash-safe CRP
store, request coalescer, threaded socket server — then hammers it with
concurrent clients issuing attestation, key-regeneration, and genuine
challenge/response rounds.  Every request must authenticate; the summary
reports throughput, latency percentiles, and how well the coalescer
batched concurrent evaluations onto the vectorized einsum path.

Equivalent one-liner:  python -m repro serve --bench

Run:  python examples/load_test.py [clients] [auths-per-client]
"""

import json
import sys

from repro.serve import (
    AuthServer,
    AuthService,
    CRPStore,
    DeviceFarm,
    FleetConfig,
    RequestCoalescer,
    run_load,
)


def main() -> None:
    clients = int(sys.argv[1]) if len(sys.argv) > 1 else 100
    auths = int(sys.argv[2]) if len(sys.argv) > 2 else 10

    farm = DeviceFarm.from_config(FleetConfig(boards=4))
    service = AuthService(
        farm, CRPStore(None), coalescer=RequestCoalescer(max_batch=64)
    )
    enrolled = service.enroll_fleet()
    print(
        f"fleet: {len(enrolled['enrolled'])} devices enrolled "
        f"({len(next(iter(farm)).enrollment.bits)} bits each)"
    )

    with AuthServer(service).start() as server:
        host, port = server.address
        print(f"serving on {host}:{port}; driving {clients} clients "
              f"x {auths} auth rounds ...")
        summary = run_load(
            host, port, clients=clients, auths_per_client=auths, farm=farm
        )
        summary["coalescer"] = service.coalescer.stats()
        summary["store"] = service.store.stats()

    print(json.dumps(summary, indent=2))
    if summary["failures"]:
        raise SystemExit(f"{summary['failures']} failed authentications")
    batching = summary["coalescer"]["max_batch"]
    print(
        f"\nzero failures across {summary['requests']} requests at "
        f"{summary['throughput_rps']:.0f} req/s; "
        f"largest coalesced batch: {batching}"
    )


if __name__ == "__main__":
    main()
