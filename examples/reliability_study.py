"""A compact Fig. 4: reliability of every scheme across the V/T envelope.

Sweeps ring length n and compares bit-flip rates of the configurable PUF
(Case-1 and Case-2), the traditional RO PUF, the 1-out-of-8 scheme, and
Maiti-Schaumont's two-inverters-per-stage configurable RO — all carved from
the same synthetic board, so the comparison is hardware-for-hardware.

Run:  python examples/reliability_study.py [stage_counts ...]
"""

import sys

import numpy as np

from repro import OneOutOfEightPUF, allocate_rings
from repro.baselines import MaitiSchaumontPUF
from repro.core.puf import BoardROPUF
from repro.datasets import generate_vt_like, VTLikeConfig
from repro.metrics import bit_flip_report
from repro.variation import full_grid


def flip_percent(enroll_bits, observations) -> float:
    return bit_flip_report(enroll_bits, np.stack(observations)).flip_percent


def main() -> None:
    stage_counts = [int(arg) for arg in sys.argv[1:]] or [3, 5, 7]
    dataset = generate_vt_like(
        VTLikeConfig(nominal_boards=0, swept_boards=1, seed=77)
    )
    board = dataset.swept_boards[0]
    corners = [op for op in full_grid() if op != dataset.nominal]

    header = f"{'scheme':>16} " + " ".join(f"n={n:>2}" for n in stage_counts)
    print(f"bit-flip percentage across all {len(corners)} corners")
    print(header)

    rows: dict[str, list[str]] = {}
    for n in stage_counts:
        allocation = allocate_rings(board.ro_count, n)
        for method in ("case1", "case2", "traditional"):
            puf = BoardROPUF(
                delay_provider=board.delay_provider(),
                allocation=allocation,
                method=method,
                require_odd=method != "traditional",
            )
            enrollment = puf.enroll(dataset.nominal)
            observations = [puf.response(op, enrollment) for op in corners]
            rows.setdefault(method, []).append(
                f"{flip_percent(enrollment.bits, observations):4.1f}"
            )

        one_of_8 = OneOutOfEightPUF(
            delay_provider=board.delay_provider(), allocation=allocation
        )
        group = one_of_8.enroll(dataset.nominal)
        observations = [one_of_8.response(op, group) for op in corners]
        rows.setdefault("1-out-of-8", []).append(
            f"{flip_percent(group.bits, observations):4.1f}"
        )

        def ms_provider(op, n=n):
            return MaitiSchaumontPUF.tensor_from_units(
                board.delays_at(op), stage_count=n
            )

        ms = MaitiSchaumontPUF(stage_delay_provider=ms_provider)
        ms_enrollment = ms.enroll(dataset.nominal)
        observations = [ms.response(op, ms_enrollment) for op in corners]
        rows.setdefault("maiti-schaumont", []).append(
            f"{flip_percent(ms_enrollment.bits, observations):4.1f}"
        )

    for scheme, cells in rows.items():
        print(f"{scheme:>16} " + " ".join(cells))


if __name__ == "__main__":
    main()
