"""Lifetime study: does the PUF secret survive years of silicon aging?

Extension beyond the paper's (V, T) reliability analysis: NBTI-style
wear-out slows devices by different amounts, so delay orderings drift over
the years and marginal bits flip.  The margin the configurable PUF banks at
enrollment is exactly the budget that absorbs this drift.

Run:  python examples/aging_study.py [years ...]
"""

import sys

import numpy as np

from repro import ChipROPUF, FabricationProcess
from repro.core.pairing import allocate_rings
from repro.silicon.aging import AgingModel, age_chip
from repro.variation import NOMINAL_OPERATING_POINT


def main() -> None:
    years = [float(arg) for arg in sys.argv[1:]] or [1.0, 5.0, 10.0, 20.0]
    fab = FabricationProcess()
    chip = fab.fabricate(280, np.random.default_rng(8), name="field-unit")
    model = AgingModel()
    print(
        f"chip {chip.name!r}: {chip.unit_count} units; aging model "
        f"{model.mean_severity * 100:.0f}% +/- {model.severity_sigma * 100:.1f}% "
        f"slowdown at {model.reference_years:g} years"
    )

    # Interleaved pair layout: the two rings of a pair sit side by side on
    # the die, so each pair's margins come from random mismatch alone.
    allocation = allocate_rings(
        chip.unit_count, 7, multiple=2, layout="interleaved"
    )
    header = f"{'scheme':>12} " + " ".join(f"{y:>6g}y" for y in years)
    print(header)
    for method in ("case2", "case1", "traditional"):
        puf = ChipROPUF(chip=chip, allocation=allocation, method=method)
        enrollment = puf.enroll()
        cells = []
        for year in years:
            aged = age_chip(chip, year, np.random.default_rng(13), model)
            aged_puf = ChipROPUF(
                chip=aged,
                allocation=puf.allocation,
                method=method,
                measurer=puf.measurer,
            )
            response = aged_puf.response(NOMINAL_OPERATING_POINT, enrollment)
            flips = int(np.sum(response != enrollment.bits))
            cells.append(f"{100.0 * flips / puf.bit_count:6.1f}%")
        print(f"{method:>12} " + " ".join(cells))


if __name__ == "__main__":
    main()
