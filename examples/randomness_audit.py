"""Randomness audit: run the NIST SP 800-22 battery on PUF output.

Reproduces the paper's Sec. IV.A flow end to end at a configurable scale:
build PUF bit-streams from the synthetic dataset (with or without the
systematic-variation distiller) and print the NIST final-analysis report —
the same format as the paper's Tables I and II.  The raw run demonstrates
*why* the distiller exists: systematic variation correlates neighbouring
bits and the runs/serial/entropy tests collapse.

Run:  python examples/randomness_audit.py [--raw]
"""

import sys

from repro.experiments.nist_tables import format_result, run_nist_experiment


def main() -> None:
    distilled = "--raw" not in sys.argv[1:]
    result = run_nist_experiment(method="case1", distilled=distilled)
    print(format_result(result))
    if not distilled:
        print(
            "\nNote: the raw run is expected to FAIL — the systematic "
            "spatial variation correlates neighbouring PUF bits, exactly "
            "the effect the paper's distiller [18] removes."
        )


if __name__ == "__main__":
    main()
