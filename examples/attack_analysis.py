"""Security analysis: what do the stored configurations reveal?

The paper's Sec. III.D requires both rings of a pair to select the same
*number* of inverters "for security concern".  This demo quantifies that
choice by attacking the device's stored (public) configuration vectors
with a logistic-regression classifier:

* Case-1 / Case-2 (equal counts): the attacker stays at chance;
* the unconstrained maximum-margin variant: the attacker reads the bit
  straight off the count difference;
* bonus: a CRP modeling attack on the Maiti-Schaumont reconfigurable-style
  PUF, demonstrating why the paper keeps its configuration *fixed*.

Run:  python examples/attack_analysis.py
"""

from repro.experiments.extensions import (
    format_leakage_study,
    run_leakage_study,
)


def main() -> None:
    study = run_leakage_study(max_boards=40)
    print(format_leakage_study(study))
    print()
    by_scheme = {result.scheme: result for result in study.results}
    if by_scheme["unconstrained"].accuracy > 0.95:
        print(
            "=> dropping the equal-count constraint hands the attacker "
            f"{by_scheme['unconstrained'].accuracy * 100:.0f}% of the bits; "
            "the paper's constraint keeps the configurable schemes at "
            f"{by_scheme['case1'].accuracy * 100:.0f}% (chance)."
        )


if __name__ == "__main__":
    main()
