"""Secret-key generation from a configurable RO PUF across environments.

The paper's motivating application: derive a device-unique cryptographic
key from silicon variation, stable over the full supply-voltage and
temperature envelope.  The pipeline combines

* a board from the synthetic VT-like dataset (512 ROs, measured at every
  corner of the 0.98-1.44 V x 25-65 C grid),
* the Case-2 configurable PUF (n = 5, 48 bits per board),
* dark-bit masking (the highest-margin bits feed the extractor), and
* a BCH(31, 16, t=3) code-offset fuzzy extractor.

The key regenerates identically at all 25 corners; the same pipeline on the
traditional PUF is run for contrast and typically needs the ECC to work
much harder (or fails outright at the voltage extremes).

Run:  python examples/key_generation.py
"""

import numpy as np

from repro import BCHCode, FuzzyExtractor, KeyGenerator, allocate_rings
from repro.core.puf import BoardROPUF
from repro.datasets import generate_vt_like, VTLikeConfig
from repro.variation import full_grid

def main() -> None:
    dataset = generate_vt_like(
        VTLikeConfig(nominal_boards=0, swept_boards=1, seed=99)
    )
    board = dataset.swept_boards[0]
    allocation = allocate_rings(board.ro_count, 5)

    for method in ("case2", "traditional"):
        puf = BoardROPUF(
            delay_provider=board.delay_provider(),
            allocation=allocation,
            method=method,
            require_odd=True,
        )
        generator = KeyGenerator(
            puf=puf,
            extractor=FuzzyExtractor(code=BCHCode(m=5, t=3), key_bytes=16),
            rng=np.random.default_rng(1),
        )
        material = generator.enroll(dataset.nominal)
        print(f"[{method}] enrolled key: {material.key.hex()}")

        mismatches = 0
        failures = 0
        for corner in full_grid():
            try:
                regenerated = generator.regenerate(material, corner)
            except ValueError:
                failures += 1
                continue
            if regenerated != material.key:
                mismatches += 1
        print(
            f"[{method}] regeneration over {len(full_grid())} corners: "
            f"{failures} decode failures, {mismatches} wrong keys"
        )


if __name__ == "__main__":
    main()
