"""Fleet authentication: enroll many chips, verify genuine vs counterfeit.

PUF-based chip authentication (a headline application in the paper's
introduction): the verifier stores each device's reference response at test
time; in the field a device is accepted when its regenerated response stays
within a Hamming-distance threshold.  Fig. 3's ~50% inter-chip distances
versus the configurable PUF's near-zero intra-chip noise make the decision
trivially separable.

The demo enrolls a fleet from the synthetic dataset, then authenticates

* every genuine device at a harsh corner (0.98 V), and
* every device's response claimed under every *other* device's identity
  (the counterfeit case).

Run:  python examples/authentication.py
"""


from repro import Authenticator, allocate_rings
from repro.core.puf import BoardROPUF
from repro.datasets import generate_vt_like, VTLikeConfig
from repro.variation import OperatingPoint


def main() -> None:
    dataset = generate_vt_like(
        VTLikeConfig(nominal_boards=0, swept_boards=8, seed=5)
    )
    harsh = OperatingPoint(0.98, 25.0)
    verifier = Authenticator(threshold_fraction=0.15)

    fleet = {}
    for board in dataset.swept_boards:
        puf = BoardROPUF(
            delay_provider=board.delay_provider(),
            allocation=allocate_rings(board.ro_count, 5),
            method="case1",
            require_odd=True,
        )
        enrollment = puf.enroll(dataset.nominal)
        verifier.enroll(board.name, enrollment.bits)
        fleet[board.name] = (puf, enrollment)
    print(f"enrolled devices: {', '.join(verifier.enrolled_devices)}")

    genuine_ok = 0
    impostor_rejected = 0
    impostor_total = 0
    for name, (puf, enrollment) in fleet.items():
        response = puf.response(harsh, enrollment)
        result = verifier.authenticate(name, response)
        status = "ACCEPT" if result.accepted else "REJECT"
        print(
            f"genuine {name} at {harsh.label()}: HD={result.distance:2d} "
            f"(threshold {result.threshold}) -> {status}"
        )
        genuine_ok += int(result.accepted)
        for other in fleet:
            if other == name:
                continue
            impostor_total += 1
            impostor = verifier.authenticate(other, response)
            impostor_rejected += int(not impostor.accepted)

    print(
        f"\ngenuine accepted: {genuine_ok}/{len(fleet)}; "
        f"counterfeits rejected: {impostor_rejected}/{impostor_total}"
    )


if __name__ == "__main__":
    main()
