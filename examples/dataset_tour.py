"""Tour of the synthetic dataset: spatial structure and the distiller.

Shows what the paper's Sec. IV.A is about, visually:

1. a board's raw RO delays as a die heatmap — the smooth systematic
   gradient is obvious;
2. the same board after the regression distiller — salt-and-pepper
   randomness, which is what the PUF should mine;
3. the population statistics the experiments rely on.

Run:  python examples/dataset_tour.py
"""

import numpy as np

from repro import PolynomialDistiller
from repro.analysis.heatmap import board_heatmap
from repro.datasets import generate_vt_like, VTLikeConfig


def main() -> None:
    dataset = generate_vt_like(
        VTLikeConfig(
            nominal_boards=24,
            swept_boards=0,
            ro_count=256,
            grid_columns=16,
            grid_rows=16,
            seed=31,
        )
    )
    board = dataset.nominal_boards[0]
    delays = board.delays_at(dataset.nominal)
    print(
        f"dataset {dataset.name!r}: {dataset.board_count} boards x "
        f"{dataset.ro_count} ROs"
    )
    print(
        f"\nboard {board.name!r} raw delays "
        f"(mean {np.mean(delays) * 1e12:.1f} ps, "
        f"spread {np.std(delays) / np.mean(delays) * 100:.1f}%):"
    )
    print(board_heatmap(delays, board.coords))

    distiller = PolynomialDistiller(degree=2)
    distilled = distiller(delays, board.coords)
    print(
        "\nafter the degree-2 regression distiller "
        f"(spread {np.std(distilled) / np.mean(distilled) * 100:.1f}%):"
    )
    print(board_heatmap(distilled, board.coords))

    matrix = dataset.nominal_delay_matrix()
    board_means = matrix.mean(axis=1)
    print(
        "\npopulation: board-mean spread "
        f"{np.std(board_means) / np.mean(board_means) * 100:.2f}% "
        "(process model: ~1%); within-board spread "
        f"{np.mean(matrix.std(axis=1) / matrix.mean(axis=1)) * 100:.2f}% "
        "(systematic + random: ~2.5%)"
    )


if __name__ == "__main__":
    main()
