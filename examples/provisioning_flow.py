"""End-to-end factory flow: fabricate, enroll, persist, deploy, verify.

The life cycle a real product built on this PUF would follow:

1. FACTORY — fabricate a lot, enroll every chip (measure, select
   configurations), derive a key with the fuzzy extractor, and write the
   device's non-volatile data (configurations + helper) to disk;
2. reboot — all Python state is discarded; only the JSON files survive;
3. FIELD — each device loads its NVM, regenerates its key at a harsh
   corner, and answers verifier challenges through the CRP interface.

Run:  python examples/provisioning_flow.py
"""

import json
import tempfile
from pathlib import Path

import numpy as np

from repro import BCHCode, ChipROPUF, FabricationProcess, FuzzyExtractor
from repro.core.serialization import (
    helper_data_from_dict,
    helper_data_to_dict,
    load_enrollment,
    save_enrollment,
)
from repro.crypto.crp import ChallengeResponseInterface
from repro.variation import OperatingPoint


def factory(chips, nvm_dir: Path) -> dict[str, bytes]:
    """Enroll every chip and persist its non-volatile data."""
    extractor = FuzzyExtractor(code=BCHCode(m=4, t=2), key_bytes=16)
    rng = np.random.default_rng(100)
    keys = {}
    for chip in chips:
        puf = ChipROPUF.deploy(chip, stage_count=4, method="case2")
        enrollment = puf.enroll()
        response = enrollment.bits[: extractor.response_bits]
        key, helper = extractor.generate(response, rng)
        keys[chip.name] = key
        save_enrollment(enrollment, nvm_dir / f"{chip.name}.enrollment.json")
        (nvm_dir / f"{chip.name}.helper.json").write_text(
            json.dumps(helper_data_to_dict(helper))
        )
        print(f"[factory] {chip.name}: {puf.bit_count} bits, key {key.hex()[:16]}...")
    return keys


def field(chips, nvm_dir: Path, factory_keys: dict[str, bytes]) -> None:
    """Regenerate keys at a harsh corner from the persisted NVM."""
    extractor = FuzzyExtractor(code=BCHCode(m=4, t=2), key_bytes=16)
    harsh = OperatingPoint(0.98, 65.0)
    crp_rng = np.random.default_rng(7)
    all_ok = True
    for chip in chips:
        enrollment = load_enrollment(nvm_dir / f"{chip.name}.enrollment.json")
        helper = helper_data_from_dict(
            json.loads((nvm_dir / f"{chip.name}.helper.json").read_text())
        )
        puf = ChipROPUF.deploy(chip, stage_count=4, method="case2")
        response = puf.response(harsh, enrollment)
        key = extractor.reproduce(response[: extractor.response_bits], helper)
        match = key == factory_keys[chip.name]
        all_ok &= match
        # CRP round between verifier (reference bits) and device (fresh):
        verifier_side = ChallengeResponseInterface(enrollment.bits)
        device_side = ChallengeResponseInterface(response)
        challenge = verifier_side.generate_challenge(crp_rng, width=8, fold=2)
        accepted = verifier_side.verify(challenge, device_side.respond(challenge))
        print(
            f"[field]   {chip.name} at {harsh.label()}: key "
            f"{'MATCH' if match else 'MISMATCH'}, CRP "
            f"{'ACCEPT' if accepted else 'REJECT'}"
        )
    print(f"\nfleet result: {'all devices verified' if all_ok else 'FAILURES'}")


def main() -> None:
    fab = FabricationProcess()
    chips = fab.fabricate_lot(4, 128, np.random.default_rng(42), name_prefix="unit")
    with tempfile.TemporaryDirectory() as nvm:
        nvm_dir = Path(nvm)
        keys = factory(chips, nvm_dir)
        print(f"\n-- reboot: only {len(list(nvm_dir.iterdir()))} NVM files survive --\n")
        field(chips, nvm_dir, keys)


if __name__ == "__main__":
    main()
