"""Selection extensions beyond the paper's Sec. III.D algorithms.

* :func:`select_unconstrained` — drops the equal-selected-count security
  constraint.  It achieves the largest possible margins, but the count
  difference between the two rings leaks the bit almost perfectly — the
  attack the paper's constraint exists to prevent ("the one that uses
  fewer inverters will most likely be faster, making it easier for an
  attacker to guess the bit").  `repro.attacks` quantifies the leak.

* :func:`select_case1_offset` / :func:`select_case2_offset` — offset-aware
  variants.  On real delay units the configured chains differ not only in
  the selected ``ddiff`` terms but also by a constant bypass-path offset
  ``B = sum(d0_top) - sum(d0_bottom)`` that the paper's formulation
  neglects.  The offset-aware selectors maximise ``|margin + B|`` — the
  quantity that actually decides the bit — recovering margin the paper's
  selector leaves on the table whenever ``B`` opposes it.
"""

from __future__ import annotations

import numpy as np

from .config_vector import ConfigVector
from .selection import PairSelection, _validate_pair

__all__ = [
    "select_unconstrained",
    "select_case1_offset",
    "select_case2_offset",
]


def select_unconstrained(alpha: np.ndarray, beta: np.ndarray) -> PairSelection:
    """Maximum-margin selection with *independent* selected counts.

    With positive per-unit delays the optimum is extreme: make one ring as
    slow as possible (select everything) and the other as fast as possible
    (select only its single fastest unit; a ring needs at least one stage).
    The returned margin therefore dwarfs Case-2's — but the configuration
    itself gives the bit away, which is why the paper forbids this.
    """
    alpha, beta = _validate_pair(alpha, beta)
    n = len(alpha)

    # Direction A: top slow (all selected), bottom fast (one fastest unit).
    bottom_fast = np.zeros(n, dtype=bool)
    bottom_fast[int(np.argmin(beta))] = True
    margin_positive = float(np.sum(alpha) - np.min(beta))

    # Direction B: the mirror image.
    top_fast = np.zeros(n, dtype=bool)
    top_fast[int(np.argmin(alpha))] = True
    margin_negative = float(np.min(alpha) - np.sum(beta))

    if abs(margin_positive) >= abs(margin_negative):
        top = np.ones(n, dtype=bool)
        bottom = bottom_fast
        margin = margin_positive
    else:
        top = top_fast
        bottom = np.ones(n, dtype=bool)
        margin = margin_negative
    return PairSelection(
        top_config=ConfigVector.from_array(top),
        bottom_config=ConfigVector.from_array(bottom),
        margin=margin,
        method="unconstrained",
    )


def select_case1_offset(
    alpha: np.ndarray, beta: np.ndarray, offset: float = 0.0
) -> PairSelection:
    """Case-1 selection maximising ``|sum(delta[x]) + offset|``.

    Args:
        offset: the constant chain-delay difference present regardless of
            the configuration (bypass paths; ``B_top - B_bottom``).

    The reported ``margin`` includes the offset, so its sign is the actual
    comparison outcome of the configured chains.
    """
    alpha, beta = _validate_pair(alpha, beta)
    delta = alpha - beta
    n = len(delta)

    # |sum + offset| over non-empty subsets is maximised at one of the two
    # extreme achievable sums.  The maximum sum is the positive deltas (or
    # the single largest delta when none is positive); symmetrically for
    # the minimum.
    max_selected = delta > 0.0
    if not np.any(max_selected):
        max_selected = np.zeros(n, dtype=bool)
        max_selected[int(np.argmax(delta))] = True
    min_selected = delta < 0.0
    if not np.any(min_selected):
        min_selected = np.zeros(n, dtype=bool)
        min_selected[int(np.argmin(delta))] = True

    max_margin = float(np.sum(delta[max_selected])) + offset
    min_margin = float(np.sum(delta[min_selected])) + offset
    if abs(max_margin) >= abs(min_margin):
        selected, margin = max_selected, max_margin
    else:
        selected, margin = min_selected, min_margin
    config = ConfigVector.from_array(selected)
    return PairSelection(
        top_config=config,
        bottom_config=config,
        margin=margin,
        method="case1-offset",
    )


def select_case2_offset(
    alpha: np.ndarray, beta: np.ndarray, offset: float = 0.0
) -> PairSelection:
    """Case-2 selection maximising ``|margin + offset|`` over all counts.

    Evaluates the directional prefix sums for every selected count k in
    1..n (both directions) and keeps the endpoint with the largest shifted
    magnitude.
    """
    alpha, beta = _validate_pair(alpha, beta)
    n = len(alpha)

    order_alpha_desc = np.argsort(-alpha, kind="stable")
    order_alpha_asc = order_alpha_desc[::-1]
    order_beta_desc = np.argsort(-beta, kind="stable")
    order_beta_asc = order_beta_desc[::-1]

    gains_positive = np.cumsum(alpha[order_alpha_desc] - beta[order_beta_asc])
    gains_negative = np.cumsum(alpha[order_alpha_asc] - beta[order_beta_desc])

    best: tuple[float, np.ndarray, np.ndarray] | None = None
    for sums, top_order, bottom_order in (
        (gains_positive, order_alpha_desc, order_beta_asc),
        (gains_negative, order_alpha_asc, order_beta_desc),
    ):
        shifted = sums + offset
        k = int(np.argmax(np.abs(shifted))) + 1
        margin = float(shifted[k - 1])
        if best is None or abs(margin) > abs(best[0]):
            best = (margin, top_order[:k], bottom_order[:k])

    assert best is not None
    margin, top_idx, bottom_idx = best
    top = np.zeros(n, dtype=bool)
    top[top_idx] = True
    bottom = np.zeros(n, dtype=bool)
    bottom[bottom_idx] = True
    return PairSelection(
        top_config=ConfigVector.from_array(top),
        bottom_config=ConfigVector.from_array(bottom),
        margin=margin,
        method="case2-offset",
    )
