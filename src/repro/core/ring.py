"""The configurable ring oscillator (Fig. 1 of the paper).

A configurable RO is a closed loop of delay units.  Its *chain delay* under
a configuration vector is the sum of per-unit contributions (``d + d1`` for
selected units, ``d0`` for bypassed ones); when the selected inverter count
is odd the ring free-runs at ``f = 1 / (2 * chain_delay)``.

Chain delays are well defined for any configuration (this is how the
measurement scheme of Sec. III.B characterises the units), while a frequency
only exists for odd selected counts — asking for one otherwise raises.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..silicon.chip import Chip
from ..variation.environment import NOMINAL_OPERATING_POINT, OperatingPoint
from .config_vector import ConfigVector
from .delay_unit import DelayUnit

__all__ = ["ConfigurableRO"]


@dataclass
class ConfigurableRO:
    """A configurable ring oscillator built from a chip's delay units.

    Attributes:
        chip: the chip hosting the units.
        unit_indices: chip indices of this ring's delay units, in ring order.
        name: identifier for reports.
    """

    chip: Chip
    unit_indices: np.ndarray
    name: str = "ro"

    def __post_init__(self) -> None:
        self.unit_indices = np.asarray(self.unit_indices, dtype=int)
        if self.unit_indices.ndim != 1 or len(self.unit_indices) == 0:
            raise ValueError("unit_indices must be a non-empty 1-D index array")
        if np.any(self.unit_indices < 0) or np.any(
            self.unit_indices >= self.chip.unit_count
        ):
            raise ValueError("unit index out of range for chip")
        if len(np.unique(self.unit_indices)) != len(self.unit_indices):
            raise ValueError("a ring cannot use the same delay unit twice")

    @property
    def stage_count(self) -> int:
        """Number of delay units in the ring (the paper's ``n``)."""
        return len(self.unit_indices)

    def __len__(self) -> int:
        return self.stage_count

    def unit(self, position: int) -> DelayUnit:
        """The delay unit at a ring position."""
        return DelayUnit(self.chip, int(self.unit_indices[position]))

    # ------------------------------------------------------------------
    # Delay / frequency evaluation
    # ------------------------------------------------------------------

    def _check_config(self, config: ConfigVector) -> np.ndarray:
        if len(config) != self.stage_count:
            raise ValueError(
                f"configuration length {len(config)} != ring stages "
                f"{self.stage_count}"
            )
        return config.as_array()

    def selected_path_delays(
        self, op: OperatingPoint = NOMINAL_OPERATING_POINT
    ) -> np.ndarray:
        """Per-stage ``d + d1`` delays, in ring order."""
        return self.chip.selected_path_delays(op)[self.unit_indices]

    def bypass_delays(self, op: OperatingPoint = NOMINAL_OPERATING_POINT) -> np.ndarray:
        """Per-stage ``d0`` delays, in ring order."""
        return self.chip.mux_bypass_delays(op)[self.unit_indices]

    def ddiffs(self, op: OperatingPoint = NOMINAL_OPERATING_POINT) -> np.ndarray:
        """Per-stage ``ddiff = d + d1 - d0``, in ring order."""
        return self.chip.ddiffs(op)[self.unit_indices]

    def chain_delay(
        self, config: ConfigVector, op: OperatingPoint = NOMINAL_OPERATING_POINT
    ) -> float:
        """One-way propagation delay of the configured chain, seconds."""
        selected = self._check_config(config)
        stage = np.where(
            selected, self.selected_path_delays(op), self.bypass_delays(op)
        )
        return float(np.sum(stage))

    def chain_delays(
        self,
        configs: list[ConfigVector],
        op: OperatingPoint = NOMINAL_OPERATING_POINT,
    ) -> np.ndarray:
        """True chain delays for a batch of configurations, in one array op.

        Each entry is bit-identical to the corresponding
        :meth:`chain_delay` call: the per-stage selected/bypass vectors are
        shared across the batch and each row is the same stage vector
        summed along the last axis.
        """
        if not configs:
            return np.zeros(0)
        masks = np.stack([self._check_config(c) for c in configs])
        stage = np.where(
            masks, self.selected_path_delays(op), self.bypass_delays(op)
        )
        return stage.sum(axis=1)

    def frequency(
        self, config: ConfigVector, op: OperatingPoint = NOMINAL_OPERATING_POINT
    ) -> float:
        """Free-running frequency in hertz; requires an odd inverter count."""
        self._check_config(config)
        if not config.can_oscillate:
            raise ValueError(
                f"configuration {config} selects {config.selected_count} "
                "inverters (even): the ring latches instead of oscillating"
            )
        return 1.0 / (2.0 * self.chain_delay(config, op))
