"""Vectorized batch response engine: the hot path behind the Fig. 4/5 sweeps.

``BoardROPUF.response`` historically re-walked a per-pair Python loop for
every operating point — two fancy-indexed ``np.sum`` calls per pair — and the
reliability experiments (Sec. IV.D) stacked those calls once per test
corner.  This module compiles an :class:`~repro.core.puf.Enrollment` into
dense ``(pair_count, stage_count)`` boolean selection-mask matrices *once*,
then evaluates every response bit as a masked row-sum (``einsum``), so a
whole operating-point sweep costs a handful of array operations instead of
``pairs x corners`` Python iterations.

Equivalence and draw-order contract
-----------------------------------

* :meth:`BatchEvaluator.response` and :meth:`BatchEvaluator.response_voted`
  make exactly the noise ``observe`` calls of the historical loop path —
  top delays ``(pair_count,)`` then bottom delays, once per evaluation — so
  seeded runs remain byte-identical with the pre-batch releases.  The
  ``BoardROPUF`` per-call API is now a thin wrapper over these methods.
* The sweep APIs (:meth:`BatchEvaluator.response_sweep`,
  :meth:`BatchEvaluator.response_voted_sweep`) draw **one noise tensor per
  sweep shape**: top ``(op_count, pair_count)`` then bottom (with a leading
  ``votes`` axis for voting).  That is an explicitly versioned draw order —
  :data:`SWEEP_DRAW_ORDER` — and intentionally differs from looping the
  single-op API, which would interleave top/bottom draws per corner.
* With :class:`~repro.variation.noise.NoiselessMeasurement` (the
  experiments' configuration) no randomness is involved and sweep rows equal
  the single-op responses exactly.

``response_loop_reference`` preserves the original per-pair loop verbatim;
the equivalence tests and the ``test_bench_batch_engine`` micro-benchmark
pin the vectorized engine against it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable, Sequence

import numpy as np

from .. import obs
from ..backends import current_backend
from ..variation.environment import OperatingPoint
from ..variation.noise import MeasurementNoise, NoiselessMeasurement
from .pairing import RingAllocation

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from .puf import BoardROPUF, ChipROPUF, Enrollment

__all__ = [
    "SWEEP_DRAW_ORDER",
    "CompiledEnrollment",
    "BatchEvaluator",
    "PairDelayRequest",
    "compile_enrollment",
    "coalesce_pair_delays",
    "coalesce_responses",
    "response_loop_reference",
    "enroll_loop_reference",
    "chip_enroll_loop_reference",
]

#: Version tag of the sweep APIs' noise draw order (see module docstring).
SWEEP_DRAW_ORDER = "sweep-v1"


@dataclass
class CompiledEnrollment:
    """An :class:`Enrollment` lowered to dense selection-mask matrices.

    Attributes:
        stage_count: units per ring (mask row width).
        top_rings: ring index of each pair's top ring, shape ``(pair_count,)``.
        bottom_rings: ring index of each pair's bottom ring.
        top_masks: float 0/1 matrix ``(pair_count, stage_count)``; row ``p``
            is pair ``p``'s top configuration vector.
        bottom_masks: same for the bottom configurations.
        reference_bits: the enrollment's reference response bits.
    """

    stage_count: int
    top_rings: np.ndarray
    bottom_rings: np.ndarray
    top_masks: np.ndarray
    bottom_masks: np.ndarray
    reference_bits: np.ndarray

    @property
    def pair_count(self) -> int:
        """Number of RO pairs (= response bits) in the compiled enrollment."""
        return len(self.top_rings)


def compile_enrollment(
    enrollment: "Enrollment", allocation: RingAllocation
) -> CompiledEnrollment:
    """Lower an enrollment's per-pair selections into dense mask matrices.

    Raises:
        ValueError: when the enrollment does not fit the allocation (pair
            count or stage count mismatch).
    """
    selections = enrollment.selections
    if len(selections) != allocation.pair_count:
        raise ValueError(
            f"enrollment has {len(selections)} pairs but the allocation "
            f"provides {allocation.pair_count}"
        )
    for pair, selection in enumerate(selections):
        if len(selection.top_config) != allocation.stage_count:
            raise ValueError(
                f"pair {pair} configures {len(selection.top_config)} stages "
                f"but the allocation's rings have {allocation.stage_count}"
            )
    ring_pairs = allocation.pair_ring_matrix()
    top_masks = np.stack(
        [selection.top_config.as_array() for selection in selections]
    ).astype(float)
    bottom_masks = np.stack(
        [selection.bottom_config.as_array() for selection in selections]
    ).astype(float)
    return CompiledEnrollment(
        stage_count=allocation.stage_count,
        top_rings=ring_pairs[:, 0],
        bottom_rings=ring_pairs[:, 1],
        top_masks=top_masks,
        bottom_masks=bottom_masks,
        reference_bits=np.asarray(enrollment.bits, dtype=bool).copy(),
    )


@dataclass
class BatchEvaluator:
    """Vectorized response generation for one (PUF, enrollment) binding.

    Build one via :meth:`BoardROPUF.batch` (or :meth:`from_puf`), then call
    the single-op methods for byte-identical drop-in evaluation or the sweep
    methods to evaluate many operating points (and vote rounds) in one pass.

    Attributes:
        delay_provider: maps an operating point to per-unit delays.
        allocation: the PUF's ring carve-up.
        compiled: dense selection masks (shared, cached on the enrollment).
        response_noise: noise model applied to ring-delay sums.
        rng: generator driving the response noise.
    """

    delay_provider: Callable[[OperatingPoint], np.ndarray]
    allocation: RingAllocation
    compiled: CompiledEnrollment
    response_noise: MeasurementNoise = field(default_factory=NoiselessMeasurement)
    rng: np.random.Generator = field(default_factory=np.random.default_rng)

    @classmethod
    def from_puf(cls, puf: "BoardROPUF", enrollment: "Enrollment") -> "BatchEvaluator":
        """Bind a board PUF and one of its enrollments (masks cached)."""
        return cls(
            delay_provider=puf.delay_provider,
            allocation=puf.allocation,
            compiled=enrollment.compiled(puf.allocation),
            response_noise=puf.response_noise,
            rng=puf.rng,
        )

    @property
    def bit_count(self) -> int:
        """Response bits per evaluation (one per ring pair)."""
        return self.compiled.pair_count

    # ------------------------------------------------------------------
    # Delay evaluation
    # ------------------------------------------------------------------

    def _ring_delays(self, op: OperatingPoint) -> np.ndarray:
        unit_delays = np.asarray(self.delay_provider(op), dtype=float)
        return self.allocation.ring_delay_matrix(unit_delays)

    def pair_delays(self, op: OperatingPoint) -> tuple[np.ndarray, np.ndarray]:
        """(top, bottom) configured-ring delay sums, each ``(pair_count,)``."""
        rings = self._ring_delays(op)
        compiled = self.compiled
        backend = current_backend()
        top = backend.pair_delay_sums(
            rings[compiled.top_rings], compiled.top_masks
        )
        bottom = backend.pair_delay_sums(
            rings[compiled.bottom_rings], compiled.bottom_masks
        )
        return top, bottom

    def delay_request(self, op: OperatingPoint) -> "PairDelayRequest":
        """Gather this evaluator's delay rows for one coalescable evaluation.

        The returned request carries the fancy-indexed ring-delay rows and
        the selection masks; :func:`coalesce_pair_delays` concatenates many
        such requests (from *different* evaluators — a whole device fleet)
        and reduces them with one ``einsum`` per stage width, so a batch of
        concurrent authentications costs two array reductions instead of
        two per request.

        Raises whatever the evaluator's ``delay_provider`` raises for an
        unmeasured operating point (``KeyError`` for dataset boards), so
        callers can fail one request without poisoning a batch.
        """
        rings = self._ring_delays(op)
        compiled = self.compiled
        return PairDelayRequest(
            top_rows=rings[compiled.top_rings],
            bottom_rows=rings[compiled.bottom_rings],
            top_masks=compiled.top_masks,
            bottom_masks=compiled.bottom_masks,
        )

    def sweep_delays(
        self, ops: Sequence[OperatingPoint] | Iterable[OperatingPoint]
    ) -> tuple[np.ndarray, np.ndarray]:
        """(top, bottom) delay sums over a sweep, each ``(op_count, pair_count)``."""
        ops = list(ops)
        if not ops:
            raise ValueError("no operating points supplied")
        stacked = np.stack([self._ring_delays(op) for op in ops])
        compiled = self.compiled
        return current_backend().sweep_pair_delay_sums(
            stacked,
            compiled.top_rings,
            compiled.bottom_rings,
            compiled.top_masks,
            compiled.bottom_masks,
        )

    # ------------------------------------------------------------------
    # Response generation
    # ------------------------------------------------------------------

    def response(
        self, op: OperatingPoint, rng: np.random.Generator | None = None
    ) -> np.ndarray:
        """One response evaluation; draw order matches the historical loop."""
        rng = self.rng if rng is None else rng
        top, bottom = self.pair_delays(op)
        top_observed = self.response_noise.observe(top, rng)
        bottom_observed = self.response_noise.observe(bottom, rng)
        obs.counter_add("noise.elements.legacy", top.size + bottom.size)
        obs.counter_add("batch.bits_evaluated", top.size)
        return top_observed > bottom_observed

    def response_voted(
        self,
        op: OperatingPoint,
        votes: int = 9,
        rng: np.random.Generator | None = None,
    ) -> np.ndarray:
        """Majority vote; per-vote interleaved draws match the legacy loop."""
        _validate_votes(votes)
        rng = self.rng if rng is None else rng
        top, bottom = self.pair_delays(op)
        totals = np.zeros(self.bit_count, dtype=int)
        for _ in range(votes):
            top_observed = self.response_noise.observe(top, rng)
            bottom_observed = self.response_noise.observe(bottom, rng)
            totals += (top_observed > bottom_observed).astype(int)
        obs.counter_add("noise.elements.legacy", votes * (top.size + bottom.size))
        obs.counter_add("batch.bits_evaluated", top.size)
        return totals * 2 > votes

    def response_sweep(
        self,
        ops: Sequence[OperatingPoint],
        rng: np.random.Generator | None = None,
    ) -> np.ndarray:
        """Responses at many operating points, shape ``(op_count, pair_count)``.

        One noise tensor is drawn per sweep shape (top then bottom; see
        :data:`SWEEP_DRAW_ORDER`), so the whole sweep costs two ``observe``
        calls regardless of the corner count.
        """
        rng = self.rng if rng is None else rng
        ops = list(ops)
        with obs.span("batch.response_sweep", op_count=len(ops)):
            timed = obs.metrics_enabled()
            started = time.perf_counter() if timed else 0.0
            top, bottom = self.sweep_delays(ops)
            top_observed = self.response_noise.observe(top, rng)
            bottom_observed = self.response_noise.observe(bottom, rng)
            bits = top_observed > bottom_observed
            if timed:
                self._record_sweep_metrics(
                    top.size + bottom.size, bits.size, started
                )
            return bits

    def response_voted_sweep(
        self,
        ops: Sequence[OperatingPoint],
        votes: int = 9,
        rng: np.random.Generator | None = None,
    ) -> np.ndarray:
        """Majority-voted responses over a sweep, shape ``(op_count, pair_count)``.

        All vote rounds for all corners draw from one
        ``(votes, op_count, pair_count)`` noise tensor (top then bottom).
        """
        _validate_votes(votes)
        rng = self.rng if rng is None else rng
        ops = list(ops)
        with obs.span("batch.response_voted_sweep", op_count=len(ops), votes=votes):
            timed = obs.metrics_enabled()
            started = time.perf_counter() if timed else 0.0
            top, bottom = self.sweep_delays(ops)
            shape = (votes,) + top.shape
            top_observed = self.response_noise.observe(
                np.broadcast_to(top, shape), rng
            )
            bottom_observed = self.response_noise.observe(
                np.broadcast_to(bottom, shape), rng
            )
            totals = (top_observed > bottom_observed).sum(axis=0)
            bits = totals * 2 > votes
            if timed:
                self._record_sweep_metrics(
                    2 * votes * top.size, bits.size, started
                )
            return bits

    def _record_sweep_metrics(
        self, noise_elements: int, bits: int, started: float
    ) -> None:
        """Fold one sweep's draw volume and throughput into the registry."""
        elapsed = time.perf_counter() - started
        obs.counter_add(f"noise.elements.{SWEEP_DRAW_ORDER}", noise_elements)
        obs.counter_add("batch.bits_evaluated", bits)
        if elapsed > 0.0:
            obs.histogram_observe("batch.bits_per_second", bits / elapsed)


def _validate_votes(votes: int) -> None:
    if votes < 1 or votes % 2 == 0:
        raise ValueError(f"votes must be odd and positive, got {votes}")


# ----------------------------------------------------------------------
# Fleet coalescing: many (evaluator, op) evaluations, one einsum
# ----------------------------------------------------------------------


@dataclass
class PairDelayRequest:
    """One evaluation's delay rows and masks, ready for fleet coalescing.

    Produced by :meth:`BatchEvaluator.delay_request`; consumed (possibly
    concatenated with requests from *other* devices) by
    :func:`coalesce_pair_delays`.

    Attributes:
        top_rows / bottom_rows: ``(pair_count, stage_count)`` ring-delay
            rows, already fancy-indexed per pair.
        top_masks / bottom_masks: the matching 0/1 selection masks.
    """

    top_rows: np.ndarray
    bottom_rows: np.ndarray
    top_masks: np.ndarray
    bottom_masks: np.ndarray

    @property
    def pair_count(self) -> int:
        return self.top_rows.shape[0]

    @property
    def stage_count(self) -> int:
        return self.top_rows.shape[1]


def coalesce_pair_delays(
    requests: Sequence[PairDelayRequest],
) -> list[tuple[np.ndarray, np.ndarray]]:
    """(top, bottom) delay sums for many requests via grouped ``einsum``.

    Requests are grouped by stage width; within a group every request's top
    and bottom rows are stacked into one matrix and reduced with a *single*
    ``einsum`` call.  Because the reduction runs row-by-row over the same
    stage axis, each request's sums are **bit-identical** to evaluating it
    alone through :meth:`BatchEvaluator.pair_delays` — the serve layer's
    coalesced-equals-serial guarantee rests on this (pinned by
    ``tests/test_serve_coalescer.py``).

    Returns one ``(top, bottom)`` tuple per request, in request order.
    """
    if not requests:
        return []
    by_width: dict[int, list[int]] = {}
    for index, request in enumerate(requests):
        by_width.setdefault(request.stage_count, []).append(index)
    results: list[tuple[np.ndarray, np.ndarray] | None] = [None] * len(requests)
    for indices in by_width.values():
        group = [requests[i] for i in indices]
        rows = np.concatenate(
            [r.top_rows for r in group] + [r.bottom_rows for r in group]
        )
        masks = np.concatenate(
            [r.top_masks for r in group] + [r.bottom_masks for r in group]
        )
        sums = current_backend().pair_delay_sums(rows, masks)
        top_total = sum(r.pair_count for r in group)
        tops, bottoms = sums[:top_total], sums[top_total:]
        offset = 0
        for slot, request in zip(indices, group):
            span_end = offset + request.pair_count
            results[slot] = (tops[offset:span_end], bottoms[offset:span_end])
            offset = span_end
    obs.counter_add("batch.coalesced_requests", len(requests))
    obs.histogram_observe("batch.coalesce_size", len(requests))
    return results  # type: ignore[return-value]


def coalesce_responses(
    entries: Sequence[tuple["BatchEvaluator", OperatingPoint]],
    requests: Sequence[PairDelayRequest] | None = None,
) -> list[np.ndarray]:
    """Response bits for many (evaluator, op) evaluations in one pass.

    The delay reductions of the whole batch are coalesced through
    :func:`coalesce_pair_delays`; measurement noise is then observed
    per entry **in entry order** with each evaluator's own noise model and
    RNG — exactly the draws :meth:`BatchEvaluator.response` would make —
    so a coalesced batch is byte-identical to evaluating the entries one
    at a time in the same order.

    Args:
        entries: the evaluations to run.
        requests: pre-gathered delay requests (one per entry); supplied by
            callers that validate operating points per request before
            batching.  Gathered from ``entries`` when omitted.
    """
    if requests is None:
        requests = [ev.delay_request(op) for ev, op in entries]
    if len(requests) != len(entries):
        raise ValueError(
            f"{len(entries)} entries but {len(requests)} delay requests"
        )
    with obs.span("batch.coalesce_responses", batch=len(entries)):
        delays = coalesce_pair_delays(requests)
        responses = []
        for (evaluator, _), (top, bottom) in zip(entries, delays):
            top_observed = evaluator.response_noise.observe(top, evaluator.rng)
            bottom_observed = evaluator.response_noise.observe(
                bottom, evaluator.rng
            )
            responses.append(top_observed > bottom_observed)
        obs.counter_add(
            "batch.bits_evaluated", sum(r.size for r in responses)
        )
        return responses


def response_loop_reference(
    puf: "BoardROPUF", enrollment: "Enrollment", op: OperatingPoint
) -> np.ndarray:
    """The pre-batch per-pair Python loop, preserved verbatim.

    Exists so the equivalence tests and the batch-engine micro-benchmark can
    pin the vectorized path against the historical implementation; not a
    production code path.
    """
    unit_delays = np.asarray(puf.delay_provider(op), dtype=float)
    rings = puf.allocation.ring_delay_matrix(unit_delays)
    top_delays = np.empty(len(enrollment.selections))
    bottom_delays = np.empty(len(enrollment.selections))
    for pair, selection in enumerate(enrollment.selections):
        top, bottom = puf.allocation.pair_rings(pair)
        top_delays[pair] = np.sum(rings[top][selection.top_config.as_array()])
        bottom_delays[pair] = np.sum(rings[bottom][selection.bottom_config.as_array()])
    top_observed = puf.response_noise.observe(top_delays, puf.rng)
    bottom_observed = puf.response_noise.observe(bottom_delays, puf.rng)
    return top_observed > bottom_observed


def enroll_loop_reference(
    puf: "BoardROPUF", op: OperatingPoint
) -> "Enrollment":
    """The pre-batch per-pair board enrollment loop, preserved verbatim.

    One scalar selector call per ring pair — the implementation
    :meth:`BoardROPUF.enroll` used before the batch selection engine.  The
    equivalence tests and the enrollment micro-benchmark pin the vectorized
    path against it (byte-identical Enrollments); not a production code
    path.
    """
    from .puf import SELECTION_METHODS, Enrollment

    rings = puf._ring_delays(op)
    selector = SELECTION_METHODS[puf.method]
    selections = []
    for pair in range(puf.allocation.pair_count):
        top, bottom = puf.allocation.pair_rings(pair)
        selections.append(
            selector(rings[top], rings[bottom], require_odd=puf.require_odd)
        )
    margins = np.array([s.margin for s in selections])
    bits = np.array([s.bit for s in selections])
    return Enrollment(
        operating_point=op, selections=selections, bits=bits, margins=margins
    )


def chip_enroll_loop_reference(
    puf: "ChipROPUF", op: OperatingPoint
) -> "Enrollment":
    """The per-pair chip enrollment loop, mirrored for benchmarking.

    Identical to :meth:`ChipROPUF.enroll` (which deliberately *keeps* this
    loop as its default path — the legacy noise draw order interleaves
    measurements per pair and cannot be reproduced by one batch tensor).
    The enrollment micro-benchmark times ``ChipROPUF.enroll_batch`` against
    it, and the byte-identity tests pin the default path to it.
    """
    from .puf import Enrollment

    selections = []
    margins = []
    bits = []
    for pair in range(puf.allocation.pair_count):
        top_idx, bottom_idx = puf.allocation.pair_rings(pair)
        top_ring = puf.ring(top_idx)
        bottom_ring = puf.ring(bottom_idx)
        selection = puf._select_pair(top_ring, bottom_ring, op)
        selections.append(selection)
        margins.append(selection.margin)
        top_delay = puf.measurer.chain_delay(top_ring, selection.top_config, op)
        bottom_delay = puf.measurer.chain_delay(
            bottom_ring, selection.bottom_config, op
        )
        bits.append(top_delay > bottom_delay)
    return Enrollment(
        operating_point=op,
        selections=selections,
        bits=np.array(bits),
        margins=np.array(margins),
    )
