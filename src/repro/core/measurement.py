"""Post-silicon delay measurement (Sec. III.B of the paper).

Measuring one delay unit directly "may introduce large error", so the paper
measures the whole configured chain for several configuration vectors and
*computes* the per-unit delay differences.  The chain delay is affine in the
configuration vector::

    D(c) = sum_i d0_i  +  sum_i c_i * ddiff_i  =  B + c . ddiff

so the per-unit ``ddiff_i`` values are exactly the linear coefficients of a
regression of measured chain delays on configuration vectors.  This module
provides

* the leave-one-out scheme (all-ones plus n leave-one-out vectors), whose
  closed form is ``ddiff_j = D(ones) - D(ones with j skipped)``;
* the paper's 3-stage worked example with configurations "110", "101",
  "011" and the formulas ``ddiff_1 = (X+Y-Z)/2`` etc. — exact when the
  bypass delays are negligible, and reproduced here for fidelity;
* a general least-squares estimator for arbitrary configuration sets, which
  averages out measurement noise when more than ``n+1`` vectors are used.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .. import obs
from ..variation.environment import NOMINAL_OPERATING_POINT, OperatingPoint
from ..variation.noise import GaussianNoise, MeasurementNoise
from .config_vector import ConfigVector
from .ring import ConfigurableRO

__all__ = [
    "DelayMeasurer",
    "DdiffEstimate",
    "BatchDdiffEstimate",
    "measure_ddiffs_leave_one_out",
    "measure_ddiffs_leave_one_out_batch",
    "measure_ddiffs_least_squares",
    "three_stage_ddiffs",
    "leave_one_out_vectors",
    "random_config_set",
    "ENROLL_DRAW_ORDER",
]

#: Version tag of the batch enrollment noise-draw order.  Batch enrollment
#: (:func:`measure_ddiffs_leave_one_out_batch`, ``ChipROPUF.enroll_batch`` /
#: ``enroll_sweep``) draws one noise tensor per array shape: first the full
#: ``(ring, config)`` leave-one-out matrix (rings major, repeats drawn
#: matrix-by-matrix), then the per-pair reference observations.  This
#: differs from the legacy per-ring interleaving of ``ChipROPUF.enroll``,
#: which therefore keeps its sequential path; any change to the batch order
#: must bump this tag.
ENROLL_DRAW_ORDER = "enroll-v1"


@dataclass
class DelayMeasurer:
    """Measures chain delays of configured rings with noise and averaging.

    Attributes:
        noise: measurement-noise model applied to every raw observation.
        repeats: independent observations averaged per measurement.
        rng: random generator driving the noise.  Seeded by default so
            default-constructed measurers (and everything built on them,
            like the Sec. IV.E threshold study) are reproducible run to
            run and process to process; pass your own generator for an
            independent noise stream.
    """

    noise: MeasurementNoise = field(default_factory=GaussianNoise)
    repeats: int = 5
    rng: np.random.Generator = field(
        default_factory=lambda: np.random.default_rng(0)
    )

    def __post_init__(self) -> None:
        if self.repeats < 1:
            raise ValueError(f"repeats must be >= 1, got {self.repeats}")

    def chain_delay(
        self,
        ring: ConfigurableRO,
        config: ConfigVector,
        op: OperatingPoint = NOMINAL_OPERATING_POINT,
    ) -> float:
        """One averaged, noisy chain-delay measurement in seconds."""
        true_delay = np.array([ring.chain_delay(config, op)])
        observed = self.noise.observe_averaged(true_delay, self.rng, self.repeats)
        return float(observed[0])

    def chain_delays(
        self,
        ring: ConfigurableRO,
        configs: list[ConfigVector],
        op: OperatingPoint = NOMINAL_OPERATING_POINT,
    ) -> np.ndarray:
        """Averaged, noisy measurements for a list of configurations.

        Draw-order note: the whole batch is observed with *one*
        ``observe_averaged`` call (noise vectors span the config axis), so
        the generator advances differently from a loop of
        :meth:`chain_delay` calls.  With ``repeats == 1`` and Gaussian
        noise the two are byte-identical (one ``normal(size=n)`` draw
        equals ``n`` sequential size-1 draws); callers that depend on the
        per-call order at higher repeats use :meth:`chain_delays_sequential`.
        """
        true_delays = ring.chain_delays(configs, op)
        return self.noise.observe_averaged(true_delays, self.rng, self.repeats)

    def chain_delays_sequential(
        self,
        ring: ConfigurableRO,
        configs: list[ConfigVector],
        op: OperatingPoint = NOMINAL_OPERATING_POINT,
    ) -> np.ndarray:
        """Per-call measurements, preserving the scalar noise draw order.

        One :meth:`chain_delay` call per configuration — the legacy order
        that the per-ring ddiff extractors (and through them the default
        ``ChipROPUF.enroll`` path) are pinned to.
        """
        return np.array([self.chain_delay(ring, c, op) for c in configs])


@dataclass
class DdiffEstimate:
    """Result of a per-unit delay-difference extraction.

    Attributes:
        ddiffs: estimated per-unit ``ddiff`` values, ring order, seconds.
        intercept: estimated all-bypass chain delay ``B = sum d0`` (only the
            least-squares scheme identifies it; NaN otherwise).
        residual_rms: RMS of the regression residuals (0 for exact schemes).
        configs: configuration vectors that were measured.
        measurements: the measured chain delays, aligned with ``configs``.
    """

    ddiffs: np.ndarray
    intercept: float
    residual_rms: float
    configs: list[ConfigVector]
    measurements: np.ndarray


def leave_one_out_vectors(stage_count: int) -> list[ConfigVector]:
    """The all-ones vector followed by the ``n`` leave-one-out vectors."""
    if stage_count < 1:
        raise ValueError("stage_count must be >= 1")
    vectors = [ConfigVector.all_selected(stage_count)]
    vectors.extend(
        ConfigVector.leave_one_out(stage_count, j) for j in range(stage_count)
    )
    return vectors


def measure_ddiffs_leave_one_out(
    measurer: DelayMeasurer,
    ring: ConfigurableRO,
    op: OperatingPoint = NOMINAL_OPERATING_POINT,
) -> DdiffEstimate:
    """Extract per-unit ddiffs with the leave-one-out scheme (n+1 configs).

    ``ddiff_j = D(all ones) - D(leave-one-out j)`` because skipping unit j
    replaces its ``d + d1`` contribution by ``d0``.
    """
    configs = leave_one_out_vectors(ring.stage_count)
    measurements = measurer.chain_delays_sequential(ring, configs, op)
    full = measurements[0]
    ddiffs = full - measurements[1:]
    return DdiffEstimate(
        ddiffs=ddiffs,
        intercept=float("nan"),
        residual_rms=0.0,
        configs=configs,
        measurements=measurements,
    )


@dataclass
class BatchDdiffEstimate:
    """Leave-one-out extraction for many rings at once.

    Attributes:
        ddiffs: ``(ring, stage)`` estimated per-unit ``ddiff`` values.
        configs: the shared leave-one-out configuration list (all-ones
            first), identical for every ring.
        measurements: ``(ring, config)`` measured chain delays.
    """

    ddiffs: np.ndarray
    configs: list[ConfigVector]
    measurements: np.ndarray

    @property
    def ring_count(self) -> int:
        """Number of rings measured."""
        return len(self.ddiffs)

    def estimate(self, ring_index: int) -> DdiffEstimate:
        """The per-ring :class:`DdiffEstimate` view of one row."""
        return DdiffEstimate(
            ddiffs=self.ddiffs[ring_index].copy(),
            intercept=float("nan"),
            residual_rms=0.0,
            configs=self.configs,
            measurements=self.measurements[ring_index].copy(),
        )


def measure_ddiffs_leave_one_out_batch(
    measurer: DelayMeasurer,
    rings: list[ConfigurableRO],
    op: OperatingPoint = NOMINAL_OPERATING_POINT,
) -> BatchDdiffEstimate:
    """Leave-one-out ddiff extraction over many rings in one array pass.

    Evaluates the full ``(ring, config)`` true chain-delay matrix straight
    off the chip's structure-of-arrays delay vectors and observes it with
    one noise tensor per repeat (the :data:`ENROLL_DRAW_ORDER` contract).
    Each row's closed form matches :func:`measure_ddiffs_leave_one_out`
    exactly; only the noise draw order differs (byte-identical under
    noiseless measurement).

    Args:
        rings: rings sharing one chip and one stage count.
    """
    if not rings:
        raise ValueError("need at least one ring")
    chip = rings[0].chip
    stage_count = rings[0].stage_count
    for ring in rings[1:]:
        if ring.chip is not chip:
            raise ValueError("batch measurement needs rings on one chip")
        if ring.stage_count != stage_count:
            raise ValueError(
                "batch measurement needs a uniform stage count, got "
                f"{ring.stage_count} != {stage_count}"
            )
    configs = leave_one_out_vectors(stage_count)
    with obs.span(
        "measurement.leave_one_out_batch",
        rings=len(rings),
        stages=stage_count,
    ):
        config_masks = np.stack([c.as_array() for c in configs])
        unit_indices = np.stack([ring.unit_indices for ring in rings])
        selected = chip.selected_path_delays(op)[unit_indices]
        bypass = chip.mux_bypass_delays(op)[unit_indices]
        # (ring, 1, stage) vs (1, config, stage) -> (ring, config) delays; each
        # row/column entry is the same stage vector summed along the last axis,
        # hence bit-identical to the per-call ConfigurableRO.chain_delay.
        true_delays = np.where(
            config_masks[None, :, :], selected[:, None, :], bypass[:, None, :]
        ).sum(axis=2)
        obs.counter_add(
            f"noise.elements.{ENROLL_DRAW_ORDER}",
            true_delays.size * measurer.repeats,
        )
        measurements = measurer.noise.observe_averaged(
            true_delays, measurer.rng, measurer.repeats
        )
        ddiffs = measurements[:, 0:1] - measurements[:, 1:]
    return BatchDdiffEstimate(
        ddiffs=ddiffs, configs=configs, measurements=measurements
    )


def measure_ddiffs_least_squares(
    measurer: DelayMeasurer,
    ring: ConfigurableRO,
    configs: list[ConfigVector],
    op: OperatingPoint = NOMINAL_OPERATING_POINT,
) -> DdiffEstimate:
    """Extract per-unit ddiffs by regressing chain delays on configurations.

    Args:
        configs: at least ``n + 1`` configuration vectors whose 0/1 matrix,
            augmented with an intercept column, has full column rank.

    Raises:
        ValueError: if the configuration set cannot identify all units.
    """
    n = ring.stage_count
    if len(configs) < n + 1:
        raise ValueError(
            f"need at least {n + 1} configurations to identify {n} units "
            f"plus the intercept, got {len(configs)}"
        )
    matrix = np.stack([c.as_array().astype(float) for c in configs])
    design = np.column_stack([np.ones(len(configs)), matrix])
    if np.linalg.matrix_rank(design) < n + 1:
        raise ValueError(
            "configuration set is rank-deficient; some units cannot be "
            "distinguished (add more diverse configurations)"
        )
    measurements = measurer.chain_delays_sequential(ring, configs, op)
    solution, _, _, _ = np.linalg.lstsq(design, measurements, rcond=None)
    residuals = measurements - design @ solution
    return DdiffEstimate(
        ddiffs=solution[1:],
        intercept=float(solution[0]),
        residual_rms=float(np.sqrt(np.mean(residuals**2))),
        configs=list(configs),
        measurements=measurements,
    )


def three_stage_ddiffs(x: float, y: float, z: float) -> tuple[float, float, float]:
    """The paper's closed form for a 3-stage ring (Sec. III.B).

    With ``X = D("110")``, ``Y = D("101")``, ``Z = D("011")``::

        ddiff_1 = (X + Y - Z) / 2
        ddiff_2 = (X + Z - Y) / 2
        ddiff_3 = (Y + Z - X) / 2

    These recover the per-unit selected-path delays exactly when the bypass
    delays ``d0`` are negligible (the paper's idealisation); with non-zero
    bypass delays each value is offset by ``(d0_j + B') / 2`` terms, which
    cancel in pairwise *comparisons* between matched rings.
    """
    ddiff_1 = (x + y - z) / 2.0
    ddiff_2 = (x + z - y) / 2.0
    ddiff_3 = (y + z - x) / 2.0
    return ddiff_1, ddiff_2, ddiff_3


def random_config_set(
    stage_count: int,
    count: int,
    rng: np.random.Generator,
    max_attempts: int = 1000,
) -> list[ConfigVector]:
    """A random full-rank configuration set for the least-squares estimator.

    Draws uniform random vectors until the augmented design matrix reaches
    full column rank, then fills up to ``count``.  Duplicate draws are
    rejected for free — only draws rejected for *rank* (a fresh vector that
    would leave too few slots to complete the rank) consume
    ``max_attempts``, so small stage counts with ``count`` near
    ``2 ** stage_count`` terminate reliably.  Rank is tracked incrementally
    by Gram-Schmidt elimination over the accepted rows instead of
    re-factorising the growing stack per draw.
    """
    if count < stage_count + 1:
        raise ValueError(
            f"count must be >= stage_count + 1 = {stage_count + 1}, got {count}"
        )
    if stage_count < 64 and count > 2**stage_count:
        raise ValueError(
            f"only {2**stage_count} distinct configurations exist for "
            f"{stage_count} stages; cannot build {count}"
        )
    full_rank = stage_count + 1
    seen: set[tuple[bool, ...]] = set()
    vectors: list[ConfigVector] = []
    basis: list[np.ndarray] = []

    def residual_direction(row: np.ndarray) -> np.ndarray | None:
        """Component of ``row`` outside the accepted span, or None if inside."""
        residual = row.astype(float)
        # Two elimination passes keep the basis numerically orthonormal;
        # rows are small-integer so 1e-9 relative is far below any true
        # independent component.
        for _ in range(2):
            for direction in basis:
                residual = residual - (residual @ direction) * direction
        norm = float(np.linalg.norm(residual))
        if norm <= 1e-9 * float(np.linalg.norm(row)):
            return None
        return residual / norm

    attempts = 0
    # Duplicates are free, so bound them separately to stay finite if the
    # generator gets stuck repeating itself.
    duplicate_budget = 1000 * max(count, 1)
    while len(vectors) < count:
        if attempts >= max_attempts:
            break
        bits = tuple(bool(b) for b in rng.integers(0, 2, size=stage_count))
        if bits in seen:
            duplicate_budget -= 1
            if duplicate_budget <= 0:
                break
            continue
        row = np.concatenate([[1.0], np.array(bits, dtype=float)])
        direction = residual_direction(row)
        must_raise_rank = count - len(vectors) <= full_rank - len(basis)
        if must_raise_rank and direction is None:
            attempts += 1
            continue
        if direction is not None:
            basis.append(direction)
        seen.add(bits)
        vectors.append(ConfigVector(bits))
    if len(vectors) == count and len(basis) == full_rank:
        return vectors
    raise RuntimeError(
        f"could not build a full-rank set of {count} configurations for "
        f"{stage_count} stages within {max_attempts} attempts"
    )
