"""Post-silicon delay measurement (Sec. III.B of the paper).

Measuring one delay unit directly "may introduce large error", so the paper
measures the whole configured chain for several configuration vectors and
*computes* the per-unit delay differences.  The chain delay is affine in the
configuration vector::

    D(c) = sum_i d0_i  +  sum_i c_i * ddiff_i  =  B + c . ddiff

so the per-unit ``ddiff_i`` values are exactly the linear coefficients of a
regression of measured chain delays on configuration vectors.  This module
provides

* the leave-one-out scheme (all-ones plus n leave-one-out vectors), whose
  closed form is ``ddiff_j = D(ones) - D(ones with j skipped)``;
* the paper's 3-stage worked example with configurations "110", "101",
  "011" and the formulas ``ddiff_1 = (X+Y-Z)/2`` etc. — exact when the
  bypass delays are negligible, and reproduced here for fidelity;
* a general least-squares estimator for arbitrary configuration sets, which
  averages out measurement noise when more than ``n+1`` vectors are used;
* **robust** variants for faulty counters (see :mod:`repro.faults`): an
  overdetermined leave-one-out scheme whose redundant rows let a
  residual/MAD screen *localize* glitched measurements and re-solve
  without them (:func:`measure_ddiffs_overdetermined`), and a
  median-of-k chain-delay estimator with MAD outlier rejection
  (:meth:`DelayMeasurer.chain_delays_robust`).
"""

from __future__ import annotations

import itertools
import warnings
from dataclasses import dataclass, field

import numpy as np

from .. import obs
from ..backends import current_backend
from ..variation.environment import NOMINAL_OPERATING_POINT, OperatingPoint
from ..variation.noise import GaussianNoise, MeasurementNoise
from .config_vector import ConfigVector
from .ring import ConfigurableRO

__all__ = [
    "DelayMeasurer",
    "DdiffEstimate",
    "BatchDdiffEstimate",
    "RobustDdiffEstimate",
    "measure_ddiffs_leave_one_out",
    "measure_ddiffs_leave_one_out_batch",
    "measure_ddiffs_least_squares",
    "measure_ddiffs_overdetermined",
    "robust_least_squares",
    "three_stage_ddiffs",
    "leave_one_out_vectors",
    "overdetermined_vectors",
    "random_config_set",
    "ENROLL_DRAW_ORDER",
]

#: Version tag of the batch enrollment noise-draw order.  Batch enrollment
#: (:func:`measure_ddiffs_leave_one_out_batch`, ``ChipROPUF.enroll_batch`` /
#: ``enroll_sweep``) draws one noise tensor per array shape: first the full
#: ``(ring, config)`` leave-one-out matrix (rings major, repeats drawn
#: matrix-by-matrix), then the per-pair reference observations.  This
#: differs from the legacy per-ring interleaving of ``ChipROPUF.enroll``,
#: which therefore keeps its sequential path; any change to the batch order
#: must bump this tag.
ENROLL_DRAW_ORDER = "enroll-v1"

#: Consistency factor turning a median absolute deviation into a Gaussian
#: sigma estimate (1 / Phi^-1(3/4)).
_MAD_TO_SIGMA = 1.4826


def _mad_floor(reference: np.ndarray | float) -> np.ndarray | float:
    """Numerical floor for MAD scales so noiseless data never divides by 0.

    Relative to the data magnitude: residuals below ~1e-12 of the measured
    values are floating-point dust, not structure.
    """
    return 1e-12 * np.maximum(np.abs(reference), 1e-30)


@dataclass
class DelayMeasurer:
    """Measures chain delays of configured rings with noise and averaging.

    Attributes:
        noise: measurement-noise model applied to every raw observation.
        repeats: independent observations averaged per measurement.
        rng: random generator driving the noise.  Seeded by default so
            default-constructed measurers (and everything built on them,
            like the Sec. IV.E threshold study) are reproducible run to
            run and process to process; pass your own generator for an
            independent noise stream.
    """

    noise: MeasurementNoise = field(default_factory=GaussianNoise)
    repeats: int = 5
    rng: np.random.Generator = field(
        default_factory=lambda: np.random.default_rng(0)
    )

    def __post_init__(self) -> None:
        if self.repeats < 1:
            raise ValueError(f"repeats must be >= 1, got {self.repeats}")

    def chain_delay(
        self,
        ring: ConfigurableRO,
        config: ConfigVector,
        op: OperatingPoint = NOMINAL_OPERATING_POINT,
    ) -> float:
        """One averaged, noisy chain-delay measurement in seconds."""
        true_delay = np.array([ring.chain_delay(config, op)])
        observed = self.noise.observe_averaged(true_delay, self.rng, self.repeats)
        return float(observed[0])

    def chain_delays(
        self,
        ring: ConfigurableRO,
        configs: list[ConfigVector],
        op: OperatingPoint = NOMINAL_OPERATING_POINT,
    ) -> np.ndarray:
        """Averaged, noisy measurements for a list of configurations.

        Draw-order note: the whole batch is observed with *one*
        ``observe_averaged`` call (noise vectors span the config axis), so
        the generator advances differently from a loop of
        :meth:`chain_delay` calls.  With ``repeats == 1`` and Gaussian
        noise the two are byte-identical (one ``normal(size=n)`` draw
        equals ``n`` sequential size-1 draws); callers that depend on the
        per-call order at higher repeats use :meth:`chain_delays_sequential`.
        """
        true_delays = ring.chain_delays(configs, op)
        return self.noise.observe_averaged(true_delays, self.rng, self.repeats)

    def chain_delays_sequential(
        self,
        ring: ConfigurableRO,
        configs: list[ConfigVector],
        op: OperatingPoint = NOMINAL_OPERATING_POINT,
    ) -> np.ndarray:
        """Per-call measurements, preserving the scalar noise draw order.

        One :meth:`chain_delay` call per configuration — the legacy order
        that the per-ring ddiff extractors (and through them the default
        ``ChipROPUF.enroll`` path) are pinned to.
        """
        return np.array([self.chain_delay(ring, c, op) for c in configs])

    def chain_delays_robust(
        self,
        ring: ConfigurableRO,
        configs: list[ConfigVector],
        op: OperatingPoint = NOMINAL_OPERATING_POINT,
        k: int = 5,
        mad_threshold: float = 3.5,
    ) -> np.ndarray:
        """Median-of-``k`` chain delays with MAD outlier rejection.

        The opt-in robust alternative to :meth:`chain_delays` for glitchy
        counters: ``k`` independent raw observations are taken per
        configuration, observations deviating from the per-config median
        by more than ``mad_threshold`` scaled-MADs (and NaN dropouts) are
        rejected, and the median of the survivors is returned.  A single
        multiplicative glitch or dropped window among ``k`` captures
        therefore cannot move the estimate, where the mean of
        :meth:`chain_delays` would absorb it wholesale.

        Rejected-observation counts are reported through the
        ``measurement.robust.outliers_rejected`` and
        ``measurement.robust.dropouts`` metrics (:mod:`repro.obs`).

        Draw order: ``k`` whole-vector ``observe`` calls (no averaging),
        which differs from :meth:`chain_delays`; this estimator is opt-in
        and carries no byte-compatibility contract with the mean paths.

        Returns:
            per-configuration robust delay estimates; a configuration
            whose ``k`` observations were *all* dropouts yields NaN.
        """
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if mad_threshold <= 0.0:
            raise ValueError(f"mad_threshold must be positive, got {mad_threshold}")
        true_delays = ring.chain_delays(configs, op)
        observations = np.stack(
            [self.noise.observe(true_delays, self.rng) for _ in range(k)]
        )
        finite = np.isfinite(observations)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)  # all-NaN slices
            median = np.nanmedian(observations, axis=0)
            deviation = np.abs(observations - median)
            mad = np.nanmedian(deviation, axis=0)
        scale = np.maximum(_MAD_TO_SIGMA * mad, _mad_floor(median))
        keep = finite & (deviation <= mad_threshold * scale)
        dropouts = int((~finite).sum())
        rejected = int((finite & ~keep).sum())
        if rejected:
            obs.counter_add("measurement.robust.outliers_rejected", rejected)
        if dropouts:
            obs.counter_add("measurement.robust.dropouts", dropouts)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            return np.nanmedian(np.where(keep, observations, np.nan), axis=0)


@dataclass
class DdiffEstimate:
    """Result of a per-unit delay-difference extraction.

    Attributes:
        ddiffs: estimated per-unit ``ddiff`` values, ring order, seconds.
        intercept: estimated all-bypass chain delay ``B = sum d0`` (only the
            least-squares scheme identifies it; NaN otherwise).
        residual_rms: RMS of the regression residuals (0 for exact schemes).
        configs: configuration vectors that were measured.
        measurements: the measured chain delays, aligned with ``configs``.
    """

    ddiffs: np.ndarray
    intercept: float
    residual_rms: float
    configs: list[ConfigVector]
    measurements: np.ndarray


def leave_one_out_vectors(stage_count: int) -> list[ConfigVector]:
    """The all-ones vector followed by the ``n`` leave-one-out vectors."""
    if stage_count < 1:
        raise ValueError("stage_count must be >= 1")
    vectors = [ConfigVector.all_selected(stage_count)]
    vectors.extend(
        ConfigVector.leave_one_out(stage_count, j) for j in range(stage_count)
    )
    return vectors


def measure_ddiffs_leave_one_out(
    measurer: DelayMeasurer,
    ring: ConfigurableRO,
    op: OperatingPoint = NOMINAL_OPERATING_POINT,
) -> DdiffEstimate:
    """Extract per-unit ddiffs with the leave-one-out scheme (n+1 configs).

    ``ddiff_j = D(all ones) - D(leave-one-out j)`` because skipping unit j
    replaces its ``d + d1`` contribution by ``d0``.
    """
    configs = leave_one_out_vectors(ring.stage_count)
    measurements = measurer.chain_delays_sequential(ring, configs, op)
    full = measurements[0]
    ddiffs = full - measurements[1:]
    return DdiffEstimate(
        ddiffs=ddiffs,
        intercept=float("nan"),
        residual_rms=0.0,
        configs=configs,
        measurements=measurements,
    )


@dataclass
class BatchDdiffEstimate:
    """Leave-one-out extraction for many rings at once.

    Attributes:
        ddiffs: ``(ring, stage)`` estimated per-unit ``ddiff`` values.
        configs: the shared leave-one-out configuration list (all-ones
            first), identical for every ring.
        measurements: ``(ring, config)`` measured chain delays.
    """

    ddiffs: np.ndarray
    configs: list[ConfigVector]
    measurements: np.ndarray

    @property
    def ring_count(self) -> int:
        """Number of rings measured."""
        return len(self.ddiffs)

    def estimate(self, ring_index: int) -> DdiffEstimate:
        """The per-ring :class:`DdiffEstimate` view of one row."""
        return DdiffEstimate(
            ddiffs=self.ddiffs[ring_index].copy(),
            intercept=float("nan"),
            residual_rms=0.0,
            configs=self.configs,
            measurements=self.measurements[ring_index].copy(),
        )


def measure_ddiffs_leave_one_out_batch(
    measurer: DelayMeasurer,
    rings: list[ConfigurableRO],
    op: OperatingPoint = NOMINAL_OPERATING_POINT,
) -> BatchDdiffEstimate:
    """Leave-one-out ddiff extraction over many rings in one array pass.

    Evaluates the full ``(ring, config)`` true chain-delay matrix straight
    off the chip's structure-of-arrays delay vectors and observes it with
    one noise tensor per repeat (the :data:`ENROLL_DRAW_ORDER` contract).
    Each row's closed form matches :func:`measure_ddiffs_leave_one_out`
    exactly; only the noise draw order differs (byte-identical under
    noiseless measurement).

    Args:
        rings: rings sharing one chip and one stage count.
    """
    if not rings:
        raise ValueError("need at least one ring")
    chip = rings[0].chip
    stage_count = rings[0].stage_count
    for ring in rings[1:]:
        if ring.chip is not chip:
            raise ValueError("batch measurement needs rings on one chip")
        if ring.stage_count != stage_count:
            raise ValueError(
                "batch measurement needs a uniform stage count, got "
                f"{ring.stage_count} != {stage_count}"
            )
    configs = leave_one_out_vectors(stage_count)
    with obs.span(
        "measurement.leave_one_out_batch",
        rings=len(rings),
        stages=stage_count,
    ):
        config_masks = np.stack([c.as_array() for c in configs])
        unit_indices = np.stack([ring.unit_indices for ring in rings])
        selected = chip.selected_path_delays(op)[unit_indices]
        bypass = chip.mux_bypass_delays(op)[unit_indices]
        # (ring, config) true delays through the active compute backend; the
        # default numpy backend keeps this bit-identical to the per-call
        # ConfigurableRO.chain_delay.
        backend = current_backend()
        true_delays = backend.loo_delay_matrix(selected, bypass, config_masks)
        obs.counter_add(
            f"noise.elements.{ENROLL_DRAW_ORDER}",
            true_delays.size * measurer.repeats,
        )
        measurements = measurer.noise.observe_averaged(
            true_delays, measurer.rng, measurer.repeats
        )
        ddiffs = backend.loo_ddiffs(measurements)
    return BatchDdiffEstimate(
        ddiffs=ddiffs, configs=configs, measurements=measurements
    )


def measure_ddiffs_least_squares(
    measurer: DelayMeasurer,
    ring: ConfigurableRO,
    configs: list[ConfigVector],
    op: OperatingPoint = NOMINAL_OPERATING_POINT,
) -> DdiffEstimate:
    """Extract per-unit ddiffs by regressing chain delays on configurations.

    Args:
        configs: at least ``n + 1`` configuration vectors whose 0/1 matrix,
            augmented with an intercept column, has full column rank.

    Raises:
        ValueError: if the configuration set cannot identify all units.
    """
    n = ring.stage_count
    if len(configs) < n + 1:
        raise ValueError(
            f"need at least {n + 1} configurations to identify {n} units "
            f"plus the intercept, got {len(configs)}"
        )
    matrix = np.stack([c.as_array().astype(float) for c in configs])
    design = np.column_stack([np.ones(len(configs)), matrix])
    if np.linalg.matrix_rank(design) < n + 1:
        raise ValueError(
            "configuration set is rank-deficient; some units cannot be "
            "distinguished (add more diverse configurations)"
        )
    measurements = measurer.chain_delays_sequential(ring, configs, op)
    solution, _, _, _ = np.linalg.lstsq(design, measurements, rcond=None)
    residuals = measurements - design @ solution
    return DdiffEstimate(
        ddiffs=solution[1:],
        intercept=float(solution[0]),
        residual_rms=float(np.sqrt(np.mean(residuals**2))),
        configs=list(configs),
        measurements=measurements,
    )


def overdetermined_vectors(
    stage_count: int, extra: int | None = None
) -> list[ConfigVector]:
    """Leave-one-out vectors plus ``extra`` deterministic redundancy rows.

    The square Sec. III.B system (all-ones + n leave-one-out vectors) has
    zero redundancy: a single glitched measurement silently corrupts one
    ``ddiff``.  This scheme appends leave-two-out vectors (then
    leave-``k``-out for ``k >= 3`` once pairs are exhausted) so the design
    matrix gains ``extra`` rows beyond full rank and a residual screen can
    localize faulted rows.

    Pair enumeration is *balanced*, not lexicographic: pairs are emitted
    round-robin by circular distance — ``(i, i+1 mod n)`` for all ``i``,
    then ``(i, i+2 mod n)``, and so on — so stage coverage grows evenly.
    This matters for localization: the parameter direction ``(B + d,
    ddiff_j - d)`` only shows up in rows whose config drops stage ``j``,
    so if stage ``j`` were dropped by just *two* rows (as lexicographic
    order leaves for most stages), a gross fault on either row splits
    50/50 between them and cannot be attributed.  With ``extra >=
    stage_count`` every stage is dropped by at least three rows (its
    leave-one-out row plus two pair rows) and a single faulted row is
    uniquely the worst residual.

    Args:
        extra: redundancy rows to add; default ``stage_count`` (a ~2x
            overdetermined system, the smallest size with unambiguous
            single-fault localization).

    Raises:
        ValueError: when fewer than ``extra`` distinct redundancy vectors
            exist (``2**stage_count - stage_count - 1`` are available).
    """
    if extra is None:
        extra = stage_count
    if extra < 0:
        raise ValueError(f"extra must be non-negative, got {extra}")
    vectors = leave_one_out_vectors(stage_count)

    def _drop(stages: tuple[int, ...]) -> ConfigVector:
        bits = [True] * stage_count
        for j in stages:
            bits[j] = False
        return ConfigVector(tuple(bits))

    redundancy: list[tuple[int, ...]] = []
    for distance in range(1, stage_count // 2 + 1):
        # At distance n/2 each pair would appear twice; emit half the ring.
        span = stage_count if 2 * distance != stage_count else stage_count // 2
        for start in range(span):
            redundancy.append((start, (start + distance) % stage_count))
    for skip_count in range(3, stage_count + 1):
        redundancy.extend(itertools.combinations(range(stage_count), skip_count))
    if len(redundancy) < extra:
        raise ValueError(
            f"only {len(redundancy)} distinct redundancy vectors exist for "
            f"{stage_count} stages; cannot add {extra}"
        )
    vectors.extend(_drop(stages) for stages in redundancy[:extra])
    return vectors


def robust_least_squares(
    design: np.ndarray,
    measurements: np.ndarray,
    mad_threshold: float = 3.5,
    min_rows: int | None = None,
    subset_draws: int = 100,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, float]:
    """Least squares with residual-based fault localization and re-solve.

    NaN dropout rows are excluded outright.  The survivors are screened in
    three robust stages, because an ordinary least-squares fit is useless
    for localization — a gross fault leaks residual into every clean row
    (masking) and inflates any scale estimated from the contaminated fit:

    1. **Trimmed fits.**  ``subset_draws`` exactly-determined row subsets
       (plus the plain full fit) are each refined by FAST-LTS
       concentration steps — re-fitting on the ``h`` best-fitting rows,
       ``h = (rows + params + 1) // 2`` — and scored by the sum of their
       ``h`` smallest squared residuals.  Up to ``rows - h`` faulted rows
       cannot drag the best of these fits off the clean consensus, and
       the best criterion yields a fault-free (if optimistic) noise scale.
    2. **Consensus selection.**  Each candidate fit counts the rows whose
       residuals sit within ``mad_threshold`` of that shared scale; the
       fit consistent with the *most* rows wins (ties broken by
       criterion).  This is what disambiguates aliased explanations: a
       fault on one redundancy row can often be "explained" by shifting a
       parameter and sacrificing two clean rows instead, but the true
       explanation keeps strictly more rows consistent.
    3. **Re-estimation.**  The consensus set is re-fit by ordinary least
       squares and the screen is iterated to a fixpoint with an honest
       scale: sigma from PRESS (leave-one-out cross-validated) residuals,
       which resists the shrinkage of the trimmed fits, and per-row
       predictive standard errors, so rows outside the fit set are judged
       against their actual prediction variance.

    Rows outside the final consensus are flagged, subject to two safety
    rails: at least ``min_rows`` rows (default: one per unknown) are
    always retained, and a row whose removal would leave the design
    rank-deficient is never flagged (least-suspicious rows are re-added
    first when the consensus violates either rail).  The returned
    solution is the ordinary least-squares re-solve on the retained rows.

    Subset sampling uses a fixed internal seed, so the result is a pure
    function of its arguments.

    Returns:
        ``(solution, flagged_rows, residuals, residual_rms)`` where
        ``flagged_rows`` are the sorted indices of rejected rows,
        ``residuals`` are the initial full-system least-squares residuals
        (NaN for dropout rows), and ``residual_rms`` is the RMS over the
        rows kept by the final solve.

    Raises:
        ValueError: when fewer than ``min_rows`` finite measurements
            exist, or they do not span the parameter space.
    """
    design = np.asarray(design, dtype=float)
    measurements = np.asarray(measurements, dtype=float)
    row_count, param_count = design.shape
    if min_rows is None:
        min_rows = param_count
    min_rows = max(min_rows, param_count)
    finite = np.isfinite(measurements)
    kept = np.flatnonzero(finite)
    if len(kept) < min_rows:
        raise ValueError(
            f"only {len(kept)} finite measurements for a system "
            f"needing {min_rows}"
        )
    if np.linalg.matrix_rank(design[kept]) < param_count:
        raise ValueError(
            "finite measurement rows do not span the parameter space; "
            "add redundancy rows (overdetermined_vectors)"
        )
    kept_design = design[kept]
    kept_meas = measurements[kept]
    kept_count = len(kept)

    full_solution, _, _, _ = np.linalg.lstsq(kept_design, kept_meas, rcond=None)
    initial_residuals = np.full(row_count, np.nan)
    initial_residuals[kept] = kept_meas - kept_design @ full_solution

    dropout_rows = [int(r) for r in np.flatnonzero(~finite)]
    if kept_count == param_count:
        # Square system: no redundancy, nothing to screen.
        residual_rms = float(
            np.sqrt(np.mean(initial_residuals[kept] ** 2))
        )
        flagged = np.sort(np.array(dropout_rows, dtype=int))
        return full_solution, flagged, initial_residuals, residual_rms

    trim_count = (kept_count + param_count + 1) // 2
    scale_floor = float(_mad_floor(np.max(np.abs(kept_meas))))

    fits: list[tuple[np.ndarray, np.ndarray, float]] = []
    best_criterion = np.inf
    sampler = np.random.default_rng(0x0B5C0FFA)
    subsets = [np.arange(kept_count)] + [
        sampler.permutation(kept_count)[:param_count]
        for _ in range(subset_draws)
    ]
    for subset in subsets:
        if np.linalg.matrix_rank(kept_design[subset]) < param_count:
            continue
        candidate, _, _, _ = np.linalg.lstsq(
            kept_design[subset], kept_meas[subset], rcond=None
        )
        for _ in range(2):  # FAST-LTS concentration steps
            absolute = np.abs(kept_meas - kept_design @ candidate)
            core = np.argsort(absolute, kind="stable")[:trim_count]
            if np.linalg.matrix_rank(kept_design[core]) < param_count:
                break
            candidate, _, _, _ = np.linalg.lstsq(
                kept_design[core], kept_meas[core], rcond=None
            )
        absolute = np.abs(kept_meas - kept_design @ candidate)
        criterion = float(np.sum(np.sort(absolute**2)[:trim_count]))
        fits.append((candidate, absolute, criterion))
        best_criterion = min(best_criterion, criterion)

    # The best trimmed criterion gives a fault-free (if optimistic) scale
    # shared by every candidate; per-candidate scales would let a
    # contaminated fit inflate its own inlier threshold.
    scale = max(
        np.sqrt(best_criterion / (trim_count - param_count))
        * (1.0 + 5.0 / (kept_count - param_count)),
        scale_floor,
    )
    best_key: tuple[int, float] | None = None
    inliers = np.ones(kept_count, dtype=bool)
    for candidate, absolute, criterion in fits:
        candidate_inliers = absolute <= mad_threshold * scale
        key = (int(candidate_inliers.sum()), -criterion)
        if best_key is None or key > best_key:
            best_key = key
            inliers = candidate_inliers

    # Re-estimation to a fixpoint with honest error bars.
    for _ in range(10):
        member = np.flatnonzero(inliers)
        if len(member) <= param_count:
            break
        member_design = kept_design[member]
        if np.linalg.matrix_rank(member_design) < param_count:
            break
        refit, _, _, _ = np.linalg.lstsq(
            member_design, kept_meas[member], rcond=None
        )
        gram_inv = np.linalg.pinv(member_design.T @ member_design)
        member_residuals = kept_meas[member] - member_design @ refit
        leverage = np.clip(
            np.sum((member_design @ gram_inv) * member_design, axis=1),
            0.0,
            1.0 - 1e-9,
        )
        press = member_residuals / (1.0 - leverage)
        sigma = max(float(np.sqrt(np.mean(press**2))), scale_floor)
        predictive = np.sum((kept_design @ gram_inv) * kept_design, axis=1)
        predictive_sigma = sigma * np.sqrt(1.0 + np.clip(predictive, 0.0, None))
        absolute = np.abs(kept_meas - kept_design @ refit)
        new_inliers = absolute <= mad_threshold * predictive_sigma
        if (new_inliers == inliers).all():
            break
        inliers = new_inliers

    # Safety rails: keep at least min_rows rows and full column rank,
    # re-admitting the least-suspicious flagged rows first.
    final_fit, _, _, _ = (
        np.linalg.lstsq(
            kept_design[inliers], kept_meas[inliers], rcond=None
        )
        if inliers.sum() >= param_count
        and np.linalg.matrix_rank(kept_design[inliers]) == param_count
        else (full_solution, None, None, None)
    )
    suspicion = np.abs(kept_meas - kept_design @ final_fit)
    retained = [int(kept[i]) for i in np.flatnonzero(inliers)]
    outside = sorted(np.flatnonzero(~inliers), key=lambda i: suspicion[i])
    readmit = []
    for i in outside:
        candidate_rows = sorted(retained + [int(kept[i])])
        if (
            len(retained) < min_rows
            or np.linalg.matrix_rank(design[retained]) < param_count
        ):
            retained = candidate_rows
            readmit.append(i)
    flagged_rows = dropout_rows + [
        int(kept[i]) for i in np.flatnonzero(~inliers) if i not in readmit
    ]
    solution, _, _, _ = np.linalg.lstsq(
        design[retained], measurements[retained], rcond=None
    )
    final_residuals = measurements[retained] - design[retained] @ solution
    residual_rms = float(np.sqrt(np.mean(final_residuals**2)))
    flagged = np.sort(np.array(flagged_rows, dtype=int))
    return solution, flagged, initial_residuals, residual_rms


@dataclass
class RobustDdiffEstimate(DdiffEstimate):
    """A :class:`DdiffEstimate` that survived residual-based fault screening.

    Attributes:
        flagged: sorted indices (into ``configs``) of measurement rows the
            residual/MAD screen rejected before the final solve.
        residuals: initial full-system residuals, aligned with ``configs``
            (NaN for dropout rows).
    """

    flagged: np.ndarray = field(default_factory=lambda: np.array([], dtype=int))
    residuals: np.ndarray = field(default_factory=lambda: np.array([]))

    @property
    def fault_count(self) -> int:
        """How many measurement rows were rejected as faulted."""
        return len(self.flagged)


def measure_ddiffs_overdetermined(
    measurer: DelayMeasurer,
    ring: ConfigurableRO,
    op: OperatingPoint = NOMINAL_OPERATING_POINT,
    extra: int | None = None,
    mad_threshold: float = 3.5,
) -> RobustDdiffEstimate:
    """Fault-tolerant ddiff extraction via an overdetermined LOO system.

    Measures the leave-one-out configurations *plus* ``extra`` redundancy
    rows (:func:`overdetermined_vectors`), solves the overdetermined
    system by least squares, flags rows whose residuals exceed
    ``mad_threshold`` scaled-MADs (glitches, stuck readouts, excursions)
    or that dropped out entirely (NaN), and re-solves without them
    (:func:`robust_least_squares`).  With redundancy, a single faulted
    measurement is localized and excised instead of silently corrupting a
    ``ddiff`` the way it would in the square Sec. III.B system.

    Detected-fault counts land on the ``measurement.faults_detected``
    metric (:mod:`repro.obs`).

    Raises:
        ValueError: if rejection leaves too few rows to identify every
            unit (raise ``extra`` or the threshold).
    """
    configs = overdetermined_vectors(ring.stage_count, extra)
    measurements = measurer.chain_delays_sequential(ring, configs, op)
    matrix = np.stack([c.as_array().astype(float) for c in configs])
    design = np.column_stack([np.ones(len(configs)), matrix])
    solution, flagged, residuals, residual_rms = robust_least_squares(
        design, measurements, mad_threshold=mad_threshold
    )
    if len(flagged):
        obs.counter_add("measurement.faults_detected", len(flagged))
    return RobustDdiffEstimate(
        ddiffs=solution[1:],
        intercept=float(solution[0]),
        residual_rms=residual_rms,
        configs=configs,
        measurements=measurements,
        flagged=flagged,
        residuals=residuals,
    )


def three_stage_ddiffs(x: float, y: float, z: float) -> tuple[float, float, float]:
    """The paper's closed form for a 3-stage ring (Sec. III.B).

    With ``X = D("110")``, ``Y = D("101")``, ``Z = D("011")``::

        ddiff_1 = (X + Y - Z) / 2
        ddiff_2 = (X + Z - Y) / 2
        ddiff_3 = (Y + Z - X) / 2

    These recover the per-unit selected-path delays exactly when the bypass
    delays ``d0`` are negligible (the paper's idealisation); with non-zero
    bypass delays each value is offset by ``(d0_j + B') / 2`` terms, which
    cancel in pairwise *comparisons* between matched rings.
    """
    ddiff_1 = (x + y - z) / 2.0
    ddiff_2 = (x + z - y) / 2.0
    ddiff_3 = (y + z - x) / 2.0
    return ddiff_1, ddiff_2, ddiff_3


def random_config_set(
    stage_count: int,
    count: int,
    rng: np.random.Generator,
    max_attempts: int = 1000,
) -> list[ConfigVector]:
    """A random full-rank configuration set for the least-squares estimator.

    Draws uniform random vectors until the augmented design matrix reaches
    full column rank, then fills up to ``count``.  Duplicate draws are
    rejected for free — only draws rejected for *rank* (a fresh vector that
    would leave too few slots to complete the rank) consume
    ``max_attempts``, so small stage counts with ``count`` near
    ``2 ** stage_count`` terminate reliably.  Rank is tracked incrementally
    by Gram-Schmidt elimination over the accepted rows instead of
    re-factorising the growing stack per draw.
    """
    if count < stage_count + 1:
        raise ValueError(
            f"count must be >= stage_count + 1 = {stage_count + 1}, got {count}"
        )
    if stage_count < 64 and count > 2**stage_count:
        raise ValueError(
            f"only {2**stage_count} distinct configurations exist for "
            f"{stage_count} stages; cannot build {count}"
        )
    full_rank = stage_count + 1
    seen: set[tuple[bool, ...]] = set()
    vectors: list[ConfigVector] = []
    basis: list[np.ndarray] = []

    def residual_direction(row: np.ndarray) -> np.ndarray | None:
        """Component of ``row`` outside the accepted span, or None if inside."""
        residual = row.astype(float)
        # Two elimination passes keep the basis numerically orthonormal;
        # rows are small-integer so 1e-9 relative is far below any true
        # independent component.
        for _ in range(2):
            for direction in basis:
                residual = residual - (residual @ direction) * direction
        norm = float(np.linalg.norm(residual))
        if norm <= 1e-9 * float(np.linalg.norm(row)):
            return None
        return residual / norm

    attempts = 0
    # Duplicates are free, so bound them separately to stay finite if the
    # generator gets stuck repeating itself.
    duplicate_budget = 1000 * max(count, 1)
    while len(vectors) < count:
        if attempts >= max_attempts:
            break
        bits = tuple(bool(b) for b in rng.integers(0, 2, size=stage_count))
        if bits in seen:
            duplicate_budget -= 1
            if duplicate_budget <= 0:
                break
            continue
        row = np.concatenate([[1.0], np.array(bits, dtype=float)])
        direction = residual_direction(row)
        must_raise_rank = count - len(vectors) <= full_rank - len(basis)
        if must_raise_rank and direction is None:
            attempts += 1
            continue
        if direction is not None:
            basis.append(direction)
        seen.add(bits)
        vectors.append(ConfigVector(bits))
    if len(vectors) == count and len(basis) == full_rank:
        return vectors
    raise RuntimeError(
        f"could not build a full-rank set of {count} configurations for "
        f"{stage_count} stages within {max_attempts} attempts"
    )
