"""Allocating a board's delay units into rings, pairs, and 1-out-of-8 groups.

The paper's Table V reports, per board of 512 ROs, how many PUF bits each
scheme yields when each ring is built from ``n`` units:

====== ===== ===== ===== =====
scheme n=3   n=5   n=7   n=9
====== ===== ===== ===== =====
configurable / traditional 80 48 32 24
1-out-of-8                 20 12  8  6
====== ===== ===== ===== =====

Those numbers follow from carving the largest multiple of 16 rings out of
``units // n`` — a multiple of 16 keeps the ring count divisible by 2 (for
pairs) and by 8 (for 1-out-of-8 groups) simultaneously, so all three schemes
compare on identical hardware.  ``rings = 160, 96, 64, 48`` for
``n = 3, 5, 7, 9`` reproduces the table exactly (see DESIGN.md Sec. 4).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "RingAllocation",
    "rings_per_board",
    "allocate_rings",
]

#: Ring counts are rounded down to a multiple of this so the same rings can
#: be grouped into pairs (2) and 1-out-of-8 groups (8).
RING_COUNT_MULTIPLE = 16


def rings_per_board(
    unit_count: int, stage_count: int, multiple: int = RING_COUNT_MULTIPLE
) -> int:
    """Number of ``stage_count``-unit rings carved from ``unit_count`` units.

    Rounds down to a multiple of ``multiple`` (16 by default, per Table V).
    """
    if unit_count < 0:
        raise ValueError(f"unit_count must be non-negative, got {unit_count}")
    if stage_count < 1:
        raise ValueError(f"stage_count must be >= 1, got {stage_count}")
    if multiple < 1:
        raise ValueError(f"multiple must be >= 1, got {multiple}")
    raw = unit_count // stage_count
    return (raw // multiple) * multiple


@dataclass(frozen=True)
class RingAllocation:
    """A fixed assignment of a board's delay units to rings.

    Two layouts are supported:

    * ``"consecutive"`` — ring ``r`` uses units
      ``[r * stage_count, (r + 1) * stage_count)``.  This matches how the
      paper consumes the VT dataset (a flat list of RO frequencies).
    * ``"interleaved"`` — each ring *pair* occupies a window of
      ``2 * stage_count`` units with the top ring on even offsets and the
      bottom ring on odd offsets.  This models the physically-sensible
      FPGA floorplan where the two ROs of a pair sit side by side, so the
      systematic spatial variation cancels in their delay difference.

    In both layouts pair ``p`` consists of rings ``2p`` (top) and ``2p + 1``
    (bottom), and 1-out-of-8 group ``g`` of rings ``[8g, 8(g+1))``.

    Attributes:
        stage_count: units per ring (the paper's ``n``).
        ring_count: total rings allocated.
        layout: ``"consecutive"`` or ``"interleaved"``.
    """

    stage_count: int
    ring_count: int
    layout: str = "consecutive"

    def __post_init__(self) -> None:
        if self.stage_count < 1:
            raise ValueError("stage_count must be >= 1")
        if self.ring_count < 0:
            raise ValueError("ring_count must be non-negative")
        if self.layout not in ("consecutive", "interleaved"):
            raise ValueError(
                "layout must be 'consecutive' or 'interleaved', "
                f"got {self.layout!r}"
            )
        if self.layout == "interleaved" and self.ring_count % 2 != 0:
            raise ValueError("interleaved layout needs an even ring count")

    @property
    def unit_count(self) -> int:
        """Delay units consumed by the allocation."""
        return self.stage_count * self.ring_count

    @property
    def pair_count(self) -> int:
        """PUF bits available to the configurable and traditional schemes."""
        return self.ring_count // 2

    @property
    def group_of_8_count(self) -> int:
        """PUF bits available to the 1-out-of-8 scheme."""
        return self.ring_count // 8

    def ring_units(self, ring: int) -> np.ndarray:
        """Unit indices of one ring."""
        if not 0 <= ring < self.ring_count:
            raise ValueError(f"ring {ring} out of range [0, {self.ring_count})")
        if self.layout == "consecutive":
            start = ring * self.stage_count
            return np.arange(start, start + self.stage_count)
        pair, offset = divmod(ring, 2)
        window_start = pair * 2 * self.stage_count
        return window_start + offset + 2 * np.arange(self.stage_count)

    def pair_rings(self, pair: int) -> tuple[int, int]:
        """(top ring, bottom ring) indices of one pair."""
        if not 0 <= pair < self.pair_count:
            raise ValueError(f"pair {pair} out of range [0, {self.pair_count})")
        return 2 * pair, 2 * pair + 1

    def pair_ring_matrix(self) -> np.ndarray:
        """All pairs' (top, bottom) ring indices, shape ``(pair_count, 2)``.

        Row ``p`` equals :meth:`pair_rings`\\ ``(p)``; the batch enrollment
        and response engines use this instead of looping the scalar method.
        """
        tops = 2 * np.arange(self.pair_count)
        return np.stack([tops, tops + 1], axis=1)

    def group_rings(self, group: int) -> np.ndarray:
        """Ring indices of one 1-out-of-8 group."""
        if not 0 <= group < self.group_of_8_count:
            raise ValueError(
                f"group {group} out of range [0, {self.group_of_8_count})"
            )
        return np.arange(8 * group, 8 * (group + 1))

    def ring_delay_matrix(self, unit_delays: np.ndarray) -> np.ndarray:
        """Reshape a board's per-unit delays into ``(ring_count, stage_count)``.

        Accepts extra trailing units (spares beyond the allocation).
        """
        unit_delays = np.asarray(unit_delays, dtype=float)
        if unit_delays.ndim != 1 or len(unit_delays) < self.unit_count:
            raise ValueError(
                f"need at least {self.unit_count} unit delays, "
                f"got shape {unit_delays.shape}"
            )
        used = unit_delays[: self.unit_count]
        if self.layout == "consecutive":
            return used.reshape(self.ring_count, self.stage_count)
        indices = np.stack(
            [self.ring_units(ring) for ring in range(self.ring_count)]
        )
        return used[indices]


def allocate_rings(
    unit_count: int,
    stage_count: int,
    multiple: int = RING_COUNT_MULTIPLE,
    layout: str = "consecutive",
) -> RingAllocation:
    """Allocate Table V-style rings over a board's delay units."""
    ring_count = rings_per_board(unit_count, stage_count, multiple)
    return RingAllocation(
        stage_count=stage_count, ring_count=ring_count, layout=layout
    )
