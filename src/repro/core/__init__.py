"""The paper's primary contribution: inverter-level configurable RO PUFs.

Public surface:

* :class:`ConfigVector`, :class:`DelayUnit`, :class:`ConfigurableRO` — the
  Fig. 1 / Fig. 2 hardware structures;
* measurement — the Sec. III.B chain-delay schemes that recover per-unit
  ``ddiff`` values;
* selection — the Sec. III.D Case-1 / Case-2 optimisers plus an exhaustive
  reference;
* :class:`RingAllocation` — Table V's carve-up of a board into rings;
* :class:`BoardROPUF` / :class:`ChipROPUF` — enrollment and response
  generation;
* :class:`BatchEvaluator` — the vectorized batch response engine behind
  ``response``/``response_sweep`` (compiled selection masks, einsum row
  sums, one noise draw per sweep shape);
* selection_batch / batch measurement — the vectorized enrollment engine:
  batch selectors over ``(pair, stage)`` matrices (byte-identical to the
  scalar selectors) and one-tensor leave-one-out measurement under the
  versioned ``"enroll-v1"`` draw order.
"""

from .batch import (
    SWEEP_DRAW_ORDER,
    BatchEvaluator,
    CompiledEnrollment,
    chip_enroll_loop_reference,
    compile_enrollment,
    enroll_loop_reference,
    response_loop_reference,
)
from .config_vector import ConfigVector
from .delay_unit import DelayUnit
from .multicorner import (
    select_case1_multicorner,
    select_multicorner_exhaustive,
    worst_case_margin,
)
from .measurement import (
    ENROLL_DRAW_ORDER,
    BatchDdiffEstimate,
    DdiffEstimate,
    DelayMeasurer,
    leave_one_out_vectors,
    measure_ddiffs_least_squares,
    measure_ddiffs_leave_one_out,
    measure_ddiffs_leave_one_out_batch,
    random_config_set,
    three_stage_ddiffs,
)
from .pairing import RING_COUNT_MULTIPLE, RingAllocation, allocate_rings, rings_per_board
from .puf import SELECTION_METHODS, BoardROPUF, ChipROPUF, Enrollment
from .ring import ConfigurableRO
from .selection import (
    PairSelection,
    select_case1,
    select_case2,
    select_exhaustive,
    select_traditional,
)
from .selection_batch import (
    BATCH_SELECTION_METHODS,
    BatchSelection,
    select_case1_batch,
    select_case2_batch,
    select_traditional_batch,
)
from .selection_ext import (
    select_case1_offset,
    select_case2_offset,
    select_unconstrained,
)

__all__ = [
    "SWEEP_DRAW_ORDER",
    "ENROLL_DRAW_ORDER",
    "BatchEvaluator",
    "CompiledEnrollment",
    "compile_enrollment",
    "response_loop_reference",
    "enroll_loop_reference",
    "chip_enroll_loop_reference",
    "ConfigVector",
    "DelayUnit",
    "ConfigurableRO",
    "BatchDdiffEstimate",
    "DdiffEstimate",
    "DelayMeasurer",
    "leave_one_out_vectors",
    "measure_ddiffs_least_squares",
    "measure_ddiffs_leave_one_out",
    "measure_ddiffs_leave_one_out_batch",
    "random_config_set",
    "three_stage_ddiffs",
    "RING_COUNT_MULTIPLE",
    "RingAllocation",
    "allocate_rings",
    "rings_per_board",
    "SELECTION_METHODS",
    "BoardROPUF",
    "ChipROPUF",
    "Enrollment",
    "PairSelection",
    "select_case1",
    "select_case2",
    "select_exhaustive",
    "select_traditional",
    "BATCH_SELECTION_METHODS",
    "BatchSelection",
    "select_case1_batch",
    "select_case2_batch",
    "select_traditional_batch",
    "select_case1_offset",
    "select_case2_offset",
    "select_unconstrained",
    "select_case1_multicorner",
    "select_multicorner_exhaustive",
    "worst_case_margin",
]
