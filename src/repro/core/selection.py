"""Inverter-selection algorithms (Sec. III.D of the paper).

Given a pair of configurable ROs — *top* with per-unit delays ``alpha`` and
*bottom* with per-unit delays ``beta`` (both are the measured ``ddiff``
values, i.e. what selecting each unit adds to its chain) — choose
configuration vectors maximising the magnitude of the pair's delay
difference.  Both rings must select the same *number* of inverters, a
security constraint the paper imposes so an attacker cannot guess the bit
from the configuration sizes.

* **Case-1** — both rings share one configuration vector ``x``.  The
  objective ``|sum_i (alpha_i - beta_i) * x_i|`` is maximised by selecting
  all units whose delta shares the sign of whichever signed sum (positive
  or negative) has the larger magnitude.  This is provably optimal.

* **Case-2** — independent vectors ``x`` and ``y`` with equal selected
  counts.  Sorting both delay vectors and greedily pairing the k slowest
  top units against the k fastest bottom units (and the mirror direction)
  while the pairwise gap stays positive is optimal, because for a fixed
  count ``k`` the best achievable difference is (sum of k largest alpha) -
  (sum of k smallest beta), whose increment in k is non-increasing.

* **Exhaustive** — a brute-force reference used by the test suite to verify
  optimality of both cases on small rings.

The paper conjectures the optimum selects about ``n/2`` units; experiment
E10 measures that distribution.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

import numpy as np

from .. import obs
from .config_vector import ConfigVector

__all__ = [
    "PairSelection",
    "select_case1",
    "select_case2",
    "select_traditional",
    "select_exhaustive",
]


@dataclass(frozen=True)
class PairSelection:
    """The outcome of configuring one RO pair.

    Attributes:
        top_config: configuration vector of the top ring.
        bottom_config: configuration vector of the bottom ring.
        margin: signed delay difference (top minus bottom) over the selected
            units, in the delay unit of the inputs.  The PUF bit is its sign.
        method: ``"case1"``, ``"case2"``, ``"traditional"`` or
            ``"exhaustive-*"``.
    """

    top_config: ConfigVector
    bottom_config: ConfigVector
    margin: float
    method: str

    @property
    def bit(self) -> bool:
        """The enrolled PUF bit: True when the top ring is slower."""
        return self.margin > 0.0

    @property
    def selected_count(self) -> int:
        """Inverters selected per ring (equal for both by construction)."""
        return self.top_config.selected_count

    @property
    def abs_margin(self) -> float:
        """Magnitude of the delay difference — the reliability margin."""
        return abs(self.margin)


def _validate_pair(alpha: np.ndarray, beta: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    alpha = np.asarray(alpha, dtype=float)
    beta = np.asarray(beta, dtype=float)
    if alpha.ndim != 1 or beta.ndim != 1:
        raise ValueError("delay vectors must be 1-D")
    if alpha.shape != beta.shape:
        raise ValueError(
            f"top and bottom rings differ in length: {alpha.shape} vs {beta.shape}"
        )
    if len(alpha) == 0:
        raise ValueError("delay vectors cannot be empty")
    return alpha, beta


def select_case1(
    alpha: np.ndarray,
    beta: np.ndarray,
    require_odd: bool = False,
) -> PairSelection:
    """Optimal shared-configuration selection (the paper's Case-1).

    Args:
        alpha: per-unit delays (ddiffs) of the top ring.
        beta: per-unit delays (ddiffs) of the bottom ring.
        require_odd: force an odd selected count so the rings can free-run
            (the paper's formulation ignores parity; see DESIGN.md).
    """
    alpha, beta = _validate_pair(alpha, beta)
    obs.counter_add("selector.case1.scalar_calls")
    delta = alpha - beta

    best_selected: np.ndarray | None = None
    best_margin = 0.0
    # Evaluate both sign directions: with the odd-count constraint the
    # optimum can live in the direction whose unconstrained sum is smaller.
    for sign in (1.0, -1.0):
        selected = _direction_selection(delta, sign, require_odd)
        margin = float(np.sum(delta[selected]))
        if best_selected is None or abs(margin) > abs(best_margin):
            best_selected = selected
            best_margin = margin

    assert best_selected is not None
    config = ConfigVector.from_array(best_selected)
    return PairSelection(
        top_config=config,
        bottom_config=config,
        margin=best_margin,
        method="case1",
    )


def _direction_selection(
    delta: np.ndarray, sign: float, require_odd: bool
) -> np.ndarray:
    """Best selection whose margin points in one sign direction.

    Unconstrained, that is every unit with a positive contribution
    ``sign * delta``; under the odd-count constraint, parity is fixed by
    whichever is cheaper — dropping the weakest selected unit or adding the
    least-harmful unselected one (optimal for this direction, since any odd
    subset differs from the greedy one by at least that much margin).
    """
    contributions = sign * delta
    selected = contributions > 0.0
    if not np.any(selected):
        # No unit helps this direction: fall back to the least-bad single
        # unit so the pair still yields a bit (and parity is already odd).
        selected = np.zeros(len(delta), dtype=bool)
        selected[int(np.argmax(contributions))] = True
        return selected

    if require_odd and int(np.sum(selected)) % 2 == 0:
        drop_candidates = np.where(selected)[0]
        drop_cost = float(np.min(contributions[drop_candidates]))
        add_candidates = np.where(~selected)[0]
        add_cost = (
            float(np.min(-contributions[add_candidates]))
            if len(add_candidates)
            else np.inf
        )
        selected = selected.copy()
        if add_cost < drop_cost or len(drop_candidates) == 1:
            best_add = add_candidates[
                int(np.argmax(contributions[add_candidates]))
            ]
            selected[best_add] = True
        else:
            best_drop = drop_candidates[
                int(np.argmin(contributions[drop_candidates]))
            ]
            selected[best_drop] = False
    return selected


def select_case2(
    alpha: np.ndarray,
    beta: np.ndarray,
    require_odd: bool = False,
) -> PairSelection:
    """Optimal independent-configuration selection (the paper's Case-2).

    The two rings may select different units but must select equally many.
    """
    alpha, beta = _validate_pair(alpha, beta)
    obs.counter_add("selector.case2.scalar_calls")
    n = len(alpha)

    # Direction A: make the top ring as slow as possible relative to the
    # bottom -> positive margin.  Direction B is the mirror image.
    order_alpha_desc = np.argsort(-alpha, kind="stable")
    order_alpha_asc = order_alpha_desc[::-1]
    order_beta_desc = np.argsort(-beta, kind="stable")
    order_beta_asc = order_beta_desc[::-1]

    gains_positive = alpha[order_alpha_desc] - beta[order_beta_asc]
    gains_negative = beta[order_beta_desc] - alpha[order_alpha_asc]

    k_pos, sum_pos = _greedy_prefix(gains_positive)
    k_neg, sum_neg = _greedy_prefix(gains_negative)

    if sum_pos >= sum_neg:
        k, margin_sign = max(k_pos, 1), 1.0
        top_idx = order_alpha_desc[:k]
        bottom_idx = order_beta_asc[:k]
    else:
        k, margin_sign = max(k_neg, 1), -1.0
        top_idx = order_alpha_asc[:k]
        bottom_idx = order_beta_desc[:k]

    if require_odd and k % 2 == 0:
        gains = gains_positive if margin_sign > 0 else gains_negative
        k = _odd_prefix_length(gains, k, n)
        if margin_sign > 0:
            top_idx = order_alpha_desc[:k]
            bottom_idx = order_beta_asc[:k]
        else:
            top_idx = order_alpha_asc[:k]
            bottom_idx = order_beta_desc[:k]

    top = np.zeros(n, dtype=bool)
    top[top_idx] = True
    bottom = np.zeros(n, dtype=bool)
    bottom[bottom_idx] = True
    margin = float(np.sum(alpha[top]) - np.sum(beta[bottom]))
    return PairSelection(
        top_config=ConfigVector.from_array(top),
        bottom_config=ConfigVector.from_array(bottom),
        margin=margin,
        method="case2",
    )


def _greedy_prefix(gains: np.ndarray) -> tuple[int, float]:
    """Longest prefix of positive gains and its sum.

    ``gains`` is non-increasing by construction, so the best prefix sum is
    attained by taking elements while they are positive.
    """
    positive = gains > 0.0
    k = int(np.argmin(positive)) if not positive.all() else len(gains)
    if k == 0 and not positive[0]:
        return 0, 0.0
    return k, float(np.sum(gains[:k]))


def _odd_prefix_length(gains: np.ndarray, k: int, n: int) -> int:
    """Adjust an even prefix length to the better neighbouring odd length."""
    candidates = [c for c in (k - 1, k + 1) if 1 <= c <= n]
    best = candidates[0]
    best_sum = float(np.sum(gains[:best]))
    for c in candidates[1:]:
        total = float(np.sum(gains[:c]))
        if total > best_sum:
            best, best_sum = c, total
    return best


def select_traditional(
    alpha: np.ndarray, beta: np.ndarray, require_odd: bool = False
) -> PairSelection:
    """The traditional RO PUF: every inverter included in both rings.

    Args:
        require_odd: force an odd selected count so the rings can free-run.
            A traditional ring over an even stage count would select all
            stages and latch instead of oscillating; parity is repaired by
            dropping the single stage (from *both* rings, keeping the
            shared-configuration property) whose removal best preserves the
            margin magnitude.  Odd stage counts are unaffected.
    """
    alpha, beta = _validate_pair(alpha, beta)
    obs.counter_add("selector.traditional.scalar_calls")
    n = len(alpha)
    selected = np.ones(n, dtype=bool)
    if require_odd and n % 2 == 0:
        delta = alpha - beta
        total = float(np.sum(delta))
        # Dropping stage i leaves margin (total - delta[i]); keep the drop
        # that maximises the remaining magnitude.
        drop = int(np.argmax(np.abs(total - delta)))
        selected[drop] = False
    config = ConfigVector.from_array(selected)
    margin = float(np.sum(alpha[selected]) - np.sum(beta[selected]))
    return PairSelection(
        top_config=config, bottom_config=config, margin=margin, method="traditional"
    )


_EXHAUSTIVE_LIMIT = 12


def select_exhaustive(
    alpha: np.ndarray,
    beta: np.ndarray,
    same_config: bool,
    require_odd: bool = False,
) -> PairSelection:
    """Brute-force optimal selection, for verifying the fast algorithms.

    Args:
        same_config: True explores Case-1's space (one shared vector),
            False explores Case-2's (independent vectors, equal counts).
        require_odd: restrict to odd selected counts.

    Raises:
        ValueError: for rings longer than 12 units (search space explodes).
    """
    alpha, beta = _validate_pair(alpha, beta)
    n = len(alpha)
    if n > _EXHAUSTIVE_LIMIT:
        raise ValueError(
            f"exhaustive search supports up to {_EXHAUSTIVE_LIMIT} units, got {n}"
        )

    best: PairSelection | None = None
    counts = range(1, n + 1)
    if require_odd:
        counts = range(1, n + 1, 2)

    for k in counts:
        for top_subset in combinations(range(n), k):
            top = np.zeros(n, dtype=bool)
            top[list(top_subset)] = True
            bottom_subsets = [top_subset] if same_config else combinations(range(n), k)
            for bottom_subset in bottom_subsets:
                bottom = np.zeros(n, dtype=bool)
                bottom[list(bottom_subset)] = True
                margin = float(np.sum(alpha[top]) - np.sum(beta[bottom]))
                if best is None or abs(margin) > best.abs_margin:
                    best = PairSelection(
                        top_config=ConfigVector.from_array(top),
                        bottom_config=ConfigVector.from_array(bottom),
                        margin=margin,
                        method="exhaustive-case1" if same_config else "exhaustive-case2",
                    )
    assert best is not None  # counts is never empty for n >= 1
    return best
