"""The configurable RO PUF (Sec. III.C): enrollment and response generation.

Two PUF front-ends share one life cycle:

* :class:`BoardROPUF` works on a *delay vector per operating point* — the
  abstraction used with the Virginia Tech-style dataset, where each dataset
  RO plays the role of one inverter (Sec. IV: "We treat each RO as an
  inverter in our experimentation").  A configured ring's delay is the sum
  of its selected units' delays.

* :class:`ChipROPUF` works on a simulated :class:`~repro.silicon.chip.Chip`
  at full fidelity: enrollment measures noisy chain delays with the
  leave-one-out scheme of Sec. III.B, extracts per-unit ddiffs, selects
  configurations, and stores the reference bits from actual chain-delay
  comparisons; responses re-compare the configured chains (with fresh
  measurement noise) at whatever operating point the chip is in.

Life cycle::

    puf = BoardROPUF(...)            # deploy rings in pairs
    enrollment = puf.enroll(op_ref)  # test phase: measure, configure
    bits = puf.response(op_other)    # field phase: regenerate the secret
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..silicon.chip import Chip
from ..variation.environment import NOMINAL_OPERATING_POINT, OperatingPoint
from ..variation.noise import MeasurementNoise, NoiselessMeasurement
from .config_vector import ConfigVector
from .measurement import (
    DelayMeasurer,
    leave_one_out_vectors,
    measure_ddiffs_least_squares,
    measure_ddiffs_leave_one_out,
)
from .pairing import RingAllocation, allocate_rings
from .ring import ConfigurableRO
from .selection import (
    PairSelection,
    select_case1,
    select_case2,
    select_traditional,
)
from .selection_ext import select_case1_offset, select_case2_offset

__all__ = [
    "Enrollment",
    "BoardROPUF",
    "ChipROPUF",
    "SELECTION_METHODS",
]


#: Registry of selection methods accepted by the PUF classes.  Every entry
#: honours ``require_odd`` (the traditional selector repairs parity by
#: dropping one stage from both rings when the stage count is even).
SELECTION_METHODS: dict[str, Callable[..., PairSelection]] = {
    "case1": select_case1,
    "case2": select_case2,
    "traditional": select_traditional,
}


@dataclass
class Enrollment:
    """The outcome of configuring a PUF during the chip-testing phase.

    Attributes:
        operating_point: environment at which the PUF was enrolled.
        selections: one :class:`PairSelection` per RO pair.
        bits: the reference response bits.
        margins: per-bit signed delay margins (top minus bottom), in the
            delay unit of the source data.
    """

    operating_point: OperatingPoint
    selections: list[PairSelection]
    bits: np.ndarray
    margins: np.ndarray

    def __post_init__(self) -> None:
        self.bits = np.asarray(self.bits, dtype=bool)
        self.margins = np.asarray(self.margins, dtype=float)
        if len(self.bits) != len(self.selections) or len(self.margins) != len(
            self.selections
        ):
            raise ValueError("bits, margins and selections must align")
        # Compiled selection-mask matrices, keyed by allocation (see
        # repro.core.batch).  Not a dataclass field: excluded from eq/repr.
        self._compiled_cache: dict = {}

    @property
    def bit_count(self) -> int:
        return len(self.bits)

    def compiled(self, allocation):
        """Dense selection masks for ``allocation``, compiled once and cached.

        Returns a :class:`repro.core.batch.CompiledEnrollment`; repeated
        calls with an equal allocation reuse the same compiled object, so
        per-call response APIs stay cheap after the first evaluation.
        """
        cached = self._compiled_cache.get(allocation)
        if cached is None:
            from .batch import compile_enrollment

            cached = self._compiled_cache[allocation] = compile_enrollment(
                self, allocation
            )
        return cached

    def reliable_mask(self, threshold: float) -> np.ndarray:
        """Bits whose |margin| meets a reliability threshold (Sec. IV.E)."""
        if threshold < 0.0:
            raise ValueError("threshold must be non-negative")
        return np.abs(self.margins) >= threshold


@dataclass
class BoardROPUF:
    """Configurable RO PUF over a board's per-unit delay vectors.

    Attributes:
        delay_provider: maps an operating point to the board's per-unit
            delays (1-D array, at least ``allocation.unit_count`` long).
            For dataset boards this is typically RO periods.
        allocation: how units are carved into rings and pairs.
        method: ``"case1"``, ``"case2"`` or ``"traditional"``.
        require_odd: force odd selected counts (free-running rings).
        response_noise: noise applied to each ring-delay sum when generating
            responses; defaults to noiseless.
        rng: generator driving the response noise.
    """

    delay_provider: Callable[[OperatingPoint], np.ndarray]
    allocation: RingAllocation
    method: str = "case1"
    require_odd: bool = False
    response_noise: MeasurementNoise = field(default_factory=NoiselessMeasurement)
    rng: np.random.Generator = field(default_factory=np.random.default_rng)

    def __post_init__(self) -> None:
        if self.method not in SELECTION_METHODS:
            raise ValueError(
                f"unknown method {self.method!r}; "
                f"choose from {sorted(SELECTION_METHODS)}"
            )

    @property
    def bit_count(self) -> int:
        """Bits this PUF generates (one per ring pair)."""
        return self.allocation.pair_count

    def _ring_delays(self, op: OperatingPoint) -> np.ndarray:
        """(ring_count, stage_count) per-unit delays at an operating point."""
        unit_delays = np.asarray(self.delay_provider(op), dtype=float)
        return self.allocation.ring_delay_matrix(unit_delays)

    def enroll(
        self, op: OperatingPoint = NOMINAL_OPERATING_POINT
    ) -> Enrollment:
        """Measure the board at ``op`` and configure every RO pair."""
        rings = self._ring_delays(op)
        selector = SELECTION_METHODS[self.method]
        selections = []
        for pair in range(self.allocation.pair_count):
            top, bottom = self.allocation.pair_rings(pair)
            selections.append(
                selector(rings[top], rings[bottom], require_odd=self.require_odd)
            )
        margins = np.array([s.margin for s in selections])
        bits = np.array([s.bit for s in selections])
        return Enrollment(
            operating_point=op, selections=selections, bits=bits, margins=margins
        )

    def batch(self, enrollment: Enrollment) -> "BatchEvaluator":
        """A vectorized evaluator bound to this PUF and one enrollment.

        The evaluator shares this PUF's noise model and RNG, so mixing
        per-call and batch APIs advances one generator consistently.
        """
        from .batch import BatchEvaluator

        return BatchEvaluator.from_puf(self, enrollment)

    def response(
        self,
        op: OperatingPoint,
        enrollment: Enrollment,
    ) -> np.ndarray:
        """Regenerate the response bits at operating point ``op``.

        Thin wrapper over the vectorized batch engine; noise draw order (and
        therefore every seeded run) is identical to the historical per-pair
        loop, preserved as :func:`repro.core.batch.response_loop_reference`.
        """
        return self.batch(enrollment).response(op)

    def response_sweep(
        self,
        ops: list[OperatingPoint],
        enrollment: Enrollment,
    ) -> np.ndarray:
        """Responses at many operating points: ``(op_count, bit_count)``.

        One vectorized pass with a single noise draw per sweep shape; see
        :meth:`repro.core.batch.BatchEvaluator.response_sweep` for the
        draw-order contract.
        """
        return self.batch(enrollment).response_sweep(ops)

    def response_voted(
        self,
        op: OperatingPoint,
        enrollment: Enrollment,
        votes: int = 9,
    ) -> np.ndarray:
        """Majority vote over repeated noisy response evaluations.

        Temporal majority voting is the cheapest classical PUF stabiliser:
        with measurement noise sigma and margin m, a single evaluation
        flips with probability ~Q(m/sigma) while a ``votes``-of-n majority
        needs more than half the evaluations to flip.  It cannot fix a bit
        whose margin truly inverted with the environment — which is the
        paper's argument for maximising margins instead.

        Args:
            votes: odd number of evaluations per bit.
        """
        return self.batch(enrollment).response_voted(op, votes)

    def response_voted_sweep(
        self,
        ops: list[OperatingPoint],
        enrollment: Enrollment,
        votes: int = 9,
    ) -> np.ndarray:
        """Majority-voted responses over a sweep: ``(op_count, bit_count)``."""
        return self.batch(enrollment).response_voted_sweep(ops, votes)


@dataclass
class ChipROPUF:
    """Full-fidelity configurable RO PUF on a simulated chip.

    Enrollment follows the paper's post-silicon flow: measure chain delays
    under the leave-one-out configurations (noisy, averaged), compute the
    per-unit ddiffs, run the selection algorithm, then record the reference
    bits by comparing the configured chains.

    Attributes:
        chip: the fabricated chip.
        allocation: carve-up of the chip's units into rings and pairs.
        method: selection method name.
        measurer: noisy chain-delay measurement used for enrollment and
            responses.
        require_odd: force odd selected counts.
        offset_aware: additionally measure each ring's all-bypass chain
            delay (one extra configuration per ring) and select with the
            offset-aware algorithms of :mod:`repro.core.selection_ext`,
            maximising the full physical margin
            ``|sum(ddiff selected) + (B_top - B_bottom)|`` instead of the
            paper's offset-blind objective.  Incompatible with
            ``require_odd`` (the offset-aware selectors do not implement
            parity repair) and ignored for ``method="traditional"``.
    """

    chip: Chip
    allocation: RingAllocation
    method: str = "case1"
    measurer: DelayMeasurer = field(default_factory=DelayMeasurer)
    require_odd: bool = False
    offset_aware: bool = False

    def __post_init__(self) -> None:
        if self.method not in SELECTION_METHODS:
            raise ValueError(
                f"unknown method {self.method!r}; "
                f"choose from {sorted(SELECTION_METHODS)}"
            )
        if self.allocation.unit_count > self.chip.unit_count:
            raise ValueError(
                f"allocation needs {self.allocation.unit_count} units but chip "
                f"{self.chip.name!r} has {self.chip.unit_count}"
            )
        if self.offset_aware and self.require_odd:
            raise ValueError(
                "offset_aware selection does not support require_odd"
            )
        if self.offset_aware and self.method == "traditional":
            raise ValueError(
                "offset_aware has no effect on the traditional method"
            )

    @classmethod
    def deploy(
        cls,
        chip: Chip,
        stage_count: int,
        method: str = "case1",
        measurer: DelayMeasurer | None = None,
        require_odd: bool = False,
    ) -> "ChipROPUF":
        """Deploy rings of ``stage_count`` units across the whole chip."""
        allocation = allocate_rings(chip.unit_count, stage_count)
        if allocation.pair_count == 0:
            raise ValueError(
                f"chip {chip.name!r} with {chip.unit_count} units cannot host "
                f"any ring pair of {stage_count} stages"
            )
        return cls(
            chip=chip,
            allocation=allocation,
            method=method,
            measurer=measurer if measurer is not None else DelayMeasurer(),
            require_odd=require_odd,
        )

    @property
    def bit_count(self) -> int:
        return self.allocation.pair_count

    def ring(self, index: int) -> ConfigurableRO:
        """The configurable RO at a ring index."""
        return ConfigurableRO(
            chip=self.chip,
            unit_indices=self.allocation.ring_units(index),
            name=f"{self.chip.name}/ring{index}",
        )

    def _select_pair(
        self,
        top_ring: ConfigurableRO,
        bottom_ring: ConfigurableRO,
        op: OperatingPoint,
    ) -> PairSelection:
        """Measure one pair and run the configured selection algorithm."""
        if not self.offset_aware:
            top_est = measure_ddiffs_leave_one_out(self.measurer, top_ring, op)
            bottom_est = measure_ddiffs_leave_one_out(
                self.measurer, bottom_ring, op
            )
            selector = SELECTION_METHODS[self.method]
            return selector(
                top_est.ddiffs, bottom_est.ddiffs, require_odd=self.require_odd
            )
        # Offset-aware: one extra all-bypass measurement per ring identifies
        # the intercepts B = sum(d0) via least squares.
        configs = leave_one_out_vectors(top_ring.stage_count)
        configs.append(ConfigVector.none_selected(top_ring.stage_count))
        top_est = measure_ddiffs_least_squares(self.measurer, top_ring, configs, op)
        bottom_est = measure_ddiffs_least_squares(
            self.measurer, bottom_ring, configs, op
        )
        offset = top_est.intercept - bottom_est.intercept
        offset_selector = (
            select_case1_offset if self.method == "case1" else select_case2_offset
        )
        return offset_selector(top_est.ddiffs, bottom_est.ddiffs, offset)

    def enroll(
        self, op: OperatingPoint = NOMINAL_OPERATING_POINT
    ) -> Enrollment:
        """Measure, select, and record reference bits at ``op``."""
        selections = []
        margins = []
        bits = []
        for pair in range(self.allocation.pair_count):
            top_idx, bottom_idx = self.allocation.pair_rings(pair)
            top_ring = self.ring(top_idx)
            bottom_ring = self.ring(bottom_idx)
            selection = self._select_pair(top_ring, bottom_ring, op)
            selections.append(selection)
            margins.append(selection.margin)
            # The reference bit comes from comparing the *configured chains*,
            # which includes the bypass-path offsets the ddiff margin omits.
            top_delay = self.measurer.chain_delay(top_ring, selection.top_config, op)
            bottom_delay = self.measurer.chain_delay(
                bottom_ring, selection.bottom_config, op
            )
            bits.append(top_delay > bottom_delay)
        return Enrollment(
            operating_point=op,
            selections=selections,
            bits=np.array(bits),
            margins=np.array(margins),
        )

    def response(self, op: OperatingPoint, enrollment: Enrollment) -> np.ndarray:
        """Regenerate the response bits at ``op`` with fresh noise."""
        bits = np.empty(len(enrollment.selections), dtype=bool)
        for pair, selection in enumerate(enrollment.selections):
            top_idx, bottom_idx = self.allocation.pair_rings(pair)
            top_delay = self.measurer.chain_delay(
                self.ring(top_idx), selection.top_config, op
            )
            bottom_delay = self.measurer.chain_delay(
                self.ring(bottom_idx), selection.bottom_config, op
            )
            bits[pair] = top_delay > bottom_delay
        return bits
