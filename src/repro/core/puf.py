"""The configurable RO PUF (Sec. III.C): enrollment and response generation.

Two PUF front-ends share one life cycle:

* :class:`BoardROPUF` works on a *delay vector per operating point* — the
  abstraction used with the Virginia Tech-style dataset, where each dataset
  RO plays the role of one inverter (Sec. IV: "We treat each RO as an
  inverter in our experimentation").  A configured ring's delay is the sum
  of its selected units' delays.

* :class:`ChipROPUF` works on a simulated :class:`~repro.silicon.chip.Chip`
  at full fidelity: enrollment measures noisy chain delays with the
  leave-one-out scheme of Sec. III.B, extracts per-unit ddiffs, selects
  configurations, and stores the reference bits from actual chain-delay
  comparisons; responses re-compare the configured chains (with fresh
  measurement noise) at whatever operating point the chip is in.

Life cycle::

    puf = BoardROPUF(...)            # deploy rings in pairs
    enrollment = puf.enroll(op_ref)  # test phase: measure, configure
    bits = puf.response(op_other)    # field phase: regenerate the secret
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..silicon.chip import Chip
from ..variation.environment import NOMINAL_OPERATING_POINT, OperatingPoint
from ..variation.noise import MeasurementNoise, NoiselessMeasurement
from .config_vector import ConfigVector
from .measurement import (
    DelayMeasurer,
    leave_one_out_vectors,
    measure_ddiffs_least_squares,
    measure_ddiffs_leave_one_out,
    measure_ddiffs_leave_one_out_batch,
)
from .pairing import RingAllocation, allocate_rings
from .ring import ConfigurableRO
from .selection import (
    PairSelection,
    select_case1,
    select_case2,
    select_traditional,
)
from .selection_batch import BATCH_SELECTION_METHODS, BatchSelection
from .selection_ext import select_case1_offset, select_case2_offset

__all__ = [
    "Enrollment",
    "BoardROPUF",
    "ChipROPUF",
    "SELECTION_METHODS",
]


#: Registry of selection methods accepted by the PUF classes.  Every entry
#: honours ``require_odd`` (the traditional selector repairs parity by
#: dropping one stage from both rings when the stage count is even).
SELECTION_METHODS: dict[str, Callable[..., PairSelection]] = {
    "case1": select_case1,
    "case2": select_case2,
    "traditional": select_traditional,
}


@dataclass
class Enrollment:
    """The outcome of configuring a PUF during the chip-testing phase.

    Attributes:
        operating_point: environment at which the PUF was enrolled.
        selections: one :class:`PairSelection` per RO pair.
        bits: the reference response bits.
        margins: per-bit signed delay margins (top minus bottom), in the
            delay unit of the source data.
    """

    operating_point: OperatingPoint
    selections: list[PairSelection]
    bits: np.ndarray
    margins: np.ndarray

    def __post_init__(self) -> None:
        self.bits = np.asarray(self.bits, dtype=bool)
        self.margins = np.asarray(self.margins, dtype=float)
        if len(self.bits) != len(self.selections) or len(self.margins) != len(
            self.selections
        ):
            raise ValueError("bits, margins and selections must align")
        # Compiled selection-mask matrices, keyed by allocation (see
        # repro.core.batch).  Not a dataclass field: excluded from eq/repr.
        self._compiled_cache: dict = {}

    @property
    def bit_count(self) -> int:
        return len(self.bits)

    def compiled(self, allocation):
        """Dense selection masks for ``allocation``, compiled once and cached.

        Returns a :class:`repro.core.batch.CompiledEnrollment`; repeated
        calls with an equal allocation reuse the same compiled object, so
        per-call response APIs stay cheap after the first evaluation.
        """
        cached = self._compiled_cache.get(allocation)
        if cached is None:
            from .batch import compile_enrollment

            cached = self._compiled_cache[allocation] = compile_enrollment(
                self, allocation
            )
        return cached

    def reliable_mask(self, threshold: float) -> np.ndarray:
        """Bits whose |margin| meets a reliability threshold (Sec. IV.E)."""
        if threshold < 0.0:
            raise ValueError("threshold must be non-negative")
        return np.abs(self.margins) >= threshold


@dataclass
class BoardROPUF:
    """Configurable RO PUF over a board's per-unit delay vectors.

    Attributes:
        delay_provider: maps an operating point to the board's per-unit
            delays (1-D array, at least ``allocation.unit_count`` long).
            For dataset boards this is typically RO periods.
        allocation: how units are carved into rings and pairs.
        method: ``"case1"``, ``"case2"`` or ``"traditional"``.
        require_odd: force odd selected counts (free-running rings).
        response_noise: noise applied to each ring-delay sum when generating
            responses; defaults to noiseless.
        rng: generator driving the response noise.
    """

    delay_provider: Callable[[OperatingPoint], np.ndarray]
    allocation: RingAllocation
    method: str = "case1"
    require_odd: bool = False
    response_noise: MeasurementNoise = field(default_factory=NoiselessMeasurement)
    rng: np.random.Generator = field(default_factory=np.random.default_rng)

    def __post_init__(self) -> None:
        if self.method not in SELECTION_METHODS:
            raise ValueError(
                f"unknown method {self.method!r}; "
                f"choose from {sorted(SELECTION_METHODS)}"
            )

    @property
    def bit_count(self) -> int:
        """Bits this PUF generates (one per ring pair)."""
        return self.allocation.pair_count

    def _ring_delays(self, op: OperatingPoint) -> np.ndarray:
        """(ring_count, stage_count) per-unit delays at an operating point."""
        unit_delays = np.asarray(self.delay_provider(op), dtype=float)
        return self.allocation.ring_delay_matrix(unit_delays)

    def _select_batch(self, rings: np.ndarray) -> BatchSelection:
        """Run the batch selector over stacked (pair-major) delay matrices."""
        pairs = self.allocation.pair_ring_matrix()
        selector = BATCH_SELECTION_METHODS[self.method]
        return selector(
            rings[pairs[:, 0]], rings[pairs[:, 1]], require_odd=self.require_odd
        )

    def enroll(
        self, op: OperatingPoint = NOMINAL_OPERATING_POINT
    ) -> Enrollment:
        """Measure the board at ``op`` and configure every RO pair.

        All pairs are selected in one vectorized pass
        (:mod:`repro.core.selection_batch`); the resulting
        :class:`Enrollment` is byte-identical to the historical per-pair
        loop, preserved as
        :func:`repro.core.batch.enroll_loop_reference` and pinned by the
        equivalence tests.
        """
        rings = self._ring_delays(op)
        return self._select_batch(rings).to_enrollment(op)

    def enroll_sweep(
        self, ops: list[OperatingPoint]
    ) -> list[Enrollment]:
        """Enroll at many operating points in one selector pass.

        Stacks every corner's ``(pair, stage)`` delay matrices into one
        pair-major batch and runs the selector once; each returned
        enrollment equals ``enroll(op)`` exactly (board enrollment is
        deterministic — no noise draws are involved).
        """
        ops = list(ops)
        if not ops:
            raise ValueError("no operating points supplied")
        pair_count = self.allocation.pair_count
        stacked = np.concatenate([self._ring_delays(op) for op in ops])
        pairs = self.allocation.pair_ring_matrix()
        ring_count = self.allocation.ring_count
        offsets = np.repeat(
            np.arange(len(ops)) * ring_count, pair_count
        ).reshape(-1, 1)
        all_pairs = np.tile(pairs, (len(ops), 1)) + offsets
        selector = BATCH_SELECTION_METHODS[self.method]
        batch = selector(
            stacked[all_pairs[:, 0]],
            stacked[all_pairs[:, 1]],
            require_odd=self.require_odd,
        )
        selections = batch.to_selections()
        return [
            Enrollment(
                operating_point=op,
                selections=selections[i * pair_count : (i + 1) * pair_count],
                bits=batch.bits[i * pair_count : (i + 1) * pair_count],
                margins=batch.margins[
                    i * pair_count : (i + 1) * pair_count
                ].astype(float, copy=True),
            )
            for i, op in enumerate(ops)
        ]

    def batch(self, enrollment: Enrollment) -> "BatchEvaluator":
        """A vectorized evaluator bound to this PUF and one enrollment.

        The evaluator shares this PUF's noise model and RNG, so mixing
        per-call and batch APIs advances one generator consistently.
        """
        from .batch import BatchEvaluator

        return BatchEvaluator.from_puf(self, enrollment)

    def response(
        self,
        op: OperatingPoint,
        enrollment: Enrollment,
    ) -> np.ndarray:
        """Regenerate the response bits at operating point ``op``.

        Thin wrapper over the vectorized batch engine; noise draw order (and
        therefore every seeded run) is identical to the historical per-pair
        loop, preserved as :func:`repro.core.batch.response_loop_reference`.
        """
        return self.batch(enrollment).response(op)

    def response_sweep(
        self,
        ops: list[OperatingPoint],
        enrollment: Enrollment,
    ) -> np.ndarray:
        """Responses at many operating points: ``(op_count, bit_count)``.

        One vectorized pass with a single noise draw per sweep shape; see
        :meth:`repro.core.batch.BatchEvaluator.response_sweep` for the
        draw-order contract.
        """
        return self.batch(enrollment).response_sweep(ops)

    def response_voted(
        self,
        op: OperatingPoint,
        enrollment: Enrollment,
        votes: int = 9,
    ) -> np.ndarray:
        """Majority vote over repeated noisy response evaluations.

        Temporal majority voting is the cheapest classical PUF stabiliser:
        with measurement noise sigma and margin m, a single evaluation
        flips with probability ~Q(m/sigma) while a ``votes``-of-n majority
        needs more than half the evaluations to flip.  It cannot fix a bit
        whose margin truly inverted with the environment — which is the
        paper's argument for maximising margins instead.

        Args:
            votes: odd number of evaluations per bit.
        """
        return self.batch(enrollment).response_voted(op, votes)

    def response_voted_sweep(
        self,
        ops: list[OperatingPoint],
        enrollment: Enrollment,
        votes: int = 9,
    ) -> np.ndarray:
        """Majority-voted responses over a sweep: ``(op_count, bit_count)``."""
        return self.batch(enrollment).response_voted_sweep(ops, votes)


@dataclass
class ChipROPUF:
    """Full-fidelity configurable RO PUF on a simulated chip.

    Enrollment follows the paper's post-silicon flow: measure chain delays
    under the leave-one-out configurations (noisy, averaged), compute the
    per-unit ddiffs, run the selection algorithm, then record the reference
    bits by comparing the configured chains.

    Attributes:
        chip: the fabricated chip.
        allocation: carve-up of the chip's units into rings and pairs.
        method: selection method name.
        measurer: noisy chain-delay measurement used for enrollment and
            responses.
        require_odd: force odd selected counts.
        offset_aware: additionally measure each ring's all-bypass chain
            delay (one extra configuration per ring) and select with the
            offset-aware algorithms of :mod:`repro.core.selection_ext`,
            maximising the full physical margin
            ``|sum(ddiff selected) + (B_top - B_bottom)|`` instead of the
            paper's offset-blind objective.  Incompatible with
            ``require_odd`` (the offset-aware selectors do not implement
            parity repair) and ignored for ``method="traditional"``.
    """

    chip: Chip
    allocation: RingAllocation
    method: str = "case1"
    measurer: DelayMeasurer = field(default_factory=DelayMeasurer)
    require_odd: bool = False
    offset_aware: bool = False

    def __post_init__(self) -> None:
        if self.method not in SELECTION_METHODS:
            raise ValueError(
                f"unknown method {self.method!r}; "
                f"choose from {sorted(SELECTION_METHODS)}"
            )
        if self.allocation.unit_count > self.chip.unit_count:
            raise ValueError(
                f"allocation needs {self.allocation.unit_count} units but chip "
                f"{self.chip.name!r} has {self.chip.unit_count}"
            )
        if self.offset_aware and self.require_odd:
            raise ValueError(
                "offset_aware selection does not support require_odd"
            )
        if self.offset_aware and self.method == "traditional":
            raise ValueError(
                "offset_aware has no effect on the traditional method"
            )

    @classmethod
    def deploy(
        cls,
        chip: Chip,
        stage_count: int,
        method: str = "case1",
        measurer: DelayMeasurer | None = None,
        require_odd: bool = False,
    ) -> "ChipROPUF":
        """Deploy rings of ``stage_count`` units across the whole chip."""
        allocation = allocate_rings(chip.unit_count, stage_count)
        if allocation.pair_count == 0:
            raise ValueError(
                f"chip {chip.name!r} with {chip.unit_count} units cannot host "
                f"any ring pair of {stage_count} stages"
            )
        return cls(
            chip=chip,
            allocation=allocation,
            method=method,
            measurer=measurer if measurer is not None else DelayMeasurer(),
            require_odd=require_odd,
        )

    @property
    def bit_count(self) -> int:
        return self.allocation.pair_count

    def ring(self, index: int) -> ConfigurableRO:
        """The configurable RO at a ring index."""
        return ConfigurableRO(
            chip=self.chip,
            unit_indices=self.allocation.ring_units(index),
            name=f"{self.chip.name}/ring{index}",
        )

    def _select_pair(
        self,
        top_ring: ConfigurableRO,
        bottom_ring: ConfigurableRO,
        op: OperatingPoint,
    ) -> PairSelection:
        """Measure one pair and run the configured selection algorithm."""
        if not self.offset_aware:
            top_est = measure_ddiffs_leave_one_out(self.measurer, top_ring, op)
            bottom_est = measure_ddiffs_leave_one_out(
                self.measurer, bottom_ring, op
            )
            selector = SELECTION_METHODS[self.method]
            return selector(
                top_est.ddiffs, bottom_est.ddiffs, require_odd=self.require_odd
            )
        # Offset-aware: one extra all-bypass measurement per ring identifies
        # the intercepts B = sum(d0) via least squares.
        configs = leave_one_out_vectors(top_ring.stage_count)
        configs.append(ConfigVector.none_selected(top_ring.stage_count))
        top_est = measure_ddiffs_least_squares(self.measurer, top_ring, configs, op)
        bottom_est = measure_ddiffs_least_squares(
            self.measurer, bottom_ring, configs, op
        )
        offset = top_est.intercept - bottom_est.intercept
        offset_selector = (
            select_case1_offset if self.method == "case1" else select_case2_offset
        )
        return offset_selector(top_est.ddiffs, bottom_est.ddiffs, offset)

    def enroll(
        self, op: OperatingPoint = NOMINAL_OPERATING_POINT
    ) -> Enrollment:
        """Measure, select, and record reference bits at ``op``.

        This default path deliberately keeps the per-pair loop: its noise
        draw order interleaves each pair's measurements (top leave-one-out,
        bottom leave-one-out, top reference, bottom reference) and cannot
        be reproduced by one batch tensor, and seeded experiments are
        pinned to it (see :func:`repro.core.batch.chip_enroll_loop_reference`).
        Use :meth:`enroll_batch` / :meth:`enroll_sweep` for the vectorized
        engine under the versioned
        :data:`~repro.core.measurement.ENROLL_DRAW_ORDER` contract.
        """
        selections = []
        margins = []
        bits = []
        for pair in range(self.allocation.pair_count):
            top_idx, bottom_idx = self.allocation.pair_rings(pair)
            top_ring = self.ring(top_idx)
            bottom_ring = self.ring(bottom_idx)
            selection = self._select_pair(top_ring, bottom_ring, op)
            selections.append(selection)
            margins.append(selection.margin)
            # The reference bit comes from comparing the *configured chains*,
            # which includes the bypass-path offsets the ddiff margin omits.
            top_delay = self.measurer.chain_delay(top_ring, selection.top_config, op)
            bottom_delay = self.measurer.chain_delay(
                bottom_ring, selection.bottom_config, op
            )
            bits.append(top_delay > bottom_delay)
        return Enrollment(
            operating_point=op,
            selections=selections,
            bits=np.array(bits),
            margins=np.array(margins),
        )

    def _require_batchable(self) -> None:
        if self.offset_aware:
            raise ValueError(
                "batch enrollment does not support offset_aware selection; "
                "use the per-pair enroll() path"
            )

    def _ring_unit_matrix(self) -> np.ndarray:
        """(ring_count, stage_count) chip unit indices of every ring."""
        return np.stack(
            [
                self.allocation.ring_units(ring)
                for ring in range(self.allocation.ring_count)
            ]
        )

    def _configured_chain_delays(
        self,
        unit_indices: np.ndarray,
        masks: np.ndarray,
        op: OperatingPoint,
    ) -> np.ndarray:
        """True configured-chain delays, one per row of ``unit_indices``.

        Each row is bit-identical to the corresponding
        :meth:`ConfigurableRO.chain_delay` call (same stage vector, summed
        along the last axis).
        """
        selected = self.chip.selected_path_delays(op)[unit_indices]
        bypass = self.chip.mux_bypass_delays(op)[unit_indices]
        return np.where(masks, selected, bypass).sum(axis=1)

    def _batch_enrollment(
        self,
        batch: BatchSelection,
        unit_matrix: np.ndarray,
        pairs: np.ndarray,
        op: OperatingPoint,
    ) -> Enrollment:
        """Reference-bit observation + packaging for one corner's batch."""
        true_top = self._configured_chain_delays(
            unit_matrix[pairs[:, 0]], batch.top_masks, op
        )
        true_bottom = self._configured_chain_delays(
            unit_matrix[pairs[:, 1]], batch.bottom_masks, op
        )
        top_observed = self.measurer.noise.observe_averaged(
            true_top, self.measurer.rng, self.measurer.repeats
        )
        bottom_observed = self.measurer.noise.observe_averaged(
            true_bottom, self.measurer.rng, self.measurer.repeats
        )
        return Enrollment(
            operating_point=op,
            selections=batch.to_selections(),
            bits=top_observed > bottom_observed,
            margins=batch.margins.astype(float, copy=True),
        )

    def enroll_batch(
        self, op: OperatingPoint = NOMINAL_OPERATING_POINT
    ) -> Enrollment:
        """Vectorized enrollment: one measurement tensor, one selector pass.

        Measures the whole ``(ring, config)`` leave-one-out chain-delay
        matrix with :func:`~repro.core.measurement.measure_ddiffs_leave_one_out_batch`,
        selects every pair with the batch selectors, then observes the
        per-pair reference chains (top vector, then bottom vector) — the
        :data:`~repro.core.measurement.ENROLL_DRAW_ORDER` contract.  Under
        noiseless measurement the result is byte-identical to
        :meth:`enroll`; with noise only the draw order differs.

        Raises:
            ValueError: if ``offset_aware`` is set (the offset-aware
                selectors are per-pair only).
        """
        self._require_batchable()
        rings = [self.ring(index) for index in range(self.allocation.ring_count)]
        estimate = measure_ddiffs_leave_one_out_batch(self.measurer, rings, op)
        pairs = self.allocation.pair_ring_matrix()
        selector = BATCH_SELECTION_METHODS[self.method]
        batch = selector(
            estimate.ddiffs[pairs[:, 0]],
            estimate.ddiffs[pairs[:, 1]],
            require_odd=self.require_odd,
        )
        return self._batch_enrollment(batch, self._ring_unit_matrix(), pairs, op)

    def enroll_sweep(
        self, ops: list[OperatingPoint]
    ) -> list[Enrollment]:
        """Enroll at many corners with one noise tensor per array shape.

        Generalises :meth:`enroll_batch` across operating points: the
        stacked ``(op, ring, config)`` leave-one-out tensor is observed
        first, then per corner the top and bottom reference vectors —
        still the :data:`~repro.core.measurement.ENROLL_DRAW_ORDER`
        contract, with the corner axis leading.  Multi-corner enrollment
        schemes (multi-voltage selection in the spirit of Mansouri &
        Dubrova) get every corner's enrollment for the cost of one pass.
        """
        self._require_batchable()
        ops = list(ops)
        if not ops:
            raise ValueError("no operating points supplied")
        stage_count = self.allocation.stage_count
        configs = leave_one_out_vectors(stage_count)
        config_masks = np.stack([c.as_array() for c in configs])
        unit_matrix = self._ring_unit_matrix()
        true_matrices = np.stack(
            [
                np.where(
                    config_masks[None, :, :],
                    self.chip.selected_path_delays(op)[unit_matrix][:, None, :],
                    self.chip.mux_bypass_delays(op)[unit_matrix][:, None, :],
                ).sum(axis=2)
                for op in ops
            ]
        )
        measurements = self.measurer.noise.observe_averaged(
            true_matrices, self.measurer.rng, self.measurer.repeats
        )
        ddiffs = measurements[..., 0:1] - measurements[..., 1:]
        pairs = self.allocation.pair_ring_matrix()
        selector = BATCH_SELECTION_METHODS[self.method]
        alpha = ddiffs[:, pairs[:, 0], :].reshape(-1, stage_count)
        beta = ddiffs[:, pairs[:, 1], :].reshape(-1, stage_count)
        batch = selector(alpha, beta, require_odd=self.require_odd)
        pair_count = self.allocation.pair_count
        enrollments = []
        for i, op in enumerate(ops):
            rows = slice(i * pair_count, (i + 1) * pair_count)
            top_slice = batch.top_masks[rows]
            bottom_slice = (
                top_slice
                if batch.bottom_masks is batch.top_masks
                else batch.bottom_masks[rows]
            )
            corner = BatchSelection(
                top_masks=top_slice,
                bottom_masks=bottom_slice,
                margins=batch.margins[rows],
                method=batch.method,
            )
            enrollments.append(
                self._batch_enrollment(corner, unit_matrix, pairs, op)
            )
        return enrollments

    def response(self, op: OperatingPoint, enrollment: Enrollment) -> np.ndarray:
        """Regenerate the response bits at ``op`` with fresh noise."""
        bits = np.empty(len(enrollment.selections), dtype=bool)
        for pair, selection in enumerate(enrollment.selections):
            top_idx, bottom_idx = self.allocation.pair_rings(pair)
            top_delay = self.measurer.chain_delay(
                self.ring(top_idx), selection.top_config, op
            )
            bottom_delay = self.measurer.chain_delay(
                self.ring(bottom_idx), selection.bottom_config, op
            )
            bits[pair] = top_delay > bottom_delay
        return bits
