"""Multi-corner enrollment: configurations robust at *every* corner.

Fig. 4 shows that the paper's single-corner enrollment works best when the
test corner sits mid-range ("The best configuration determined by using
the dataset at the middle voltage value often yields the lowest percentage
of bit flips").  The natural extension — enroll with measurements from
several corners and choose the configuration maximising the *worst-case*
margin — removes the enrollment-corner sensitivity altogether.

For Case-1 the worst-case-margin objective is no longer solved by the
sign rule (a unit can help at one corner and hurt at another), so we use
a greedy ascent with a provable starting point plus local improvement;
an exhaustive reference is provided for small rings and used by the test
suite to bound the greedy's gap.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from .config_vector import ConfigVector
from .selection import PairSelection, _validate_pair

__all__ = [
    "select_case1_multicorner",
    "select_multicorner_exhaustive",
    "worst_case_margin",
]


def _stack_deltas(
    alphas: list[np.ndarray], betas: list[np.ndarray]
) -> np.ndarray:
    if len(alphas) == 0 or len(alphas) != len(betas):
        raise ValueError("need the same non-zero number of alpha/beta vectors")
    deltas = []
    length = None
    for alpha, beta in zip(alphas, betas):
        alpha, beta = _validate_pair(alpha, beta)
        if length is None:
            length = len(alpha)
        elif len(alpha) != length:
            raise ValueError("all corners must describe the same ring length")
        deltas.append(alpha - beta)
    return np.stack(deltas)  # (corners, units)


def worst_case_margin(deltas: np.ndarray, selected: np.ndarray) -> float:
    """Signed worst-case margin of a shared selection across corners.

    The value is the margin whose |.| is smallest across corners if all
    corners agree in sign, else 0-crossing is reported as the signed
    margin closest to zero.
    """
    sums = deltas[:, selected].sum(axis=1)
    index = int(np.argmin(np.abs(sums)))
    return float(sums[index])


def select_case1_multicorner(
    alphas: list[np.ndarray], betas: list[np.ndarray]
) -> PairSelection:
    """Shared-configuration selection maximising the worst-corner margin.

    Args:
        alphas / betas: per-corner delay (ddiff) vectors of the two rings.

    Strategy: start from the best single-corner Case-1 solution evaluated
    under the worst-case objective (one candidate per corner and sign
    direction), then greedily toggle single units while the worst-case
    |margin| improves.  Exact for one corner; within a few percent of
    exhaustive on small rings (see tests).
    """
    deltas = _stack_deltas(alphas, betas)
    corners, units = deltas.shape

    candidates = []
    for corner in range(corners):
        for sign in (1.0, -1.0):
            selected = (sign * deltas[corner]) > 0.0
            if not np.any(selected):
                selected = np.zeros(units, dtype=bool)
                selected[int(np.argmax(sign * deltas[corner]))] = True
            candidates.append(selected)
    # Also seed with the average-corner solution.
    mean_delta = deltas.mean(axis=0)
    for sign in (1.0, -1.0):
        selected = (sign * mean_delta) > 0.0
        if np.any(selected):
            candidates.append(selected)

    best = max(
        candidates, key=lambda s: abs(worst_case_margin(deltas, s))
    ).copy()
    best_value = abs(worst_case_margin(deltas, best))

    improved = True
    while improved:
        improved = False
        for unit in range(units):
            trial = best.copy()
            trial[unit] = not trial[unit]
            if not np.any(trial):
                continue
            value = abs(worst_case_margin(deltas, trial))
            if value > best_value + 1e-18:
                best = trial
                best_value = value
                improved = True

    config = ConfigVector.from_array(best)
    return PairSelection(
        top_config=config,
        bottom_config=config,
        margin=worst_case_margin(deltas, best),
        method="case1-multicorner",
    )


_EXHAUSTIVE_LIMIT = 14


def select_multicorner_exhaustive(
    alphas: list[np.ndarray], betas: list[np.ndarray]
) -> PairSelection:
    """Brute-force worst-case-margin optimum (reference, small rings)."""
    deltas = _stack_deltas(alphas, betas)
    units = deltas.shape[1]
    if units > _EXHAUSTIVE_LIMIT:
        raise ValueError(
            f"exhaustive search supports up to {_EXHAUSTIVE_LIMIT} units"
        )
    best_selected = None
    best_value = -1.0
    for count in range(1, units + 1):
        for subset in combinations(range(units), count):
            selected = np.zeros(units, dtype=bool)
            selected[list(subset)] = True
            value = abs(worst_case_margin(deltas, selected))
            if value > best_value:
                best_value = value
                best_selected = selected
    assert best_selected is not None
    config = ConfigVector.from_array(best_selected)
    return PairSelection(
        top_config=config,
        bottom_config=config,
        margin=worst_case_margin(deltas, best_selected),
        method="multicorner-exhaustive",
    )
