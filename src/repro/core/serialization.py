"""Persistence of enrollment artifacts (the device's non-volatile data).

A deployed configurable RO PUF stores, per pair, the two configuration
vectors chosen at test time — that is the entirety of the paper's helper
data (plus, for key applications, the fuzzy-extractor helper).  This module
serialises enrollments, selections, and helper data to plain JSON so a
"device" can be provisioned once and field-tested across process restarts,
and so enrollments can be shipped between tools.

The response *bits* and margins are also stored: they are needed verifier-
side (reference responses) and for R_th-style dark-bit masks.  Deployments
that must not persist the secret can strip them with ``include_secrets=False``.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ..crypto.fuzzy_extractor import HelperData
from ..variation.environment import OperatingPoint
from .config_vector import ConfigVector
from .puf import Enrollment
from .selection import PairSelection

__all__ = [
    "enrollment_to_dict",
    "enrollment_from_dict",
    "save_enrollment",
    "load_enrollment",
    "helper_data_to_dict",
    "helper_data_from_dict",
]

_FORMAT_VERSION = 1


def _selection_to_dict(selection: PairSelection, include_secrets: bool) -> dict:
    record = {
        "top": selection.top_config.to_string(),
        "bottom": selection.bottom_config.to_string(),
        "method": selection.method,
    }
    if include_secrets:
        record["margin"] = selection.margin
    return record


def _selection_from_dict(record: dict) -> PairSelection:
    return PairSelection(
        top_config=ConfigVector.from_string(record["top"]),
        bottom_config=ConfigVector.from_string(record["bottom"]),
        margin=float(record.get("margin", 0.0)),
        method=record.get("method", "unknown"),
    )


def enrollment_to_dict(
    enrollment: Enrollment, include_secrets: bool = True
) -> dict:
    """Serialise an enrollment to plain JSON-compatible data.

    Args:
        include_secrets: when False, the reference bits and margins are
            omitted (configuration vectors alone do not reveal the bits for
            the equal-count schemes; see ``repro.attacks``).
    """
    record = {
        "format_version": _FORMAT_VERSION,
        "operating_point": {
            "voltage": enrollment.operating_point.voltage,
            "temperature": enrollment.operating_point.temperature,
        },
        "selections": [
            _selection_to_dict(selection, include_secrets)
            for selection in enrollment.selections
        ],
    }
    if include_secrets:
        record["bits"] = [int(b) for b in enrollment.bits]
        record["margins"] = [float(m) for m in enrollment.margins]
    return record


def enrollment_from_dict(record: dict) -> Enrollment:
    """Rebuild an enrollment from its serialised form.

    Enrollments stored without secrets load with zeroed bits/margins (the
    margin signs are then unavailable; responses must be regenerated from
    silicon).
    """
    version = record.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported enrollment format version: {version!r}"
        )
    op = record["operating_point"]
    selections = [_selection_from_dict(s) for s in record["selections"]]
    count = len(selections)
    bits = np.array(record.get("bits", [0] * count), dtype=bool)
    margins = np.array(
        record.get("margins", [s.margin for s in selections]), dtype=float
    )
    return Enrollment(
        operating_point=OperatingPoint(
            voltage=float(op["voltage"]), temperature=float(op["temperature"])
        ),
        selections=selections,
        bits=bits,
        margins=margins,
    )


def save_enrollment(
    enrollment: Enrollment,
    path: str | Path,
    include_secrets: bool = True,
) -> None:
    """Write an enrollment to a JSON file."""
    path = Path(path)
    record = enrollment_to_dict(enrollment, include_secrets)
    path.write_text(json.dumps(record, indent=2, sort_keys=True))


def load_enrollment(path: str | Path) -> Enrollment:
    """Read an enrollment from a JSON file."""
    path = Path(path)
    if not path.is_file():
        raise FileNotFoundError(f"no enrollment file at {path}")
    return enrollment_from_dict(json.loads(path.read_text()))


def helper_data_to_dict(helper: HelperData) -> dict:
    """Serialise fuzzy-extractor helper data (public by construction)."""
    return {
        "format_version": _FORMAT_VERSION,
        "offset": [int(b) for b in helper.offset],
        "salt": helper.salt.hex(),
    }


def helper_data_from_dict(record: dict) -> HelperData:
    """Rebuild helper data from its serialised form."""
    version = record.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported helper format version: {version!r}")
    return HelperData(
        offset=np.array(record["offset"], dtype=bool),
        salt=bytes.fromhex(record["salt"]),
    )
