"""Vectorized batch selectors: the enrollment half of the batch engine.

The scalar selectors of :mod:`repro.core.selection` decide one RO pair per
call; enrolling a board walks them in a Python loop, which made enrollment
the hot path of the ablations and threshold studies once responses were
vectorized (:mod:`repro.core.batch`).  This module re-implements the three
paper selectors over ``(pair, stage)`` delta *matrices* so a whole board
enrolls in a handful of array operations:

* :func:`select_case1_batch` — sign-mask reductions: both signed directions
  are materialised as boolean mask matrices, parity is repaired per row
  with masked ``argmin``/``argmax`` reductions, and the larger-magnitude
  direction wins per row.
* :func:`select_case2_batch` — per-row stable ``argsort`` plus prefix-sum
  greedy pairing, with the odd-length repair evaluated on prefix masks.
* :func:`select_traditional_batch` — all stages, with the even-stage-count
  parity drop evaluated row-wise.

Byte-identity contract
----------------------

Each batch selector produces, for every row, the exact
:class:`~repro.core.selection.PairSelection` its scalar counterpart returns
— same masks, and *bit-for-bit* the same margin floats.  Every decision in
the scalar selectors is an elementwise comparison, a stable sort, or an
``argmin``/``argmax``, all of which vectorize exactly; the only rounding-
sensitive quantities are the ``np.sum`` reductions over selected subsets.
Those are reproduced bit-for-bit by :func:`masked_row_sums`, which exploits
the fact that numpy's pairwise summation degenerates to a plain sequential
loop below 8 elements: rows selecting at most 7 entries are summed as
left-packed zero-padded rows (trailing zeros are exact no-ops), wider rows
fall back to a per-row ``np.sum`` over the compressed values.  The
equivalence is pinned by ``tests/test_selection_batch.py`` (Hypothesis,
batch ≡ scalar ≡ exhaustive) and ``tests/test_enroll_engine.py``
(board enrollment vs the preserved loop reference).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from .. import obs
from ..backends import current_backend
from ..backends.numpy_backend import _SEQUENTIAL_SUM_WIDTH  # noqa: F401  (test pin)
from .config_vector import ConfigVector
from .selection import PairSelection

__all__ = [
    "BatchSelection",
    "select_case1_batch",
    "select_case2_batch",
    "select_traditional_batch",
    "BATCH_SELECTION_METHODS",
    "masked_row_sums",
]

def masked_row_sums(values: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """``np.sum(values[p, mask[p]])`` for every row ``p``.

    Dispatches through the active compute backend
    (:func:`repro.backends.current_backend`).  The default ``numpy``
    backend keeps the historical bit-for-bit contract — rows selecting at
    most :data:`~repro.backends.numpy_backend._SEQUENTIAL_SUM_WIDTH`
    entries are summed in numpy's sequential regime exactly as the scalar
    selectors would; tolerance backends document their own bounds.
    """
    return current_backend().masked_row_sums(values, mask)


@dataclass(frozen=True, eq=False)
class BatchSelection:
    """The outcome of configuring many RO pairs at once.

    The dense-matrix counterpart of a list of
    :class:`~repro.core.selection.PairSelection`; produced by the batch
    selectors and consumed directly by :meth:`BoardROPUF.enroll
    <repro.core.puf.BoardROPUF.enroll>`.

    Attributes:
        top_masks: boolean ``(pair_count, stage_count)`` matrix; row ``p``
            is pair ``p``'s top configuration vector.
        bottom_masks: same for the bottom configurations (the *same array
            object* for shared-configuration methods).
        margins: per-pair signed delay margins, bit-identical to the scalar
            selectors' ``PairSelection.margin`` values.
        method: ``"case1"``, ``"case2"`` or ``"traditional"``.
    """

    top_masks: np.ndarray
    bottom_masks: np.ndarray
    margins: np.ndarray
    method: str

    @property
    def pair_count(self) -> int:
        """Number of RO pairs selected."""
        return len(self.margins)

    @property
    def stage_count(self) -> int:
        """Units per ring (mask row width)."""
        return self.top_masks.shape[1]

    @property
    def bits(self) -> np.ndarray:
        """The enrolled PUF bits: True where the top ring is slower."""
        return self.margins > 0.0

    def to_selections(self) -> list[PairSelection]:
        """Expand into the scalar per-pair :class:`PairSelection` objects.

        Shared-configuration methods reuse one :class:`ConfigVector` per
        pair for both rings, exactly like the scalar selectors do.
        """
        top_configs = [
            ConfigVector(bits) for bits in map(tuple, self.top_masks.tolist())
        ]
        if self.bottom_masks is self.top_masks:
            bottom_configs = top_configs
        else:
            bottom_configs = [
                ConfigVector(bits)
                for bits in map(tuple, self.bottom_masks.tolist())
            ]
        return [
            PairSelection(
                top_config=top,
                bottom_config=bottom,
                margin=float(margin),
                method=self.method,
            )
            for top, bottom, margin in zip(top_configs, bottom_configs, self.margins)
        ]

    def to_enrollment(self, operating_point) -> "object":
        """Package as an :class:`~repro.core.puf.Enrollment` at one corner."""
        from .puf import Enrollment

        return Enrollment(
            operating_point=operating_point,
            selections=self.to_selections(),
            bits=self.bits,
            margins=self.margins.astype(float, copy=True),
        )


def _count_selector(method: str, rows: int) -> None:
    """Record one batch-selector invocation (no-op while obs is off)."""
    obs.counter_add(f"selector.{method}.calls")
    obs.counter_add(f"selector.{method}.rows", rows)


def _validate_batch(
    alpha: np.ndarray, beta: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    alpha = np.asarray(alpha, dtype=float)
    beta = np.asarray(beta, dtype=float)
    if alpha.ndim != 2 or beta.ndim != 2:
        raise ValueError("batch delay matrices must be 2-D (pair, stage)")
    if alpha.shape != beta.shape:
        raise ValueError(
            f"top and bottom matrices differ in shape: {alpha.shape} vs "
            f"{beta.shape}"
        )
    if alpha.shape[1] == 0:
        raise ValueError("delay vectors cannot be empty")
    return alpha, beta


def select_case1_batch(
    alpha: np.ndarray,
    beta: np.ndarray,
    require_odd: bool = False,
) -> BatchSelection:
    """Batch Case-1: one shared configuration per pair (sign-mask optimal).

    Row ``p`` reproduces ``select_case1(alpha[p], beta[p], require_odd)``
    bit-for-bit (see the module docstring for why).

    Args:
        alpha: ``(pair, stage)`` per-unit delays (ddiffs) of the top rings.
        beta: same for the bottom rings.
        require_odd: force odd selected counts (free-running rings).
    """
    alpha, beta = _validate_batch(alpha, beta)
    _count_selector("case1", len(alpha))
    delta = alpha - beta
    positive = _direction_selection_batch(delta, 1.0, require_odd)
    negative = _direction_selection_batch(delta, -1.0, require_odd)
    margins_positive = masked_row_sums(delta, positive)
    margins_negative = masked_row_sums(delta, negative)
    # The scalar loop evaluates sign +1 first and lets -1 replace it only
    # on strictly larger magnitude, so ties keep the positive direction.
    take_negative = np.abs(margins_negative) > np.abs(margins_positive)
    masks = np.where(take_negative[:, None], negative, positive)
    margins = np.where(take_negative, margins_negative, margins_positive)
    return BatchSelection(
        top_masks=masks, bottom_masks=masks, margins=margins, method="case1"
    )


def _direction_selection_batch(
    delta: np.ndarray, sign: float, require_odd: bool
) -> np.ndarray:
    """Row-wise best selections whose margins point in one sign direction.

    Mirrors ``selection._direction_selection`` decision for decision: strict
    positive-contribution masks, the single-``argmax`` fallback for rows no
    unit helps, and the cheapest-repair parity fix (first-index tie-breaks
    via masked ``argmin``/``argmax``, exactly numpy's scalar behaviour).
    """
    contributions = sign * delta
    selected = contributions > 0.0
    counts = selected.sum(axis=1)
    empty_rows = np.flatnonzero(counts == 0)
    if len(empty_rows):
        # No unit helps these rows: least-bad single unit (count 1 is odd).
        fallback = np.argmax(contributions[empty_rows], axis=1)
        selected[empty_rows, fallback] = True
        counts[empty_rows] = 1
    if require_odd:
        even_rows = np.flatnonzero(counts % 2 == 0)
        if len(even_rows):
            sub_contributions = contributions[even_rows]
            sub_selected = selected[even_rows]
            drop_cost = np.where(sub_selected, sub_contributions, np.inf).min(axis=1)
            add_cost = np.where(~sub_selected, -sub_contributions, np.inf).min(axis=1)
            add_index = np.argmax(
                np.where(~sub_selected, sub_contributions, -np.inf), axis=1
            )
            drop_index = np.argmin(
                np.where(sub_selected, sub_contributions, np.inf), axis=1
            )
            add_wins = add_cost < drop_cost
            selected[even_rows[add_wins], add_index[add_wins]] = True
            selected[even_rows[~add_wins], drop_index[~add_wins]] = False
    return selected


def select_case2_batch(
    alpha: np.ndarray,
    beta: np.ndarray,
    require_odd: bool = False,
) -> BatchSelection:
    """Batch Case-2: independent equal-count configurations per pair.

    Row ``p`` reproduces ``select_case2(alpha[p], beta[p], require_odd)``
    bit-for-bit: per-row stable argsorts, greedy positive-gain prefixes
    (prefix sums reproduced exactly via :func:`masked_row_sums`), the
    ``sum_pos >= sum_neg`` direction rule, and the odd-length neighbour
    repair (``k - 1`` wins ties).
    """
    alpha, beta = _validate_batch(alpha, beta)
    _count_selector("case2", len(alpha))
    pair_count, n = alpha.shape
    columns = np.arange(n)

    desc_alpha = np.argsort(-alpha, axis=1, kind="stable")
    desc_beta = np.argsort(-beta, axis=1, kind="stable")
    alpha_sorted = np.take_along_axis(alpha, desc_alpha, axis=1)
    beta_sorted = np.take_along_axis(beta, desc_beta, axis=1)
    gains_positive = alpha_sorted - beta_sorted[:, ::-1]
    gains_negative = beta_sorted - alpha_sorted[:, ::-1]

    k_positive, sum_positive = _greedy_prefix_batch(gains_positive)
    k_negative, sum_negative = _greedy_prefix_batch(gains_negative)

    positive_direction = sum_positive >= sum_negative
    k = np.where(
        positive_direction,
        np.maximum(k_positive, 1),
        np.maximum(k_negative, 1),
    )

    if require_odd:
        even_rows = np.flatnonzero(k % 2 == 0)
        if len(even_rows):
            gains = np.where(
                positive_direction[even_rows, None],
                gains_positive[even_rows],
                gains_negative[even_rows],
            )
            sub_k = k[even_rows]
            # k is even hence >= 2, so k - 1 is always a valid odd length;
            # k + 1 exists only below n and must win strictly (the scalar
            # repair keeps k - 1 on ties).
            shorter = sub_k - 1
            longer = sub_k + 1
            sum_shorter = masked_row_sums(gains, columns < shorter[:, None])
            sum_longer = masked_row_sums(
                gains, columns < np.where(longer <= n, longer, 0)[:, None]
            )
            take_longer = (longer <= n) & (sum_longer > sum_shorter)
            k[even_rows] = np.where(take_longer, longer, shorter)

    # rank_desc[p, j] = position of unit j in the descending order; the
    # ascending order is the reverse, so its rank is n - 1 - rank_desc.
    rank_alpha = _rank_matrix(desc_alpha)
    rank_beta = _rank_matrix(desc_beta)
    k_column = k[:, None]
    direction_column = positive_direction[:, None]
    top_masks = np.where(
        direction_column, rank_alpha < k_column, n - 1 - rank_alpha < k_column
    )
    bottom_masks = np.where(
        direction_column, n - 1 - rank_beta < k_column, rank_beta < k_column
    )
    margins = masked_row_sums(alpha, top_masks) - masked_row_sums(beta, bottom_masks)
    return BatchSelection(
        top_masks=top_masks,
        bottom_masks=bottom_masks,
        margins=margins,
        method="case2",
    )


def _greedy_prefix_batch(gains: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Row-wise longest positive prefixes and their exact sums."""
    positive = gains > 0.0
    n = gains.shape[1]
    # argmin of a boolean row is its first False; all-True rows take n.
    k = np.where(positive.all(axis=1), n, np.argmin(positive, axis=1))
    sums = masked_row_sums(gains, np.arange(n) < k[:, None])
    return k, sums


def _rank_matrix(order: np.ndarray) -> np.ndarray:
    """Invert row-wise permutations: ``rank[p, order[p, i]] = i``."""
    rank = np.empty_like(order)
    np.put_along_axis(
        rank,
        order,
        np.broadcast_to(np.arange(order.shape[1]), order.shape),
        axis=1,
    )
    return rank


def select_traditional_batch(
    alpha: np.ndarray,
    beta: np.ndarray,
    require_odd: bool = False,
) -> BatchSelection:
    """Batch traditional RO PUF: every inverter included in both rings.

    Row ``p`` reproduces ``select_traditional(alpha[p], beta[p],
    require_odd)`` bit-for-bit, including the even-stage-count parity drop
    (the stage whose removal best preserves the margin magnitude, dropped
    from both rings).
    """
    alpha, beta = _validate_batch(alpha, beta)
    _count_selector("traditional", len(alpha))
    pair_count, n = alpha.shape
    selected = np.ones((pair_count, n), dtype=bool)
    if require_odd and n % 2 == 0:
        delta = alpha - beta
        totals = delta.sum(axis=1)
        drops = np.argmax(np.abs(totals[:, None] - delta), axis=1)
        selected[np.arange(pair_count), drops] = False
        margins = masked_row_sums(alpha, selected) - masked_row_sums(beta, selected)
    else:
        # All stages selected: the compressed row is the full row, whose
        # axis sum is bit-identical to the scalar np.sum.
        margins = alpha.sum(axis=1) - beta.sum(axis=1)
    return BatchSelection(
        top_masks=selected,
        bottom_masks=selected,
        margins=margins,
        method="traditional",
    )


#: Registry of batch selection methods, keyed like
#: :data:`repro.core.puf.SELECTION_METHODS`.
BATCH_SELECTION_METHODS: dict[str, Callable[..., BatchSelection]] = {
    "case1": select_case1_batch,
    "case2": select_case2_batch,
    "traditional": select_traditional_batch,
}
