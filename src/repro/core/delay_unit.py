"""Object view of a single delay unit (Fig. 2 of the paper).

A delay unit is one inverter plus the 2-to-1 MUX after it.  Its contribution
to the chain delay is ``d + d1`` when selected and ``d0`` when bypassed, so
the quantity that selecting the unit *adds* to the chain is::

    ddiff = d + d1 - d0

which is exactly what the paper measures and what the selection algorithms
consume.  This class is a convenience view over one index of a
:class:`~repro.silicon.chip.Chip`; bulk code uses the chip's vectorised
methods directly.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..silicon.chip import Chip
from ..variation.environment import NOMINAL_OPERATING_POINT, OperatingPoint

__all__ = ["DelayUnit"]


@dataclass(frozen=True)
class DelayUnit:
    """One inverter + MUX stage of a configurable RO.

    Attributes:
        chip: the chip this unit lives on.
        index: the unit's index on the chip.
    """

    chip: Chip
    index: int

    def __post_init__(self) -> None:
        if not 0 <= self.index < self.chip.unit_count:
            raise ValueError(
                f"unit index {self.index} out of range "
                f"[0, {self.chip.unit_count})"
            )

    def inverter_delay(self, op: OperatingPoint = NOMINAL_OPERATING_POINT) -> float:
        """The inverter delay ``d`` in seconds."""
        return float(self.chip.inverter_delays(op)[self.index])

    def mux_selected_delay(self, op: OperatingPoint = NOMINAL_OPERATING_POINT) -> float:
        """The MUX "1"-path delay ``d1`` in seconds."""
        return float(self.chip.mux_selected_delays(op)[self.index])

    def mux_bypass_delay(self, op: OperatingPoint = NOMINAL_OPERATING_POINT) -> float:
        """The MUX "0"-path delay ``d0`` in seconds."""
        return float(self.chip.mux_bypass_delays(op)[self.index])

    def delay(
        self, selected: bool, op: OperatingPoint = NOMINAL_OPERATING_POINT
    ) -> float:
        """Contribution to the chain delay given the selection bit."""
        if selected:
            return self.inverter_delay(op) + self.mux_selected_delay(op)
        return self.mux_bypass_delay(op)

    def ddiff(self, op: OperatingPoint = NOMINAL_OPERATING_POINT) -> float:
        """The paper's ``ddiff = d + d1 - d0`` for this unit."""
        return self.delay(True, op) - self.delay(False, op)
