"""Configuration vectors: which delay units participate in a ring.

The paper (Sec. III.A) calls the collection of all MUX selection bits of a
configurable RO its *configuration vector*: bit ``i`` is 1 when the i-th
inverter is included in the ring and 0 when the signal bypasses it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ConfigVector"]


@dataclass(frozen=True)
class ConfigVector:
    """An immutable configuration vector of a configurable RO.

    Attributes:
        bits: tuple of booleans; ``bits[i]`` selects inverter ``i``.
    """

    bits: tuple[bool, ...]

    def __post_init__(self) -> None:
        if len(self.bits) == 0:
            raise ValueError("configuration vector cannot be empty")
        object.__setattr__(self, "bits", tuple(bool(b) for b in self.bits))

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_string(cls, text: str) -> "ConfigVector":
        """Parse a vector from a bit string such as ``"110"`` (Sec. III.B)."""
        if not text or any(c not in "01" for c in text):
            raise ValueError(f"not a bit string: {text!r}")
        return cls(tuple(c == "1" for c in text))

    @classmethod
    def from_array(cls, array: np.ndarray) -> "ConfigVector":
        """Build a vector from any boolean/0-1 array-like."""
        array = np.asarray(array)
        return cls(tuple(bool(b) for b in array))

    @classmethod
    def all_selected(cls, length: int) -> "ConfigVector":
        """The traditional-RO configuration: every inverter included."""
        return cls((True,) * length)

    @classmethod
    def none_selected(cls, length: int) -> "ConfigVector":
        """All-bypass configuration (measurable as a chain, cannot oscillate)."""
        return cls((False,) * length)

    @classmethod
    def leave_one_out(cls, length: int, skipped: int) -> "ConfigVector":
        """All inverters selected except ``skipped`` (measurement scheme)."""
        if not 0 <= skipped < length:
            raise ValueError(f"skipped index {skipped} out of range [0, {length})")
        return cls(tuple(i != skipped for i in range(length)))

    @classmethod
    def single(cls, length: int, selected: int) -> "ConfigVector":
        """Only inverter ``selected`` included."""
        if not 0 <= selected < length:
            raise ValueError(f"selected index {selected} out of range [0, {length})")
        return cls(tuple(i == selected for i in range(length)))

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.bits)

    def __iter__(self):
        return iter(self.bits)

    def __getitem__(self, index: int) -> bool:
        return self.bits[index]

    def as_array(self) -> np.ndarray:
        """Boolean numpy view of the vector."""
        return np.array(self.bits, dtype=bool)

    def to_string(self) -> str:
        """Render as a bit string, MSB-style left-to-right: ``"110"``."""
        return "".join("1" if b else "0" for b in self.bits)

    @property
    def selected_count(self) -> int:
        """Number of inverters included in the ring."""
        return sum(self.bits)

    @property
    def selected_indices(self) -> tuple[int, ...]:
        """Indices of the included inverters."""
        return tuple(i for i, b in enumerate(self.bits) if b)

    @property
    def can_oscillate(self) -> bool:
        """True when the configured ring has an odd number of inverters."""
        return self.selected_count % 2 == 1

    def hamming_distance(self, other: "ConfigVector") -> int:
        """Number of differing selection bits between two vectors."""
        if len(other) != len(self):
            raise ValueError(
                f"length mismatch: {len(self)} vs {len(other)}"
            )
        return sum(a != b for a, b in zip(self.bits, other.bits))

    def __str__(self) -> str:
        return self.to_string()
