"""The paper's evaluation, one module per table/figure (DESIGN.md Sec. 4).

* E1/E2 — :mod:`~repro.experiments.nist_tables` (Tables I-II)
* E3 — :mod:`~repro.experiments.fig3_uniqueness` (Fig. 3)
* E4/E5/E10 — :mod:`~repro.experiments.config_tables` (Tables III-IV)
* E6/E7 — :mod:`~repro.experiments.fig4_reliability` (Fig. 4 + temperature)
* E8 — :mod:`~repro.experiments.table5_bits` (Table V)
* E9 — :mod:`~repro.experiments.sec4e_threshold` (Sec. IV.E)
"""

from . import (
    ablations,
    config_tables,
    extensions,
    fig3_uniqueness,
    fig4_reliability,
    nist_tables,
    sec4e_threshold,
    table5_bits,
)
from .common import (
    CONFIG_STUDY_STAGE_COUNT,
    RANDOMNESS_STAGE_COUNT,
    PipelineConfig,
    board_enrollment,
    board_puf,
    combine_streams,
    dataset_or_default,
    response_matrix,
    response_sweep_matrix,
)

__all__ = [
    "ablations",
    "config_tables",
    "extensions",
    "fig3_uniqueness",
    "fig4_reliability",
    "nist_tables",
    "sec4e_threshold",
    "table5_bits",
    "CONFIG_STUDY_STAGE_COUNT",
    "RANDOMNESS_STAGE_COUNT",
    "PipelineConfig",
    "board_enrollment",
    "board_puf",
    "combine_streams",
    "dataset_or_default",
    "response_matrix",
    "response_sweep_matrix",
]
