"""Ablation studies of the design choices DESIGN.md calls out.

* A1 — distiller on/off: raw PUF bits fail NIST (systematic variation),
  distilled bits pass (the paper's Sec. IV.A narrative).
* A2 — selector comparison: achieved margins of Case-1 / Case-2 /
  traditional / Maiti-Schaumont on identical hardware, plus the bit-sign
  identity between the three paper schemes.
* A3 — measurement-noise sweep: how jitter and repeat-averaging affect
  ddiff extraction accuracy and the selected margins.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis.tables import Table
from ..baselines.maiti_schaumont import select_best_word
from ..core.measurement import DelayMeasurer, measure_ddiffs_leave_one_out
from ..core.pairing import RingAllocation
from ..core.puf import ChipROPUF
from ..core.selection import select_case1, select_case2, select_traditional
from ..datasets.base import RODataset
from ..silicon.fabrication import FabricationProcess
from ..variation.noise import GaussianNoise
from .common import PipelineConfig, dataset_or_default
from .nist_tables import run_nist_experiment

__all__ = [
    "DistillerAblation",
    "run_distiller_ablation",
    "SelectorAblation",
    "run_selector_ablation",
    "NoiseAblation",
    "run_measurement_noise_ablation",
]


# ----------------------------------------------------------------------
# A1 — distiller on/off
# ----------------------------------------------------------------------


@dataclass
class DistillerAblation:
    """NIST outcome with and without the distiller.

    Attributes:
        raw_passed / distilled_passed: overall battery verdicts.
        raw_failed_tests / distilled_failed_tests: failing row labels.
        raw_min_proportion: worst passing proportion of the raw run.
    """

    raw_passed: bool
    distilled_passed: bool
    raw_failed_tests: list[str]
    distilled_failed_tests: list[str]
    raw_min_proportion: float


def run_distiller_ablation(
    dataset: RODataset | None = None, method: str = "case1"
) -> DistillerAblation:
    """Reproduce the paper's raw-fails / distilled-passes observation."""
    raw = run_nist_experiment(dataset, method=method, distilled=False)
    distilled = run_nist_experiment(dataset, method=method, distilled=True)
    return DistillerAblation(
        raw_passed=raw.passed,
        distilled_passed=distilled.passed,
        raw_failed_tests=[row.label for row in raw.report.failed_rows],
        distilled_failed_tests=[row.label for row in distilled.report.failed_rows],
        raw_min_proportion=min(
            (row.proportion for row in raw.report.rows), default=1.0
        ),
    )


def format_distiller_ablation(result: DistillerAblation) -> str:
    lines = [
        "A1 distiller ablation (paper: raw fails NIST, distilled passes)",
        f"  raw:       {'PASS' if result.raw_passed else 'FAIL'}"
        f" (failing: {', '.join(result.raw_failed_tests) or 'none'};"
        f" worst proportion {result.raw_min_proportion:.2f})",
        f"  distilled: {'PASS' if result.distilled_passed else 'FAIL'}"
        f" (failing: {', '.join(result.distilled_failed_tests) or 'none'})",
    ]
    return "\n".join(lines)


# ----------------------------------------------------------------------
# A2 — selector margins
# ----------------------------------------------------------------------


@dataclass
class SelectorAblation:
    """Margin statistics of the selection schemes on identical pairs.

    Attributes:
        mean_abs_margin: scheme name -> mean |margin| (seconds).
        min_abs_margin: scheme name -> minimum |margin|.
        bit_disagreements: pairs where Case-1/Case-2/traditional bits
            differ (expected 0 outside exact ties; see DESIGN.md).
        pair_count: pairs evaluated.
    """

    mean_abs_margin: dict[str, float]
    min_abs_margin: dict[str, float]
    bit_disagreements: int
    pair_count: int


def run_selector_ablation(
    dataset: RODataset | None = None,
    stage_count: int = 5,
    max_boards: int = 40,
) -> SelectorAblation:
    """Compare selector margins over dataset ring pairs.

    The Maiti-Schaumont scheme is evaluated on the same units regrouped
    two-per-stage, so every scheme sees identical silicon per pair (MS
    consumes twice the area per ring stage).
    """
    dataset = dataset_or_default(dataset)
    config = PipelineConfig(stage_count=stage_count, method="case1", distill=True)
    margins: dict[str, list[float]] = {
        "case1": [],
        "case2": [],
        "traditional": [],
        "maiti_schaumont": [],
    }
    disagreements = 0
    pair_count = 0
    distiller = config.distiller()
    for board in dataset.nominal_boards[:max_boards]:
        delays = board.delays_at(dataset.nominal)
        if distiller is not None:
            delays = distiller(delays, board.coords)
        window = 2 * stage_count
        pairs = len(delays) // window
        for pair in range(pairs):
            chunk = delays[pair * window : (pair + 1) * window]
            alpha = chunk[:stage_count]
            beta = chunk[stage_count:]
            s1 = select_case1(alpha, beta)
            s2 = select_case2(alpha, beta)
            st = select_traditional(alpha, beta)
            margins["case1"].append(s1.abs_margin)
            margins["case2"].append(s2.abs_margin)
            margins["traditional"].append(st.abs_margin)
            # Maiti-Schaumont on the same 2n units: n/2-stage rings with two
            # candidate inverters per stage (integer stage count required).
            ms_stages = max(1, stage_count // 2)
            ms_units = chunk[: 4 * ms_stages]
            tensor = ms_units.reshape(1, 2, ms_stages, 2)
            ms = select_best_word(tensor[0, 0], tensor[0, 1])
            margins["maiti_schaumont"].append(abs(ms.margin))
            bits = {s1.bit, s2.bit, st.bit}
            if len(bits) > 1:
                disagreements += 1
            pair_count += 1
    return SelectorAblation(
        mean_abs_margin={k: float(np.mean(v)) for k, v in margins.items()},
        min_abs_margin={k: float(np.min(v)) for k, v in margins.items()},
        bit_disagreements=disagreements,
        pair_count=pair_count,
    )


def format_selector_ablation(result: SelectorAblation) -> str:
    table = Table(
        headers=["scheme", "mean |margin| (ps)", "min |margin| (ps)"],
        title=f"A2 selector margins over {result.pair_count} pairs",
    )
    for scheme in ("traditional", "case1", "case2", "maiti_schaumont"):
        table.add_row(
            scheme,
            f"{result.mean_abs_margin[scheme] * 1e12:.1f}",
            f"{result.min_abs_margin[scheme] * 1e12:.2f}",
        )
    return (
        table.render()
        + "\nbit disagreements between case1/case2/traditional: "
        f"{result.bit_disagreements} (identity predicts 0 outside ties)"
    )


# ----------------------------------------------------------------------
# A3 — measurement-noise sweep
# ----------------------------------------------------------------------


@dataclass
class NoiseAblation:
    """Effect of measurement jitter on ddiff extraction and selection.

    Attributes:
        noise_sigmas: relative jitter levels swept.
        repeats: averaging repeats swept.
        ddiff_rms_error: (sigma, repeats) -> RMS ddiff error in seconds.
        margin_loss_percent: (sigma, repeats) -> mean % of margin lost by
            selecting on noisy instead of true ddiffs.
    """

    noise_sigmas: tuple[float, ...]
    repeats: tuple[int, ...]
    ddiff_rms_error: dict[tuple[float, int], float]
    margin_loss_percent: dict[tuple[float, int], float]


def run_measurement_noise_ablation(
    noise_sigmas: tuple[float, ...] = (1e-4, 5e-4, 2e-3, 8e-3),
    repeats: tuple[int, ...] = (1, 5, 25),
    stage_count: int = 7,
    pair_count: int = 24,
    seed: int = 7,
) -> NoiseAblation:
    """Sweep jitter and averaging on a freshly fabricated chip."""
    fab = FabricationProcess()
    chip = fab.fabricate(
        2 * stage_count * pair_count, np.random.default_rng(seed), name="noise-ablation"
    )
    allocation = RingAllocation(
        stage_count=stage_count, ring_count=2 * pair_count, layout="interleaved"
    )
    true_ddiffs = chip.ddiffs()

    ddiff_errors: dict[tuple[float, int], float] = {}
    margin_losses: dict[tuple[float, int], float] = {}
    for sigma in noise_sigmas:
        for repeat in repeats:
            measurer = DelayMeasurer(
                noise=GaussianNoise(relative_sigma=sigma),
                repeats=repeat,
                rng=np.random.default_rng(seed + 1),
            )
            errors = []
            losses = []
            for pair in range(allocation.pair_count):
                top_idx, bottom_idx = allocation.pair_rings(pair)
                puf = ChipROPUF(
                    chip=chip, allocation=allocation, method="case1",
                    measurer=measurer,
                )
                top_ring = puf.ring(top_idx)
                bottom_ring = puf.ring(bottom_idx)
                top_est = measure_ddiffs_leave_one_out(measurer, top_ring)
                bottom_est = measure_ddiffs_leave_one_out(measurer, bottom_ring)
                top_true = true_ddiffs[top_ring.unit_indices]
                bottom_true = true_ddiffs[bottom_ring.unit_indices]
                errors.append(
                    np.sqrt(
                        np.mean(
                            np.concatenate(
                                [
                                    top_est.ddiffs - top_true,
                                    bottom_est.ddiffs - bottom_true,
                                ]
                            )
                            ** 2
                        )
                    )
                )
                noisy_selection = select_case1(top_est.ddiffs, bottom_est.ddiffs)
                true_selection = select_case1(top_true, bottom_true)
                achieved = abs(
                    float(
                        np.sum(top_true[noisy_selection.top_config.as_array()])
                        - np.sum(
                            bottom_true[noisy_selection.bottom_config.as_array()]
                        )
                    )
                )
                optimal = true_selection.abs_margin
                if optimal > 0:
                    losses.append(100.0 * max(optimal - achieved, 0.0) / optimal)
            ddiff_errors[(sigma, repeat)] = float(np.mean(errors))
            margin_losses[(sigma, repeat)] = float(np.mean(losses))
    return NoiseAblation(
        noise_sigmas=noise_sigmas,
        repeats=repeats,
        ddiff_rms_error=ddiff_errors,
        margin_loss_percent=margin_losses,
    )


def format_noise_ablation(result: NoiseAblation) -> str:
    table = Table(
        headers=["jitter sigma", "repeats", "ddiff RMS error (ps)", "margin loss (%)"],
        title="A3 measurement-noise ablation",
    )
    for sigma in result.noise_sigmas:
        for repeat in result.repeats:
            table.add_row(
                f"{sigma:g}",
                repeat,
                f"{result.ddiff_rms_error[(sigma, repeat)] * 1e12:.2f}",
                f"{result.margin_loss_percent[(sigma, repeat)]:.2f}",
            )
    return table.render()
