"""Ablation studies of the design choices DESIGN.md calls out.

* A1 — distiller on/off: raw PUF bits fail NIST (systematic variation),
  distilled bits pass (the paper's Sec. IV.A narrative).
* A2 — selector comparison: achieved margins of Case-1 / Case-2 /
  traditional / Maiti-Schaumont on identical hardware, plus the bit-sign
  identity between the three paper schemes.
* A3 — measurement-noise sweep: how jitter and repeat-averaging affect
  ddiff extraction accuracy and the selected margins.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis.tables import Table
from ..baselines.maiti_schaumont import select_best_word
from ..core.measurement import DelayMeasurer, measure_ddiffs_leave_one_out_batch
from ..core.pairing import RingAllocation
from ..core.ring import ConfigurableRO
from ..core.selection_batch import (
    select_case1_batch,
    select_case2_batch,
    select_traditional_batch,
)
from ..datasets.base import RODataset
from ..silicon.fabrication import FabricationProcess
from ..variation.noise import GaussianNoise
from .common import PipelineConfig, dataset_or_default
from .nist_tables import run_nist_experiment

__all__ = [
    "DistillerAblation",
    "run_distiller_ablation",
    "SelectorAblation",
    "run_selector_ablation",
    "NoiseAblation",
    "run_measurement_noise_ablation",
]


# ----------------------------------------------------------------------
# A1 — distiller on/off
# ----------------------------------------------------------------------


@dataclass
class DistillerAblation:
    """NIST outcome with and without the distiller.

    Attributes:
        raw_passed / distilled_passed: overall battery verdicts.
        raw_failed_tests / distilled_failed_tests: failing row labels.
        raw_min_proportion: worst passing proportion of the raw run.
    """

    raw_passed: bool
    distilled_passed: bool
    raw_failed_tests: list[str]
    distilled_failed_tests: list[str]
    raw_min_proportion: float


def run_distiller_ablation(
    dataset: RODataset | None = None, method: str = "case1"
) -> DistillerAblation:
    """Reproduce the paper's raw-fails / distilled-passes observation."""
    raw = run_nist_experiment(dataset, method=method, distilled=False)
    distilled = run_nist_experiment(dataset, method=method, distilled=True)
    return DistillerAblation(
        raw_passed=raw.passed,
        distilled_passed=distilled.passed,
        raw_failed_tests=[row.label for row in raw.report.failed_rows],
        distilled_failed_tests=[row.label for row in distilled.report.failed_rows],
        raw_min_proportion=min(
            (row.proportion for row in raw.report.rows), default=1.0
        ),
    )


def format_distiller_ablation(result: DistillerAblation) -> str:
    lines = [
        "A1 distiller ablation (paper: raw fails NIST, distilled passes)",
        f"  raw:       {'PASS' if result.raw_passed else 'FAIL'}"
        f" (failing: {', '.join(result.raw_failed_tests) or 'none'};"
        f" worst proportion {result.raw_min_proportion:.2f})",
        f"  distilled: {'PASS' if result.distilled_passed else 'FAIL'}"
        f" (failing: {', '.join(result.distilled_failed_tests) or 'none'})",
    ]
    return "\n".join(lines)


# ----------------------------------------------------------------------
# A2 — selector margins
# ----------------------------------------------------------------------


@dataclass
class SelectorAblation:
    """Margin statistics of the selection schemes on identical pairs.

    Attributes:
        mean_abs_margin: scheme name -> mean |margin| (seconds).
        min_abs_margin: scheme name -> minimum |margin|.
        bit_disagreements: pairs where Case-1/Case-2/traditional bits
            differ (expected 0 outside exact ties; see DESIGN.md).
        pair_count: pairs evaluated.
    """

    mean_abs_margin: dict[str, float]
    min_abs_margin: dict[str, float]
    bit_disagreements: int
    pair_count: int


def run_selector_ablation(
    dataset: RODataset | None = None,
    stage_count: int = 5,
    max_boards: int = 40,
) -> SelectorAblation:
    """Compare selector margins over dataset ring pairs.

    The Maiti-Schaumont scheme is evaluated on the same units regrouped
    two-per-stage, so every scheme sees identical silicon per pair (MS
    consumes twice the area per ring stage).
    """
    dataset = dataset_or_default(dataset)
    config = PipelineConfig(stage_count=stage_count, method="case1", distill=True)
    margins: dict[str, list[float]] = {
        "case1": [],
        "case2": [],
        "traditional": [],
        "maiti_schaumont": [],
    }
    disagreements = 0
    pair_count = 0
    distiller = config.distiller()
    for board in dataset.nominal_boards[:max_boards]:
        delays = board.delays_at(dataset.nominal)
        if distiller is not None:
            delays = distiller(delays, board.coords)
        window = 2 * stage_count
        pairs = len(delays) // window
        if pairs == 0:
            continue
        # One batch selector call per scheme per board; bit-identical to
        # the historical per-pair scalar-selector loop.
        chunks = delays[: pairs * window].reshape(pairs, 2, stage_count)
        alpha = chunks[:, 0, :]
        beta = chunks[:, 1, :]
        batch1 = select_case1_batch(alpha, beta)
        batch2 = select_case2_batch(alpha, beta)
        batch_trad = select_traditional_batch(alpha, beta)
        margins["case1"].extend(np.abs(batch1.margins).tolist())
        margins["case2"].extend(np.abs(batch2.margins).tolist())
        margins["traditional"].extend(np.abs(batch_trad.margins).tolist())
        disagreements += int(
            np.sum(
                (batch1.bits != batch2.bits) | (batch1.bits != batch_trad.bits)
            )
        )
        for pair in range(pairs):
            chunk = chunks[pair].reshape(-1)
            # Maiti-Schaumont on the same 2n units: n/2-stage rings with two
            # candidate inverters per stage (integer stage count required).
            ms_stages = max(1, stage_count // 2)
            ms_units = chunk[: 4 * ms_stages]
            tensor = ms_units.reshape(1, 2, ms_stages, 2)
            ms = select_best_word(tensor[0, 0], tensor[0, 1])
            margins["maiti_schaumont"].append(abs(ms.margin))
        pair_count += pairs
    return SelectorAblation(
        mean_abs_margin={k: float(np.mean(v)) for k, v in margins.items()},
        min_abs_margin={k: float(np.min(v)) for k, v in margins.items()},
        bit_disagreements=disagreements,
        pair_count=pair_count,
    )


def format_selector_ablation(result: SelectorAblation) -> str:
    table = Table(
        headers=["scheme", "mean |margin| (ps)", "min |margin| (ps)"],
        title=f"A2 selector margins over {result.pair_count} pairs",
    )
    for scheme in ("traditional", "case1", "case2", "maiti_schaumont"):
        table.add_row(
            scheme,
            f"{result.mean_abs_margin[scheme] * 1e12:.1f}",
            f"{result.min_abs_margin[scheme] * 1e12:.2f}",
        )
    return (
        table.render()
        + "\nbit disagreements between case1/case2/traditional: "
        f"{result.bit_disagreements} (identity predicts 0 outside ties)"
    )


# ----------------------------------------------------------------------
# A3 — measurement-noise sweep
# ----------------------------------------------------------------------


@dataclass
class NoiseAblation:
    """Effect of measurement jitter on ddiff extraction and selection.

    Attributes:
        noise_sigmas: relative jitter levels swept.
        repeats: averaging repeats swept.
        ddiff_rms_error: (sigma, repeats) -> RMS ddiff error in seconds.
        margin_loss_percent: (sigma, repeats) -> mean % of margin lost by
            selecting on noisy instead of true ddiffs.
    """

    noise_sigmas: tuple[float, ...]
    repeats: tuple[int, ...]
    ddiff_rms_error: dict[tuple[float, int], float]
    margin_loss_percent: dict[tuple[float, int], float]


def run_measurement_noise_ablation(
    noise_sigmas: tuple[float, ...] = (1e-4, 5e-4, 2e-3, 8e-3),
    repeats: tuple[int, ...] = (1, 5, 25),
    stage_count: int = 7,
    pair_count: int = 24,
    seed: int = 7,
) -> NoiseAblation:
    """Sweep jitter and averaging on a freshly fabricated chip."""
    fab = FabricationProcess()
    chip = fab.fabricate(
        2 * stage_count * pair_count, np.random.default_rng(seed), name="noise-ablation"
    )
    allocation = RingAllocation(
        stage_count=stage_count, ring_count=2 * pair_count, layout="interleaved"
    )
    rings = [
        ConfigurableRO(
            chip=chip,
            unit_indices=allocation.ring_units(ring),
            name=f"noise-ablation/ring{ring}",
        )
        for ring in range(allocation.ring_count)
    ]
    pairs = allocation.pair_ring_matrix()
    unit_matrix = np.stack([ring.unit_indices for ring in rings])
    true_matrix = chip.ddiffs()[unit_matrix]
    true_alpha = true_matrix[pairs[:, 0]]
    true_beta = true_matrix[pairs[:, 1]]
    true_batch = select_case1_batch(true_alpha, true_beta)
    optimal = np.abs(true_batch.margins)

    ddiff_errors: dict[tuple[float, int], float] = {}
    margin_losses: dict[tuple[float, int], float] = {}
    for sigma in noise_sigmas:
        for repeat in repeats:
            measurer = DelayMeasurer(
                noise=GaussianNoise(relative_sigma=sigma),
                repeats=repeat,
                rng=np.random.default_rng(seed + 1),
            )
            # One leave-one-out tensor for the whole board ("enroll-v1"
            # draw order) instead of 2 x pair_count sequential extractions.
            estimate = measure_ddiffs_leave_one_out_batch(measurer, rings)
            noisy_alpha = estimate.ddiffs[pairs[:, 0]]
            noisy_beta = estimate.ddiffs[pairs[:, 1]]
            residuals = np.concatenate(
                [noisy_alpha - true_alpha, noisy_beta - true_beta], axis=1
            )
            errors = np.sqrt(np.mean(residuals**2, axis=1))
            noisy_batch = select_case1_batch(noisy_alpha, noisy_beta)
            achieved = np.abs(
                (true_alpha * noisy_batch.top_masks).sum(axis=1)
                - (true_beta * noisy_batch.bottom_masks).sum(axis=1)
            )
            valid = optimal > 0
            losses = (
                100.0
                * np.maximum(optimal[valid] - achieved[valid], 0.0)
                / optimal[valid]
            )
            ddiff_errors[(sigma, repeat)] = float(np.mean(errors))
            margin_losses[(sigma, repeat)] = float(np.mean(losses))
    return NoiseAblation(
        noise_sigmas=noise_sigmas,
        repeats=repeats,
        ddiff_rms_error=ddiff_errors,
        margin_loss_percent=margin_losses,
    )


def format_noise_ablation(result: NoiseAblation) -> str:
    table = Table(
        headers=["jitter sigma", "repeats", "ddiff RMS error (ps)", "margin loss (%)"],
        title="A3 measurement-noise ablation",
    )
    for sigma in result.noise_sigmas:
        for repeat in result.repeats:
            table.add_row(
                f"{sigma:g}",
                repeat,
                f"{result.ddiff_rms_error[(sigma, repeat)] * 1e12:.2f}",
                f"{result.margin_loss_percent[(sigma, repeat)]:.2f}",
            )
    return table.render()
