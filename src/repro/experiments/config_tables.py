"""Tables III / IV and the n/2 conjecture: configuration-vector diversity.

Sec. IV.C builds, on each of the 194 boards, 16 RO pairs with n = 15 units
per ring, and studies the chosen configuration vectors: Case-1 yields 3104
15-bit vectors, Case-2 3104 30-bit vectors (top and bottom concatenated).
The paper tabulates the percentage of vector pairs at each Hamming distance
(all even — a consequence of the odd-selected-count constraint) and finds
no duplicates; it also conjectures the optimum selects about n/2 units
(Sec. III.D), verified here by the selected-count distribution.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis.tables import Table, format_percent
from ..datasets.base import RODataset
from ..metrics.hamming import hamming_distance_histogram
from .common import (
    CONFIG_STUDY_STAGE_COUNT,
    PipelineConfig,
    board_enrollment,
    dataset_or_default,
)

__all__ = ["ConfigStudyResult", "run_config_study"]


@dataclass
class ConfigStudyResult:
    """Configuration-vector statistics for one selection method.

    Attributes:
        method: selection method studied.
        vectors: the configuration bit matrix (3104 x 15 for Case-1,
            3104 x 30 for Case-2 at paper scale).
        hd_distances / hd_counts: pairwise-HD histogram.
        selected_counts: per-pair number of selected units (per ring).
        stage_count: the ring length n.
    """

    method: str
    vectors: np.ndarray
    hd_distances: np.ndarray
    hd_counts: np.ndarray
    selected_counts: np.ndarray
    stage_count: int

    @property
    def vector_count(self) -> int:
        return self.vectors.shape[0]

    @property
    def duplicate_pairs(self) -> int:
        """Vector pairs at Hamming distance zero."""
        return int(self.hd_counts[0])

    @property
    def hd_percentages(self) -> np.ndarray:
        total = self.hd_counts.sum()
        return 100.0 * self.hd_counts / total if total else self.hd_counts * 0.0

    @property
    def mean_selected_fraction(self) -> float:
        """Average fraction of units selected (conjecture: about 1/2)."""
        return float(np.mean(self.selected_counts)) / self.stage_count

    @property
    def odd_hd_pairs(self) -> int:
        """Vector pairs at odd HD (zero when odd counts are enforced)."""
        return int(self.hd_counts[1::2].sum())


def run_config_study(
    dataset: RODataset | None = None,
    method: str = "case1",
    stage_count: int = CONFIG_STUDY_STAGE_COUNT,
    distilled: bool = True,
) -> ConfigStudyResult:
    """Reproduce Table III (``"case1"``) or Table IV (``"case2"``)."""
    dataset = dataset_or_default(dataset)
    config = PipelineConfig(
        stage_count=stage_count, method=method, distill=distilled
    )
    vectors = []
    selected_counts = []
    for board in dataset.nominal_boards:
        enrollment = board_enrollment(board, config, dataset.nominal)
        for selection in enrollment.selections:
            top = selection.top_config.as_array()
            if method == "case2":
                bottom = selection.bottom_config.as_array()
                vectors.append(np.concatenate([top, bottom]))
            else:
                vectors.append(top)
            selected_counts.append(selection.selected_count)
    matrix = np.stack(vectors)
    distances, counts = hamming_distance_histogram(matrix)
    return ConfigStudyResult(
        method=method,
        vectors=matrix,
        hd_distances=distances,
        hd_counts=counts,
        selected_counts=np.asarray(selected_counts),
        stage_count=stage_count,
    )


def format_result(result: ConfigStudyResult) -> str:
    """Paper-style HD-percentage table plus the conjecture check."""
    table_name = "Table III" if result.method == "case1" else "Table IV"
    table = Table(
        headers=["HD", "%"],
        title=(
            f"{table_name}-style HD distribution of best configurations "
            f"({result.method}, {result.vector_count} vectors of "
            f"{result.vectors.shape[1]} bits)"
        ),
    )
    percentages = result.hd_percentages
    for distance in range(0, result.vectors.shape[1] + 1, 2):
        table.add_row(distance, format_percent(percentages[distance]))
    lines = [table.render()]
    lines.append(
        f"duplicate pairs (HD=0): {result.duplicate_pairs} "
        f"({format_percent(percentages[0])}%)  |  odd-HD pairs: "
        f"{result.odd_hd_pairs}"
    )
    lines.append(
        f"mean selected fraction: {result.mean_selected_fraction:.3f} "
        f"(conjecture: about 0.5; n={result.stage_count})"
    )
    return "\n".join(lines)
