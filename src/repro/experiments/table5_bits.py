"""Table V: total number of PUF bits per board for every scheme.

With 512 ROs per board and rings of n units (largest multiple of 16 rings),
the configurable and traditional schemes yield one bit per ring pair and
1-out-of-8 one bit per 8 rings:

    n:            3   5   7   9
    configurable 80  48  32  24
    traditional  80  48  32  24
    1-out-of-8   20  12   8   6
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.tables import Table
from ..core.pairing import allocate_rings

__all__ = ["BitBudgetRow", "run_table5", "PAPER_TABLE5"]

#: The paper's Table V values: n -> (configurable, traditional, 1-of-8).
PAPER_TABLE5 = {
    3: (80, 80, 20),
    5: (48, 48, 12),
    7: (32, 32, 8),
    9: (24, 24, 6),
}


@dataclass(frozen=True)
class BitBudgetRow:
    """Bit yield of all three schemes at one ring length.

    Attributes:
        stage_count: the ring length n.
        configurable_bits / traditional_bits / one_of_8_bits: bits per board.
        ring_count: rings carved from the board.
    """

    stage_count: int
    configurable_bits: int
    traditional_bits: int
    one_of_8_bits: int
    ring_count: int

    @property
    def hardware_advantage(self) -> float:
        """Configurable bits per 1-out-of-8 bit (the paper's 4x claim)."""
        if self.one_of_8_bits == 0:
            return float("inf")
        return self.configurable_bits / self.one_of_8_bits

    def matches_paper(self) -> bool:
        expected = PAPER_TABLE5.get(self.stage_count)
        if expected is None:
            return True
        return (
            self.configurable_bits,
            self.traditional_bits,
            self.one_of_8_bits,
        ) == expected


def run_table5(
    ro_count: int = 512, stage_counts: tuple[int, ...] = (3, 5, 7, 9)
) -> list[BitBudgetRow]:
    """Reproduce Table V from the ring-allocation rule."""
    rows = []
    for stage_count in stage_counts:
        allocation = allocate_rings(ro_count, stage_count)
        rows.append(
            BitBudgetRow(
                stage_count=stage_count,
                configurable_bits=allocation.pair_count,
                traditional_bits=allocation.pair_count,
                one_of_8_bits=allocation.group_of_8_count,
                ring_count=allocation.ring_count,
            )
        )
    return rows


def format_result(rows: list[BitBudgetRow]) -> str:
    """Table V layout plus the hardware-efficiency ratio."""
    table = Table(
        headers=["scheme"] + [f"n={row.stage_count}" for row in rows],
        title="Table V-style total number of bits per board (512 ROs)",
    )
    table.add_row("Configurable PUFs", *[row.configurable_bits for row in rows])
    table.add_row("Traditional PUFs", *[row.traditional_bits for row in rows])
    table.add_row("1-out-of-8 PUFs", *[row.one_of_8_bits for row in rows])
    ratios = ", ".join(
        f"n={row.stage_count}: {row.hardware_advantage:.0f}x" for row in rows
    )
    match = all(row.matches_paper() for row in rows)
    return (
        table.render()
        + f"\nhardware advantage over 1-out-of-8: {ratios}"
        + f"\nmatches paper exactly: {'yes' if match else 'NO'}"
    )
