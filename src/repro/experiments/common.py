"""Shared plumbing of the experiment modules.

The paper's evaluation (Sec. IV) repeatedly runs one pipeline: take a
board's RO delays (each dataset RO standing in for one inverter), optionally
distil away the systematic variation, carve the units into ring pairs, run a
selection method, and read out bits.  This module owns that pipeline so each
experiment file only describes what is specific to its table or figure.

Experiments enforce odd selected counts (``require_odd=True``): a deployed
ring must free-run to be measured, and this constraint is also what makes
the configuration-vector Hamming distances all-even, as observed in the
paper's Tables III and IV (see DESIGN.md).

Both halves of the board pipeline are vectorized: :func:`board_enrollment`
goes through ``BoardROPUF.enroll``, which selects every pair in one batch
pass (:mod:`repro.core.selection_batch`, byte-identical to the historical
per-pair loop), and the response helpers ride the batch response engine
(:mod:`repro.core.batch`).  Multi-corner studies use
``BoardROPUF.enroll_sweep`` to enroll all corners in one selector call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..core.pairing import allocate_rings
from ..core.puf import BoardROPUF, Enrollment
from ..datasets.base import BoardRecord, RODataset
from ..datasets.vtlike import default_vt_dataset
from ..distiller.regression import PolynomialDistiller
from ..variation.environment import NOMINAL_OPERATING_POINT, OperatingPoint

__all__ = [
    "PipelineConfig",
    "board_puf",
    "board_enrollment",
    "response_matrix",
    "response_sweep_matrix",
    "combine_streams",
    "dataset_or_default",
]

#: The paper's main configuration: n = 5 inverters per RO for randomness and
#: uniqueness experiments (Sec. IV.A), n = 15 for configuration studies.
RANDOMNESS_STAGE_COUNT = 5
CONFIG_STUDY_STAGE_COUNT = 15


@dataclass
class PipelineConfig:
    """How to turn one board into PUF bits.

    Attributes:
        stage_count: inverters per ring (the paper's ``n``).
        method: ``"case1"``, ``"case2"`` or ``"traditional"``.
        distill: remove systematic variation before selection (the paper
            applies the [18] distiller for the randomness experiments).
        distiller_degree: polynomial degree of the distiller.
        require_odd: enforce odd selected counts (free-running rings).
    """

    stage_count: int = RANDOMNESS_STAGE_COUNT
    method: str = "case1"
    distill: bool = True
    distiller_degree: int = 2
    require_odd: bool = True

    def distiller(self) -> PolynomialDistiller | None:
        if not self.distill:
            return None
        return PolynomialDistiller(degree=self.distiller_degree)


def _make_provider(
    board: BoardRecord, config: PipelineConfig
) -> Callable[[OperatingPoint], np.ndarray]:
    """A delay provider that distils lazily, caching per corner."""
    distiller = config.distiller()
    cache: dict[OperatingPoint, np.ndarray] = {}

    def provider(op: OperatingPoint) -> np.ndarray:
        if op not in cache:
            delays = board.delays_at(op)
            if distiller is not None:
                delays = distiller(delays, board.coords)
            cache[op] = delays
        return cache[op]

    return provider


def board_puf(board: BoardRecord, config: PipelineConfig) -> BoardROPUF:
    """Build the configured PUF over one board."""
    allocation = allocate_rings(board.ro_count, config.stage_count)
    if allocation.pair_count == 0:
        raise ValueError(
            f"board {board.name!r} ({board.ro_count} ROs) yields no "
            f"{config.stage_count}-stage ring pair"
        )
    return BoardROPUF(
        delay_provider=_make_provider(board, config),
        allocation=allocation,
        method=config.method,
        require_odd=config.require_odd,
    )


def board_enrollment(
    board: BoardRecord,
    config: PipelineConfig,
    op: OperatingPoint = NOMINAL_OPERATING_POINT,
) -> Enrollment:
    """Enroll one board at an operating point."""
    return board_puf(board, config).enroll(op)


def response_matrix(
    boards: list[BoardRecord],
    config: PipelineConfig,
    op: OperatingPoint = NOMINAL_OPERATING_POINT,
    enroll_op: OperatingPoint | None = None,
) -> np.ndarray:
    """(board, bit) response matrix across a board population.

    By default each board enrolls at ``op`` and contributes its reference
    bits (the historical behaviour).  With ``enroll_op`` given, each board
    enrolls there instead and the row is *regenerated* at ``op`` through the
    vectorized batch engine (:mod:`repro.core.batch`).
    """
    if not boards:
        raise ValueError("no boards supplied")
    if enroll_op is None or enroll_op == op:
        rows = [board_enrollment(board, config, op).bits for board in boards]
        return np.stack(rows)
    rows = []
    for board in boards:
        puf = board_puf(board, config)
        rows.append(puf.response(op, puf.enroll(enroll_op)))
    return np.stack(rows)


def response_sweep_matrix(
    boards: list[BoardRecord],
    config: PipelineConfig,
    ops: list[OperatingPoint],
    enroll_op: OperatingPoint = NOMINAL_OPERATING_POINT,
) -> np.ndarray:
    """(board, op, bit) responses regenerated across many corners.

    Each board enrolls once at ``enroll_op``; all test corners are then
    evaluated in a single vectorized ``response_sweep`` pass per board —
    the batch-engine fast path the Fig. 4/5 reliability sweeps use.
    """
    if not boards:
        raise ValueError("no boards supplied")
    layers = []
    for board in boards:
        puf = board_puf(board, config)
        layers.append(puf.response_sweep(ops, puf.enroll(enroll_op)))
    return np.stack(layers)


def combine_streams(bits: np.ndarray, boards_per_stream: int = 2) -> np.ndarray:
    """Concatenate consecutive boards' responses into longer streams.

    The paper merges two 48-bit board outputs into each 96-bit NIST input,
    turning 194 boards into 97 sequences.  Leftover boards are dropped.
    """
    bits = np.asarray(bits)
    if bits.ndim != 2:
        raise ValueError(f"expected 2-D bits, got shape {bits.shape}")
    if boards_per_stream < 1:
        raise ValueError("boards_per_stream must be >= 1")
    stream_count = bits.shape[0] // boards_per_stream
    used = bits[: stream_count * boards_per_stream]
    return used.reshape(stream_count, boards_per_stream * bits.shape[1])


def dataset_or_default(dataset: RODataset | None) -> RODataset:
    """The supplied dataset, or the cached default synthetic VT dataset."""
    if dataset is not None:
        return dataset
    return default_vt_dataset()
