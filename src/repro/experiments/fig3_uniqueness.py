"""Fig. 3: inter-chip Hamming distance of the configurable PUF outputs.

The paper reports, over the 97 96-bit streams, mean HD 46.88 bits
(sigma 4.89) for Case-1 and 46.79 bits (sigma 4.95) for Case-2 — a
"perfect bell shape" centred near half the bit count, i.e. unique,
collision-free responses.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.histogram import histogram_lines
from ..datasets.base import RODataset
from ..metrics.uniqueness import UniquenessReport, uniqueness_report
from .nist_tables import nist_streams

__all__ = ["UniquenessExperimentResult", "run_uniqueness_experiment"]


@dataclass
class UniquenessExperimentResult:
    """Fig. 3 for both cases.

    Attributes:
        case1 / case2: uniqueness reports over the 96-bit streams.
    """

    case1: UniquenessReport
    case2: UniquenessReport


def run_uniqueness_experiment(
    dataset: RODataset | None = None,
    distilled: bool = True,
) -> UniquenessExperimentResult:
    """Reproduce Fig. 3 (both histograms)."""
    case1_streams = nist_streams(dataset, method="case1", distilled=distilled)
    case2_streams = nist_streams(dataset, method="case2", distilled=distilled)
    return UniquenessExperimentResult(
        case1=uniqueness_report(case1_streams),
        case2=uniqueness_report(case2_streams),
    )


def format_result(result: UniquenessExperimentResult) -> str:
    """Render both histograms with the paper's summary statistics."""
    sections = []
    paper_values = {"case1": (46.88, 4.89), "case2": (46.79, 4.95)}
    for name, report in (("case1", result.case1), ("case2", result.case2)):
        paper_mean, paper_std = paper_values[name]
        sections.append(
            f"Fig. 3 ({name}): inter-chip HD over {report.stream_count} "
            f"streams of {report.bit_count} bits\n"
            f"  measured mean {report.mean_distance:.2f} bits "
            f"(paper: {paper_mean}), std {report.std_distance:.2f} "
            f"(paper: {paper_std}), uniqueness "
            f"{report.uniqueness_percent:.1f}% (ideal 50%)\n"
            f"  collisions: {'none' if not report.has_collision else 'PRESENT'}\n"
            + histogram_lines(
                report.histogram_distances, report.histogram_counts
            )
        )
    return "\n\n".join(sections)
