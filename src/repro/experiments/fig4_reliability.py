"""Fig. 4 and the temperature companion: bit flips across environments.

For each of the five environment-swept boards and each ring length
n in {3, 5, 7, 9}, the paper plots seven bars of bit-flip percentages under
supply-voltage variation:

* bars 1-5 — the configurable PUF enrolled (best configuration found) at
  each of the five voltages, then tested at the other four;
* bar 6 — the traditional PUF (enrolled at the 1.20 V / 25 C baseline);
* bar 7 — the 1-out-of-8 PUF (same baseline), which never flips.

Key observations reproduced: the traditional bar is the tallest; the
configurable bars shrink as n grows (0% from n = 7); mid-voltage enrollment
is the sweet spot; under temperature variation only the traditional PUF
flips.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..analysis.tables import Table
from ..baselines.one_out_of_eight import OneOutOfEightPUF
from ..core.pairing import allocate_rings
from ..core.puf import BoardROPUF, Enrollment
from ..datasets.base import BoardRecord, RODataset
from ..metrics.reliability import bit_flip_report
from ..variation.corners import temperature_corners, voltage_corners
from ..variation.environment import NOMINAL_OPERATING_POINT, OperatingPoint
from .common import PipelineConfig, board_puf, dataset_or_default

__all__ = [
    "BoardReliability",
    "ReliabilityExperimentResult",
    "run_voltage_reliability",
    "run_temperature_reliability",
]

#: Ring lengths swept in Fig. 4.
FIG4_STAGE_COUNTS = (3, 5, 7, 9)


@dataclass
class BoardReliability:
    """One subplot of Fig. 4: one board at one ring length.

    Attributes:
        board: board name.
        stage_count: the ring length n.
        configurable_flip_percent: flip % per enrollment corner (5 values,
            ordered like the swept corners).
        traditional_flip_percent: flip % of the traditional PUF.
        one_of_8_flip_percent: flip % of the 1-out-of-8 PUF.
        bit_count: configurable/traditional bits (Table V row).
        one_of_8_bit_count: 1-out-of-8 bits.
    """

    board: str
    stage_count: int
    configurable_flip_percent: np.ndarray
    traditional_flip_percent: float
    one_of_8_flip_percent: float
    bit_count: int
    one_of_8_bit_count: int


@dataclass
class ReliabilityExperimentResult:
    """All subplots of a Fig. 4-style sweep.

    Attributes:
        axis_label: ``"voltage"`` or ``"temperature"``.
        corners: the swept operating points.
        subplots: one entry per (board, n).
        method: configurable selection method used.
    """

    axis_label: str
    corners: list[OperatingPoint]
    subplots: list[BoardReliability] = field(default_factory=list)
    method: str = "case1"

    def subplot(self, board: str, stage_count: int) -> BoardReliability:
        for candidate in self.subplots:
            if candidate.board == board and candidate.stage_count == stage_count:
                return candidate
        raise KeyError(f"no subplot for board={board!r}, n={stage_count}")

    def mean_configurable_flips(self, stage_count: int) -> float:
        """Average configurable flip % over boards and enrollment corners."""
        values = [
            float(np.mean(s.configurable_flip_percent))
            for s in self.subplots
            if s.stage_count == stage_count
        ]
        return float(np.mean(values))

    def mean_traditional_flips(self, stage_count: int) -> float:
        values = [
            s.traditional_flip_percent
            for s in self.subplots
            if s.stage_count == stage_count
        ]
        return float(np.mean(values))

    def max_one_of_8_flips(self) -> float:
        return max((s.one_of_8_flip_percent for s in self.subplots), default=0.0)


def _configurable_flips(
    puf: BoardROPUF,
    enrollment: Enrollment,
    test_ops: list[OperatingPoint],
) -> float:
    """The paper's flip metric for one enrollment corner.

    All test corners are evaluated in one vectorized ``response_sweep``
    pass; the enrollment comes from the caller's single ``enroll_sweep``
    over every corner (board enrollment is deterministic, so each one
    equals a per-corner ``enroll`` call exactly).
    """
    enroll_op = enrollment.operating_point
    observations = puf.response_sweep(
        [op for op in test_ops if op != enroll_op], enrollment
    )
    return bit_flip_report(enrollment.bits, observations).flip_percent


def _baseline_flips(
    board: BoardRecord,
    stage_count: int,
    baseline_op: OperatingPoint,
    test_ops: list[OperatingPoint],
) -> tuple[float, float, int, int]:
    """Traditional and 1-out-of-8 flip percentages from the same rings."""
    traditional_config = PipelineConfig(
        stage_count=stage_count, method="traditional", distill=False
    )
    puf = board_puf(board, traditional_config)
    enrollment = puf.enroll(baseline_op)
    observations = puf.response_sweep(
        [op for op in test_ops if op != baseline_op], enrollment
    )
    traditional = bit_flip_report(enrollment.bits, observations).flip_percent

    allocation = allocate_rings(board.ro_count, stage_count)
    one_of_8 = OneOutOfEightPUF(
        delay_provider=board.delay_provider(), allocation=allocation
    )
    group_enrollment = one_of_8.enroll(baseline_op)
    group_observations = np.stack(
        [
            one_of_8.response(op, group_enrollment)
            for op in test_ops
            if op != baseline_op
        ]
    )
    one_of_8_flips = bit_flip_report(
        group_enrollment.bits, group_observations
    ).flip_percent
    return traditional, one_of_8_flips, puf.bit_count, one_of_8.bit_count


def _run_reliability(
    dataset: RODataset | None,
    corners: list[OperatingPoint],
    axis_label: str,
    method: str,
    stage_counts: tuple[int, ...],
) -> ReliabilityExperimentResult:
    dataset = dataset_or_default(dataset)
    result = ReliabilityExperimentResult(
        axis_label=axis_label, corners=corners, method=method
    )
    for board in dataset.swept_boards:
        for stage_count in stage_counts:
            config = PipelineConfig(
                stage_count=stage_count, method=method, distill=False
            )
            puf = board_puf(board, config)
            # One batch-selector pass enrolls every corner at once; each
            # enrollment is identical to a per-corner enroll() call.
            enrollments = puf.enroll_sweep(corners)
            configurable = np.array(
                [
                    _configurable_flips(puf, enrollment, corners)
                    for enrollment in enrollments
                ]
            )
            traditional, one_of_8, bits, one_of_8_bits = _baseline_flips(
                board, stage_count, NOMINAL_OPERATING_POINT, corners
            )
            result.subplots.append(
                BoardReliability(
                    board=board.name,
                    stage_count=stage_count,
                    configurable_flip_percent=configurable,
                    traditional_flip_percent=traditional,
                    one_of_8_flip_percent=one_of_8,
                    bit_count=bits,
                    one_of_8_bit_count=one_of_8_bits,
                )
            )
    return result


def run_voltage_reliability(
    dataset: RODataset | None = None,
    method: str = "case1",
    stage_counts: tuple[int, ...] = FIG4_STAGE_COUNTS,
) -> ReliabilityExperimentResult:
    """Reproduce Fig. 4: flips under supply-voltage variation at 25 degC."""
    return _run_reliability(
        dataset, voltage_corners(temperature=25.0), "voltage", method, stage_counts
    )


def run_temperature_reliability(
    dataset: RODataset | None = None,
    method: str = "case1",
    stage_counts: tuple[int, ...] = FIG4_STAGE_COUNTS,
) -> ReliabilityExperimentResult:
    """The Sec. IV.D temperature sweep (only the traditional PUF flips)."""
    return _run_reliability(
        dataset,
        temperature_corners(voltage=1.20),
        "temperature",
        method,
        stage_counts,
    )


def format_result(result: ReliabilityExperimentResult) -> str:
    """One table row per (board, n) with the seven Fig. 4 bars."""
    corner_labels = [
        f"cfg@{op.voltage:.2f}V" if result.axis_label == "voltage" else f"cfg@{op.temperature:g}C"
        for op in result.corners
    ]
    table = Table(
        headers=["board", "n", "bits"] + corner_labels + ["traditional", "1-of-8"],
        title=(
            f"Fig. 4-style bit-flip percentages under {result.axis_label} "
            f"variation (method={result.method})"
        ),
    )
    for subplot in result.subplots:
        table.add_row(
            subplot.board,
            subplot.stage_count,
            subplot.bit_count,
            *[f"{v:.1f}" for v in subplot.configurable_flip_percent],
            f"{subplot.traditional_flip_percent:.1f}",
            f"{subplot.one_of_8_flip_percent:.1f}",
        )
    summary = [
        table.render(),
        "mean flips by n (configurable vs traditional): "
        + ", ".join(
            f"n={n}: {result.mean_configurable_flips(n):.2f}% vs "
            f"{result.mean_traditional_flips(n):.2f}%"
            for n in sorted({s.stage_count for s in result.subplots})
        ),
        f"max 1-out-of-8 flips anywhere: {result.max_one_of_8_flips():.2f}%",
    ]
    return "\n".join(summary)
