"""Tables I and II: NIST randomness of the configurable PUF outputs.

Pipeline (Sec. IV.A): 194 fixed-corner boards, rings of n = 5 units, one
bit per ring pair (48 bits/board with the Table V carve-up), two boards
concatenated per sequence -> 97 sequences of 96 bits, evaluated by the
NIST battery.  Raw (undistilled) data is expected to *fail* — the paper
attributes this to systematic variation and fixes it with the distiller of
[18]; the ablation entry point reproduces both sides.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..datasets.base import RODataset
from ..nist.suite import SuiteConfig, SuiteReport, evaluate_sequences
from .common import (
    RANDOMNESS_STAGE_COUNT,
    PipelineConfig,
    combine_streams,
    dataset_or_default,
    response_matrix,
)

__all__ = ["NistExperimentResult", "run_nist_experiment", "nist_streams"]


@dataclass
class NistExperimentResult:
    """Outcome of one Table I/II style run.

    Attributes:
        method: selection method evaluated.
        distilled: whether the distiller was applied.
        report: the NIST final-analysis report (render like the paper).
        streams: the evaluated bit matrix (sequences x bits).
    """

    method: str
    distilled: bool
    report: SuiteReport
    streams: np.ndarray

    @property
    def passed(self) -> bool:
        return self.report.all_passed


def nist_streams(
    dataset: RODataset | None = None,
    method: str = "case1",
    distilled: bool = True,
    stage_count: int = RANDOMNESS_STAGE_COUNT,
    boards_per_stream: int = 2,
) -> np.ndarray:
    """The 97x96 bit matrix of Sec. IV.A (sizes scale with the dataset)."""
    dataset = dataset_or_default(dataset)
    config = PipelineConfig(
        stage_count=stage_count, method=method, distill=distilled
    )
    bits = response_matrix(dataset.nominal_boards, config, dataset.nominal)
    return combine_streams(bits, boards_per_stream)


def run_nist_experiment(
    dataset: RODataset | None = None,
    method: str = "case1",
    distilled: bool = True,
    stage_count: int = RANDOMNESS_STAGE_COUNT,
    suite_config: SuiteConfig | None = None,
) -> NistExperimentResult:
    """Reproduce Table I (``method="case1"``) or Table II (``"case2"``)."""
    streams = nist_streams(
        dataset, method=method, distilled=distilled, stage_count=stage_count
    )
    report = evaluate_sequences(streams, suite_config)
    return NistExperimentResult(
        method=method, distilled=distilled, report=report, streams=streams
    )


def format_result(result: NistExperimentResult) -> str:
    """Paper-style rendering with a caption."""
    table_name = "Table I" if result.method == "case1" else "Table II"
    caption = (
        f"{table_name}-style NIST results - method={result.method}, "
        f"{'distilled' if result.distilled else 'RAW (no distiller)'}, "
        f"{result.streams.shape[0]} sequences x {result.streams.shape[1]} bits"
    )
    verdict = "PASS (all tests)" if result.passed else "FAIL (some tests)"
    return f"{caption}\n{result.report.render()}\nOverall: {verdict}"
