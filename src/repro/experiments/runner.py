"""Machine-readable experiment runner: every result as one JSON document.

CI systems and downstream analyses want numbers, not rendered tables.
:func:`run_all_experiments` executes the full evaluation and returns a
plain-dict summary (JSON-serialisable) with the key figures of every
table/figure; :func:`save_results_json` writes it to disk.

Since the pipeline refactor both functions are thin compatibility wrappers
over :func:`repro.pipeline.run_pipeline` — the declarative task graph that
also powers ``ropuf all --jobs N --cache-dir PATH``.  Existing callers keep
working unchanged; new code should call the pipeline directly for parallel
execution, caching, and timing metrics.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..datasets.base import RODataset

__all__ = ["run_all_experiments", "save_results_json"]


def run_all_experiments(
    dataset: RODataset | None = None,
    *,
    jobs: int = 1,
    cache_dir: str | Path | None = None,
) -> dict:
    """Run the complete evaluation; return a JSON-serialisable summary.

    Args:
        dataset: measurements to evaluate (default: synthetic VT-shaped).
        jobs: worker processes (1 = the historical serial behaviour).
        cache_dir: optional on-disk result cache directory.
    """
    from ..pipeline import run_pipeline

    return run_pipeline(dataset=dataset, jobs=jobs, cache_dir=cache_dir)


def save_results_json(
    path: str | Path,
    dataset: RODataset | None = None,
    *,
    jobs: int = 1,
    cache_dir: str | Path | None = None,
) -> Path:
    """Run everything and write the summary JSON to ``path``."""
    from ..pipeline.executor import json_default

    path = Path(path)
    results = run_all_experiments(dataset, jobs=jobs, cache_dir=cache_dir)
    path.write_text(json.dumps(results, indent=2, default=json_default))
    return path
