"""Machine-readable experiment runner: every result as one JSON document.

CI systems and downstream analyses want numbers, not rendered tables.
:func:`run_all_experiments` executes the full evaluation and returns a
plain-dict summary (JSON-serialisable) with the key figures of every
table/figure; :func:`save_results_json` writes it to disk.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ..datasets.base import RODataset

__all__ = ["run_all_experiments", "save_results_json"]


def _nist_summary(result) -> dict:
    return {
        "passed": result.passed,
        "sequences": int(result.streams.shape[0]),
        "bits_per_sequence": int(result.streams.shape[1]),
        "rows": [
            {
                "test": row.label,
                "proportion": row.proportion,
                "uniformity_p": row.uniformity_p,
                "uniformity_assessable": row.uniformity_assessable,
                "passed": row.passed,
            }
            for row in result.report.rows
        ],
    }


def run_all_experiments(dataset: RODataset | None = None) -> dict:
    """Run the complete evaluation; return a JSON-serialisable summary."""
    from . import (
        ablations,
        config_tables,
        extensions,
        fig3_uniqueness,
        fig4_reliability,
        nist_tables,
        sec4e_threshold,
        table5_bits,
    )
    from .common import dataset_or_default

    dataset = dataset_or_default(dataset)
    results: dict = {"dataset": dataset.name}

    results["table1_nist_case1"] = _nist_summary(
        nist_tables.run_nist_experiment(dataset, method="case1")
    )
    results["table2_nist_case2"] = _nist_summary(
        nist_tables.run_nist_experiment(dataset, method="case2")
    )
    raw = nist_tables.run_nist_experiment(dataset, method="case1", distilled=False)
    results["nist_raw"] = _nist_summary(raw)

    uniqueness = fig3_uniqueness.run_uniqueness_experiment(dataset)
    results["fig3_uniqueness"] = {
        "case1_mean_hd": uniqueness.case1.mean_distance,
        "case1_std_hd": uniqueness.case1.std_distance,
        "case2_mean_hd": uniqueness.case2.mean_distance,
        "case2_std_hd": uniqueness.case2.std_distance,
        "collisions": bool(
            uniqueness.case1.has_collision or uniqueness.case2.has_collision
        ),
    }

    stage_count = 15 if dataset.ro_count >= 16 * 2 * 15 else 7
    for method, key in (("case1", "table3"), ("case2", "table4")):
        study = config_tables.run_config_study(
            dataset, method=method, stage_count=stage_count
        )
        results[f"{key}_configs_{method}"] = {
            "vector_count": study.vector_count,
            "vector_bits": int(study.vectors.shape[1]),
            "hd_percent": {
                int(d): float(p)
                for d, p in zip(study.hd_distances, study.hd_percentages)
                if p > 0
            },
            "duplicate_pairs": study.duplicate_pairs,
            "odd_hd_pairs": study.odd_hd_pairs,
            "mean_selected_fraction": study.mean_selected_fraction,
        }

    from ..core.pairing import rings_per_board

    stage_counts = tuple(
        n
        for n in fig4_reliability.FIG4_STAGE_COUNTS
        if rings_per_board(dataset.ro_count, n) >= 2
    )
    voltage = fig4_reliability.run_voltage_reliability(
        dataset, stage_counts=stage_counts
    )
    results["fig4_voltage"] = {
        f"n={n}": {
            "configurable_mean_flip_percent": voltage.mean_configurable_flips(n),
            "traditional_mean_flip_percent": voltage.mean_traditional_flips(n),
        }
        for n in stage_counts
    }
    results["fig4_voltage"]["one_of_8_max_flip_percent"] = (
        voltage.max_one_of_8_flips()
    )

    table5 = table5_bits.run_table5()
    results["table5_bits"] = {
        f"n={row.stage_count}": {
            "configurable": row.configurable_bits,
            "one_of_8": row.one_of_8_bits,
            "matches_paper": row.matches_paper(),
        }
        for row in table5
    }

    threshold = sec4e_threshold.run_threshold_study()
    results["sec4e_threshold"] = {
        "thresholds": threshold.thresholds_units.tolist(),
        "traditional": threshold.traditional.tolist(),
        "configurable": threshold.configurable.tolist(),
        "unit_picoseconds": threshold.unit_seconds * 1e12,
    }

    distiller_ablation = ablations.run_distiller_ablation(dataset)
    results["ablation_distiller"] = {
        "raw_passed": distiller_ablation.raw_passed,
        "distilled_passed": distiller_ablation.distilled_passed,
        "raw_failed_tests": distiller_ablation.raw_failed_tests,
    }

    leakage = extensions.run_leakage_study(dataset)
    results["ablation_attacks"] = {
        result.scheme: {"accuracy": result.accuracy, "chance": result.chance}
        for result in leakage.results
    }
    results["ablation_attacks"]["model_attack_accuracy"] = (
        leakage.model_attack.accuracy
    )

    ecc = extensions.run_ecc_cost_study(dataset)
    results["ecc_cost"] = {
        requirement.scheme: {
            "bit_error_rate": requirement.bit_error_rate,
            "t": requirement.t,
            "overhead_bits_per_key_bit": requirement.overhead_bits_per_key_bit,
        }
        for requirement in ecc.requirements
    }

    return results


def save_results_json(path: str | Path, dataset: RODataset | None = None) -> Path:
    """Run everything and write the summary JSON to ``path``."""
    path = Path(path)
    results = run_all_experiments(dataset)

    def encode(value):
        if isinstance(value, (np.floating, np.integer)):
            return value.item()
        raise TypeError(f"not JSON-serialisable: {type(value)}")

    path.write_text(json.dumps(results, indent=2, default=encode))
    return path
