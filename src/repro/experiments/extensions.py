"""Extension experiments beyond the paper's evaluation (DESIGN.md A4-A6).

* A4 — configuration leakage: validates Sec. III.D's equal-count security
  constraint by attacking equal-count and unconstrained selections.
* A5 — aging: bit stability over simulated years of NBTI-style wear-out,
  configurable vs traditional.
* A6 — scheme zoo on equal hardware: bits-per-ring and flip rates of the
  configurable, traditional, 1-out-of-8, and cooperative (ordering)
  schemes, plus the offset-aware selector's margin recovery.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis.tables import Table
from ..attacks.config_leakage import LeakageResult, evaluate_config_leakage
from ..attacks.model_attack import ModelAttackResult, evaluate_model_attack
from ..baselines.cooperative import CooperativeROPUF
from ..baselines.one_out_of_eight import OneOutOfEightPUF
from ..core.pairing import RingAllocation, allocate_rings
from ..core.puf import BoardROPUF, ChipROPUF
from ..core.selection import select_case1, select_case2
from ..core.selection_batch import select_case2_batch
from ..core.selection_ext import select_case2_offset, select_unconstrained
from ..datasets.base import RODataset
from ..metrics.reliability import bit_flip_report
from ..silicon.aging import AgingModel, age_chip
from ..silicon.fabrication import FabricationProcess
from ..variation.corners import full_grid
from ..variation.environment import NOMINAL_OPERATING_POINT
from .common import PipelineConfig, dataset_or_default

__all__ = [
    "LeakageStudy",
    "run_leakage_study",
    "AgingStudy",
    "run_aging_study",
    "SchemeZoo",
    "run_scheme_zoo",
    "EccCostStudy",
    "run_ecc_cost_study",
    "MarginScalingStudy",
    "run_margin_scaling_study",
    "MultiCornerStudy",
    "run_multicorner_study",
    "CorrelationStudy",
    "run_correlation_study",
]


# ----------------------------------------------------------------------
# A4 — configuration leakage + modeling attack
# ----------------------------------------------------------------------


@dataclass
class LeakageStudy:
    """Attack outcomes across selection schemes.

    Attributes:
        results: one leakage result per scheme.
        model_attack: CRP modeling attack on the Maiti-Schaumont PUF.
    """

    results: list[LeakageResult]
    model_attack: ModelAttackResult


def _dataset_pair_delays(
    dataset: RODataset, stage_count: int, max_boards: int
) -> list[tuple[np.ndarray, np.ndarray]]:
    config = PipelineConfig(stage_count=stage_count, method="case1", distill=True)
    distiller = config.distiller()
    pairs = []
    for board in dataset.nominal_boards[:max_boards]:
        delays = board.delays_at(dataset.nominal)
        if distiller is not None:
            delays = distiller(delays, board.coords)
        window = 2 * stage_count
        for start in range(0, len(delays) - window + 1, window):
            chunk = delays[start : start + window]
            pairs.append((chunk[:stage_count], chunk[stage_count:]))
    return pairs


def run_leakage_study(
    dataset: RODataset | None = None,
    stage_count: int = 7,
    max_boards: int = 60,
) -> LeakageStudy:
    """A4: attack the stored configurations of three selection schemes."""
    dataset = dataset_or_default(dataset)
    pair_delays = _dataset_pair_delays(dataset, stage_count, max_boards)
    results = [
        evaluate_config_leakage(select_case1, "case1", pair_delays),
        evaluate_config_leakage(select_case2, "case2", pair_delays),
        evaluate_config_leakage(
            select_unconstrained, "unconstrained", pair_delays
        ),
    ]
    return LeakageStudy(results=results, model_attack=evaluate_model_attack())


def format_leakage_study(study: LeakageStudy) -> str:
    table = Table(
        headers=["scheme", "attack accuracy", "chance", "advantage"],
        title="A4 configuration-leakage attack (equal counts protect the bit)",
    )
    for result in study.results:
        table.add_row(
            result.scheme,
            f"{result.accuracy:.3f}",
            f"{result.chance:.3f}",
            f"{result.advantage:+.3f}",
        )
    model = study.model_attack
    return (
        table.render()
        + "\nCRP modeling attack on Maiti-Schaumont (reconfigurable-style) "
        + f"PUF: {model.accuracy:.3f} accuracy from {model.train_crps} CRPs "
        + f"(chance {model.chance:.3f}) - the paper's [16] vulnerability."
    )


# ----------------------------------------------------------------------
# A5 — aging
# ----------------------------------------------------------------------


@dataclass
class AgingStudy:
    """Bit stability over simulated lifetime.

    Attributes:
        years: evaluated stress times.
        flip_percent: scheme name -> flip % per year mark (mean over chips).
        chip_count: chips averaged.
    """

    years: tuple[float, ...]
    flip_percent: dict[str, np.ndarray]
    chip_count: int


def run_aging_study(
    years: tuple[float, ...] = (1.0, 5.0, 10.0, 20.0),
    chip_count: int = 6,
    unit_count: int = 224,
    stage_count: int = 7,
    seed: int = 11,
    model: AgingModel | None = None,
) -> AgingStudy:
    """A5: enroll fresh silicon, regenerate on aged copies."""
    if model is None:
        model = AgingModel()
    fab = FabricationProcess()
    rng = np.random.default_rng(seed)
    flips: dict[str, list[list[float]]] = {"case2": [], "traditional": []}
    for index in range(chip_count):
        chip = fab.fabricate(unit_count, rng, name=f"aging{index}")
        allocation = allocate_rings(
            chip.unit_count, stage_count, multiple=2, layout="interleaved"
        )
        for method in ("case2", "traditional"):
            puf = ChipROPUF(chip=chip, allocation=allocation, method=method)
            # Vectorized enrollment ("enroll-v1" draw order); the per-year
            # response comparisons stay on the per-pair measurement path.
            enrollment = puf.enroll_batch()
            per_year = []
            for year in years:
                aged = age_chip(chip, year, np.random.default_rng(seed + index), model)
                aged_puf = ChipROPUF(
                    chip=aged, allocation=allocation, method=method,
                    measurer=puf.measurer,
                )
                response = aged_puf.response(NOMINAL_OPERATING_POINT, enrollment)
                report = bit_flip_report(enrollment.bits, response)
                per_year.append(report.flip_percent)
            flips[method].append(per_year)
    return AgingStudy(
        years=years,
        flip_percent={
            method: np.mean(np.array(rows), axis=0)
            for method, rows in flips.items()
        },
        chip_count=chip_count,
    )


def format_aging_study(study: AgingStudy) -> str:
    table = Table(
        headers=["scheme"] + [f"{y:g}y" for y in study.years],
        title=(
            "A5 aging study: % bits flipped after N years "
            f"(mean over {study.chip_count} chips)"
        ),
    )
    for method, row in study.flip_percent.items():
        table.add_row(method, *[f"{v:.1f}" for v in row])
    return table.render()


# ----------------------------------------------------------------------
# A6 — scheme zoo on equal hardware
# ----------------------------------------------------------------------


@dataclass
class SchemeZooRow:
    """One scheme's yield and stability on the shared hardware.

    Attributes:
        scheme: scheme name.
        bits: response bits from the shared ring budget.
        bits_per_ring: hardware utilisation.
        flip_percent: bit flips across all non-nominal corners.
    """

    scheme: str
    bits: int
    bits_per_ring: float
    flip_percent: float


@dataclass
class SchemeZoo:
    """A6 results.

    Attributes:
        rows: per scheme.
        ring_count: rings in the shared budget.
        offset_margin_gain_percent: mean margin gain of the offset-aware
            Case-2 selector over the paper's (chip-level pipeline).
    """

    rows: list[SchemeZooRow]
    ring_count: int
    offset_margin_gain_percent: float


def run_scheme_zoo(
    dataset: RODataset | None = None,
    stage_count: int = 5,
) -> SchemeZoo:
    """A6: every scheme on one swept board's rings + offset-aware margins."""
    dataset = dataset_or_default(dataset)
    board = dataset.swept_boards[0]
    allocation = allocate_rings(board.ro_count, stage_count)
    corners = [op for op in full_grid() if op != dataset.nominal]

    rows = []
    for method in ("case1", "case2", "traditional"):
        puf = BoardROPUF(
            delay_provider=board.delay_provider(),
            allocation=allocation,
            method=method,
            require_odd=method != "traditional",
        )
        enrollment = puf.enroll(dataset.nominal)
        # One vectorized sweep over all corners (noiseless, so identical
        # to stacking per-corner response calls).
        observations = puf.response_sweep(corners, enrollment)
        report = bit_flip_report(enrollment.bits, observations)
        rows.append(
            SchemeZooRow(
                scheme=method,
                bits=enrollment.bit_count,
                bits_per_ring=enrollment.bit_count / allocation.ring_count,
                flip_percent=report.flip_percent,
            )
        )

    one_of_8 = OneOutOfEightPUF(
        delay_provider=board.delay_provider(), allocation=allocation
    )
    group_enrollment = one_of_8.enroll(dataset.nominal)
    observations = np.stack(
        [one_of_8.response(op, group_enrollment) for op in corners]
    )
    report = bit_flip_report(group_enrollment.bits, observations)
    rows.append(
        SchemeZooRow(
            scheme="1-out-of-8",
            bits=group_enrollment.bit_count,
            bits_per_ring=group_enrollment.bit_count / allocation.ring_count,
            flip_percent=report.flip_percent,
        )
    )

    cooperative = CooperativeROPUF(
        delay_provider=board.delay_provider(), allocation=allocation
    )
    coop_enrollment = cooperative.enroll(dataset.nominal)
    observations = np.stack(
        [cooperative.response(op, coop_enrollment) for op in corners]
    )
    report = bit_flip_report(coop_enrollment.bits, observations)
    rows.append(
        SchemeZooRow(
            scheme="cooperative",
            bits=coop_enrollment.bit_count,
            bits_per_ring=coop_enrollment.bit_count / allocation.ring_count,
            flip_percent=report.flip_percent,
        )
    )

    gain = _offset_margin_gain(stage_count)
    return SchemeZoo(
        rows=rows,
        ring_count=allocation.ring_count,
        offset_margin_gain_percent=gain,
    )


def _offset_margin_gain(stage_count: int, pair_count: int = 48, seed: int = 5) -> float:
    """Mean |margin| gain of offset-aware Case-2 on chip-level pairs."""
    fab = FabricationProcess()
    chip = fab.fabricate(
        2 * stage_count * pair_count, np.random.default_rng(seed), name="offset"
    )
    allocation = RingAllocation(
        stage_count=stage_count, ring_count=2 * pair_count, layout="interleaved"
    )
    ddiffs = chip.ddiffs()
    bypass = chip.mux_bypass_delays()
    unit_matrix = np.stack(
        [allocation.ring_units(ring) for ring in range(allocation.ring_count)]
    )
    pairs = allocation.pair_ring_matrix()
    alphas = ddiffs[unit_matrix[pairs[:, 0]]]
    betas = ddiffs[unit_matrix[pairs[:, 1]]]
    offsets = np.array(
        [
            float(np.sum(bypass[unit_matrix[top]]) - np.sum(bypass[unit_matrix[bot]]))
            for top, bot in pairs
        ]
    )
    # The paper's offset-blind selections for all pairs in one batch call
    # (margins bit-identical to the scalar selector).
    paper = select_case2_batch(alphas, betas)
    paper_actual = np.abs(paper.margins + offsets)
    gains = []
    for index in range(allocation.pair_count):
        aware = select_case2_offset(alphas[index], betas[index], offsets[index])
        gains.append(
            100.0
            * (abs(aware.margin) - paper_actual[index])
            / max(paper_actual[index], 1e-30)
        )
    return float(np.mean(gains))


# ----------------------------------------------------------------------
# A9 — spatially-correlated mismatch: the distiller's limits
# ----------------------------------------------------------------------
#
# The distiller removes the *smooth* systematic trend.  If the "random"
# mismatch itself carries short-range spatial correlation, neighbouring
# PUF bits stay correlated after distillation and randomness degrades —
# a failure mode silicon can exhibit that the paper's pipeline cannot fix.


@dataclass
class CorrelationPoint:
    """NIST outcome at one correlation length.

    Attributes:
        correlation_length: spatial correlation of the mismatch.
        passed: whether the distilled battery passed.
        worst_proportion: lowest per-test pass proportion.
        failing_tests: labels of failing rows.
    """

    correlation_length: float
    passed: bool
    worst_proportion: float
    failing_tests: list[str]


@dataclass
class CorrelationStudy:
    """A9 results across correlation lengths."""

    points: list[CorrelationPoint]


def run_correlation_study(
    correlation_lengths: tuple[float, ...] = (0.0, 0.15, 0.4),
    seed: int = 909,
) -> CorrelationStudy:
    """A9: sweep mismatch correlation and re-run the Table I pipeline."""
    from ..datasets.vtlike import VTLikeConfig, generate_vt_like
    from ..variation.process import ProcessParameters, ProcessVariationModel
    from .nist_tables import run_nist_experiment

    points = []
    for length in correlation_lengths:
        config = VTLikeConfig(
            process=ProcessVariationModel(
                ProcessParameters(correlation_length=length)
            ),
            seed=seed,
        )
        dataset = generate_vt_like(config)
        result = run_nist_experiment(dataset, method="case1", distilled=True)
        points.append(
            CorrelationPoint(
                correlation_length=length,
                passed=result.passed,
                worst_proportion=min(
                    row.proportion for row in result.report.rows
                ),
                failing_tests=[row.label for row in result.report.failed_rows],
            )
        )
    return CorrelationStudy(points=points)


def format_correlation_study(study: CorrelationStudy) -> str:
    table = Table(
        headers=["correlation length", "NIST verdict", "worst proportion", "failing"],
        title=(
            "A9 spatially-correlated mismatch vs the distilled pipeline "
            "(Table I setup)"
        ),
    )
    for point in study.points:
        table.add_row(
            f"{point.correlation_length:g}",
            "PASS" if point.passed else "FAIL",
            f"{point.worst_proportion:.2f}",
            ", ".join(point.failing_tests) or "-",
        )
    return (
        table.render()
        + "\nthe polynomial distiller removes smooth trends only; "
        "correlated mismatch defeats it (a known silicon risk the paper's "
        "pipeline inherits)"
    )


# ----------------------------------------------------------------------
# A10 — multi-corner enrollment
# ----------------------------------------------------------------------


@dataclass
class MultiCornerStudy:
    """Worst-enrollment-corner flips: single- vs multi-corner enrollment.

    Attributes:
        single_corner_worst_percent: flip % of the paper's scheme when
            enrolled at its *worst* corner (mean over boards).
        single_corner_best_percent: same, best corner.
        multicorner_percent: flip % of multi-corner enrollment.
        stage_count: ring length used.
    """

    single_corner_worst_percent: float
    single_corner_best_percent: float
    multicorner_percent: float
    stage_count: int


def run_multicorner_study(
    dataset: RODataset | None = None,
    stage_count: int = 3,
) -> MultiCornerStudy:
    """A10: does enrolling at every corner beat picking a lucky one?

    Uses the ring length where single-corner enrollment still flips
    (n = 3 in Fig. 4), so there is headroom to improve.
    """
    from ..core.multicorner import select_case1_multicorner
    from ..core.selection import select_case1
    from ..variation.corners import voltage_corners

    dataset = dataset_or_default(dataset)
    corners = voltage_corners(temperature=25.0)
    single_worst = []
    single_best = []
    multi = []
    for board in dataset.swept_boards:
        allocation = allocate_rings(board.ro_count, stage_count)
        rings_by_corner = {
            op: allocation.ring_delay_matrix(board.delays_at(op))
            for op in corners
        }

        def flips_for(select_pair) -> float:
            reference_bits = []
            flip_positions = set()
            selections = []
            for pair in range(allocation.pair_count):
                top, bottom = allocation.pair_rings(pair)
                selection = select_pair(pair, top, bottom)
                selections.append(selection)
                margin_at = {
                    op: float(
                        np.sum(
                            rings_by_corner[op][top][
                                selection.top_config.as_array()
                            ]
                        )
                        - np.sum(
                            rings_by_corner[op][bottom][
                                selection.bottom_config.as_array()
                            ]
                        )
                    )
                    for op in corners
                }
                reference = margin_at[NOMINAL_OPERATING_POINT] > 0
                reference_bits.append(reference)
                for op in corners:
                    if (margin_at[op] > 0) != reference:
                        flip_positions.add(pair)
            return 100.0 * len(flip_positions) / allocation.pair_count

        per_corner = []
        for enroll_op in corners:
            rings = rings_by_corner[enroll_op]

            def single_select(pair, top, bottom, rings=rings):
                return select_case1(rings[top], rings[bottom])

            per_corner.append(flips_for(single_select))
        single_worst.append(max(per_corner))
        single_best.append(min(per_corner))

        def multi_select(pair, top, bottom):
            alphas = [rings_by_corner[op][top] for op in corners]
            betas = [rings_by_corner[op][bottom] for op in corners]
            return select_case1_multicorner(alphas, betas)

        multi.append(flips_for(multi_select))
    return MultiCornerStudy(
        single_corner_worst_percent=float(np.mean(single_worst)),
        single_corner_best_percent=float(np.mean(single_best)),
        multicorner_percent=float(np.mean(multi)),
        stage_count=stage_count,
    )


def format_multicorner_study(study: MultiCornerStudy) -> str:
    return (
        f"A10 multi-corner enrollment (n={study.stage_count}): flip % "
        "across the voltage sweep\n"
        "  single-corner enrollment, worst corner: "
        f"{study.single_corner_worst_percent:.2f}%\n"
        "  single-corner enrollment, best corner:  "
        f"{study.single_corner_best_percent:.2f}%\n"
        "  multi-corner (worst-case margin):       "
        f"{study.multicorner_percent:.2f}%\n"
        "  (the paper's Fig. 4 observation 4 recommends hunting for the "
        "best single corner; multi-corner enrollment removes the hunt)"
    )


# ----------------------------------------------------------------------
# A8 — margin scaling with ring length
# ----------------------------------------------------------------------
#
# Theory behind Fig. 4's improvement with n: the configurable margin is a
# sum of ~n/2 positive |delta| terms, so it grows linearly in n, while the
# traditional margin is |sum of n zero-mean deltas| and grows only as
# sqrt(n).  The ratio therefore opens as sqrt(n) — the quantitative reason
# the paper sees 0% flips from n = 7.


@dataclass
class MarginScalingStudy:
    """Mean |margin| versus ring length for both schemes.

    Attributes:
        stage_counts: evaluated ring lengths.
        configurable / traditional: mean |margin| (seconds) per length.
        pair_count: pairs sampled per length.
    """

    stage_counts: tuple[int, ...]
    configurable: np.ndarray
    traditional: np.ndarray
    pair_count: int

    @property
    def ratio(self) -> np.ndarray:
        """Configurable-to-traditional margin ratio per ring length."""
        return self.configurable / self.traditional


def run_margin_scaling_study(
    stage_counts: tuple[int, ...] = (3, 5, 9, 15, 25, 41),
    pair_count: int = 400,
    sigma: float = 7.5e-12,
    seed: int = 17,
) -> MarginScalingStudy:
    """A8: sample pure random-mismatch pairs and measure margin growth."""
    if pair_count < 10:
        raise ValueError("pair_count must be >= 10")
    rng = np.random.default_rng(seed)
    configurable = []
    traditional = []
    for n in stage_counts:
        # One (pair, 2, n) draw consumes the generator exactly like the
        # historical alternating per-pair draws, and the batch selector's
        # margins are bit-identical to the scalar select_case2 loop.
        samples = rng.normal(500e-12, sigma, (pair_count, 2, n))
        alpha = samples[:, 0, :]
        beta = samples[:, 1, :]
        margins_c = np.abs(select_case2_batch(alpha, beta).margins)
        margins_t = np.abs(alpha.sum(axis=1) - beta.sum(axis=1))
        configurable.append(float(np.mean(margins_c)))
        traditional.append(float(np.mean(margins_t)))
    return MarginScalingStudy(
        stage_counts=tuple(stage_counts),
        configurable=np.array(configurable),
        traditional=np.array(traditional),
        pair_count=pair_count,
    )


def format_margin_scaling(study: MarginScalingStudy) -> str:
    table = Table(
        headers=["n", "configurable (ps)", "traditional (ps)", "ratio"],
        title=(
            "A8 margin scaling with ring length "
            f"({study.pair_count} pairs per point): configurable ~ n, "
            "traditional ~ sqrt(n)"
        ),
    )
    for i, n in enumerate(study.stage_counts):
        table.add_row(
            n,
            f"{study.configurable[i] * 1e12:.1f}",
            f"{study.traditional[i] * 1e12:.1f}",
            f"{study.ratio[i]:.2f}",
        )
    return table.render()


# ----------------------------------------------------------------------
# A7 — the cost of ECC (Sec. III.C: "eliminate the cost of ECC circuitry")
# ----------------------------------------------------------------------


@dataclass
class EccCostStudy:
    """ECC sizing for each scheme's measured error rate.

    Attributes:
        requirements: one :class:`~repro.analysis.ecc_cost.EccRequirement`
            per scheme.
        target_failure: block-failure target the codes were sized for.
    """

    requirements: list
    target_failure: float


def run_ecc_cost_study(
    dataset: RODataset | None = None,
    stage_count: int = 5,
    target_failure: float = 1e-6,
) -> EccCostStudy:
    """A7: measure per-bit error rates, then price the ECC each needs."""
    from ..analysis.ecc_cost import required_bch_strength

    dataset = dataset_or_default(dataset)
    corners = [op for op in full_grid() if op != dataset.nominal]
    requirements = []
    for method in ("case2", "case1", "traditional"):
        error_bits = 0
        total_bits = 0
        for board in dataset.swept_boards:
            allocation = allocate_rings(board.ro_count, stage_count)
            puf = BoardROPUF(
                delay_provider=board.delay_provider(),
                allocation=allocation,
                method=method,
                require_odd=method != "traditional",
            )
            enrollment = puf.enroll(dataset.nominal)
            responses = puf.response_sweep(corners, enrollment)
            error_bits += int(np.sum(responses != enrollment.bits))
            total_bits += enrollment.bit_count * len(corners)
        bit_error_rate = error_bits / total_bits if total_bits else 0.0
        requirements.append(
            required_bch_strength(method, bit_error_rate, target_failure)
        )
    return EccCostStudy(requirements=requirements, target_failure=target_failure)


def format_ecc_cost_study(study: EccCostStudy) -> str:
    table = Table(
        headers=["scheme", "bit error rate", "BCH(n,k,t)", "stored bits/key bit"],
        title=(
            "A7 cost of ECC at block-failure target "
            f"{study.target_failure:g} (Sec. III.C's 'eliminate ECC' claim)"
        ),
    )
    for requirement in study.requirements:
        code = (
            "none needed"
            if not requirement.needs_ecc
            else f"BCH({requirement.code_length},{requirement.message_bits},"
            f"t={requirement.t})"
        )
        table.add_row(
            requirement.scheme,
            f"{requirement.bit_error_rate:.2e}",
            code,
            f"{requirement.overhead_bits_per_key_bit:.2f}",
        )
    return table.render()


def format_scheme_zoo(zoo: SchemeZoo) -> str:
    table = Table(
        headers=["scheme", "bits", "bits/ring", "flip %"],
        title=(
            f"A6 scheme zoo on {zoo.ring_count} shared rings "
            "(all 24 non-nominal corners)"
        ),
    )
    for row in zoo.rows:
        table.add_row(
            row.scheme,
            row.bits,
            f"{row.bits_per_ring:.2f}",
            f"{row.flip_percent:.1f}",
        )
    return (
        table.render()
        + "\noffset-aware Case-2 margin gain over the paper's selector: "
        + f"{zoo.offset_margin_gain_percent:+.1f}% "
        + "(accounts for the bypass-path offset the paper neglects)"
    )
