"""Sec. IV.E: reliable bits versus the reliability threshold R_th.

The paper measures inverter-level delays on 9 in-house Virtex-5 boards
(1024 inverters each), builds 64 ROs of up to 13 inverters, and counts how
many of the 32 RO-pair bits survive a minimum-delay-difference threshold:
the traditional PUF drops from 32 bits (R_th = 0) to 13 bits (R_th = 3)
while the configurable PUF still delivers all 32 at R_th = 3.

Our boards are synthetic (DESIGN.md Sec. 2), so absolute thresholds are in
seconds; the sweep normalises R_th into the paper's dimensionless units via
a calibration constant chosen so one unit is comparable to the traditional
margin scale.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis.tables import Table
from ..baselines.threshold import yield_vs_threshold
from ..core.pairing import RingAllocation
from ..core.puf import ChipROPUF
from ..datasets.inhouse import INHOUSE_MAX_STAGES, INHOUSE_RING_COUNT, default_inhouse_boards
from ..silicon.chip import Chip

__all__ = ["ThresholdStudyResult", "run_threshold_study"]


@dataclass
class ThresholdStudyResult:
    """The Sec. IV.E tradeoff for one scheme pair.

    Attributes:
        thresholds_units: the R_th grid in paper units.
        unit_seconds: seconds per paper unit (calibration constant).
        traditional: mean per-board bit yield of the traditional PUF.
        configurable: mean per-board bit yield of the configurable PUF.
        total_bits: bits per board at R_th = 0.
        board_count: boards averaged over.
    """

    thresholds_units: np.ndarray
    unit_seconds: float
    traditional: np.ndarray
    configurable: np.ndarray
    total_bits: int
    board_count: int


def _board_margins(
    chip: Chip, stage_count: int, method: str
) -> tuple[np.ndarray, int]:
    """Enrollment margins of one scheme on one chip."""
    # Interleaved layout: the two rings of a pair sit side by side on the
    # die (the natural FPGA floorplan), so systematic spatial variation
    # cancels in each pair's delay differences.
    allocation = RingAllocation(
        stage_count=stage_count,
        ring_count=INHOUSE_RING_COUNT,
        layout="interleaved",
    )
    puf = ChipROPUF(chip=chip, allocation=allocation, method=method)
    # Vectorized enrollment (the "enroll-v1" draw order): one measurement
    # tensor per board instead of per-pair sequential measurement loops.
    enrollment = puf.enroll_batch()
    return np.abs(enrollment.margins), puf.bit_count


def run_threshold_study(
    boards: tuple[Chip, ...] | None = None,
    stage_count: int = INHOUSE_MAX_STAGES,
    thresholds_units: np.ndarray | None = None,
    unit_seconds: float | None = None,
    method: str = "case1",
) -> ThresholdStudyResult:
    """Reproduce the Sec. IV.E threshold sweep on the in-house boards.

    Args:
        unit_seconds: seconds per R_th unit; by default calibrated so the
            traditional scheme keeps roughly 40% of its bits at R_th = 3
            (the paper's 13-of-32 operating point).
    """
    if boards is None:
        boards = default_inhouse_boards()
    if thresholds_units is None:
        thresholds_units = np.arange(0.0, 6.5, 0.5)

    traditional_margins = []
    configurable_margins = []
    total_bits = 0
    for chip in boards:
        margins, total_bits = _board_margins(chip, stage_count, "traditional")
        traditional_margins.append(margins)
        margins, _ = _board_margins(chip, stage_count, method)
        configurable_margins.append(margins)

    all_traditional = np.concatenate(traditional_margins)
    if unit_seconds is None:
        # Calibrate: at R_th = 3 units the traditional PUF should keep about
        # 13/32 = 40.6% of its bits, i.e. 3 units = the 59.4th percentile of
        # traditional |margins|.
        unit_seconds = float(np.percentile(all_traditional, 100.0 * (1.0 - 13.0 / 32.0))) / 3.0

    thresholds_seconds = thresholds_units * unit_seconds
    traditional_counts = np.stack(
        [
            yield_vs_threshold(margins, thresholds_seconds).counts
            for margins in traditional_margins
        ]
    )
    configurable_counts = np.stack(
        [
            yield_vs_threshold(margins, thresholds_seconds).counts
            for margins in configurable_margins
        ]
    )
    return ThresholdStudyResult(
        thresholds_units=np.asarray(thresholds_units, dtype=float),
        unit_seconds=unit_seconds,
        traditional=traditional_counts.mean(axis=0),
        configurable=configurable_counts.mean(axis=0),
        total_bits=total_bits,
        board_count=len(boards),
    )


def format_result(result: ThresholdStudyResult) -> str:
    """Yield-vs-threshold table with the paper's reference points."""
    table = Table(
        headers=["R_th (units)", "traditional bits", "configurable bits"],
        title=(
            "Sec. IV.E-style reliable-bit yield, mean over "
            f"{result.board_count} boards of {result.total_bits} bits "
            f"(1 unit = {result.unit_seconds * 1e12:.1f} ps)"
        ),
    )
    for threshold, trad, conf in zip(
        result.thresholds_units, result.traditional, result.configurable
    ):
        table.add_row(f"{threshold:.1f}", f"{trad:.1f}", f"{conf:.1f}")
    reference = (
        "paper reference: traditional 32 -> 13 bits as R_th goes 0 -> 3; "
        "configurable still 32 at R_th = 3"
    )
    return table.render() + "\n" + reference
