"""Ordering-based cooperative RO PUF (Yin & Qu, HOST 2009 — ref [2]).

Instead of one bit per RO pair, the cooperative scheme extracts the *rank
ordering* of a group of g rings and encodes it as ``floor(log2(g!))`` bits
(Lehmer code).  A group of 4 rings yields 4 bits from 4 rings — double the
traditional scheme's utilisation and 4x the 1-out-of-8 scheme's, which is
the hardware-utilisation improvement the paper's related-work section
quotes.  The price is reliability: adjacent ranks swap easily, so the
original work pairs the scheme with temperature-aware processing.

This implementation provides the ordering extraction, the Lehmer
encode/decode, and the PUF life cycle, so benches can compare utilisation
and stability against the paper's configurable scheme on equal hardware.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..core.pairing import RingAllocation
from ..variation.environment import NOMINAL_OPERATING_POINT, OperatingPoint
from ..variation.noise import MeasurementNoise, NoiselessMeasurement

__all__ = [
    "lehmer_encode",
    "lehmer_decode",
    "permutation_to_bits",
    "bits_per_group",
    "CooperativeEnrollment",
    "CooperativeROPUF",
]


def lehmer_encode(permutation: np.ndarray) -> int:
    """Rank of a permutation in lexicographic order (Lehmer code).

    Args:
        permutation: an array containing each of 0..g-1 exactly once.
    """
    permutation = np.asarray(permutation, dtype=int)
    g = len(permutation)
    if sorted(permutation.tolist()) != list(range(g)):
        raise ValueError(f"not a permutation of 0..{g - 1}: {permutation}")
    rank = 0
    for i in range(g):
        smaller_after = int(np.sum(permutation[i + 1 :] < permutation[i]))
        rank += smaller_after * math.factorial(g - 1 - i)
    return rank


def lehmer_decode(rank: int, size: int) -> np.ndarray:
    """Inverse of :func:`lehmer_encode`."""
    if size < 1:
        raise ValueError("size must be >= 1")
    if not 0 <= rank < math.factorial(size):
        raise ValueError(f"rank {rank} out of range for size {size}")
    available = list(range(size))
    permutation = []
    for i in range(size):
        base = math.factorial(size - 1 - i)
        index, rank = divmod(rank, base)
        permutation.append(available.pop(index))
    return np.array(permutation, dtype=int)


def bits_per_group(group_size: int) -> int:
    """Secret bits extractable from one ordering: ``floor(log2(g!))``."""
    if group_size < 2:
        raise ValueError("group_size must be >= 2")
    return int(math.floor(math.log2(math.factorial(group_size))))


def permutation_to_bits(permutation: np.ndarray) -> np.ndarray:
    """Encode an ordering as its truncated Lehmer-code bits (MSB first).

    Ranks >= 2**bits are folded by truncation to keep the code length
    fixed; with g = 4 this discards log2(24) - 4 = 0.58 bits of entropy.
    """
    g = len(permutation)
    width = bits_per_group(g)
    rank = lehmer_encode(permutation) % (1 << width)
    return np.array(
        [(rank >> (width - 1 - i)) & 1 for i in range(width)], dtype=bool
    )


@dataclass
class CooperativeEnrollment:
    """Enrollment record of the cooperative PUF.

    Attributes:
        operating_point: enrollment environment.
        orderings: per group, the slow-to-fast ring ordering.
        bits: concatenated Lehmer-code bits of all groups.
        rank_margins: per group, the smallest delay gap between two
            adjacently-ranked rings — the ordering's stability margin.
    """

    operating_point: OperatingPoint
    orderings: list[np.ndarray]
    bits: np.ndarray
    rank_margins: np.ndarray

    @property
    def bit_count(self) -> int:
        return len(self.bits)


@dataclass
class CooperativeROPUF:
    """Cooperative (ordering-encoded) RO PUF over a board's delays.

    Attributes:
        delay_provider: operating point -> per-unit delays.
        allocation: ring carve-up (shared with the other schemes).
        group_size: rings per ordering group (default 4 -> 4 bits/group).
        response_noise: noise on ring totals at response time.
        rng: generator for the response noise.
    """

    delay_provider: Callable[[OperatingPoint], np.ndarray]
    allocation: RingAllocation
    group_size: int = 4
    response_noise: MeasurementNoise = field(default_factory=NoiselessMeasurement)
    rng: np.random.Generator = field(default_factory=np.random.default_rng)

    def __post_init__(self) -> None:
        if self.group_size < 2:
            raise ValueError("group_size must be >= 2")

    @property
    def group_count(self) -> int:
        return self.allocation.ring_count // self.group_size

    @property
    def bit_count(self) -> int:
        return self.group_count * bits_per_group(self.group_size)

    def _ring_totals(self, op: OperatingPoint) -> np.ndarray:
        unit_delays = np.asarray(self.delay_provider(op), dtype=float)
        totals = self.allocation.ring_delay_matrix(unit_delays).sum(axis=1)
        return self.response_noise.observe(totals, self.rng)

    def _group_ordering(
        self, totals: np.ndarray, group: int
    ) -> tuple[np.ndarray, float]:
        start = group * self.group_size
        delays = totals[start : start + self.group_size]
        ordering = np.argsort(-delays, kind="stable")  # slowest first
        sorted_delays = delays[ordering]
        margin = float(np.min(-np.diff(sorted_delays)))
        return ordering, margin

    def enroll(
        self, op: OperatingPoint = NOMINAL_OPERATING_POINT
    ) -> CooperativeEnrollment:
        """Extract each group's ordering and encode it as bits."""
        totals = self._ring_totals(op)
        orderings = []
        margins = []
        bit_blocks = []
        for group in range(self.group_count):
            ordering, margin = self._group_ordering(totals, group)
            orderings.append(ordering)
            margins.append(margin)
            bit_blocks.append(permutation_to_bits(ordering))
        bits = (
            np.concatenate(bit_blocks)
            if bit_blocks
            else np.zeros(0, dtype=bool)
        )
        return CooperativeEnrollment(
            operating_point=op,
            orderings=orderings,
            bits=bits,
            rank_margins=np.array(margins),
        )

    def response(
        self, op: OperatingPoint, enrollment: CooperativeEnrollment
    ) -> np.ndarray:
        """Re-derive the ordering bits at another operating point."""
        totals = self._ring_totals(op)
        bit_blocks = []
        for group in range(self.group_count):
            ordering, _ = self._group_ordering(totals, group)
            bit_blocks.append(permutation_to_bits(ordering))
        del enrollment  # response regenerates from scratch, as on silicon
        return (
            np.concatenate(bit_blocks)
            if bit_blocks
            else np.zeros(0, dtype=bool)
        )
