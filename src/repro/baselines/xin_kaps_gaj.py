"""The Xin-Kaps-Gaj configurable RO PUF (DSD 2011) — the paper's ref [15].

An improvement over Maiti-Schaumont [14]: by exploiting unused LUT inputs,
each 3-stage RO offers 256 configurations instead of 8 while occupying the
same single CLB.  We model it as a generalised per-stage-variant ring:
every stage holds ``variants_per_stage`` candidate delay elements, and the
configuration word picks one per stage (Maiti-Schaumont is the
``variants_per_stage = 2`` special case).

As with [14], enrollment applies the same word to both rings of a pair and
keeps the word with the largest delay difference — stage-wise separable,
so the optimum is found in O(stages * variants).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..variation.environment import NOMINAL_OPERATING_POINT, OperatingPoint
from ..variation.noise import MeasurementNoise, NoiselessMeasurement

__all__ = ["XKGPairSelection", "XKGEnrollment", "XinKapsGajPUF", "select_best_variant_word"]


@dataclass(frozen=True)
class XKGPairSelection:
    """Chosen variant word and margin for one pair.

    Attributes:
        word: per-stage variant indices, applied to both rings.
        margin: signed delay difference (top minus bottom) under the word.
        configurations: size of the explored configuration space.
    """

    word: tuple[int, ...]
    margin: float
    configurations: int

    @property
    def bit(self) -> bool:
        return self.margin > 0.0


def _validate_stage_variants(stage_delays: np.ndarray) -> np.ndarray:
    stage_delays = np.asarray(stage_delays, dtype=float)
    if stage_delays.ndim != 2 or stage_delays.shape[1] < 2:
        raise ValueError(
            "stage delays must be (stages, variants>=2), got "
            f"{stage_delays.shape}"
        )
    if stage_delays.shape[0] == 0:
        raise ValueError("a ring needs at least one stage")
    return stage_delays


def select_best_variant_word(
    top_stage_delays: np.ndarray, bottom_stage_delays: np.ndarray
) -> XKGPairSelection:
    """Stage-wise optimal variant word (both sign directions considered)."""
    top = _validate_stage_variants(top_stage_delays)
    bottom = _validate_stage_variants(bottom_stage_delays)
    if top.shape != bottom.shape:
        raise ValueError(f"ring shapes differ: {top.shape} vs {bottom.shape}")
    per_choice = top - bottom
    word_positive = np.argmax(per_choice, axis=1)
    margin_positive = float(np.sum(np.max(per_choice, axis=1)))
    word_negative = np.argmin(per_choice, axis=1)
    margin_negative = float(np.sum(np.min(per_choice, axis=1)))
    configurations = int(top.shape[1]) ** int(top.shape[0])
    if abs(margin_positive) >= abs(margin_negative):
        word, margin = word_positive, margin_positive
    else:
        word, margin = word_negative, margin_negative
    return XKGPairSelection(
        word=tuple(int(c) for c in word),
        margin=margin,
        configurations=configurations,
    )


@dataclass
class XKGEnrollment:
    """Enrollment record of a Xin-Kaps-Gaj PUF."""

    operating_point: OperatingPoint
    selections: list[XKGPairSelection]
    bits: np.ndarray
    margins: np.ndarray

    def __post_init__(self) -> None:
        self.bits = np.asarray(self.bits, dtype=bool)
        self.margins = np.asarray(self.margins, dtype=float)

    @property
    def bit_count(self) -> int:
        return len(self.bits)


@dataclass
class XinKapsGajPUF:
    """Per-stage-variant configurable RO PUF over stage-delay tensors.

    Attributes:
        stage_delay_provider: operating point ->
            ``(pairs, 2, stages, variants)`` tensor (axis 1 is top/bottom).
        response_noise: noise on ring-delay sums at response time.
        rng: generator for the response noise.
    """

    stage_delay_provider: Callable[[OperatingPoint], np.ndarray]
    response_noise: MeasurementNoise = field(default_factory=NoiselessMeasurement)
    rng: np.random.Generator = field(default_factory=np.random.default_rng)

    def _delays(self, op: OperatingPoint) -> np.ndarray:
        tensor = np.asarray(self.stage_delay_provider(op), dtype=float)
        if tensor.ndim != 4 or tensor.shape[1] != 2 or tensor.shape[3] < 2:
            raise ValueError(
                "stage delays must have shape (pairs, 2, stages, variants>=2),"
                f" got {tensor.shape}"
            )
        return tensor

    def enroll(self, op: OperatingPoint = NOMINAL_OPERATING_POINT) -> XKGEnrollment:
        """Choose the best variant word for every pair."""
        tensor = self._delays(op)
        selections = [
            select_best_variant_word(tensor[pair, 0], tensor[pair, 1])
            for pair in range(tensor.shape[0])
        ]
        return XKGEnrollment(
            operating_point=op,
            selections=selections,
            bits=np.array([s.bit for s in selections]),
            margins=np.array([s.margin for s in selections]),
        )

    def response(self, op: OperatingPoint, enrollment: XKGEnrollment) -> np.ndarray:
        """Re-compare the enrolled words at another operating point."""
        tensor = self._delays(op)
        stages = tensor.shape[2]
        top_delays = np.empty(len(enrollment.selections))
        bottom_delays = np.empty(len(enrollment.selections))
        idx = np.arange(stages)
        for pair, selection in enumerate(enrollment.selections):
            choices = np.array(selection.word)
            top_delays[pair] = np.sum(tensor[pair, 0, idx, choices])
            bottom_delays[pair] = np.sum(tensor[pair, 1, idx, choices])
        top_observed = self.response_noise.observe(top_delays, self.rng)
        bottom_observed = self.response_noise.observe(bottom_delays, self.rng)
        return top_observed > bottom_observed

    @staticmethod
    def tensor_from_units(
        unit_delays: np.ndarray, stage_count: int, variants_per_stage: int = 4
    ) -> np.ndarray:
        """Carve a flat unit-delay vector into the XKG tensor.

        Each ring consumes ``stage_count * variants_per_stage`` consecutive
        units; rings pair consecutively.
        """
        unit_delays = np.asarray(unit_delays, dtype=float)
        if unit_delays.ndim != 1:
            raise ValueError("unit_delays must be 1-D")
        if stage_count < 1 or variants_per_stage < 2:
            raise ValueError("need stage_count >= 1 and variants >= 2")
        units_per_ring = stage_count * variants_per_stage
        pair_count = len(unit_delays) // (2 * units_per_ring)
        if pair_count == 0:
            raise ValueError(
                f"{len(unit_delays)} units cannot host an XKG ring pair of "
                f"{stage_count} stages x {variants_per_stage} variants"
            )
        used = unit_delays[: pair_count * 2 * units_per_ring]
        return used.reshape(pair_count, 2, stage_count, variants_per_stage)
