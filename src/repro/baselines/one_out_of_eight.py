"""The 1-out-of-8 RO PUF of Suh & Devadas (DAC 2007) — the paper's ref [1].

From every group of 8 rings, enrollment picks the fastest and the slowest
ring; the bit is the comparison of that maximally-separated pair, re-checked
at response time.  The huge margin makes the scheme practically flip-free
(the paper's Fig. 4 shows zero flips), but it pays 8 rings per bit versus 2
for the traditional and configurable schemes — the 4x hardware-cost gap the
paper's abstract cites.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..core.pairing import RingAllocation
from ..variation.environment import NOMINAL_OPERATING_POINT, OperatingPoint
from ..variation.noise import MeasurementNoise, NoiselessMeasurement

__all__ = ["GroupEnrollment", "OneOutOfEightPUF"]


@dataclass
class GroupEnrollment:
    """Enrollment record of a 1-out-of-8 PUF.

    Attributes:
        operating_point: enrollment environment.
        chosen_pairs: per group, the (lower-index, higher-index) rings of
            the selected extreme pair.
        bits: reference bits (ring with the lower index is slower).
        margins: per-bit |slowest - fastest| ring-delay gaps.
    """

    operating_point: OperatingPoint
    chosen_pairs: list[tuple[int, int]]
    bits: np.ndarray
    margins: np.ndarray

    def __post_init__(self) -> None:
        self.bits = np.asarray(self.bits, dtype=bool)
        self.margins = np.asarray(self.margins, dtype=float)
        if len(self.bits) != len(self.chosen_pairs) or len(self.margins) != len(
            self.chosen_pairs
        ):
            raise ValueError("bits, margins and chosen_pairs must align")

    @property
    def bit_count(self) -> int:
        return len(self.bits)


@dataclass
class OneOutOfEightPUF:
    """1-out-of-8 RO PUF over a board's per-unit delay vectors.

    Rings are the same full (all-inverter) rings the traditional scheme
    uses; only the grouping differs.  One bit per 8 rings.

    Attributes:
        delay_provider: operating point -> per-unit delays.
        allocation: ring carve-up shared with the other schemes.
        response_noise: noise on ring-delay observations at response time.
        rng: generator driving the response noise.
    """

    delay_provider: Callable[[OperatingPoint], np.ndarray]
    allocation: RingAllocation
    response_noise: MeasurementNoise = field(default_factory=NoiselessMeasurement)
    rng: np.random.Generator = field(default_factory=np.random.default_rng)

    @property
    def bit_count(self) -> int:
        return self.allocation.group_of_8_count

    def _ring_totals(self, op: OperatingPoint) -> np.ndarray:
        unit_delays = np.asarray(self.delay_provider(op), dtype=float)
        rings = self.allocation.ring_delay_matrix(unit_delays)
        return rings.sum(axis=1)

    def enroll(self, op: OperatingPoint = NOMINAL_OPERATING_POINT) -> GroupEnrollment:
        """Pick each group's extreme pair and record the reference bits."""
        totals = self._ring_totals(op)
        chosen_pairs = []
        bits = []
        margins = []
        for group in range(self.allocation.group_of_8_count):
            rings = self.allocation.group_rings(group)
            delays = totals[rings]
            slowest = int(rings[np.argmax(delays)])
            fastest = int(rings[np.argmin(delays)])
            low, high = sorted((slowest, fastest))
            chosen_pairs.append((low, high))
            bits.append(totals[low] > totals[high])
            margins.append(float(np.max(delays) - np.min(delays)))
        return GroupEnrollment(
            operating_point=op,
            chosen_pairs=chosen_pairs,
            bits=np.array(bits, dtype=bool),
            margins=np.array(margins),
        )

    def response(
        self, op: OperatingPoint, enrollment: GroupEnrollment
    ) -> np.ndarray:
        """Re-compare the enrolled extreme pairs at ``op``."""
        totals = self._ring_totals(op)
        low_delays = np.array([totals[low] for low, _ in enrollment.chosen_pairs])
        high_delays = np.array([totals[high] for _, high in enrollment.chosen_pairs])
        low_observed = self.response_noise.observe(low_delays, self.rng)
        high_observed = self.response_noise.observe(high_delays, self.rng)
        return low_observed > high_observed
