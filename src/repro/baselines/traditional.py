"""The traditional (non-configurable) RO PUF baseline.

Every inverter participates in the ring; the bit is the sign of the pair's
total delay difference.  This is :class:`~repro.core.puf.BoardROPUF` with
``method="traditional"``; the factory here exists so baseline construction
reads explicitly in experiment code.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..core.pairing import RingAllocation
from ..core.puf import BoardROPUF
from ..variation.environment import OperatingPoint
from ..variation.noise import MeasurementNoise, NoiselessMeasurement

__all__ = ["traditional_puf"]


def traditional_puf(
    delay_provider: Callable[[OperatingPoint], np.ndarray],
    allocation: RingAllocation,
    response_noise: MeasurementNoise | None = None,
    rng: np.random.Generator | None = None,
) -> BoardROPUF:
    """Build the traditional RO PUF baseline over a board's delays."""
    return BoardROPUF(
        delay_provider=delay_provider,
        allocation=allocation,
        method="traditional",
        response_noise=response_noise
        if response_noise is not None
        else NoiselessMeasurement(),
        rng=rng if rng is not None else np.random.default_rng(0),
    )
