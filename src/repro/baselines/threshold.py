"""Reliability-threshold (R_th) masking (Sec. IV.E of the paper).

A traditional RO PUF can refuse to define a bit whenever the pair's delay
difference is below a threshold ``R_th`` — trading hardware utilisation for
reliability.  The paper measures 9 in-house Virtex-5 boards: at ``R_th = 0``
the traditional scheme yields 32 bits; at ``R_th = 3`` only 13 survive,
while the configurable PUF still delivers all 32 because its margins are
maximised by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "reliable_bit_count",
    "yield_vs_threshold",
    "ThresholdSweep",
]


def reliable_bit_count(margins: np.ndarray, threshold: float) -> int:
    """Number of bits whose |margin| meets the threshold."""
    if threshold < 0.0:
        raise ValueError(f"threshold must be non-negative, got {threshold}")
    margins = np.asarray(margins, dtype=float)
    return int(np.sum(np.abs(margins) >= threshold))


@dataclass
class ThresholdSweep:
    """Bit yield of one PUF across a threshold grid.

    Attributes:
        thresholds: the R_th grid (same unit as the margins).
        counts: surviving bits per threshold.
        total_bits: bits available at R_th = 0.
    """

    thresholds: np.ndarray
    counts: np.ndarray
    total_bits: int

    def utilisation_percent(self) -> np.ndarray:
        """Surviving bits as a percentage of the total."""
        if self.total_bits == 0:
            return np.zeros_like(self.counts, dtype=float)
        return 100.0 * self.counts / self.total_bits


def yield_vs_threshold(
    margins: np.ndarray, thresholds: np.ndarray
) -> ThresholdSweep:
    """Sweep R_th over a margin population (Sec. IV.E's tradeoff curve)."""
    margins = np.asarray(margins, dtype=float)
    thresholds = np.asarray(thresholds, dtype=float)
    if thresholds.ndim != 1 or len(thresholds) == 0:
        raise ValueError("thresholds must be a non-empty 1-D array")
    if np.any(thresholds < 0.0):
        raise ValueError("thresholds must be non-negative")
    counts = np.array(
        [reliable_bit_count(margins, t) for t in thresholds], dtype=int
    )
    return ThresholdSweep(
        thresholds=thresholds, counts=counts, total_bits=len(margins)
    )
