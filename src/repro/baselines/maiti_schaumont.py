"""The configurable RO PUF of Maiti & Schaumont (FPL 2009) — ref [14].

Related work the paper positions itself against: every RO stage contains a
MUX choosing one of *two* inverters, so a 3-stage ring offers 8
configurations.  Enrollment applies the same configuration word to both
rings of a pair and keeps the word with the largest frequency difference.
Unlike the paper's scheme, the configuration space grows as ``2**n`` (not
"include/bypass" per stage), every stage always contributes one inverter,
and the ring consumes two inverters of area per stage.

Because the objective separates per stage — each stage independently adds
``a_i[c_i] - b_i[c_i]`` to the pair difference — the best word for each sign
direction can be found stage-wise in O(n); an exhaustive search over the
``2**n`` words is provided for verification.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..variation.environment import NOMINAL_OPERATING_POINT, OperatingPoint
from ..variation.noise import MeasurementNoise, NoiselessMeasurement

__all__ = [
    "select_best_word",
    "select_best_word_exhaustive",
    "MSPairSelection",
    "MaitiSchaumontPUF",
    "MSEnrollment",
]


@dataclass(frozen=True)
class MSPairSelection:
    """Chosen configuration word and margin for one Maiti-Schaumont pair.

    Attributes:
        word: per-stage inverter choices (0 or 1), applied to both rings.
        margin: signed delay difference (top minus bottom) under the word.
    """

    word: tuple[int, ...]
    margin: float

    @property
    def bit(self) -> bool:
        return self.margin > 0.0


def _validate_stage_delays(stage_delays: np.ndarray) -> np.ndarray:
    stage_delays = np.asarray(stage_delays, dtype=float)
    if stage_delays.ndim != 2 or stage_delays.shape[1] != 2:
        raise ValueError(
            f"stage delays must have shape (stages, 2), got {stage_delays.shape}"
        )
    if stage_delays.shape[0] == 0:
        raise ValueError("a ring needs at least one stage")
    return stage_delays


def select_best_word(
    top_stage_delays: np.ndarray, bottom_stage_delays: np.ndarray
) -> MSPairSelection:
    """Stage-wise optimal configuration word for one RO pair.

    Args:
        top_stage_delays: ``(stages, 2)`` inverter delays of the top ring.
        bottom_stage_delays: same for the bottom ring.
    """
    top = _validate_stage_delays(top_stage_delays)
    bottom = _validate_stage_delays(bottom_stage_delays)
    if top.shape != bottom.shape:
        raise ValueError(
            f"ring shapes differ: {top.shape} vs {bottom.shape}"
        )
    per_choice = top - bottom  # (stages, 2): margin contribution per choice
    word_positive = np.argmax(per_choice, axis=1)
    margin_positive = float(np.sum(np.max(per_choice, axis=1)))
    word_negative = np.argmin(per_choice, axis=1)
    margin_negative = float(np.sum(np.min(per_choice, axis=1)))
    if abs(margin_positive) >= abs(margin_negative):
        return MSPairSelection(tuple(int(c) for c in word_positive), margin_positive)
    return MSPairSelection(tuple(int(c) for c in word_negative), margin_negative)


def select_best_word_exhaustive(
    top_stage_delays: np.ndarray, bottom_stage_delays: np.ndarray
) -> MSPairSelection:
    """Brute force over all ``2**stages`` words (verification reference)."""
    top = _validate_stage_delays(top_stage_delays)
    bottom = _validate_stage_delays(bottom_stage_delays)
    stages = top.shape[0]
    if stages > 16:
        raise ValueError(f"exhaustive search supports up to 16 stages, got {stages}")
    best: MSPairSelection | None = None
    for code in range(2**stages):
        word = tuple((code >> i) & 1 for i in range(stages))
        choices = np.array(word)
        margin = float(
            np.sum(top[np.arange(stages), choices])
            - np.sum(bottom[np.arange(stages), choices])
        )
        if best is None or abs(margin) > abs(best.margin):
            best = MSPairSelection(word, margin)
    assert best is not None
    return best


@dataclass
class MSEnrollment:
    """Enrollment record of a Maiti-Schaumont PUF."""

    operating_point: OperatingPoint
    selections: list[MSPairSelection]
    bits: np.ndarray
    margins: np.ndarray

    def __post_init__(self) -> None:
        self.bits = np.asarray(self.bits, dtype=bool)
        self.margins = np.asarray(self.margins, dtype=float)

    @property
    def bit_count(self) -> int:
        return len(self.bits)


@dataclass
class MaitiSchaumontPUF:
    """Maiti-Schaumont configurable RO PUF over stage-delay tensors.

    Attributes:
        stage_delay_provider: operating point -> ``(pairs, 2, stages, 2)``
            tensor: axis 1 is top/bottom ring, axis 3 the two candidate
            inverters per stage.
        response_noise: noise on ring-delay sums at response time.
        rng: generator driving the response noise.
    """

    stage_delay_provider: Callable[[OperatingPoint], np.ndarray]
    response_noise: MeasurementNoise = field(default_factory=NoiselessMeasurement)
    rng: np.random.Generator = field(default_factory=np.random.default_rng)

    def _delays(self, op: OperatingPoint) -> np.ndarray:
        tensor = np.asarray(self.stage_delay_provider(op), dtype=float)
        if tensor.ndim != 4 or tensor.shape[1] != 2 or tensor.shape[3] != 2:
            raise ValueError(
                "stage delays must have shape (pairs, 2, stages, 2), got "
                f"{tensor.shape}"
            )
        return tensor

    def enroll(self, op: OperatingPoint = NOMINAL_OPERATING_POINT) -> MSEnrollment:
        """Choose the best configuration word for every pair."""
        tensor = self._delays(op)
        selections = [
            select_best_word(tensor[pair, 0], tensor[pair, 1])
            for pair in range(tensor.shape[0])
        ]
        return MSEnrollment(
            operating_point=op,
            selections=selections,
            bits=np.array([s.bit for s in selections]),
            margins=np.array([s.margin for s in selections]),
        )

    def response(self, op: OperatingPoint, enrollment: MSEnrollment) -> np.ndarray:
        """Re-compare the enrolled words at another operating point."""
        tensor = self._delays(op)
        stages = tensor.shape[2]
        top_delays = np.empty(len(enrollment.selections))
        bottom_delays = np.empty(len(enrollment.selections))
        for pair, selection in enumerate(enrollment.selections):
            choices = np.array(selection.word)
            idx = np.arange(stages)
            top_delays[pair] = np.sum(tensor[pair, 0, idx, choices])
            bottom_delays[pair] = np.sum(tensor[pair, 1, idx, choices])
        top_observed = self.response_noise.observe(top_delays, self.rng)
        bottom_observed = self.response_noise.observe(bottom_delays, self.rng)
        return top_observed > bottom_observed

    @staticmethod
    def tensor_from_units(unit_delays: np.ndarray, stage_count: int) -> np.ndarray:
        """Carve a flat unit-delay vector into the (pairs, 2, stages, 2) tensor.

        Each ring consumes ``2 * stage_count`` consecutive units (two
        candidate inverters per stage); rings are paired consecutively.
        """
        unit_delays = np.asarray(unit_delays, dtype=float)
        if unit_delays.ndim != 1:
            raise ValueError("unit_delays must be 1-D")
        if stage_count < 1:
            raise ValueError("stage_count must be >= 1")
        units_per_ring = 2 * stage_count
        ring_count = len(unit_delays) // units_per_ring
        pair_count = ring_count // 2
        if pair_count == 0:
            raise ValueError(
                f"{len(unit_delays)} units cannot host a pair of "
                f"{stage_count}-stage Maiti-Schaumont rings"
            )
        used = unit_delays[: pair_count * 2 * units_per_ring]
        return used.reshape(pair_count, 2, stage_count, 2)
