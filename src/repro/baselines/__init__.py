"""Baseline RO PUF schemes the paper compares against.

* traditional RO PUF (all inverters in the ring);
* 1-out-of-8 of Suh & Devadas [1];
* R_th reliability-threshold masking (Sec. IV.E);
* Maiti & Schaumont's two-inverters-per-stage configurable RO PUF [14].
"""

from .cooperative import (
    CooperativeEnrollment,
    CooperativeROPUF,
    bits_per_group,
    lehmer_decode,
    lehmer_encode,
    permutation_to_bits,
)
from .maiti_schaumont import (
    MaitiSchaumontPUF,
    MSEnrollment,
    MSPairSelection,
    select_best_word,
    select_best_word_exhaustive,
)
from .one_out_of_eight import GroupEnrollment, OneOutOfEightPUF
from .threshold import ThresholdSweep, reliable_bit_count, yield_vs_threshold
from .traditional import traditional_puf
from .xin_kaps_gaj import (
    XinKapsGajPUF,
    XKGEnrollment,
    XKGPairSelection,
    select_best_variant_word,
)

__all__ = [
    "CooperativeEnrollment",
    "CooperativeROPUF",
    "bits_per_group",
    "lehmer_decode",
    "lehmer_encode",
    "permutation_to_bits",
    "MaitiSchaumontPUF",
    "MSEnrollment",
    "MSPairSelection",
    "select_best_word",
    "select_best_word_exhaustive",
    "GroupEnrollment",
    "OneOutOfEightPUF",
    "ThresholdSweep",
    "reliable_bit_count",
    "yield_vs_threshold",
    "traditional_puf",
    "XinKapsGajPUF",
    "XKGEnrollment",
    "XKGPairSelection",
    "select_best_variant_word",
]
