"""Operating-environment model: how device delay responds to voltage and
temperature.

The paper evaluates PUF reliability while the supply voltage sweeps over
0.98 V - 1.44 V and the die temperature over 25 degC - 65 degC (Sec. IV.D).
Bit flips happen because two nominally-compared delay paths drift by
*different* amounts when the environment changes.  We reproduce that with a
first-order alpha-power-law delay model in which every device carries its own
threshold voltage, velocity-saturation index, and mobility exponent.  The
per-device spread of those sensitivities is what makes delay orderings
environment-dependent, exactly as on real silicon.

The model is normalised so that ``delay(reference_point) == base_delay`` for
every device; only the *relative* drift between devices matters for PUF
behaviour, which is all the paper's experiments rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "OperatingPoint",
    "NOMINAL_OPERATING_POINT",
    "EnvironmentParameters",
    "DeviceSensitivities",
    "EnvironmentModel",
]

_CELSIUS_TO_KELVIN = 273.15


@dataclass(frozen=True, order=True)
class OperatingPoint:
    """A (voltage, temperature) pair describing the chip environment.

    Attributes:
        voltage: supply voltage in volts.
        temperature: die temperature in degrees Celsius.
    """

    voltage: float = 1.20
    temperature: float = 25.0

    def __post_init__(self) -> None:
        if self.voltage <= 0.0:
            raise ValueError(f"voltage must be positive, got {self.voltage}")
        if self.temperature <= -_CELSIUS_TO_KELVIN:
            raise ValueError(
                f"temperature below absolute zero: {self.temperature} degC"
            )

    @property
    def kelvin(self) -> float:
        """Die temperature in kelvin."""
        return self.temperature + _CELSIUS_TO_KELVIN

    def label(self) -> str:
        """Short human-readable label, e.g. ``'1.20V/25C'``."""
        return f"{self.voltage:.2f}V/{self.temperature:g}C"


#: The enrollment environment used throughout the paper's evaluation.
NOMINAL_OPERATING_POINT = OperatingPoint(voltage=1.20, temperature=25.0)


@dataclass(frozen=True)
class EnvironmentParameters:
    """Population parameters of the environmental-sensitivity model.

    The defaults are calibrated for a 90 nm-class FPGA fabric (Spartan-3E /
    Virtex-5 era) so that a traditional RO PUF shows a few percent of bit
    flips across the paper's voltage range while the margin-maximising
    configurable PUF stays near zero, matching the shape of Fig. 4.

    Attributes:
        vth_mean: mean transistor threshold voltage (V).
        vth_sigma: per-device threshold-voltage standard deviation (V).
            This spread is the dominant source of *differential* drift.
        alpha_mean: mean velocity-saturation index of the alpha-power law.
        alpha_sigma: per-device spread of the index.
        mobility_exponent_mean: mean exponent of the ``(T/T0)**m`` mobility
            degradation term.
        mobility_exponent_sigma: per-device spread of the exponent.
        vth_temp_slope: threshold-voltage reduction per degC (V/degC); a
            positive value means Vth drops as temperature rises.
    """

    vth_mean: float = 0.40
    vth_sigma: float = 0.008
    alpha_mean: float = 1.30
    alpha_sigma: float = 0.010
    mobility_exponent_mean: float = 1.40
    mobility_exponent_sigma: float = 0.020
    vth_temp_slope: float = 4.0e-4

    def __post_init__(self) -> None:
        if self.vth_mean <= 0.0:
            raise ValueError("vth_mean must be positive")
        for name in ("vth_sigma", "alpha_sigma", "mobility_exponent_sigma"):
            if getattr(self, name) < 0.0:
                raise ValueError(f"{name} must be non-negative")


@dataclass
class DeviceSensitivities:
    """Per-device environmental sensitivities (structure of arrays).

    All three arrays share one shape; element ``i`` describes device ``i``.

    Attributes:
        vth: per-device threshold voltage at 25 degC (V).
        alpha: per-device velocity-saturation index.
        mobility_exponent: per-device mobility-degradation exponent.
    """

    vth: np.ndarray
    alpha: np.ndarray
    mobility_exponent: np.ndarray

    def __post_init__(self) -> None:
        self.vth = np.asarray(self.vth, dtype=float)
        self.alpha = np.asarray(self.alpha, dtype=float)
        self.mobility_exponent = np.asarray(self.mobility_exponent, dtype=float)
        if not (self.vth.shape == self.alpha.shape == self.mobility_exponent.shape):
            raise ValueError("sensitivity arrays must share one shape")

    @property
    def shape(self) -> tuple[int, ...]:
        return self.vth.shape

    def __len__(self) -> int:
        if self.vth.ndim == 0:
            raise TypeError("scalar sensitivities have no length")
        return self.vth.shape[0]

    def take(self, indices: np.ndarray) -> "DeviceSensitivities":
        """Return the sensitivities of a subset of devices."""
        return DeviceSensitivities(
            vth=self.vth[indices],
            alpha=self.alpha[indices],
            mobility_exponent=self.mobility_exponent[indices],
        )


@dataclass
class EnvironmentModel:
    """Maps (base delay, device sensitivities, operating point) to delay.

    The delay of a device at operating point ``op`` is::

        delay(op) = base_delay * scale(op) / scale(reference)

    with the alpha-power-law scale factor::

        scale = (T_K / T_ref_K) ** m  *  V / (V - Vth(T)) ** alpha
        Vth(T) = vth - vth_temp_slope * (T - 25)

    Attributes:
        parameters: population parameters of the sensitivity model.
        reference: operating point at which ``delay == base_delay``.
    """

    parameters: EnvironmentParameters = field(default_factory=EnvironmentParameters)
    reference: OperatingPoint = NOMINAL_OPERATING_POINT

    def sample_sensitivities(
        self, count: int, rng: np.random.Generator
    ) -> DeviceSensitivities:
        """Draw per-device sensitivities for ``count`` devices."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        p = self.parameters
        return DeviceSensitivities(
            vth=rng.normal(p.vth_mean, p.vth_sigma, size=count),
            alpha=rng.normal(p.alpha_mean, p.alpha_sigma, size=count),
            mobility_exponent=rng.normal(
                p.mobility_exponent_mean, p.mobility_exponent_sigma, size=count
            ),
        )

    def _raw_scale(
        self, sensitivities: DeviceSensitivities, op: OperatingPoint
    ) -> np.ndarray:
        vth_at_t = sensitivities.vth - self.parameters.vth_temp_slope * (
            op.temperature - 25.0
        )
        overdrive = op.voltage - vth_at_t
        if np.any(overdrive <= 0.0):
            raise ValueError(
                f"supply voltage {op.voltage} V does not exceed every device "
                "threshold; the alpha-power delay model is invalid there"
            )
        thermal = (op.kelvin / self.reference.kelvin) ** sensitivities.mobility_exponent
        return thermal * op.voltage / overdrive**sensitivities.alpha

    def scale_factors(
        self, sensitivities: DeviceSensitivities, op: OperatingPoint
    ) -> np.ndarray:
        """Per-device multiplicative delay factors, 1.0 at the reference."""
        return self._raw_scale(sensitivities, op) / self._raw_scale(
            sensitivities, self.reference
        )

    def delays_at(
        self,
        base_delays: np.ndarray,
        sensitivities: DeviceSensitivities,
        op: OperatingPoint,
    ) -> np.ndarray:
        """Per-device delays at ``op`` given reference-point base delays."""
        base_delays = np.asarray(base_delays, dtype=float)
        if base_delays.shape != sensitivities.shape:
            raise ValueError(
                "base_delays shape "
                f"{base_delays.shape} != sensitivities shape {sensitivities.shape}"
            )
        return base_delays * self.scale_factors(sensitivities, op)
