"""Process-variation model: systematic spatial trends plus random mismatch.

Fabrication variation on an FPGA die decomposes into

* a **board/die offset** — the whole die is a little fast or slow,
* a **systematic spatial component** — a smooth trend across the die
  (lithography, thermal gradients during fab), modelled as a random
  low-order polynomial over normalised die coordinates plus a small
  sinusoidal ripple that a polynomial distiller cannot fully remove,
* a **random component** — independent per-device mismatch; this is the
  entropy source every delay PUF mines.

The paper's Sec. IV.A notes that PUF bits derived from *raw* delays fail the
NIST randomness tests because of the systematic component and only pass after
the regression-based distiller of Yin & Qu [18] removes it.  Keeping the
systematic term explicit in the model lets us reproduce both the failure and
the fix (ablation A1 in DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "SpatialField",
    "ProcessParameters",
    "ProcessVariationModel",
]


@dataclass
class SpatialField:
    """A smooth systematic-variation field over normalised die coordinates.

    The field value at a point ``(x, y)`` (both in ``[-1, 1]``) is::

        sum_k  poly_coefficients[k] * basis_k(x, y)
        + ripple_amplitude * sin(2*pi*(fx*x + fy*y) + phase)

    where ``basis`` enumerates the monomials of total degree 1..degree
    (the constant term is carried by the board offset, not the field).

    Attributes:
        degree: maximum total degree of the polynomial part.
        poly_coefficients: one coefficient per non-constant monomial, ordered
            by :func:`monomial_exponents`.
        ripple_amplitude: amplitude of the sinusoidal residual component.
        ripple_frequency: ``(fx, fy)`` spatial frequency of the ripple.
        ripple_phase: phase offset of the ripple in radians.
    """

    degree: int
    poly_coefficients: np.ndarray
    ripple_amplitude: float = 0.0
    ripple_frequency: tuple[float, float] = (1.0, 1.0)
    ripple_phase: float = 0.0

    def __post_init__(self) -> None:
        self.poly_coefficients = np.asarray(self.poly_coefficients, dtype=float)
        expected = len(monomial_exponents(self.degree))
        if self.poly_coefficients.shape != (expected,):
            raise ValueError(
                f"degree {self.degree} needs {expected} coefficients, "
                f"got shape {self.poly_coefficients.shape}"
            )

    def evaluate(self, coords: np.ndarray) -> np.ndarray:
        """Evaluate the field at an ``(k, 2)`` array of coordinates."""
        coords = np.asarray(coords, dtype=float)
        if coords.ndim != 2 or coords.shape[1] != 2:
            raise ValueError(f"coords must have shape (k, 2), got {coords.shape}")
        design = polynomial_design_matrix(coords, self.degree)
        values = design @ self.poly_coefficients
        if self.ripple_amplitude != 0.0:
            fx, fy = self.ripple_frequency
            phase = 2.0 * np.pi * (fx * coords[:, 0] + fy * coords[:, 1])
            values = values + self.ripple_amplitude * np.sin(phase + self.ripple_phase)
        return values


def monomial_exponents(degree: int) -> list[tuple[int, int]]:
    """Exponent pairs of all 2-D monomials with total degree 1..degree.

    The constant monomial ``(0, 0)`` is intentionally excluded: board-level
    mean shifts are modelled separately so that distillers can treat them
    independently.
    """
    if degree < 1:
        raise ValueError(f"degree must be >= 1, got {degree}")
    exponents = []
    for total in range(1, degree + 1):
        for px in range(total, -1, -1):
            exponents.append((px, total - px))
    return exponents


def polynomial_design_matrix(coords: np.ndarray, degree: int) -> np.ndarray:
    """Design matrix of the non-constant monomials at each coordinate."""
    coords = np.asarray(coords, dtype=float)
    columns = [
        coords[:, 0] ** px * coords[:, 1] ** py
        for px, py in monomial_exponents(degree)
    ]
    return np.stack(columns, axis=1)


@dataclass(frozen=True)
class ProcessParameters:
    """Population parameters of the fabrication-variation model.

    All sigmas are *relative* to the nominal delay (dimensionless).

    Attributes:
        nominal_delay: mean device delay at the reference corner (seconds).
        sigma_board: standard deviation of the per-board mean offset.
        sigma_systematic: standard deviation of the polynomial spatial field
            (evaluated over the die).
        sigma_random: standard deviation of independent per-device mismatch.
        ripple_sigma: standard deviation of the ripple amplitude (the part of
            systematic variation a low-order polynomial distiller misses).
        field_degree: polynomial degree of the systematic field.
        correlation_length: spatial correlation length of the "random"
            mismatch, in normalised die units ([-1, 1] axes).  Zero (the
            default) gives independent mismatch; positive values smooth it
            with a Gaussian kernel of this length — short-range
            correlation that neither a board offset nor a low-order
            polynomial distiller can remove (ablation A9).
    """

    nominal_delay: float = 500e-12
    sigma_board: float = 0.010
    sigma_systematic: float = 0.020
    sigma_random: float = 0.015
    ripple_sigma: float = 0.002
    field_degree: int = 2
    correlation_length: float = 0.0

    def __post_init__(self) -> None:
        if self.nominal_delay <= 0.0:
            raise ValueError("nominal_delay must be positive")
        for name in ("sigma_board", "sigma_systematic", "sigma_random", "ripple_sigma"):
            if getattr(self, name) < 0.0:
                raise ValueError(f"{name} must be non-negative")
        if self.field_degree < 1:
            raise ValueError("field_degree must be >= 1")
        if self.correlation_length < 0.0:
            raise ValueError("correlation_length must be non-negative")


@dataclass
class ProcessVariationModel:
    """Samples fabrication outcomes: board offsets, fields, device delays.

    Usage::

        model = ProcessVariationModel()
        rng = np.random.default_rng(0)
        field = model.sample_field(rng)
        offset = model.sample_board_offset(rng)
        delays = model.sample_delays(coords, field, offset, rng)
    """

    parameters: ProcessParameters = field(default_factory=ProcessParameters)

    def sample_board_offset(self, rng: np.random.Generator) -> float:
        """Relative mean-delay offset of one board (e.g. +0.01 = 1% slow)."""
        return float(rng.normal(0.0, self.parameters.sigma_board))

    def sample_field(self, rng: np.random.Generator) -> SpatialField:
        """Draw one board's systematic spatial field.

        Polynomial coefficients are scaled so the field's standard deviation
        over a uniformly-sampled die is approximately ``sigma_systematic``.
        """
        p = self.parameters
        exponents = monomial_exponents(p.field_degree)
        raw = rng.normal(0.0, 1.0, size=len(exponents))
        # Variance of x**px * y**py over x,y ~ U[-1, 1]:
        # E[x**(2p)] = 1/(2p+1), E[x**p] = 0 for odd p, 1/(p+1) for even p.
        variances = np.array(
            [_monomial_variance(px, py) for px, py in exponents]
        )
        # Independent coefficients: total field variance = sum c_k^2 var_k
        # (cross terms vanish for distinct monomial pairs except even/even
        # overlaps, which we neglect for calibration purposes).
        unit_scale = np.sqrt(np.sum(variances))
        coefficients = raw * (p.sigma_systematic / max(unit_scale, 1e-12))
        return SpatialField(
            degree=p.field_degree,
            poly_coefficients=coefficients,
            ripple_amplitude=float(rng.normal(0.0, p.ripple_sigma)),
            ripple_frequency=(float(rng.uniform(0.5, 2.0)), float(rng.uniform(0.5, 2.0))),
            ripple_phase=float(rng.uniform(0.0, 2.0 * np.pi)),
        )

    def sample_relative_delays(
        self,
        coords: np.ndarray,
        fld: SpatialField,
        board_offset: float,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Relative delays (multiples of nominal) for devices at ``coords``."""
        coords = np.asarray(coords, dtype=float)
        systematic = fld.evaluate(coords)
        random_part = rng.normal(0.0, self.parameters.sigma_random, size=len(coords))
        if self.parameters.correlation_length > 0.0:
            random_part = _correlate_spatially(
                random_part,
                coords,
                self.parameters.correlation_length,
                self.parameters.sigma_random,
            )
        return 1.0 + board_offset + systematic + random_part

    def sample_delays(
        self,
        coords: np.ndarray,
        fld: SpatialField,
        board_offset: float,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Absolute device delays in seconds at the reference corner."""
        relative = self.sample_relative_delays(coords, fld, board_offset, rng)
        return self.parameters.nominal_delay * relative


def _correlate_spatially(
    values: np.ndarray,
    coords: np.ndarray,
    correlation_length: float,
    target_sigma: float,
) -> np.ndarray:
    """Smooth i.i.d. values with a Gaussian spatial kernel, preserving sigma.

    O(k^2) pairwise weights — fine for board-sized device counts (<= a few
    thousand).
    """
    differences = coords[:, None, :] - coords[None, :, :]
    squared = np.sum(differences**2, axis=2)
    weights = np.exp(-squared / (2.0 * correlation_length**2))
    smoothed = weights @ values / weights.sum(axis=1)
    spread = float(np.std(smoothed))
    if spread == 0.0:
        return np.zeros_like(smoothed)
    return smoothed * (target_sigma / spread)


def _monomial_variance(px: int, py: int) -> float:
    """Variance of x**px * y**py with x, y independent uniform on [-1, 1]."""

    def moment(p: int) -> float:
        if p % 2 == 1:
            return 0.0
        return 1.0 / (p + 1)

    second = moment(2 * px) * moment(2 * py)
    first = moment(px) * moment(py)
    return second - first * first
