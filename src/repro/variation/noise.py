"""Measurement-noise models for delay and frequency measurements.

On the FPGA, RO frequencies are measured by counting edges over a fixed
window; chain delays by timing a launched transition.  Both are subject to
jitter, supply ripple, and counter quantisation.  The paper's measurement
scheme (Sec. III.B) explicitly tolerates this: it only needs *relative*
speeds, and it measures multi-inverter chains (then solves for the per-unit
values) precisely because single-unit measurements "may introduce large
error".  These models let the reproduction inject that error.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "MeasurementNoise",
    "GaussianNoise",
    "QuantizedGaussianNoise",
    "NoiselessMeasurement",
]


class MeasurementNoise:
    """Interface of a measurement-noise model."""

    def observe(self, true_values: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Return one noisy observation of each true value."""
        raise NotImplementedError

    def observe_averaged(
        self,
        true_values: np.ndarray,
        rng: np.random.Generator,
        repeats: int = 1,
    ) -> np.ndarray:
        """Average ``repeats`` independent observations of each value."""
        if repeats < 1:
            raise ValueError(f"repeats must be >= 1, got {repeats}")
        true_values = np.asarray(true_values, dtype=float)
        total = np.zeros_like(true_values)
        for _ in range(repeats):
            total += self.observe(true_values, rng)
        return total / repeats


@dataclass
class NoiselessMeasurement(MeasurementNoise):
    """Ideal measurement; useful as a control in tests and ablations."""

    def observe(self, true_values: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        return np.asarray(true_values, dtype=float).copy()


@dataclass
class GaussianNoise(MeasurementNoise):
    """Additive Gaussian jitter, relative to each measured value.

    Attributes:
        relative_sigma: standard deviation as a fraction of the true value
            (0.0005 = 0.05%, a typical counter-window repeatability).
    """

    relative_sigma: float = 5e-4

    def __post_init__(self) -> None:
        if self.relative_sigma < 0.0:
            raise ValueError("relative_sigma must be non-negative")

    def observe(self, true_values: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        true_values = np.asarray(true_values, dtype=float)
        jitter = rng.normal(0.0, self.relative_sigma, size=true_values.shape)
        return true_values * (1.0 + jitter)


@dataclass
class QuantizedGaussianNoise(MeasurementNoise):
    """Gaussian jitter followed by counter quantisation.

    Models a frequency counter whose readout resolves ``resolution`` units
    (e.g. one count of a 20-bit counter over a 1 ms window).

    Attributes:
        relative_sigma: relative jitter applied before quantisation.
        resolution: quantisation step in the measured unit (seconds for
            delays, hertz for frequencies).  Zero disables quantisation.
    """

    relative_sigma: float = 5e-4
    resolution: float = 0.0

    def __post_init__(self) -> None:
        if self.relative_sigma < 0.0:
            raise ValueError("relative_sigma must be non-negative")
        if self.resolution < 0.0:
            raise ValueError("resolution must be non-negative")

    def observe(self, true_values: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        true_values = np.asarray(true_values, dtype=float)
        jitter = rng.normal(0.0, self.relative_sigma, size=true_values.shape)
        observed = true_values * (1.0 + jitter)
        if self.resolution > 0.0:
            observed = np.round(observed / self.resolution) * self.resolution
        return observed
