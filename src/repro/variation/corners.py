"""The operating corners used in the paper's evaluation (Sec. IV).

Five supply voltages and five temperatures; the enrollment corner is
(1.20 V, 25 degC).  The five environment-swept boards of the Virginia Tech
dataset were measured on this grid.
"""

from __future__ import annotations

from .environment import NOMINAL_OPERATING_POINT, OperatingPoint

__all__ = [
    "VOLTAGES",
    "TEMPERATURES",
    "NOMINAL_OPERATING_POINT",
    "voltage_corners",
    "temperature_corners",
    "full_grid",
]

#: Supply voltages of the VT dataset sweep (Sec. IV): 1.20 V nominal +/- steps.
VOLTAGES: tuple[float, ...] = (0.98, 1.08, 1.20, 1.32, 1.44)

#: Temperatures of the VT dataset sweep: 25 degC nominal plus four elevated.
TEMPERATURES: tuple[float, ...] = (25.0, 35.0, 45.0, 55.0, 65.0)


def voltage_corners(temperature: float = 25.0) -> list[OperatingPoint]:
    """The five voltage corners at a fixed temperature (default 25 degC)."""
    return [OperatingPoint(voltage=v, temperature=temperature) for v in VOLTAGES]


def temperature_corners(voltage: float = 1.20) -> list[OperatingPoint]:
    """The five temperature corners at a fixed voltage (default 1.20 V)."""
    return [OperatingPoint(voltage=voltage, temperature=t) for t in TEMPERATURES]


def full_grid() -> list[OperatingPoint]:
    """All 25 (voltage, temperature) corners, voltage-major order."""
    return [
        OperatingPoint(voltage=v, temperature=t)
        for v in VOLTAGES
        for t in TEMPERATURES
    ]
