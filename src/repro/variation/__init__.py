"""Fabrication-variation, environment, and measurement-noise models.

This subpackage is the physical substrate of the reproduction: it stands in
for the silicon the paper measured.  See DESIGN.md Sec. 2 for the
substitution rationale.
"""

from .corners import (
    NOMINAL_OPERATING_POINT,
    TEMPERATURES,
    VOLTAGES,
    full_grid,
    temperature_corners,
    voltage_corners,
)
from .environment import (
    DeviceSensitivities,
    EnvironmentModel,
    EnvironmentParameters,
    OperatingPoint,
)
from .noise import (
    GaussianNoise,
    MeasurementNoise,
    NoiselessMeasurement,
    QuantizedGaussianNoise,
)
from .process import (
    ProcessParameters,
    ProcessVariationModel,
    SpatialField,
    monomial_exponents,
    polynomial_design_matrix,
)

__all__ = [
    "NOMINAL_OPERATING_POINT",
    "TEMPERATURES",
    "VOLTAGES",
    "full_grid",
    "temperature_corners",
    "voltage_corners",
    "DeviceSensitivities",
    "EnvironmentModel",
    "EnvironmentParameters",
    "OperatingPoint",
    "GaussianNoise",
    "MeasurementNoise",
    "NoiselessMeasurement",
    "QuantizedGaussianNoise",
    "ProcessParameters",
    "ProcessVariationModel",
    "SpatialField",
    "monomial_exponents",
    "polynomial_design_matrix",
]
