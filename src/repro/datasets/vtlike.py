"""A synthetic dataset shaped like the Virginia Tech RO PUF dataset [16].

The real dataset holds RO frequency measurements from 198 Spartan-3E
(XC3S500E) boards with 512 ROs each: 194 boards at the fixed corner
(1.20 V, 25 degC) plus 5 boards swept over supply voltages
{0.98, 1.08, 1.20, 1.32, 1.44} V and temperatures {25, 35, 45, 55, 65} degC.
The paper treats each dataset RO as one *inverter* of a configurable RO
because no public inverter-level data exists (Sec. IV).

This module generates a statistically-equivalent dataset from the
process-variation and environment models (see DESIGN.md Sec. 2 for the
substitution argument), and provides a loader for real measurement files if
a user has them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from pathlib import Path

import numpy as np

from ..silicon.geometry import grid_coordinates
from ..variation.corners import full_grid
from ..variation.environment import (
    NOMINAL_OPERATING_POINT,
    EnvironmentModel,
    OperatingPoint,
)
from ..variation.noise import GaussianNoise, MeasurementNoise
from ..variation.process import ProcessVariationModel
from .base import BoardRecord, RODataset

__all__ = [
    "VTLikeConfig",
    "generate_vt_like",
    "default_vt_dataset",
    "load_vt_directory",
]

#: Board counts of the real dataset: 194 fixed-corner + 5 swept (199 usable).
VT_NOMINAL_BOARDS = 194
VT_SWEPT_BOARDS = 5
VT_RO_COUNT = 512
VT_GRID_COLUMNS = 16
VT_GRID_ROWS = 32


@dataclass
class VTLikeConfig:
    """Parameters of the synthetic VT-shaped dataset.

    Attributes:
        nominal_boards: boards measured only at the nominal corner.
        swept_boards: boards measured across the full (V, T) grid.
        ro_count: ROs per board.
        grid_columns / grid_rows: die placement grid.
        process: fabrication-variation model.
        environment: delay-vs-environment model.
        measurement_noise: noise baked into each stored measurement (the
            real dataset stores averaged counter readings; jitter survives).
        seed: master seed; the same seed reproduces the same dataset.
    """

    nominal_boards: int = VT_NOMINAL_BOARDS
    swept_boards: int = VT_SWEPT_BOARDS
    ro_count: int = VT_RO_COUNT
    grid_columns: int = VT_GRID_COLUMNS
    grid_rows: int = VT_GRID_ROWS
    process: ProcessVariationModel = field(default_factory=ProcessVariationModel)
    environment: EnvironmentModel = field(default_factory=EnvironmentModel)
    measurement_noise: MeasurementNoise = field(
        default_factory=lambda: GaussianNoise(relative_sigma=2e-4)
    )
    seed: int = 20140601

    def __post_init__(self) -> None:
        if self.nominal_boards < 0 or self.swept_boards < 0:
            raise ValueError("board counts must be non-negative")
        if self.nominal_boards + self.swept_boards == 0:
            raise ValueError("the dataset needs at least one board")
        if self.ro_count < 1:
            raise ValueError("ro_count must be >= 1")
        if self.grid_columns * self.grid_rows < self.ro_count:
            raise ValueError(
                f"{self.grid_columns}x{self.grid_rows} grid cannot place "
                f"{self.ro_count} ROs"
            )


def generate_vt_like(config: VTLikeConfig | None = None) -> RODataset:
    """Generate the synthetic VT-shaped dataset.

    Swept boards come first (named ``sweptNN``), then nominal-only boards
    (named ``boardNNN``), mirroring how the paper partitions the data.
    """
    if config is None:
        config = VTLikeConfig()
    rng = np.random.default_rng(config.seed)
    coords = grid_coordinates(config.grid_columns, config.grid_rows)[
        : config.ro_count
    ]
    corners = full_grid()

    boards: list[BoardRecord] = []
    for index in range(config.swept_boards):
        boards.append(
            _generate_board(
                f"swept{index:02d}", coords, corners, config, rng
            )
        )
    for index in range(config.nominal_boards):
        boards.append(
            _generate_board(
                f"board{index:03d}", coords, [NOMINAL_OPERATING_POINT], config, rng
            )
        )
    return RODataset(
        name="vt-like-synthetic",
        boards=boards,
        nominal=NOMINAL_OPERATING_POINT,
        metadata={
            "source": "synthetic (repro.datasets.vtlike)",
            "models": "ProcessVariationModel + EnvironmentModel",
            "seed": config.seed,
            "paper_dataset": "Virginia Tech RO PUF dataset [16]",
        },
    )


def _generate_board(
    name: str,
    coords: np.ndarray,
    corners: list[OperatingPoint],
    config: VTLikeConfig,
    rng: np.random.Generator,
) -> BoardRecord:
    """Fabricate one board and measure it at the requested corners."""
    fld = config.process.sample_field(rng)
    offset = config.process.sample_board_offset(rng)
    base_delays = config.process.sample_delays(coords, fld, offset, rng)
    sensitivities = config.environment.sample_sensitivities(len(coords), rng)

    delays: dict[OperatingPoint, np.ndarray] = {}
    for op in corners:
        true_delays = config.environment.delays_at(base_delays, sensitivities, op)
        delays[op] = config.measurement_noise.observe(true_delays, rng)
    return BoardRecord(name=name, coords=coords.copy(), delays=delays)


@lru_cache(maxsize=4)
def default_vt_dataset(seed: int = 20140601) -> RODataset:
    """The default synthetic dataset, cached per seed for reuse."""
    return generate_vt_like(VTLikeConfig(seed=seed))


def load_vt_directory(
    directory: str | Path,
    nominal: OperatingPoint = NOMINAL_OPERATING_POINT,
    frequencies_in_mhz: bool = True,
) -> RODataset:
    """Load real measurement files from a directory (best-effort adapter).

    Expected layout: one whitespace/newline-separated file of per-RO
    frequencies per (board, corner):

    * ``<board>.txt`` — measured at the nominal corner;
    * ``<board>_V<volts>_T<celsius>.txt`` — measured at a swept corner,
      e.g. ``boardA_V0.98_T25.txt``.

    Frequencies are converted to delays via ``d = 1 / (2 f)``.  RO die
    coordinates are reconstructed on a 16x32 grid (the public dataset does
    not ship coordinates; a row-major placement matches its RO ordering
    closely enough for distillation).
    """
    directory = Path(directory)
    if not directory.is_dir():
        raise FileNotFoundError(f"not a directory: {directory}")
    files = sorted(directory.glob("*.txt"))
    if not files:
        raise FileNotFoundError(f"no .txt measurement files under {directory}")

    measurements: dict[str, dict[OperatingPoint, np.ndarray]] = {}
    for path in files:
        board, op = _parse_vt_filename(path.stem, nominal)
        values = np.loadtxt(path, dtype=float).ravel()
        if frequencies_in_mhz:
            values = values * 1e6
        if np.any(values <= 0.0):
            raise ValueError(f"{path}: frequencies must be positive")
        delays = 1.0 / (2.0 * values)
        measurements.setdefault(board, {})[op] = delays

    # A `_layout.json` sidecar (written by repro.datasets.export) records
    # each board's true die coordinates; without it a 16-column row-major
    # grid is assumed, which matches the public dataset's RO ordering.
    layout_path = directory / "_layout.json"
    layout: dict[str, list] = {}
    if layout_path.is_file():
        import json

        layout = json.loads(layout_path.read_text())

    boards = []
    for name in sorted(measurements):
        delays = measurements[name]
        ro_count = len(next(iter(delays.values())))
        if name in layout:
            coords = np.asarray(layout[name], dtype=float)
        else:
            columns = VT_GRID_COLUMNS
            rows = max(1, int(np.ceil(ro_count / columns)))
            coords = grid_coordinates(columns, rows)[:ro_count]
        boards.append(BoardRecord(name=name, coords=coords, delays=delays))
    return RODataset(
        name=f"vt-loaded:{directory.name}",
        boards=boards,
        nominal=nominal,
        metadata={"source": str(directory)},
    )


def _parse_vt_filename(
    stem: str, nominal: OperatingPoint
) -> tuple[str, OperatingPoint]:
    """Split ``board_V1.08_T45`` into board name and operating point."""
    parts = stem.split("_")
    if len(parts) >= 3 and parts[-2].startswith("V") and parts[-1].startswith("T"):
        try:
            voltage = float(parts[-2][1:])
            temperature = float(parts[-1][1:])
        except ValueError as error:
            raise ValueError(f"cannot parse corner from filename {stem!r}") from error
        board = "_".join(parts[:-2])
        return board, OperatingPoint(voltage=voltage, temperature=temperature)
    return stem, nominal
