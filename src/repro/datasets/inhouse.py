"""Synthetic stand-in for the paper's in-house Virtex-5 measurements.

Sec. IV.E measures inverter-level delays on 9 Xilinx Virtex-5 LX ML501
boards, 1024 inverters each, from which 64 ROs of up to 13 inverters are
constructed.  We fabricate 9 chips with the full delay-unit model (inverter
+ MUX paths) so the complete post-silicon pipeline — leave-one-out
measurement, ddiff extraction, selection — runs exactly as described in
Sec. III.B/III.C.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

import numpy as np

from ..silicon.fabrication import FabricationProcess
from ..silicon.chip import Chip

__all__ = ["InHouseConfig", "generate_inhouse_boards", "default_inhouse_boards"]

#: The paper's in-house testbed shape (Sec. IV.E).
INHOUSE_BOARD_COUNT = 9
INHOUSE_UNIT_COUNT = 1024
INHOUSE_RING_COUNT = 64
INHOUSE_MAX_STAGES = 13


@dataclass
class InHouseConfig:
    """Parameters of the synthetic in-house boards.

    Attributes:
        board_count: number of boards (paper: 9).
        unit_count: delay units per board (paper: 1024 inverters).
        fabrication: the foundry model producing the chips.
        seed: master seed for reproducibility.
    """

    board_count: int = INHOUSE_BOARD_COUNT
    unit_count: int = INHOUSE_UNIT_COUNT
    fabrication: FabricationProcess = field(default_factory=FabricationProcess)
    seed: int = 20140602

    def __post_init__(self) -> None:
        if self.board_count < 1:
            raise ValueError("board_count must be >= 1")
        if self.unit_count < 1:
            raise ValueError("unit_count must be >= 1")


def generate_inhouse_boards(config: InHouseConfig | None = None) -> list[Chip]:
    """Fabricate the synthetic in-house boards."""
    if config is None:
        config = InHouseConfig()
    rng = np.random.default_rng(config.seed)
    return config.fabrication.fabricate_lot(
        config.board_count, config.unit_count, rng, name_prefix="virtex5-"
    )


@lru_cache(maxsize=2)
def default_inhouse_boards(seed: int = 20140602) -> tuple[Chip, ...]:
    """The default synthetic in-house boards, cached per seed."""
    return tuple(generate_inhouse_boards(InHouseConfig(seed=seed)))
