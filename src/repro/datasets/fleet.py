"""Out-of-core synthetic device fleets, generated shard by shard.

ROADMAP item 2: the paper's population statistics run over 9 + 198 boards,
but population-level questions (arXiv:1910.07068) need 10^5-10^6 devices —
far more than fits as a :class:`~repro.datasets.base.RODataset` of
per-board records.  This module generates a *fleet* of single-board
devices in fixed-size shards:

* a :class:`FleetSpec` is a small, JSON-serializable description of the
  whole fleet (device count, ROs per device, corners, seed);
* :func:`generate_shard` fabricates shard ``i`` from the seed sequence
  ``(spec.seed, i)`` alone — any shard is reproducible in isolation, in
  any order, on any worker, without generating its predecessors;
* a :class:`FleetShard` holds the shard's measurements as a structure of
  arrays (``(devices, ro_count)`` per corner) and derives response bits;
  peak memory is one shard, never the fleet.

The per-shard draw order is versioned by :data:`FLEET_DRAW_ORDER` and
pinned by ``tests/test_fleet_dataset.py``: all fabrication randomness is
drawn in one fixed vectorized sequence (board offsets, field
coefficients, ripple, random mismatch, sensitivities, then per-corner
measurement noise), so the same ``(seed, shard_index, spec shape)``
always yields bit-identical delays.

Statistics over a fleet fold shard bit matrices through the streaming
accumulators in :mod:`repro.metrics.streaming`; the sharded pipeline and
CLI live in :mod:`repro.pipeline.fleet`.  See ``docs/datasets.md``.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..silicon.geometry import grid_coordinates
from ..variation.environment import (
    NOMINAL_OPERATING_POINT,
    DeviceSensitivities,
    EnvironmentModel,
    OperatingPoint,
)
from ..variation.process import (
    ProcessVariationModel,
    _monomial_variance,
    monomial_exponents,
    polynomial_design_matrix,
)

__all__ = [
    "FLEET_DRAW_ORDER",
    "DEFAULT_FLEET_CORNERS",
    "FleetSpec",
    "FleetShard",
    "generate_shard",
    "load_or_generate_shard",
    "iter_shards",
]

#: On-disk shard layout version (see :meth:`FleetShard.save`).
SHARD_SCHEME = "ropuf-fleet-shard-v1"

#: Version tag of the per-shard random draw order.  Bumped whenever the
#: sequence of rng draws in :func:`generate_shard` changes, because that
#: silently changes every generated fleet.
FLEET_DRAW_ORDER = "fleet-v1"

#: Default measurement corners: enrollment plus the paper's extreme
#: voltage corners and the hottest temperature (Sec. IV.D sweep ends).
DEFAULT_FLEET_CORNERS = (
    NOMINAL_OPERATING_POINT,
    OperatingPoint(voltage=0.98, temperature=25.0),
    OperatingPoint(voltage=1.44, temperature=25.0),
    OperatingPoint(voltage=1.20, temperature=65.0),
)

_GRID_COLUMNS = 16


@dataclass(frozen=True)
class FleetSpec:
    """A complete, JSON-round-trippable description of a synthetic fleet.

    The spec deliberately carries only plain numbers: everything a worker
    needs to regenerate any shard travels inside one small JSON document
    (embedded in pipeline task names), and the model parameters stay the
    library defaults so the spec cannot drift from the code that
    interprets it.

    Attributes:
        devices: total devices in the fleet.
        ro_count: ROs per device (adjacent pairs give ``ro_count // 2``
            response bits).
        shard_devices: devices per shard; the memory high-water mark of
            everything downstream.
        seed: master seed; shard ``i`` draws from ``(seed, i)``.
        corners: measurement corners, first one is the enrollment
            (reference) corner.
        noise_sigma: relative sigma of per-measurement Gaussian noise.
    """

    devices: int = 100_000
    ro_count: int = 128
    shard_devices: int = 4096
    seed: int = 20140601
    corners: tuple[OperatingPoint, ...] = DEFAULT_FLEET_CORNERS
    noise_sigma: float = 2e-4

    def __post_init__(self) -> None:
        if self.devices < 1:
            raise ValueError(f"devices must be >= 1, got {self.devices}")
        if self.ro_count < 2 or self.ro_count % 2:
            raise ValueError(
                f"ro_count must be even and >= 2, got {self.ro_count}"
            )
        if self.shard_devices < 1:
            raise ValueError(
                f"shard_devices must be >= 1, got {self.shard_devices}"
            )
        if not self.corners:
            raise ValueError("the spec needs at least one corner")
        if self.noise_sigma < 0.0:
            raise ValueError(
                f"noise_sigma must be non-negative, got {self.noise_sigma}"
            )
        object.__setattr__(
            self, "corners", tuple(self.corners)
        )

    @property
    def bit_count(self) -> int:
        """Response bits per device (adjacent-pair comparisons)."""
        return self.ro_count // 2

    @property
    def nominal(self) -> OperatingPoint:
        """The enrollment corner (first in ``corners``)."""
        return self.corners[0]

    @property
    def shard_count(self) -> int:
        return -(-self.devices // self.shard_devices)

    def shard_bounds(self, index: int) -> tuple[int, int]:
        """Half-open device-id range ``[start, stop)`` of shard ``index``."""
        if not 0 <= index < self.shard_count:
            raise IndexError(
                f"shard {index} out of range for {self.shard_count} shards"
            )
        start = index * self.shard_devices
        return start, min(start + self.shard_devices, self.devices)

    def to_dict(self) -> dict:
        return {
            "draw_order": FLEET_DRAW_ORDER,
            "devices": self.devices,
            "ro_count": self.ro_count,
            "shard_devices": self.shard_devices,
            "seed": self.seed,
            "corners": [
                [op.voltage, op.temperature] for op in self.corners
            ],
            "noise_sigma": self.noise_sigma,
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "FleetSpec":
        order = doc.get("draw_order", FLEET_DRAW_ORDER)
        if order != FLEET_DRAW_ORDER:
            raise ValueError(
                f"fleet spec uses draw order {order!r}; this code "
                f"implements {FLEET_DRAW_ORDER!r}"
            )
        return cls(
            devices=int(doc["devices"]),
            ro_count=int(doc["ro_count"]),
            shard_devices=int(doc["shard_devices"]),
            seed=int(doc["seed"]),
            corners=tuple(
                OperatingPoint(voltage=float(v), temperature=float(t))
                for v, t in doc["corners"]
            ),
            noise_sigma=float(doc["noise_sigma"]),
        )

    def to_json(self) -> str:
        """Canonical (sorted-key, compact) JSON — stable across runs."""
        return json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )

    @classmethod
    def from_json(cls, text: str) -> "FleetSpec":
        return cls.from_dict(json.loads(text))

    def fingerprint(self) -> str:
        """Content hash of the spec (keys pipeline caching/journaling)."""
        return hashlib.sha256(self.to_json().encode()).hexdigest()


@dataclass
class FleetShard:
    """One generated shard: measurements for a contiguous device range.

    Structure of arrays: every corner maps to a ``(devices, ro_count)``
    float array of measured delays.  Shards are the unit of both
    generation and analysis; nothing downstream ever concatenates them.
    """

    spec: FleetSpec
    index: int
    delays: dict[OperatingPoint, np.ndarray] = field(repr=False)

    @property
    def bounds(self) -> tuple[int, int]:
        return self.spec.shard_bounds(self.index)

    @property
    def device_count(self) -> int:
        start, stop = self.bounds
        return stop - start

    def response_bits(self, op: OperatingPoint) -> np.ndarray:
        """``(devices, bit_count)`` bool matrix at one corner.

        The traditional RO PUF response: each bit compares one adjacent
        RO pair (RO ``2j`` vs ``2j+1``).
        """
        measured = self.delays[op]
        return measured[:, 0::2] > measured[:, 1::2]

    def reference_bits(self) -> np.ndarray:
        """Response bits at the enrollment corner."""
        return self.response_bits(self.spec.nominal)

    # ------------------------------------------------------------------
    # Persistence (memory-mapped re-analysis)
    # ------------------------------------------------------------------

    @staticmethod
    def _file_stem(spec: FleetSpec, index: int) -> str:
        return f"shard_{spec.fingerprint()[:16]}_{index:06d}"

    @staticmethod
    def array_path(directory: str | Path, spec: FleetSpec, index: int) -> Path:
        """Where the shard's stacked delay tensor lives under ``directory``."""
        return Path(directory) / f"{FleetShard._file_stem(spec, index)}.npy"

    @staticmethod
    def sidecar_path(directory: str | Path, spec: FleetSpec, index: int) -> Path:
        """The JSON sidecar describing (and validating) the tensor."""
        return Path(directory) / f"{FleetShard._file_stem(spec, index)}.json"

    def save(self, directory: str | Path) -> Path:
        """Persist the shard for memory-mapped re-analysis; returns the sidecar.

        Layout: a plain ``.npy`` holding the corner-stacked
        ``(corners, devices, ro_count)`` delay tensor (``np.save`` — the
        one numpy container :func:`numpy.load` can ``mmap_mode="r"``) next
        to a JSON sidecar carrying the spec document, shard index, and
        tensor shape/dtype.  Both writes are atomic (tmp + rename) and the
        sidecar lands *last*, so its presence marks a complete pair: a
        crash mid-save leaves at most an orphaned tensor that the next
        save simply overwrites.  Filenames are keyed by the spec
        fingerprint, so shards of different fleets coexist in one
        directory and a stale shard of an edited spec is never picked up.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        stacked = np.stack([self.delays[op] for op in self.spec.corners])
        array_path = self.array_path(directory, self.spec, self.index)
        sidecar_path = self.sidecar_path(directory, self.spec, self.index)
        doc = {
            "scheme": SHARD_SCHEME,
            "spec": self.spec.to_dict(),
            "index": self.index,
            "shape": list(stacked.shape),
            "dtype": str(stacked.dtype),
        }
        array_tmp = array_path.with_name(f"{array_path.name}.tmp.{os.getpid()}")
        sidecar_tmp = sidecar_path.with_name(
            f"{sidecar_path.name}.tmp.{os.getpid()}"
        )
        try:
            with open(array_tmp, "wb") as handle:
                np.save(handle, stacked)
            os.replace(array_tmp, array_path)
            sidecar_tmp.write_text(json.dumps(doc, indent=2))
            os.replace(sidecar_tmp, sidecar_path)
        except BaseException:
            for tmp in (array_tmp, sidecar_tmp):
                try:
                    tmp.unlink()
                except OSError:
                    pass
            raise
        return sidecar_path

    @classmethod
    def load(
        cls,
        directory: str | Path,
        spec: FleetSpec,
        index: int,
        *,
        mmap: bool = True,
    ) -> "FleetShard":
        """Load a previously saved shard, memory-mapped by default.

        With ``mmap`` the per-corner arrays are read-only views into one
        :func:`numpy.load` ``mmap_mode="r"`` mapping — re-analysis touches
        only the pages it reads instead of regenerating (or even fully
        reading) the shard.  Validates the sidecar against ``spec`` and
        ``index``; any mismatch or damage raises, so callers can fall
        back to regeneration (:func:`load_or_generate_shard`).

        Raises:
            FileNotFoundError: no complete saved shard (sidecar missing).
            ValueError: the sidecar disagrees with ``spec``/``index`` or
                the tensor shape does not match the spec.
        """
        directory = Path(directory)
        doc = json.loads(cls.sidecar_path(directory, spec, index).read_text())
        if doc.get("scheme") != SHARD_SCHEME:
            raise ValueError(
                f"unsupported shard scheme {doc.get('scheme')!r}; this code "
                f"implements {SHARD_SCHEME!r}"
            )
        saved_spec = FleetSpec.from_dict(doc["spec"])
        if saved_spec.fingerprint() != spec.fingerprint() or doc["index"] != index:
            raise ValueError(
                "saved shard does not match the requested spec/index"
            )
        stacked = np.load(
            cls.array_path(directory, spec, index),
            mmap_mode="r" if mmap else None,
        )
        start, stop = spec.shard_bounds(index)
        expected = (len(spec.corners), stop - start, spec.ro_count)
        if stacked.shape != expected:
            raise ValueError(
                f"saved shard tensor has shape {stacked.shape}, spec "
                f"expects {expected}"
            )
        delays = {op: stacked[i] for i, op in enumerate(spec.corners)}
        return cls(spec=spec, index=index, delays=delays)


def load_or_generate_shard(
    spec: FleetSpec, index: int, shard_dir: str | Path | None = None
) -> FleetShard:
    """The shard, from disk when possible, regenerated (and saved) otherwise.

    With ``shard_dir`` ``None`` this is exactly :func:`generate_shard`.
    Otherwise a valid saved shard is loaded memory-mapped (skipping
    fabrication entirely); on a miss — or *any* defect in the saved pair —
    the shard is regenerated from the spec (always safe: generation is
    deterministic) and re-saved for the next run.  Save failures (read-only
    or full disk) are not fatal; the freshly generated shard is returned
    regardless.
    """
    if shard_dir is None:
        return generate_shard(spec, index)
    try:
        return FleetShard.load(shard_dir, spec, index)
    except (OSError, ValueError, KeyError):
        pass
    shard = generate_shard(spec, index)
    try:
        shard.save(shard_dir)
    except OSError:
        pass
    return shard


def generate_shard(spec: FleetSpec, index: int) -> FleetShard:
    """Fabricate and measure shard ``index`` of the fleet.

    All randomness comes from ``default_rng((spec.seed, index))`` in the
    fixed ``fleet-v1`` draw order, so the result is bit-identical no
    matter which process generates it or in what order shards run.
    """
    start, stop = spec.shard_bounds(index)
    count = stop - start
    rng = np.random.default_rng((spec.seed, index))

    process = ProcessVariationModel().parameters
    environment = EnvironmentModel()
    env_p = environment.parameters

    rows = -(-spec.ro_count // _GRID_COLUMNS)
    coords = grid_coordinates(_GRID_COLUMNS, rows)[: spec.ro_count]
    design = polynomial_design_matrix(coords, process.field_degree)
    exponents = monomial_exponents(process.field_degree)
    unit_scale = max(
        float(
            np.sqrt(
                sum(_monomial_variance(px, py) for px, py in exponents)
            )
        ),
        1e-12,
    )

    # fleet-v1 draw order — every step below is one vectorized draw over
    # the whole shard; reordering or resizing any of them changes all
    # generated fleets and requires a FLEET_DRAW_ORDER bump.
    offsets = rng.normal(0.0, process.sigma_board, size=count)
    raw_coeffs = rng.normal(0.0, 1.0, size=(count, len(exponents)))
    coefficients = raw_coeffs * (process.sigma_systematic / unit_scale)
    ripple_amp = rng.normal(0.0, process.ripple_sigma, size=count)
    ripple_freq = rng.uniform(0.5, 2.0, size=(count, 2))
    ripple_phase = rng.uniform(0.0, 2.0 * np.pi, size=count)
    mismatch = rng.normal(
        0.0, process.sigma_random, size=(count, spec.ro_count)
    )
    sensitivities = DeviceSensitivities(
        vth=rng.normal(
            env_p.vth_mean, env_p.vth_sigma, size=(count, spec.ro_count)
        ),
        alpha=rng.normal(
            env_p.alpha_mean, env_p.alpha_sigma, size=(count, spec.ro_count)
        ),
        mobility_exponent=rng.normal(
            env_p.mobility_exponent_mean,
            env_p.mobility_exponent_sigma,
            size=(count, spec.ro_count),
        ),
    )

    ripple_arg = 2.0 * np.pi * (
        ripple_freq[:, 0:1] * coords[None, :, 0]
        + ripple_freq[:, 1:2] * coords[None, :, 1]
    ) + ripple_phase[:, None]
    systematic = (
        coefficients @ design.T
        + ripple_amp[:, None] * np.sin(ripple_arg)
    )
    relative = 1.0 + offsets[:, None] + systematic + mismatch
    base_delays = process.nominal_delay * relative

    delays: dict[OperatingPoint, np.ndarray] = {}
    for op in spec.corners:
        true_delays = environment.delays_at(base_delays, sensitivities, op)
        noise = rng.normal(0.0, 1.0, size=true_delays.shape)
        delays[op] = true_delays * (1.0 + spec.noise_sigma * noise)
    return FleetShard(spec=spec, index=index, delays=delays)


def iter_shards(spec: FleetSpec):
    """Generate the fleet's shards one at a time (constant memory)."""
    for index in range(spec.shard_count):
        yield generate_shard(spec, index)
