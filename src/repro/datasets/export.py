"""Export datasets to the on-disk measurement-file layout.

The counterpart of :func:`repro.datasets.vtlike.load_vt_directory`: writes
one frequency file per (board, corner) so synthetic datasets can be shared
with tools that expect raw measurement files, and so the loader has a
round-trip test partner.  Frequencies are stored in MHz, matching the
public dataset's convention.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ..variation.environment import OperatingPoint
from .base import RODataset

__all__ = ["export_vt_directory", "LAYOUT_FILENAME"]

#: Sidecar file recording each board's die coordinates, so a reloaded
#: dataset distills against the true geometry instead of a guessed grid.
LAYOUT_FILENAME = "_layout.json"


def _corner_suffix(op: OperatingPoint, nominal: OperatingPoint) -> str:
    if op == nominal:
        return ""
    return f"_V{op.voltage:.2f}_T{op.temperature:g}"


def export_vt_directory(
    dataset: RODataset,
    directory: str | Path,
    overwrite: bool = False,
) -> list[Path]:
    """Write a dataset as per-(board, corner) frequency files.

    Args:
        dataset: the dataset to export.
        directory: target directory (created if missing).
        overwrite: allow replacing existing files.

    Returns:
        The written file paths, sorted.

    Raises:
        FileExistsError: when a target file exists and ``overwrite`` is
            False.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written = []
    layout: dict[str, list[list[float]]] = {}
    for board in dataset.boards:
        layout[board.name] = board.coords.tolist()
        for op in board.corners:
            suffix = _corner_suffix(op, dataset.nominal)
            path = directory / f"{board.name}{suffix}.txt"
            if path.exists() and not overwrite:
                raise FileExistsError(f"refusing to overwrite {path}")
            frequencies_mhz = board.frequencies_at(op) / 1e6
            np.savetxt(path, frequencies_mhz, fmt="%.9f")
            written.append(path)
    layout_path = directory / LAYOUT_FILENAME
    if layout_path.exists() and not overwrite:
        raise FileExistsError(f"refusing to overwrite {layout_path}")
    layout_path.write_text(json.dumps(layout))
    written.append(layout_path)
    return sorted(written)
