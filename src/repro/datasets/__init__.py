"""Datasets: synthetic equivalents of the paper's measurement data.

* :mod:`~repro.datasets.vtlike` — the Virginia Tech dataset's shape
  (194 + 5 boards, 512 ROs, the full (V, T) corner grid);
* :mod:`~repro.datasets.inhouse` — 9 inverter-level Virtex-5-style chips;
* :mod:`~repro.datasets.fleet` — out-of-core fleets of 10^5+ devices,
  generated in seed-sharded chunks (ROADMAP item 2).
"""

from .base import BoardRecord, RODataset
from .export import export_vt_directory
from .fleet import (
    DEFAULT_FLEET_CORNERS,
    FLEET_DRAW_ORDER,
    FleetShard,
    FleetSpec,
    generate_shard,
    iter_shards,
)
from .inhouse import (
    INHOUSE_BOARD_COUNT,
    INHOUSE_MAX_STAGES,
    INHOUSE_RING_COUNT,
    INHOUSE_UNIT_COUNT,
    InHouseConfig,
    default_inhouse_boards,
    generate_inhouse_boards,
)
from .vtlike import (
    VT_GRID_COLUMNS,
    VT_GRID_ROWS,
    VT_NOMINAL_BOARDS,
    VT_RO_COUNT,
    VT_SWEPT_BOARDS,
    VTLikeConfig,
    default_vt_dataset,
    generate_vt_like,
    load_vt_directory,
)

__all__ = [
    "BoardRecord",
    "RODataset",
    "export_vt_directory",
    "DEFAULT_FLEET_CORNERS",
    "FLEET_DRAW_ORDER",
    "FleetShard",
    "FleetSpec",
    "generate_shard",
    "iter_shards",
    "INHOUSE_BOARD_COUNT",
    "INHOUSE_MAX_STAGES",
    "INHOUSE_RING_COUNT",
    "INHOUSE_UNIT_COUNT",
    "InHouseConfig",
    "default_inhouse_boards",
    "generate_inhouse_boards",
    "VT_GRID_COLUMNS",
    "VT_GRID_ROWS",
    "VT_NOMINAL_BOARDS",
    "VT_RO_COUNT",
    "VT_SWEPT_BOARDS",
    "VTLikeConfig",
    "default_vt_dataset",
    "generate_vt_like",
    "load_vt_directory",
]
