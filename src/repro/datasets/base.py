"""Dataset abstractions: boards of RO delay measurements at corners.

Every evaluation in the paper consumes data through this shape: a *board*
holds per-RO (or per-unit) delays measured at one or more operating points;
a *dataset* is a collection of boards, most measured only at the nominal
corner plus a few swept across the full (V, T) grid — exactly the structure
of the Virginia Tech dataset the paper uses.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..variation.environment import NOMINAL_OPERATING_POINT, OperatingPoint

__all__ = ["BoardRecord", "RODataset"]


@dataclass
class BoardRecord:
    """Delay measurements of one board.

    Attributes:
        name: board identifier.
        coords: ``(ro_count, 2)`` normalised die coordinates of the ROs.
        delays: operating point -> per-RO delays (seconds).  Every array
            shares the board's RO count and ordering.
    """

    name: str
    coords: np.ndarray
    delays: dict[OperatingPoint, np.ndarray] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.coords = np.asarray(self.coords, dtype=float)
        if self.coords.ndim != 2 or self.coords.shape[1] != 2:
            raise ValueError(f"coords must be (k, 2), got {self.coords.shape}")
        for op, values in list(self.delays.items()):
            values = np.asarray(values, dtype=float)
            if values.shape != (self.ro_count,):
                raise ValueError(
                    f"board {self.name!r}: delays at {op.label()} have shape "
                    f"{values.shape}, expected ({self.ro_count},)"
                )
            self.delays[op] = values

    @property
    def ro_count(self) -> int:
        return self.coords.shape[0]

    @property
    def corners(self) -> list[OperatingPoint]:
        """Operating points this board was measured at (sorted)."""
        return sorted(self.delays.keys())

    @property
    def is_swept(self) -> bool:
        """True when the board was measured at more than one corner."""
        return len(self.delays) > 1

    def delays_at(self, op: OperatingPoint) -> np.ndarray:
        """Per-RO delays at a measured corner.

        Raises:
            KeyError: if the board was not measured at ``op``.
        """
        if op not in self.delays:
            measured = ", ".join(c.label() for c in self.corners)
            raise KeyError(
                f"board {self.name!r} has no measurement at {op.label()} "
                f"(measured: {measured})"
            )
        return self.delays[op]

    def delay_provider(self) -> Callable[[OperatingPoint], np.ndarray]:
        """The ``op -> delays`` callable the PUF classes consume."""
        return self.delays_at

    def frequencies_at(self, op: OperatingPoint) -> np.ndarray:
        """Per-RO frequencies (Hz), treating each delay as a half-period."""
        return 1.0 / (2.0 * self.delays_at(op))

    def fingerprint(self) -> str:
        """Content hash of this board's measurements (hex digest).

        Two boards with the same name, coordinates, and per-corner delay
        values hash identically regardless of how they were constructed —
        the pipeline's cache keys build on this.
        """
        digest = hashlib.sha256()
        digest.update(self.name.encode())
        digest.update(np.ascontiguousarray(self.coords, dtype=float).tobytes())
        for op in self.corners:
            digest.update(op.label().encode())
            digest.update(
                np.ascontiguousarray(self.delays[op], dtype=float).tobytes()
            )
        return digest.hexdigest()


@dataclass
class RODataset:
    """A collection of measured boards (the VT dataset's structure).

    Attributes:
        name: dataset identifier.
        boards: all boards.
        nominal: the enrollment corner shared by every board.
        metadata: free-form provenance information.
    """

    name: str
    boards: list[BoardRecord]
    nominal: OperatingPoint = NOMINAL_OPERATING_POINT
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.boards:
            raise ValueError("a dataset needs at least one board")
        for board in self.boards:
            if self.nominal not in board.delays:
                raise ValueError(
                    f"board {board.name!r} lacks the nominal corner "
                    f"{self.nominal.label()}"
                )

    @property
    def board_count(self) -> int:
        return len(self.boards)

    @property
    def ro_count(self) -> int:
        """RO count shared by the boards (raises if inhomogeneous)."""
        counts = {board.ro_count for board in self.boards}
        if len(counts) != 1:
            raise ValueError(f"boards have differing RO counts: {sorted(counts)}")
        return counts.pop()

    @property
    def nominal_boards(self) -> list[BoardRecord]:
        """Boards measured only at the nominal corner (the 194 of Sec. IV)."""
        return [board for board in self.boards if not board.is_swept]

    @property
    def swept_boards(self) -> list[BoardRecord]:
        """Environment-swept boards (the 5 of Sec. IV.D)."""
        return [board for board in self.boards if board.is_swept]

    def board(self, name: str) -> BoardRecord:
        """Look a board up by name."""
        for candidate in self.boards:
            if candidate.name == name:
                return candidate
        raise KeyError(f"no board named {name!r} in dataset {self.name!r}")

    def nominal_delay_matrix(self) -> np.ndarray:
        """(board_count, ro_count) delays at the nominal corner."""
        return np.stack([board.delays_at(self.nominal) for board in self.boards])

    def fingerprint(self) -> str:
        """Content hash over every board's measurements (hex digest).

        The digest covers the dataset name, the nominal corner, and each
        board's :meth:`BoardRecord.fingerprint`, so any change to the data
        — a renamed board, a perturbed delay, a different corner set —
        yields a different fingerprint.  Used as the dataset component of
        the pipeline's content-addressed cache keys.
        """
        digest = hashlib.sha256()
        digest.update(self.name.encode())
        digest.update(self.nominal.label().encode())
        for board in self.boards:
            digest.update(board.fingerprint().encode())
        return digest.hexdigest()
