"""Code-offset fuzzy extractor (Dodis et al. [11] in the paper's survey).

``generate`` turns a noisy PUF response into a stable key plus public
helper data; ``reproduce`` recovers the same key from any later response
within the code's error-correction radius.  The construction is the
standard code-offset secure sketch (helper = response XOR codeword) with a
hash-based strong extractor.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from .ecc import BCHCode, BlockCode

__all__ = ["FuzzyExtractor", "HelperData"]


@dataclass(frozen=True)
class HelperData:
    """Public helper data of one extraction.

    Attributes:
        offset: response XOR codeword (reveals nothing about the key given
            the code's randomness).
        salt: extractor salt mixed into the key-derivation hash.
    """

    offset: np.ndarray
    salt: bytes

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "offset", np.asarray(self.offset).astype(bool)
        )


def _bits_to_bytes(bits: np.ndarray) -> bytes:
    return np.packbits(np.asarray(bits).astype(np.uint8)).tobytes()


@dataclass
class FuzzyExtractor:
    """Key extraction from noisy PUF responses via the code-offset sketch.

    Attributes:
        code: the underlying block code; its length must equal the PUF
            response length and its ``t`` bounds the tolerated bit flips.
        key_bytes: derived key length in bytes.
    """

    code: BlockCode = field(default_factory=lambda: BCHCode(m=5, t=3))
    key_bytes: int = 16

    def __post_init__(self) -> None:
        if self.key_bytes < 1:
            raise ValueError("key_bytes must be >= 1")

    @property
    def response_bits(self) -> int:
        """Required PUF response length."""
        return self.code.n

    def generate(
        self, response: np.ndarray, rng: np.random.Generator
    ) -> tuple[bytes, HelperData]:
        """Enroll: derive (key, helper) from a reference response."""
        response = self._check_response(response)
        message = rng.integers(0, 2, size=self.code.k).astype(bool)
        codeword = self.code.encode(message)
        offset = response ^ codeword
        salt = rng.bytes(16)
        key = self._derive_key(message, salt)
        return key, HelperData(offset=offset, salt=salt)

    def reproduce(self, response: np.ndarray, helper: HelperData) -> bytes:
        """Recover the key from a later (noisy) response.

        Raises:
            ValueError: when the response differs from the enrolled one by
                more than the code's correction capability.
        """
        response = self._check_response(response)
        if len(helper.offset) != self.code.n:
            raise ValueError(
                f"helper offset has {len(helper.offset)} bits, "
                f"expected {self.code.n}"
            )
        noisy_codeword = response ^ helper.offset
        message = self.code.decode(noisy_codeword)
        return self._derive_key(message, helper.salt)

    def _check_response(self, response: np.ndarray) -> np.ndarray:
        response = np.asarray(response).astype(bool)
        if response.ndim != 1 or len(response) != self.code.n:
            raise ValueError(
                f"response must be {self.code.n} bits, got shape "
                f"{response.shape}"
            )
        return response

    def _derive_key(self, message: np.ndarray, salt: bytes) -> bytes:
        digest = hashlib.sha256(salt + _bits_to_bytes(message)).digest()
        while len(digest) < self.key_bytes:
            digest += hashlib.sha256(digest).digest()
        return digest[: self.key_bytes]
