"""Security applications on top of the PUF: keys, sketches, authentication.

The paper motivates PUFs by secret-key storage and chip authentication;
this package provides those applications, plus the conventional
ECC/fuzzy-extractor stack the paper's related work surveys ([10-12]) so the
benches can quantify the "no ECC needed" claim.
"""

from .authentication import AuthenticationResult, Authenticator
from .crp import Challenge, ChallengeResponseInterface
from .ecc import BCHCode, BlockCode, RepetitionCode
from .fuzzy_extractor import FuzzyExtractor, HelperData
from .gf2m import GF2m, PRIMITIVE_POLYNOMIALS
from .keygen import KeyGenerator, KeyMaterial

__all__ = [
    "AuthenticationResult",
    "Authenticator",
    "Challenge",
    "ChallengeResponseInterface",
    "BCHCode",
    "BlockCode",
    "RepetitionCode",
    "FuzzyExtractor",
    "HelperData",
    "GF2m",
    "PRIMITIVE_POLYNOMIALS",
    "KeyGenerator",
    "KeyMaterial",
]
