"""A challenge-response interface over the (weak-PUF) response bits.

The configurable RO PUF is a *weak* PUF: it exposes a fixed set of
response bits, one per configured pair.  Authentication protocols often
want a challenge-response shape instead, so the standard construction is
layered on top: a challenge selects (and optionally XOR-folds) a random
subset of the response bits, and the verifier — who knows the full
reference response — predicts the answer.

Because the underlying secret is finite, every disclosed CRP leaks;
:class:`ChallengeResponseInterface` therefore tracks disclosure and
reports the remaining entropy margin, refusing to operate past a
configurable exposure budget (a guardrail real deployments need).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Challenge", "ChallengeResponseInterface"]


@dataclass(frozen=True)
class Challenge:
    """One challenge: which response bits to fold together.

    Attributes:
        indices: positions of the response bits the challenge touches.
        fold: XOR-fold group size; 1 returns the bits themselves.
    """

    indices: tuple[int, ...]
    fold: int = 1

    def __post_init__(self) -> None:
        if len(self.indices) == 0:
            raise ValueError("a challenge must touch at least one bit")
        if self.fold < 1 or len(self.indices) % self.fold != 0:
            raise ValueError(
                f"fold {self.fold} must divide the {len(self.indices)} "
                "challenge indices"
            )

    @property
    def response_bits(self) -> int:
        return len(self.indices) // self.fold


@dataclass
class ChallengeResponseInterface:
    """CRP layer over a device's response bits with exposure accounting.

    Attributes:
        response: the device's full response (reference or regenerated).
        exposure_budget: maximum fraction of the response bits that may be
            involved in disclosed CRPs before the interface locks.
    """

    response: np.ndarray
    exposure_budget: float = 0.5
    _exposed: set[int] = field(default_factory=set)
    _locked: bool = field(default=False)

    def __post_init__(self) -> None:
        self.response = np.asarray(self.response).astype(bool).ravel()
        if len(self.response) == 0:
            raise ValueError("response cannot be empty")
        if not 0.0 < self.exposure_budget <= 1.0:
            raise ValueError("exposure_budget must be in (0, 1]")

    @property
    def bit_count(self) -> int:
        return len(self.response)

    @property
    def exposed_fraction(self) -> float:
        """Fraction of response bits already involved in answered CRPs."""
        return len(self._exposed) / self.bit_count

    @property
    def locked(self) -> bool:
        return self._locked

    def generate_challenge(
        self,
        rng: np.random.Generator,
        width: int = 8,
        fold: int = 1,
    ) -> Challenge:
        """Draw a random challenge over ``width`` distinct bit positions."""
        if width < 1 or width > self.bit_count:
            raise ValueError(
                f"width must be in 1..{self.bit_count}, got {width}"
            )
        indices = rng.choice(self.bit_count, size=width, replace=False)
        return Challenge(indices=tuple(int(i) for i in np.sort(indices)), fold=fold)

    def respond(self, challenge: Challenge) -> np.ndarray:
        """Answer a challenge; raises once the exposure budget is spent.

        Raises:
            RuntimeError: when the interface has locked.
            ValueError: when the challenge addresses unknown bits.
        """
        if self._locked:
            raise RuntimeError(
                "CRP interface locked: exposure budget "
                f"{self.exposure_budget:.0%} spent "
                f"({len(self._exposed)}/{self.bit_count} bits disclosed)"
            )
        indices = np.array(challenge.indices)
        if np.any(indices < 0) or np.any(indices >= self.bit_count):
            raise ValueError("challenge addresses bits outside the response")
        selected = self.response[indices]
        if challenge.fold > 1:
            selected = (
                selected.reshape(-1, challenge.fold).sum(axis=1) % 2
            ).astype(bool)
        self._exposed.update(challenge.indices)
        if self.exposed_fraction > self.exposure_budget:
            self._locked = True
        return selected

    def verify(self, challenge: Challenge, answer: np.ndarray) -> bool:
        """Verifier side: check an answer against the reference response.

        Verification does not consume exposure budget (the verifier already
        knows the full response).
        """
        indices = np.array(challenge.indices)
        if np.any(indices < 0) or np.any(indices >= self.bit_count):
            raise ValueError("challenge addresses bits outside the response")
        expected = self.response[indices]
        if challenge.fold > 1:
            expected = (
                expected.reshape(-1, challenge.fold).sum(axis=1) % 2
            ).astype(bool)
        answer = np.asarray(answer).astype(bool).ravel()
        if len(answer) != len(expected):
            raise ValueError(
                f"answer has {len(answer)} bits, expected {len(expected)}"
            )
        return bool(np.array_equal(answer, expected))
