"""Stable key generation from a configurable RO PUF.

Combines the PUF front-end with the fuzzy extractor: enrollment derives a
key and public helper data at the test corner; in the field the key is
regenerated from a fresh response at whatever corner the device runs at.
The configurable PUF's maximised margins keep the response error rate far
below the code's correction radius — the quantitative version of the
paper's "this can eliminate the cost of ECC circuitry" argument.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.puf import BoardROPUF, Enrollment
from ..variation.environment import NOMINAL_OPERATING_POINT, OperatingPoint
from .fuzzy_extractor import FuzzyExtractor, HelperData

__all__ = ["KeyGenerator", "KeyMaterial"]


@dataclass
class KeyMaterial:
    """Everything produced by key enrollment.

    Attributes:
        key: the derived secret key (device-internal).
        helper: public helper data (stored anywhere).
        enrollment: the PUF enrollment (configuration vectors; stored in
            device non-volatile memory).
        used_bits: indices of the response bits feeding the extractor.
    """

    key: bytes
    helper: HelperData
    enrollment: Enrollment
    used_bits: np.ndarray


@dataclass
class KeyGenerator:
    """PUF-backed key generation with helper-data error correction.

    Attributes:
        puf: the (board-level) PUF supplying response bits.
        extractor: the fuzzy extractor; its code length must not exceed the
            PUF's bit count.
        rng: randomness source for helper-data generation.
    """

    puf: BoardROPUF
    extractor: FuzzyExtractor = field(default_factory=FuzzyExtractor)
    rng: np.random.Generator = field(default_factory=np.random.default_rng)

    def __post_init__(self) -> None:
        if self.extractor.response_bits > self.puf.bit_count:
            raise ValueError(
                f"extractor needs {self.extractor.response_bits} response "
                f"bits but the PUF yields only {self.puf.bit_count}"
            )

    def enroll(
        self, op: OperatingPoint = NOMINAL_OPERATING_POINT
    ) -> KeyMaterial:
        """Enroll the PUF and derive the key at the test corner.

        The response bits with the largest margins are chosen to feed the
        extractor (dark-bit masking, Sec. IV.E's thresholding in spirit).
        """
        enrollment = self.puf.enroll(op)
        order = np.argsort(-np.abs(enrollment.margins), kind="stable")
        used = np.sort(order[: self.extractor.response_bits])
        key, helper = self.extractor.generate(enrollment.bits[used], self.rng)
        return KeyMaterial(
            key=key, helper=helper, enrollment=enrollment, used_bits=used
        )

    def regenerate(
        self, material: KeyMaterial, op: OperatingPoint
    ) -> bytes:
        """Re-derive the key from a fresh response at a field corner."""
        response = self.puf.response(op, material.enrollment)
        return self.extractor.reproduce(
            response[material.used_bits], material.helper
        )
