"""Challenge-response device authentication on top of the PUF.

The verifier enrolls devices at test time, storing per-device reference
responses (the CRP database).  In the field a device proves its identity by
regenerating its response; the verifier accepts when the Hamming distance
to the stored reference stays under a threshold chosen between the
intra-chip noise floor and the inter-chip distance distribution (Fig. 3's
bell around 50% guarantees the two are separable).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..metrics.hamming import hamming_distance

__all__ = ["AuthenticationResult", "Authenticator"]


@dataclass(frozen=True)
class AuthenticationResult:
    """Verdict of one authentication attempt.

    Attributes:
        device_id: claimed identity.
        accepted: verifier decision.
        distance: HD between the presented and stored responses.
        threshold: acceptance threshold in bits.
    """

    device_id: str
    accepted: bool
    distance: int
    threshold: int


@dataclass
class Authenticator:
    """A verifier holding reference responses of enrolled devices.

    Attributes:
        threshold_fraction: maximum accepted HD as a fraction of the
            response length (default 15%, far above the configurable PUF's
            intra-chip noise and far below the ~50% inter-chip distance).
    """

    threshold_fraction: float = 0.15
    _references: dict[str, np.ndarray] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not 0.0 < self.threshold_fraction < 0.5:
            raise ValueError(
                "threshold_fraction must be in (0, 0.5), got "
                f"{self.threshold_fraction}"
            )

    @property
    def enrolled_devices(self) -> list[str]:
        return sorted(self._references)

    def enroll(self, device_id: str, reference: np.ndarray) -> None:
        """Store a device's reference response.

        Raises:
            ValueError: when the device is already enrolled.
        """
        if device_id in self._references:
            raise ValueError(f"device {device_id!r} already enrolled")
        reference = np.asarray(reference).astype(bool)
        if reference.ndim != 1 or len(reference) == 0:
            raise ValueError("reference response must be a non-empty bit vector")
        self._references[device_id] = reference.copy()

    def authenticate(
        self, device_id: str, response: np.ndarray
    ) -> AuthenticationResult:
        """Check a presented response against the stored reference.

        Raises:
            KeyError: when the claimed device was never enrolled.
        """
        if device_id not in self._references:
            raise KeyError(f"unknown device {device_id!r}")
        reference = self._references[device_id]
        response = np.asarray(response).astype(bool)
        distance = hamming_distance(reference, response)
        threshold = int(np.floor(self.threshold_fraction * len(reference)))
        return AuthenticationResult(
            device_id=device_id,
            accepted=distance <= threshold,
            distance=distance,
            threshold=threshold,
        )
