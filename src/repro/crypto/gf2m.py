"""Arithmetic over GF(2^m), the substrate of the BCH error-correcting code.

The paper cites error-correction coding [10-12] as the conventional (and
hardware-expensive) way to stabilise PUF bits; the configurable RO PUF's
pitch is that maximised margins make ECC unnecessary.  To let the benches
quantify that claim we implement the conventional stack too: a binary BCH
code needs polynomial arithmetic over GF(2^m), provided here with
exp/log-table multiplication.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["GF2m", "PRIMITIVE_POLYNOMIALS"]

#: Primitive polynomials for GF(2^m), m = 2..12, as integer bit masks
#: (x^4 + x + 1 == 0b10011 == 19).
PRIMITIVE_POLYNOMIALS = {
    2: 0b111,
    3: 0b1011,
    4: 0b10011,
    5: 0b100101,
    6: 0b1000011,
    7: 0b10001001,
    8: 0b100011101,
    9: 0b1000010001,
    10: 0b10000001001,
    11: 0b100000000101,
    12: 0b1000001010011,
}


@dataclass
class GF2m:
    """The finite field GF(2^m) with table-based arithmetic.

    Elements are integers in ``[0, 2^m)`` interpreted as polynomials over
    GF(2); ``alpha = 2`` (the polynomial x) is a primitive element.

    Attributes:
        m: field extension degree.
        primitive_polynomial: reducing polynomial as a bit mask; defaults
            to a standard primitive polynomial for the given m.
    """

    m: int
    primitive_polynomial: int = 0
    _exp: np.ndarray = field(init=False, repr=False)
    _log: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.m < 2 or self.m > 16:
            raise ValueError(f"m must be in 2..16, got {self.m}")
        if self.primitive_polynomial == 0:
            if self.m not in PRIMITIVE_POLYNOMIALS:
                raise ValueError(
                    f"no default primitive polynomial for m={self.m}; "
                    "pass one explicitly"
                )
            self.primitive_polynomial = PRIMITIVE_POLYNOMIALS[self.m]
        if self.primitive_polynomial >> self.m != 1:
            raise ValueError(
                f"primitive polynomial must have degree exactly {self.m}"
            )
        self._build_tables()

    def _build_tables(self) -> None:
        size = self.order
        self._exp = np.zeros(2 * size, dtype=np.int64)
        self._log = np.zeros(size + 1, dtype=np.int64)
        value = 1
        for power in range(size):
            self._exp[power] = value
            self._log[value] = power
            value <<= 1
            if value & (1 << self.m):
                value ^= self.primitive_polynomial
        if value != 1:
            raise ValueError(
                f"polynomial 0b{self.primitive_polynomial:b} is not "
                f"primitive over GF(2^{self.m})"
            )
        # Duplicate the exp table so products of logs need no modulo.
        self._exp[size : 2 * size] = self._exp[:size]

    @property
    def order(self) -> int:
        """Number of non-zero elements, ``2^m - 1``."""
        return (1 << self.m) - 1

    @property
    def size(self) -> int:
        """Number of field elements, ``2^m``."""
        return 1 << self.m

    def _check(self, value: int) -> int:
        if not 0 <= value < self.size:
            raise ValueError(
                f"{value} is not an element of GF(2^{self.m})"
            )
        return value

    def add(self, a: int, b: int) -> int:
        """Field addition (XOR of polynomial coefficients)."""
        return self._check(a) ^ self._check(b)

    def multiply(self, a: int, b: int) -> int:
        """Field multiplication via exp/log tables."""
        self._check(a)
        self._check(b)
        if a == 0 or b == 0:
            return 0
        return int(self._exp[self._log[a] + self._log[b]])

    def inverse(self, a: int) -> int:
        """Multiplicative inverse; raises on zero."""
        self._check(a)
        if a == 0:
            raise ZeroDivisionError("zero has no inverse in GF(2^m)")
        return int(self._exp[self.order - self._log[a]])

    def divide(self, a: int, b: int) -> int:
        """Field division ``a / b``."""
        return self.multiply(a, self.inverse(b))

    def power(self, a: int, exponent: int) -> int:
        """``a ** exponent`` with negative exponents allowed for a != 0."""
        self._check(a)
        if a == 0:
            if exponent <= 0:
                raise ZeroDivisionError("0 ** non-positive is undefined")
            return 0
        reduced = (self._log[a] * exponent) % self.order
        return int(self._exp[reduced])

    def alpha_power(self, exponent: int) -> int:
        """``alpha ** exponent`` for the primitive element alpha."""
        return int(self._exp[exponent % self.order])

    def log(self, a: int) -> int:
        """Discrete log base alpha; raises on zero."""
        self._check(a)
        if a == 0:
            raise ValueError("zero has no discrete logarithm")
        return int(self._log[a])

    # ------------------------------------------------------------------
    # Polynomial helpers (coefficient lists, lowest degree first)
    # ------------------------------------------------------------------

    def poly_eval(self, coefficients: list[int], x: int) -> int:
        """Evaluate a polynomial with GF(2^m) coefficients at ``x``."""
        result = 0
        for coefficient in reversed(coefficients):
            result = self.add(self.multiply(result, x), coefficient)
        return result

    def poly_multiply(self, a: list[int], b: list[int]) -> list[int]:
        """Product of two polynomials over the field."""
        if not a or not b:
            return [0]
        result = [0] * (len(a) + len(b) - 1)
        for i, ca in enumerate(a):
            if ca == 0:
                continue
            for j, cb in enumerate(b):
                if cb == 0:
                    continue
                result[i + j] ^= self.multiply(ca, cb)
        return result

    def minimal_polynomial(self, element: int) -> list[int]:
        """Minimal polynomial of a field element over GF(2).

        Returned as 0/1 coefficients, lowest degree first.
        """
        self._check(element)
        if element == 0:
            return [0, 1]  # x
        # The conjugacy class {e, e^2, e^4, ...}.
        conjugates = []
        current = element
        while current not in conjugates:
            conjugates.append(current)
            current = self.multiply(current, current)
        poly = [1]
        for conjugate in conjugates:
            poly = self.poly_multiply(poly, [conjugate, 1])
        if any(c not in (0, 1) for c in poly):
            raise AssertionError(
                "minimal polynomial must have binary coefficients"
            )
        return poly
