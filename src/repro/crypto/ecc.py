"""Binary error-correcting codes: repetition and BCH.

These are the conventional PUF-stabilisation tools the paper's related work
surveys ([10-12]); benches A-series compare their overhead against the
configurable PUF's margin-based reliability.

Both codes implement one interface: ``encode`` maps k message bits to n
code bits, ``decode`` maps n (possibly corrupted) bits back to k message
bits, correcting up to ``t`` errors.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .gf2m import GF2m

__all__ = ["RepetitionCode", "BCHCode", "BlockCode"]


class BlockCode:
    """Interface of a binary block code."""

    #: code length (bits per codeword)
    n: int
    #: message length (bits per message)
    k: int
    #: guaranteed error-correction capability
    t: int

    def encode(self, message: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def decode(self, received: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    @property
    def rate(self) -> float:
        """Code rate k/n."""
        return self.k / self.n

    def _check_length(self, bits: np.ndarray, expected: int) -> np.ndarray:
        bits = np.asarray(bits)
        if bits.ndim != 1 or len(bits) != expected:
            raise ValueError(
                f"expected {expected} bits, got shape {bits.shape}"
            )
        return bits.astype(bool)


@dataclass
class RepetitionCode(BlockCode):
    """An ``(r, 1)`` repetition code decoded by majority vote.

    Attributes:
        repetitions: odd number of copies per message bit.
    """

    repetitions: int = 5

    def __post_init__(self) -> None:
        if self.repetitions < 1 or self.repetitions % 2 == 0:
            raise ValueError(
                f"repetitions must be odd and positive, got {self.repetitions}"
            )
        self.n = self.repetitions
        self.k = 1
        self.t = (self.repetitions - 1) // 2

    def encode(self, message: np.ndarray) -> np.ndarray:
        message = self._check_length(message, 1)
        return np.repeat(message, self.repetitions)

    def decode(self, received: np.ndarray) -> np.ndarray:
        received = self._check_length(received, self.n)
        return np.array([np.sum(received) * 2 > self.n])

    def encode_block(self, message: np.ndarray) -> np.ndarray:
        """Encode a multi-bit message bit-by-bit (convenience)."""
        message = np.asarray(message).astype(bool)
        return np.repeat(message, self.repetitions)

    def decode_block(self, received: np.ndarray) -> np.ndarray:
        """Decode a concatenation of repetition codewords."""
        received = np.asarray(received).astype(bool)
        if len(received) % self.repetitions != 0:
            raise ValueError(
                f"length {len(received)} is not a multiple of "
                f"{self.repetitions}"
            )
        blocks = received.reshape(-1, self.repetitions)
        return blocks.sum(axis=1) * 2 > self.repetitions


@dataclass
class BCHCode(BlockCode):
    """A binary primitive BCH code of length ``2^m - 1``.

    Encoding is systematic (message bits occupy the high-order positions).
    Decoding computes syndromes, finds the error-locator polynomial with
    Berlekamp-Massey over GF(2^m), and locates errors by Chien search.

    Attributes:
        m: field degree; code length is ``2^m - 1``.
        t: designed error-correction capability.
    """

    m: int = 5
    t: int = 3
    field_: GF2m = field(init=False, repr=False)
    generator: list[int] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.t < 1:
            raise ValueError(f"t must be >= 1, got {self.t}")
        self.field_ = GF2m(self.m)
        self.n = self.field_.order
        self.generator = self._build_generator()
        self.k = self.n - (len(self.generator) - 1)
        if self.k <= 0:
            raise ValueError(
                f"BCH(m={self.m}, t={self.t}) has no message bits; "
                "reduce t or increase m"
            )

    def _build_generator(self) -> list[int]:
        """LCM of the minimal polynomials of alpha^1 .. alpha^2t."""
        gf = self.field_
        factors: list[tuple[int, ...]] = []
        generator = [1]
        covered: set[int] = set()
        for power in range(1, 2 * self.t + 1):
            element = gf.alpha_power(power)
            if element in covered:
                continue
            # Mark the whole conjugacy class as covered.
            current = element
            while current not in covered:
                covered.add(current)
                current = gf.multiply(current, current)
            minimal = gf.minimal_polynomial(element)
            factors.append(tuple(minimal))
            generator = _poly_multiply_gf2(generator, minimal)
        del factors
        return generator

    def encode(self, message: np.ndarray) -> np.ndarray:
        """Systematic encoding: codeword = [parity | message]."""
        message = self._check_length(message, self.k)
        degree = self.n - self.k
        # polynomial division of message * x^degree by the generator
        dividend = np.zeros(self.n, dtype=np.uint8)
        dividend[degree:] = message.astype(np.uint8)
        remainder = _poly_mod_gf2(dividend, np.array(self.generator, dtype=np.uint8))
        codeword = dividend.copy()
        codeword[:degree] ^= remainder[:degree]
        return codeword.astype(bool)

    def decode(self, received: np.ndarray) -> np.ndarray:
        """Decode up to ``t`` errors; raises if decoding fails.

        Raises:
            ValueError: when more than ``t`` errors are detected.
        """
        received = self._check_length(received, self.n).astype(np.uint8)
        syndromes = self._syndromes(received)
        if all(s == 0 for s in syndromes):
            return received[self.n - self.k :].astype(bool)
        locator = self._berlekamp_massey(syndromes)
        error_positions = self._chien_search(locator)
        if len(error_positions) != len(locator) - 1:
            raise ValueError(
                "uncorrectable word: error locator degree "
                f"{len(locator) - 1} but {len(error_positions)} roots found"
            )
        corrected = received.copy()
        corrected[error_positions] ^= 1
        if any(self._syndromes(corrected)):
            raise ValueError("uncorrectable word: syndromes persist")
        return corrected[self.n - self.k :].astype(bool)

    def _syndromes(self, received: np.ndarray) -> list[int]:
        gf = self.field_
        positions = np.nonzero(received)[0]
        syndromes = []
        for power in range(1, 2 * self.t + 1):
            value = 0
            for position in positions:
                value ^= gf.alpha_power(power * int(position))
            syndromes.append(value)
        return syndromes

    def _berlekamp_massey(self, syndromes: list[int]) -> list[int]:
        """Error-locator polynomial over GF(2^m), lowest degree first."""
        gf = self.field_
        locator = [1]
        previous = [1]
        shift = 1
        previous_discrepancy = 1
        for index, syndrome in enumerate(syndromes):
            discrepancy = syndrome
            for j in range(1, len(locator)):
                if j <= index:
                    discrepancy ^= gf.multiply(locator[j], syndromes[index - j])
            if discrepancy == 0:
                shift += 1
                continue
            scale = gf.divide(discrepancy, previous_discrepancy)
            candidate = locator.copy()
            shifted = [0] * shift + [gf.multiply(scale, c) for c in previous]
            length = max(len(candidate), len(shifted))
            candidate += [0] * (length - len(candidate))
            shifted += [0] * (length - len(shifted))
            updated = [a ^ b for a, b in zip(candidate, shifted)]
            if 2 * (len(locator) - 1) <= index:
                previous = locator
                previous_discrepancy = discrepancy
                shift = 1
                locator = updated
            else:
                locator = updated
                shift += 1
        while len(locator) > 1 and locator[-1] == 0:
            locator.pop()
        return locator

    def _chien_search(self, locator: list[int]) -> np.ndarray:
        """Error positions: i where alpha^{-i} is a root of the locator."""
        gf = self.field_
        positions = []
        for i in range(self.n):
            x = gf.alpha_power(-i)
            if gf.poly_eval(locator, x) == 0:
                positions.append(i)
        return np.array(positions, dtype=int)


def _poly_multiply_gf2(a: list[int], b: list[int]) -> list[int]:
    """Product of binary polynomials (coefficient lists, low degree first)."""
    result = [0] * (len(a) + len(b) - 1)
    for i, ca in enumerate(a):
        if ca:
            for j, cb in enumerate(b):
                result[i + j] ^= ca & cb
    return result


def _poly_mod_gf2(dividend: np.ndarray, divisor: np.ndarray) -> np.ndarray:
    """Remainder of binary polynomial division (arrays, low degree first)."""
    remainder = dividend.copy()
    divisor_degree = len(divisor) - 1
    for degree in range(len(remainder) - 1, divisor_degree - 1, -1):
        if remainder[degree]:
            start = degree - divisor_degree
            remainder[start : degree + 1] ^= divisor
    return remainder
