"""Content-addressed on-disk result cache for pipeline tasks.

Cache key = sha256 over (scheme tag, task name, dataset fingerprint, repro
version); the key is both the filename and an integrity check inside the
file.  A cached entry is trusted only if its embedded metadata matches the
request exactly — any mismatch, parse error, or I/O failure reads as a
*miss*, so a corrupted or stale cache can never crash or poison a run; the
task simply recomputes and overwrites the entry.

Writes are atomic (temp file + ``os.replace``) so parallel runs sharing a
cache directory never observe half-written entries.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

__all__ = ["ResultCache", "NO_DATASET_FINGERPRINT"]

#: Fingerprint slot used by tasks that do not consume the dataset.
NO_DATASET_FINGERPRINT = "no-dataset"

#: Bumped if the cache file layout ever changes incompatibly.
_SCHEME = "ropuf-cache-v1"


def _repro_version() -> str:
    from .. import __version__

    return __version__


class ResultCache:
    """A directory of content-addressed task results.

    Args:
        root: cache directory (created on first store).
        version: repro version folded into every key; defaults to the
            installed ``repro.__version__`` and exists as a parameter so
            tests can simulate version bumps.
    """

    def __init__(self, root: str | Path, version: str | None = None) -> None:
        self.root = Path(root)
        self.version = version if version is not None else _repro_version()

    def key(self, task_name: str, fingerprint: str) -> str:
        """The content-addressed key (hex digest) for one task result."""
        material = "\n".join([_SCHEME, task_name, fingerprint, self.version])
        return hashlib.sha256(material.encode()).hexdigest()

    def path(self, task_name: str, fingerprint: str) -> Path:
        """Where the entry for (task, fingerprint, version) lives on disk."""
        return self.root / f"{self.key(task_name, fingerprint)}.json"

    def load(self, task_name: str, fingerprint: str):
        """The cached result, or ``None`` on miss/corruption/mismatch."""
        path = self.path(task_name, fingerprint)
        try:
            payload = json.loads(path.read_text())
            if (
                payload["task"] != task_name
                or payload["fingerprint"] != fingerprint
                or payload["version"] != self.version
            ):
                return None
            return payload["result"]
        except (OSError, ValueError, KeyError, TypeError):
            return None

    def store(self, task_name: str, fingerprint: str, result) -> Path:
        """Atomically persist one task result; returns the entry path."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path(task_name, fingerprint)
        payload = {
            "task": task_name,
            "fingerprint": fingerprint,
            "version": self.version,
            "result": result,
        }
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(payload, indent=2))
        os.replace(tmp, path)
        return path
