"""Content-addressed on-disk result cache for pipeline tasks.

Cache key = sha256 over (scheme tag, task name, dataset fingerprint, repro
version); the key is both the filename and an integrity check inside the
file.  Entries come in two flavours sharing one key: plain-JSON results
live in ``<key>.json``; ndarray-bearing results (raw-channel tasks) live
in ``<key>.pkl``, pickled at protocol :data:`PICKLE_PROTOCOL` so large
arrays serialise as contiguous framed buffers at ~raw ``nbytes`` cost.  A cached entry is trusted only if its embedded metadata matches the
request exactly — any mismatch, parse error, or I/O failure reads as a
*miss*, so a corrupted or stale cache can never crash or poison a run; the
task simply recomputes and overwrites the entry.

Corrupt files get special handling: an entry that exists but does not
parse as JSON (zero bytes, a truncated mid-write tail, binary garbage) is
*quarantined* — renamed to ``<entry>.corrupt`` so the evidence survives
for post-mortems while the poisoned path is freed for the recompute.
Metadata mismatches (a different repro version, say) are well-formed
entries for some *other* key and read as a plain miss, untouched.

Writes are atomic (per-call-unique temp file + ``os.replace``) so parallel
runs sharing a cache directory — across processes *and* across threads of
one process — never observe half-written entries; stale temp files left by
crashed runs are swept on store.

When :mod:`repro.obs` is enabled, loads and stores emit ``cache.load`` /
``cache.store`` spans and the ``cache.hits`` / ``cache.misses`` /
``cache.stores`` / ``cache.read_bytes`` / ``cache.write_bytes`` /
``cache.corrupt_quarantined`` counters.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import pickle
import time
from pathlib import Path

import numpy as np

from .. import obs

__all__ = ["ResultCache", "NO_DATASET_FINGERPRINT", "PICKLE_PROTOCOL"]

#: Fingerprint slot used by tasks that do not consume the dataset.
NO_DATASET_FINGERPRINT = "no-dataset"

#: Bumped if the cache file layout ever changes incompatibly.
_SCHEME = "ropuf-cache-v1"

#: Per-process sequence folded into temp-file names so concurrent stores
#: from threads of one process never collide (PID alone is not unique).
_TMP_COUNTER = itertools.count()

#: Temp files older than this many seconds are orphans from crashed runs
#: and are swept on the next store.
STALE_TMP_SECONDS = 3600.0


#: Binary entries pin pickle protocol 5: its out-of-band buffer framing
#: stores ndarray payloads as contiguous blocks, so a cached array costs
#: its raw ``nbytes`` plus a small bounded header (pinned by
#: ``tests/test_pipeline_shm.py``); earlier protocols chunk large
#: buffers and predate the framing.
PICKLE_PROTOCOL = 5


def _repro_version() -> str:
    from .. import __version__

    return __version__


def _has_ndarray(value) -> bool:
    """Whether ``value`` contains an ndarray anywhere (JSON can't hold it)."""
    if isinstance(value, np.ndarray):
        return True
    if isinstance(value, dict):
        return any(_has_ndarray(v) for v in value.values())
    if isinstance(value, (list, tuple)):
        return any(_has_ndarray(v) for v in value)
    return False


class ResultCache:
    """A directory of content-addressed task results.

    Args:
        root: cache directory (created on first store).
        version: repro version folded into every key; defaults to the
            installed ``repro.__version__`` and exists as a parameter so
            tests can simulate version bumps.
    """

    def __init__(self, root: str | Path, version: str | None = None) -> None:
        self.root = Path(root)
        self.version = version if version is not None else _repro_version()

    def key(self, task_name: str, fingerprint: str) -> str:
        """The content-addressed key (hex digest) for one task result."""
        material = "\n".join([_SCHEME, task_name, fingerprint, self.version])
        return hashlib.sha256(material.encode()).hexdigest()

    def path(self, task_name: str, fingerprint: str) -> Path:
        """Where the entry for (task, fingerprint, version) lives on disk."""
        return self.root / f"{self.key(task_name, fingerprint)}.json"

    def binary_path(self, task_name: str, fingerprint: str) -> Path:
        """The binary (pickle) sibling of :meth:`path`.

        Used for ndarray-bearing results from raw-channel tasks, which
        JSON cannot represent; at most one of the two paths exists for a
        given key (stores unlink the other flavour).
        """
        return self.root / f"{self.key(task_name, fingerprint)}.pkl"

    def load(self, task_name: str, fingerprint: str):
        """The cached result, or ``None`` on miss/corruption/mismatch.

        An entry that exists but fails to *parse* — zero bytes, a
        truncated mid-write tail, binary garbage — is quarantined to
        ``<entry>.corrupt`` before reporting the miss, so the recompute
        can store cleanly while the corrupt bytes stay around for
        inspection.  Well-formed entries with mismatched metadata are a
        plain miss and are left in place.
        """
        path = self.path(task_name, fingerprint)
        with obs.span("cache.load", task=task_name) as load_span:
            try:
                text = path.read_text()
            except OSError:
                return self._load_binary(task_name, fingerprint, load_span)
            obs.counter_add("cache.read_bytes", len(text))
            try:
                payload = json.loads(text)
                result = payload["result"]
                if (
                    payload["task"] != task_name
                    or payload["fingerprint"] != fingerprint
                    or payload["version"] != self.version
                ):
                    raise KeyError("metadata mismatch")
            except ValueError:
                # Unparseable bytes: the file is damaged, not merely stale.
                self._quarantine(path)
                obs.counter_add("cache.misses")
                load_span.set_attr("hit", False)
                load_span.set_attr("quarantined", True)
                return None
            except (KeyError, TypeError):
                obs.counter_add("cache.misses")
                load_span.set_attr("hit", False)
                return None
            obs.counter_add("cache.hits")
            load_span.set_attr("hit", True)
            return result

    def _load_binary(self, task_name: str, fingerprint: str, load_span):
        """The pickle-flavour load path (same trust and integrity rules).

        Binary entries hold only this cache's own stores — the same trust
        domain as the JSON flavour — and get the same treatment: metadata
        mismatch is a plain miss, unparseable bytes are quarantined.
        """
        path = self.binary_path(task_name, fingerprint)
        try:
            data = path.read_bytes()
        except OSError:
            obs.counter_add("cache.misses")
            load_span.set_attr("hit", False)
            return None
        obs.counter_add("cache.read_bytes", len(data))
        try:
            payload = pickle.loads(data)
            result = payload["result"]
            if (
                payload["task"] != task_name
                or payload["fingerprint"] != fingerprint
                or payload["version"] != self.version
            ):
                raise KeyError("metadata mismatch")
        except (pickle.UnpicklingError, EOFError, ValueError, AttributeError):
            self._quarantine(path)
            obs.counter_add("cache.misses")
            load_span.set_attr("hit", False)
            load_span.set_attr("quarantined", True)
            return None
        except (KeyError, TypeError):
            obs.counter_add("cache.misses")
            load_span.set_attr("hit", False)
            return None
        obs.counter_add("cache.hits")
        load_span.set_attr("hit", True)
        load_span.set_attr("binary", True)
        return result

    def _quarantine(self, path: Path) -> None:
        """Move a damaged entry aside as ``<name>.corrupt`` (best effort)."""
        try:
            os.replace(path, path.with_name(f"{path.name}.corrupt"))
            obs.counter_add("cache.corrupt_quarantined")
        except OSError:
            pass

    def store(self, task_name: str, fingerprint: str, result) -> Path:
        """Atomically persist one task result; returns the entry path.

        The temp file is uniquified per call (PID + per-process counter), so
        concurrent stores of the same key — from threads of one process or
        from separate processes — never write through the same path.  Stale
        temp files orphaned by crashed runs are swept opportunistically.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        self.sweep_stale_tmp()
        payload = {
            "task": task_name,
            "fingerprint": fingerprint,
            "version": self.version,
            "result": result,
        }
        binary = _has_ndarray(result)
        if binary:
            path = self.binary_path(task_name, fingerprint)
            stale = self.path(task_name, fingerprint)
            data = pickle.dumps(payload, protocol=PICKLE_PROTOCOL)
        else:
            path = self.path(task_name, fingerprint)
            stale = self.binary_path(task_name, fingerprint)
            data = json.dumps(payload, indent=2).encode()
        tmp = path.with_name(
            f"{path.name}.tmp.{os.getpid()}.{next(_TMP_COUNTER)}"
        )
        with obs.span("cache.store", task=task_name, binary=binary):
            try:
                tmp.write_bytes(data)
                os.replace(tmp, path)
            except BaseException:
                try:
                    tmp.unlink()
                except OSError:
                    pass
                raise
            try:
                # A re-store that switched flavours must not leave the old
                # flavour behind (load would resurrect it after this entry
                # is invalidated).
                stale.unlink()
            except OSError:
                pass
            obs.counter_add("cache.stores")
            obs.counter_add("cache.write_bytes", len(data))
        return path

    def sweep_stale_tmp(self, max_age_seconds: float = STALE_TMP_SECONDS) -> int:
        """Delete stale ``*.tmp.*`` and quarantined ``*.corrupt`` files.

        Recent files are left alone — a temp file may belong to an
        in-flight store of another process, and a fresh quarantined entry
        is evidence someone may still want to inspect.  Returns the number
        of files removed; errors (vanished files, permissions) are
        ignored.
        """
        removed = 0
        now = time.time()
        for pattern in ("*.tmp.*", "*.corrupt"):
            for stale in self.root.glob(pattern):
                try:
                    if now - stale.stat().st_mtime >= max_age_seconds:
                        stale.unlink()
                        removed += 1
                except OSError:
                    continue
        return removed
