"""repro.pipeline — declarative, parallel, cached experiment execution.

The package turns the paper's evaluation into a task graph:

* :mod:`~repro.pipeline.registry` — named :class:`TaskSpec` nodes with
  explicit dataset dependence;
* :mod:`~repro.pipeline.tasks` — one registered task per paper
  table/figure (importing it populates the registry);
* :mod:`~repro.pipeline.cache` — a content-addressed on-disk result cache
  keyed by (task, dataset fingerprint, repro version), with corrupt-entry
  quarantine;
* :mod:`~repro.pipeline.journal` — a crash-safe checkpoint journal
  backing ``ropuf all --resume``;
* :mod:`~repro.pipeline.timing` — per-task wall-time / process /
  cache-hit / failure-history metrics;
* :mod:`~repro.pipeline.executor` — :func:`run_pipeline`, which fans
  independent tasks out over a crash-surviving worker pool under a
  configurable :class:`RetryPolicy` (retries, exponential backoff,
  per-task timeouts) with graceful degradation.

See ``docs/pipeline.md`` for the architecture and cache-key scheme, and
``docs/robustness.md`` for the hardening guarantees.
"""

from .cache import NO_DATASET_FINGERPRINT, ResultCache
from .executor import RetryPolicy, execute_task, run_pipeline
from .fleet import run_fleet_analysis, shard_task_name
from .journal import RunJournal
from .registry import (
    TaskSpec,
    all_tasks,
    get_task,
    register_task,
    register_task_factory,
    resolve_tasks,
    task_names,
)
from .timing import PipelineTimings, TaskTiming

from . import tasks as _tasks  # noqa: F401  (register the paper's tasks)

__all__ = [
    "run_pipeline",
    "execute_task",
    "RetryPolicy",
    "RunJournal",
    "ResultCache",
    "NO_DATASET_FINGERPRINT",
    "TaskSpec",
    "register_task",
    "register_task_factory",
    "run_fleet_analysis",
    "shard_task_name",
    "get_task",
    "all_tasks",
    "task_names",
    "resolve_tasks",
    "TaskTiming",
    "PipelineTimings",
]
