"""Sharded fleet analytics over the hardened pipeline executor.

One pipeline task per fleet shard: the task name embeds the shard index
and the full :class:`~repro.datasets.fleet.FleetSpec` as canonical JSON
(``fleet_shard:<index>:<spec-json>``), so a worker process can rebuild
the exact spec from the name alone — nothing but task names ever crosses
the worker pipes, and the journal/cache keys change whenever the spec
does.  Each task generates its shard from ``(seed, shard_index)``,
folds its bit matrices into the streaming accumulators
(:mod:`repro.metrics.streaming`), and returns the accumulators'
``state_dict()`` — a few KB of integer sufficient statistics, never the
shard's delays.

:func:`run_fleet_analysis` fans the shard tasks out through
:func:`~repro.pipeline.executor.run_pipeline`, inheriting every
hardening feature it has: retries with backoff, crash/timeout survival,
result caching, and the crash-safe journal — a killed fleet run re-run
with the same journal resumes at the first incomplete shard and produces
bit-identical statistics (pinned by ``tests/test_pipeline_fleet.py`` and
the ``fleet-smoke`` CI job).  The parent then merges the shard states
(integer addition — shard-order invariant) and derives the population
reports.

Memory stays bounded by one shard per worker plus ``O(shards)`` compact
states in the parent, independent of fleet size; see ``docs/datasets.md``.
"""

from __future__ import annotations

import os

from .. import obs
from ..datasets.fleet import FleetSpec, load_or_generate_shard
from ..metrics.streaming import (
    StreamingReliability,
    StreamingUniformity,
    StreamingUniqueness,
)
from .registry import TaskSpec, register_task_factory

__all__ = [
    "FLEET_TASK_PREFIX",
    "SHARD_DIR_ENV_VAR",
    "shard_task_name",
    "parse_shard_task_name",
    "compute_shard_stats",
    "run_fleet_analysis",
]

FLEET_TASK_PREFIX = "fleet_shard"

#: How the shard directory reaches worker processes.  Deliberately an
#: environment variable, *not* part of the task name or FleetSpec: the
#: cache/journal keys must depend only on what the result is (the spec),
#: never on where shards happen to be persisted.
SHARD_DIR_ENV_VAR = "ROPUF_FLEET_SHARD_DIR"


def _shard_dir() -> str | None:
    return os.environ.get(SHARD_DIR_ENV_VAR) or None


def shard_task_name(spec: FleetSpec, index: int) -> str:
    """The pipeline task name of one fleet shard.

    The spec rides inside the name as canonical JSON: cache filenames are
    sha256 digests of the task name, so arbitrary JSON in the name is
    filename-safe, and two different specs can never share a cache entry
    or a journal line.
    """
    return f"{FLEET_TASK_PREFIX}:{index}:{spec.to_json()}"


def parse_shard_task_name(name: str) -> tuple[FleetSpec, int]:
    """Invert :func:`shard_task_name` (raises ValueError on malformed)."""
    prefix, _, rest = name.partition(":")
    index_text, _, spec_json = rest.partition(":")
    if prefix != FLEET_TASK_PREFIX or not index_text or not spec_json:
        raise ValueError(f"not a fleet shard task name: {name!r}")
    return FleetSpec.from_json(spec_json), int(index_text)


def compute_shard_stats(spec: FleetSpec, index: int) -> dict:
    """Generate shard ``index`` and reduce it to streaming states.

    The returned dict is plain JSON: the shard's device range plus one
    ``state_dict()`` per accumulator.  The reference corner is
    ``spec.corners[0]``; every further corner contributes a regenerated
    response for the reliability fold.

    When :data:`SHARD_DIR_ENV_VAR` points at a shard directory (see
    :func:`run_fleet_analysis`'s ``shard_dir``), a previously saved shard
    is memory-mapped instead of regenerated, and fresh shards are saved
    for the next run.
    """
    import numpy as np

    start, stop = spec.shard_bounds(index)
    with obs.span(
        "fleet.shard", shard=index, devices=stop - start
    ):
        shard = load_or_generate_shard(spec, index, _shard_dir())
        reference = shard.reference_bits()
        uniqueness = StreamingUniqueness(spec.bit_count)
        uniformity = StreamingUniformity(spec.bit_count)
        reliability = StreamingReliability(spec.bit_count)
        with obs.span("fleet.fold", shard=index):
            uniqueness.update(reference)
            uniformity.update(reference)
            if len(spec.corners) > 1:
                observations = np.stack(
                    [
                        shard.response_bits(op)
                        for op in spec.corners[1:]
                    ]
                )
            else:
                observations = np.empty(
                    (0,) + reference.shape, dtype=bool
                )
            reliability.update(reference, observations)
    obs.counter_add("fleet.shards.generated")
    obs.counter_add("fleet.devices.generated", stop - start)
    return {
        "shard": index,
        "start": start,
        "stop": stop,
        "uniqueness": uniqueness.state_dict(),
        "uniformity": uniformity.state_dict(),
        "reliability": reliability.state_dict(),
    }


def _shard_task_factory(name: str) -> TaskSpec:
    spec, index = parse_shard_task_name(name)

    def runner() -> dict:
        return compute_shard_stats(spec, index)

    return TaskSpec(
        name=name,
        runner=runner,
        uses_dataset=False,
        description=f"fleet shard {index} of {spec.shard_count}",
    )


register_task_factory(FLEET_TASK_PREFIX, _shard_task_factory)


def run_fleet_analysis(
    spec: FleetSpec,
    *,
    jobs: int = 1,
    cache_dir=None,
    policy=None,
    journal=None,
    timings: bool = False,
    trace=None,
    shard_dir=None,
) -> dict:
    """Sharded uniqueness/uniformity/reliability over the whole fleet.

    Fans one task per shard through the hardened executor (see
    :func:`~repro.pipeline.executor.run_pipeline` for the cache, retry,
    journal, and chaos semantics of the keyword arguments), then folds
    the shard states and derives the population reports.

    ``shard_dir`` opts into shard persistence: saved shards are
    memory-mapped instead of regenerated (fabrication is the dominant
    cost of re-analysis) and fresh shards are saved for next time.  The
    directory travels to workers via :data:`SHARD_DIR_ENV_VAR` — never
    through task names — so cache and journal keys are identical with
    and without it.

    Returns a plain-JSON summary: the spec, shard bookkeeping (including
    any ``failed`` shards after retry exhaustion — ``complete`` is False
    then and the reports cover only the folded shards), the three
    reports, and the executor's ``_pipeline``/``_metrics`` blocks when
    requested.
    """
    from .executor import run_pipeline

    names = [
        shard_task_name(spec, index)
        for index in range(spec.shard_count)
    ]
    previous_shard_dir = os.environ.get(SHARD_DIR_ENV_VAR)
    if shard_dir is not None:
        os.environ[SHARD_DIR_ENV_VAR] = str(shard_dir)
    try:
        summary = run_pipeline(
            dataset=None,
            jobs=jobs,
            cache_dir=cache_dir,
            tasks=names,
            timings=timings,
            trace=trace,
            policy=policy,
            journal=journal,
        )
    finally:
        if shard_dir is not None:
            if previous_shard_dir is None:
                os.environ.pop(SHARD_DIR_ENV_VAR, None)
            else:
                os.environ[SHARD_DIR_ENV_VAR] = previous_shard_dir

    uniqueness = StreamingUniqueness(spec.bit_count)
    uniformity = StreamingUniformity(spec.bit_count)
    reliability = StreamingReliability(spec.bit_count)
    failed: list[dict] = []
    with obs.span("fleet.merge", shards=spec.shard_count):
        for index, name in enumerate(names):
            outcome = summary[name]
            if "error" in outcome and "uniqueness" not in outcome:
                failed.append(
                    {
                        "shard": index,
                        "error": outcome.get("error"),
                        "error_type": outcome.get("error_type"),
                    }
                )
                continue
            uniqueness.merge(
                StreamingUniqueness.from_state(outcome["uniqueness"])
            )
            uniformity.merge(
                StreamingUniformity.from_state(outcome["uniformity"])
            )
            reliability.merge(
                StreamingReliability.from_state(outcome["reliability"])
            )

    result: dict = {
        "fleet": spec.to_dict(),
        "shards": {
            "total": spec.shard_count,
            "folded": spec.shard_count - len(failed),
            "failed": failed,
        },
        "complete": not failed,
        "devices": uniqueness.rows,
        "uniqueness": uniqueness.report().to_dict()
        if uniqueness.rows >= 2
        else None,
        "uniformity": uniformity.report().to_dict()
        if uniformity.rows
        else None,
        "reliability": reliability.report().to_dict()
        if reliability.devices
        else None,
    }
    for key in ("_pipeline", "_metrics"):
        if key in summary:
            result[key] = summary[key]
    return result
