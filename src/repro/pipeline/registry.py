"""Declarative task registry: the experiment pipeline's task graph.

Each paper experiment registers as a named :class:`TaskSpec` whose runner is
a plain module-level function (picklable, so the executor can ship it to
worker processes).  Tasks declare whether they consume the dataset — that
decides which fingerprint enters their cache key — and registration order is
preserved so the assembled summary JSON keeps a stable key order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

__all__ = [
    "TaskSpec",
    "register_task",
    "get_task",
    "all_tasks",
    "task_names",
    "resolve_tasks",
]


@dataclass(frozen=True)
class TaskSpec:
    """One node of the experiment task graph.

    Attributes:
        name: summary-JSON key and cache-key component, e.g.
            ``"table1_nist_case1"``.
        runner: module-level callable computing the task's JSON-serialisable
            result.  Called with the dataset when ``uses_dataset`` is true,
            with no arguments otherwise.
        uses_dataset: whether the result depends on the measurement dataset
            (false for paper-constant studies like Table V).
        description: one-line human-readable purpose.
    """

    name: str
    runner: Callable
    uses_dataset: bool = True
    description: str = ""

    def run(self, dataset):
        """Execute the task (dataset is ignored by dataset-free tasks)."""
        if self.uses_dataset:
            return self.runner(dataset)
        return self.runner()


_REGISTRY: dict[str, TaskSpec] = {}


def register_task(
    name: str,
    runner: Callable | None = None,
    *,
    uses_dataset: bool = True,
    description: str = "",
) -> Callable:
    """Register a task; usable directly or as a decorator.

    Raises:
        ValueError: if the name is already registered.
    """

    def _register(fn: Callable) -> Callable:
        if name in _REGISTRY:
            raise ValueError(f"task {name!r} is already registered")
        _REGISTRY[name] = TaskSpec(
            name=name,
            runner=fn,
            uses_dataset=uses_dataset,
            description=description or (fn.__doc__ or "").strip().split("\n")[0],
        )
        return fn

    if runner is not None:
        return _register(runner)
    return _register


def get_task(name: str) -> TaskSpec:
    """Look a registered task up by name.

    Raises:
        KeyError: for unknown names, listing what is available.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown pipeline task {name!r}; known tasks: "
            + ", ".join(sorted(_REGISTRY))
        ) from None


def all_tasks() -> list[TaskSpec]:
    """Every registered task, in registration order."""
    return list(_REGISTRY.values())


def task_names() -> list[str]:
    """Registered task names, in registration order."""
    return list(_REGISTRY)


def resolve_tasks(names: Iterable[str] | None = None) -> list[TaskSpec]:
    """The tasks a pipeline run should execute.

    Args:
        names: task names to run (any order, duplicates collapsed); ``None``
            selects every registered task.  Selected tasks always run in
            registration order so summaries are comparable across runs.

    Raises:
        KeyError: if any name is unknown.
    """
    if names is None:
        return all_tasks()
    wanted = set()
    for name in names:
        get_task(name)  # validate, raising the helpful KeyError
        wanted.add(name)
    return [spec for spec in all_tasks() if spec.name in wanted]
