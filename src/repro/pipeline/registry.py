"""Declarative task registry: the experiment pipeline's task graph.

Each paper experiment registers as a named :class:`TaskSpec` whose runner is
a plain module-level function (picklable, so the executor can ship it to
worker processes).  Tasks declare whether they consume the dataset — that
decides which fingerprint enters their cache key — and registration order is
preserved so the assembled summary JSON keeps a stable key order.

Besides the static registry there are **task factories** for families of
dynamically-named tasks (:func:`register_task_factory`): a name like
``fleet_shard:3:{...}`` resolves by prefix to a factory that builds the
:class:`TaskSpec` on demand.  Workers only ever receive task *names* and
re-resolve them via :func:`get_task` after importing the task modules, so
factory tasks ship to worker processes exactly like static ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

__all__ = [
    "TaskSpec",
    "register_task",
    "register_task_factory",
    "get_task",
    "all_tasks",
    "task_names",
    "resolve_tasks",
]


@dataclass(frozen=True)
class TaskSpec:
    """One node of the experiment task graph.

    Attributes:
        name: summary-JSON key and cache-key component, e.g.
            ``"table1_nist_case1"``.
        runner: module-level callable computing the task's JSON-serialisable
            result.  Called with the dataset when ``uses_dataset`` is true,
            with no arguments otherwise.
        uses_dataset: whether the result depends on the measurement dataset
            (false for paper-constant studies like Table V).
        description: one-line human-readable purpose.
        canonical_result: whether the result is canonicalised to plain
            JSON types (the default).  ``False`` opts into the raw-array
            channel: the result keeps its ndarrays, large ones travel
            worker-to-parent via shared memory
            (:mod:`repro.pipeline.shm`), caching uses the binary pickle
            path, and the run journal skips the task.
    """

    name: str
    runner: Callable
    uses_dataset: bool = True
    description: str = ""
    canonical_result: bool = True

    def run(self, dataset):
        """Execute the task (dataset is ignored by dataset-free tasks)."""
        if self.uses_dataset:
            return self.runner(dataset)
        return self.runner()


_REGISTRY: dict[str, TaskSpec] = {}
_FACTORIES: dict[str, Callable[[str], TaskSpec]] = {}


def register_task(
    name: str,
    runner: Callable | None = None,
    *,
    uses_dataset: bool = True,
    description: str = "",
    canonical_result: bool = True,
) -> Callable:
    """Register a task; usable directly or as a decorator.

    Raises:
        ValueError: if the name is already registered.
    """

    def _register(fn: Callable) -> Callable:
        if name in _REGISTRY:
            raise ValueError(f"task {name!r} is already registered")
        _REGISTRY[name] = TaskSpec(
            name=name,
            runner=fn,
            uses_dataset=uses_dataset,
            description=description or (fn.__doc__ or "").strip().split("\n")[0],
            canonical_result=canonical_result,
        )
        return fn

    if runner is not None:
        return _register(runner)
    return _register


def register_task_factory(
    prefix: str, factory: Callable[[str], TaskSpec]
) -> None:
    """Register a factory for the dynamic task family ``{prefix}:...``.

    The factory receives the *full* task name and must return a
    :class:`TaskSpec` with that exact name.  Factories let a pipeline run
    over task sets that cannot be enumerated at import time (one task per
    fleet shard, parameterized by a spec embedded in the name) while
    keeping names the only thing shipped to workers.

    Raises:
        ValueError: if the prefix contains ``:`` or is already taken.
    """
    if ":" in prefix:
        raise ValueError(f"factory prefix may not contain ':': {prefix!r}")
    if prefix in _FACTORIES:
        raise ValueError(f"task factory {prefix!r} is already registered")
    _FACTORIES[prefix] = factory


def get_task(name: str) -> TaskSpec:
    """Look a task up by name — static registry first, then factories.

    A name containing ``:`` resolves through the factory registered for
    its prefix (the part before the first ``:``).

    Raises:
        KeyError: for unknown names, listing what is available.
    """
    spec = _REGISTRY.get(name)
    if spec is not None:
        return spec
    prefix = name.split(":", 1)[0]
    factory = _FACTORIES.get(prefix) if prefix != name else None
    if factory is not None:
        spec = factory(name)
        if spec.name != name:
            raise ValueError(
                f"factory {prefix!r} built task {spec.name!r} "
                f"for requested name {name!r}"
            )
        return spec
    raise KeyError(
        f"unknown pipeline task {name!r}; known tasks: "
        + ", ".join(sorted(_REGISTRY))
        + (
            "; task factories: " + ", ".join(sorted(_FACTORIES))
            if _FACTORIES
            else ""
        )
    )


def all_tasks() -> list[TaskSpec]:
    """Every registered task, in registration order."""
    return list(_REGISTRY.values())


def task_names() -> list[str]:
    """Registered task names, in registration order."""
    return list(_REGISTRY)


def resolve_tasks(names: Iterable[str] | None = None) -> list[TaskSpec]:
    """The tasks a pipeline run should execute.

    Args:
        names: task names to run (any order, duplicates collapsed); ``None``
            selects every registered task.  Selected *static* tasks always
            run in registration order so summaries are comparable across
            runs; factory-built tasks follow in the caller's order.

    Raises:
        KeyError: if any name is unknown.
    """
    if names is None:
        return all_tasks()
    wanted = set()
    dynamic: list[TaskSpec] = []
    for name in names:
        spec = get_task(name)  # validate, raising the helpful KeyError
        if name in wanted:
            continue
        wanted.add(name)
        if name not in _REGISTRY:
            dynamic.append(spec)
    static = [spec for spec in all_tasks() if spec.name in wanted]
    return static + dynamic
