"""The paper's experiments as registered pipeline tasks.

Every section of the old monolithic ``run_all_experiments`` lives here as
one named task returning a plain JSON-serialisable dict (native Python
scalars, string keys).  Importing this module populates the registry; the
experiment modules themselves are imported lazily inside each task so CLI
start-up and worker spin-up stay cheap.

Task names double as the summary-JSON keys, and registration order fixes
the summary's key order.
"""

from __future__ import annotations

from ..datasets.base import RODataset
from .registry import register_task

__all__ = ["nist_summary"]


def nist_summary(result) -> dict:
    """Flatten a NIST battery result into the summary-JSON shape."""
    return {
        "passed": result.passed,
        "sequences": int(result.streams.shape[0]),
        "bits_per_sequence": int(result.streams.shape[1]),
        "rows": [
            {
                "test": row.label,
                "proportion": row.proportion,
                "uniformity_p": row.uniformity_p,
                "uniformity_assessable": row.uniformity_assessable,
                "passed": row.passed,
            }
            for row in result.report.rows
        ],
    }


@register_task("table1_nist_case1", description="NIST battery, Case-1 (Table I)")
def task_table1(dataset: RODataset) -> dict:
    from ..experiments.nist_tables import run_nist_experiment

    return nist_summary(run_nist_experiment(dataset, method="case1"))


@register_task("table2_nist_case2", description="NIST battery, Case-2 (Table II)")
def task_table2(dataset: RODataset) -> dict:
    from ..experiments.nist_tables import run_nist_experiment

    return nist_summary(run_nist_experiment(dataset, method="case2"))


@register_task("nist_raw", description="NIST battery on undistilled bits")
def task_nist_raw(dataset: RODataset) -> dict:
    from ..experiments.nist_tables import run_nist_experiment

    return nist_summary(
        run_nist_experiment(dataset, method="case1", distilled=False)
    )


@register_task("fig3_uniqueness", description="uniqueness histograms (Fig. 3)")
def task_fig3(dataset: RODataset) -> dict:
    from ..experiments.fig3_uniqueness import run_uniqueness_experiment

    uniqueness = run_uniqueness_experiment(dataset)
    return {
        "case1_mean_hd": uniqueness.case1.mean_distance,
        "case1_std_hd": uniqueness.case1.std_distance,
        "case2_mean_hd": uniqueness.case2.mean_distance,
        "case2_std_hd": uniqueness.case2.std_distance,
        "collisions": bool(
            uniqueness.case1.has_collision or uniqueness.case2.has_collision
        ),
    }


def _config_study(dataset: RODataset, method: str) -> dict:
    from ..experiments.config_tables import run_config_study

    # The paper's n = 15 configuration study needs 16 boards' worth of RO
    # pairs; small datasets fall back to n = 7 (same rule as the old runner).
    stage_count = 15 if dataset.ro_count >= 16 * 2 * 15 else 7
    study = run_config_study(dataset, method=method, stage_count=stage_count)
    return {
        "vector_count": study.vector_count,
        "vector_bits": int(study.vectors.shape[1]),
        "hd_percent": {
            str(int(d)): float(p)
            for d, p in zip(study.hd_distances, study.hd_percentages)
            if p > 0
        },
        "duplicate_pairs": study.duplicate_pairs,
        "odd_hd_pairs": study.odd_hd_pairs,
        "mean_selected_fraction": study.mean_selected_fraction,
    }


@register_task(
    "table3_configs_case1", description="Case-1 configuration HDs (Table III)"
)
def task_table3(dataset: RODataset) -> dict:
    return _config_study(dataset, "case1")


@register_task(
    "table4_configs_case2", description="Case-2 configuration HDs (Table IV)"
)
def task_table4(dataset: RODataset) -> dict:
    return _config_study(dataset, "case2")


def _reliability_stage_counts(dataset: RODataset) -> tuple[int, ...]:
    from ..core.pairing import rings_per_board
    from ..experiments.fig4_reliability import FIG4_STAGE_COUNTS

    return tuple(
        n
        for n in FIG4_STAGE_COUNTS
        if rings_per_board(dataset.ro_count, n) >= 2
    )


def _reliability_summary(result, stage_counts: tuple[int, ...]) -> dict:
    summary: dict = {
        f"n={n}": {
            "configurable_mean_flip_percent": result.mean_configurable_flips(n),
            "traditional_mean_flip_percent": result.mean_traditional_flips(n),
        }
        for n in stage_counts
    }
    summary["one_of_8_max_flip_percent"] = result.max_one_of_8_flips()
    return summary


@register_task("fig4_voltage", description="voltage-reliability sweep (Fig. 4)")
def task_fig4_voltage(dataset: RODataset) -> dict:
    from ..experiments.fig4_reliability import run_voltage_reliability

    stage_counts = _reliability_stage_counts(dataset)
    voltage = run_voltage_reliability(dataset, stage_counts=stage_counts)
    return _reliability_summary(voltage, stage_counts)


@register_task(
    "fig4_temperature", description="temperature-reliability sweep (Sec. IV.D)"
)
def task_fig4_temperature(dataset: RODataset) -> dict:
    from ..experiments.fig4_reliability import run_temperature_reliability

    stage_counts = _reliability_stage_counts(dataset)
    temperature = run_temperature_reliability(dataset, stage_counts=stage_counts)
    return _reliability_summary(temperature, stage_counts)


@register_task(
    "table5_bits", uses_dataset=False, description="bits per board (Table V)"
)
def task_table5() -> dict:
    from ..experiments.table5_bits import run_table5

    return {
        f"n={row.stage_count}": {
            "configurable": row.configurable_bits,
            "one_of_8": row.one_of_8_bits,
            "matches_paper": row.matches_paper(),
        }
        for row in run_table5()
    }


@register_task(
    "sec4e_threshold", uses_dataset=False, description="R_th sweep (Sec. IV.E)"
)
def task_threshold() -> dict:
    from ..experiments.sec4e_threshold import run_threshold_study

    threshold = run_threshold_study()
    return {
        "thresholds": threshold.thresholds_units.tolist(),
        "traditional": threshold.traditional.tolist(),
        "configurable": threshold.configurable.tolist(),
        "unit_picoseconds": threshold.unit_seconds * 1e12,
    }


@register_task(
    "ablation_distiller", description="A1 distiller ablation (raw vs distilled)"
)
def task_ablation_distiller(dataset: RODataset) -> dict:
    from ..experiments.ablations import run_distiller_ablation

    ablation = run_distiller_ablation(dataset)
    return {
        "raw_passed": ablation.raw_passed,
        "distilled_passed": ablation.distilled_passed,
        "raw_failed_tests": ablation.raw_failed_tests,
    }


@register_task(
    "ablation_attacks", description="A4 configuration-leakage and model attacks"
)
def task_ablation_attacks(dataset: RODataset) -> dict:
    from ..experiments.extensions import run_leakage_study

    leakage = run_leakage_study(dataset)
    summary: dict = {
        result.scheme: {"accuracy": result.accuracy, "chance": result.chance}
        for result in leakage.results
    }
    summary["model_attack_accuracy"] = leakage.model_attack.accuracy
    return summary


@register_task("ecc_cost", description="A7 ECC cost per selection scheme")
def task_ecc_cost(dataset: RODataset) -> dict:
    from ..experiments.extensions import run_ecc_cost_study

    ecc = run_ecc_cost_study(dataset)
    return {
        requirement.scheme: {
            "bit_error_rate": requirement.bit_error_rate,
            "t": requirement.t,
            "overhead_bits_per_key_bit": requirement.overhead_bits_per_key_bit,
        }
        for requirement in ecc.requirements
    }


# Dynamic task families register their factories on import; pulling the
# module in here makes them resolvable wherever the static tasks are —
# including worker processes, which import repro.pipeline.tasks before
# looking any task name up.
from . import fleet as _fleet  # noqa: E402, F401  (register fleet_shard factory)
