"""Zero-copy shared-memory transport for large worker results.

The pipe-per-worker executor historically pickled every task payload
through its pipe.  For canonical JSON summaries that is fine; for tasks
that return big ndarrays (fleet shards, raw sweep tensors) pickling
copies every byte through the pipe twice — serialise in the worker,
deserialise in the parent.  This module replaces that path for large
arrays: the worker copies the array **once** into a
:class:`multiprocessing.shared_memory.SharedMemory` segment and sends a
tiny :class:`ShmArrayRef` (name, shape, dtype) over the pipe instead;
the parent attaches, unlinks the name, and hands out an ndarray *view*
backed by the mapping — zero parent-side copies.  Pinned ≥2x on a
64 MiB round-trip by ``benchmarks/test_bench_ipc.py``.

Lifecycle protocol (crash-safe by construction)
-----------------------------------------------

Segments are named ``ropuf_<token>_<pid>_<seq>`` — a per-pool random
token, the creating worker's PID, and a per-worker sequence number — so
ownership is recoverable from the name alone:

* **Worker (creator)**: copies the array in, *disowns* the segment from
  its ``resource_tracker`` (ownership transfers to the pool protocol),
  closes its mapping, and ships the ref.  A worker that dies after this
  point cannot leak permanently: the name says who made it.
* **Parent (consumer)**: attaches by name, disowns its tracker
  registration likewise, then **unlinks immediately** — segments are
  consume-once, and the name disappears the moment the parent has it.
  The decoded array is a view over the still-valid mapping; the mapping
  (and the memory) is released when the array is garbage collected.
* **Worker death** (crash, timeout kill, chaos): the parent sweeps
  ``ropuf_<token>_<dead pid>_*`` when it reaps the worker, destroying
  refs that were in flight.
* **Pool shutdown**: a final sweep of ``ropuf_<token>_*`` collects
  anything left (e.g. a segment created between the parent's last recv
  and shutdown).

Counters (parent-side, so they land in the run's metric registry):
``ipc.shm_segments`` (attached), ``ipc.bytes_received`` (copied out of
segments), and ``ipc.bytes_sent`` (copied *in* by workers — reported in
band inside the payload, so sent > received exactly when a worker died
mid-handoff).  Surfaced by ``ropuf trace summarize``.

On platforms without POSIX shared memory the executor simply never
installs a worker session and everything pickles as before.
"""

from __future__ import annotations

import os
import secrets
import weakref
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from pathlib import Path

import numpy as np

from .. import obs

__all__ = [
    "ShmArrayRef",
    "ShmSession",
    "DEFAULT_THRESHOLD",
    "new_token",
    "set_worker_session",
    "worker_session",
    "encode_payload",
    "decode_payload",
    "sweep_segments",
]

#: Arrays below this many bytes ride the pipe as ordinary pickles — the
#: segment create/attach syscalls cost more than copying small buffers.
DEFAULT_THRESHOLD = 1 << 18  # 256 KiB

#: Where POSIX shared memory is visible as files (Linux).  The sweep is a
#: no-op elsewhere; normal consume-once unlinks work regardless.
_SHM_DIR = Path("/dev/shm")

_SEGMENT_PREFIX = "ropuf"


def new_token() -> str:
    """A fresh pool token for segment names (one per worker pool)."""
    return secrets.token_hex(8)


def _disown(segment: shared_memory.SharedMemory) -> None:
    """Remove ``segment`` from this process's resource tracker.

    Both the creating worker and the attaching parent register the
    segment with their tracker; the pool protocol owns cleanup instead,
    so both sides must unregister or the trackers double-unlink and warn.
    (Python 3.13 adds ``SharedMemory(track=False)``; this supports 3.11.)
    """
    try:  # pragma: no cover - defensive: private API shape may change
        resource_tracker.unregister(segment._name, "shared_memory")
    except Exception:
        pass


@dataclass(frozen=True)
class ShmArrayRef:
    """What actually travels over the pipe in place of a large ndarray.

    Attributes:
        name: shared-memory segment name (``ropuf_<token>_<pid>_<seq>``).
        shape: array shape.
        dtype: ``np.dtype`` string (``descr``-free dtypes only — the
            executor never ships object/structured arrays through shm).
        nbytes: payload size, for counters and sanity checks.
    """

    name: str
    shape: tuple
    dtype: str
    nbytes: int


class ShmSession:
    """A worker's segment factory (token + PID + monotone sequence)."""

    def __init__(self, token: str) -> None:
        self.token = token
        self.pid = os.getpid()
        self._seq = 0
        self.bytes_shared = 0
        self.segments_created = 0

    def share_array(self, array: np.ndarray) -> ShmArrayRef:
        """Copy ``array`` into a fresh segment and return its ref.

        The segment is left linked (the parent unlinks after copy-out) and
        disowned from this process's resource tracker per the module
        lifecycle protocol.
        """
        array = np.ascontiguousarray(array)
        name = f"{_SEGMENT_PREFIX}_{self.token}_{self.pid}_{self._seq}"
        self._seq += 1
        segment = shared_memory.SharedMemory(
            name=name, create=True, size=max(1, array.nbytes)
        )
        try:
            view = np.ndarray(
                array.shape, dtype=array.dtype, buffer=segment.buf
            )
            view[...] = array
            del view
        finally:
            _disown(segment)
            segment.close()
        self.bytes_shared += array.nbytes
        self.segments_created += 1
        return ShmArrayRef(
            name=name,
            shape=tuple(array.shape),
            dtype=str(array.dtype),
            nbytes=array.nbytes,
        )


#: The process-global worker session, installed by ``_worker_main``.
_SESSION: ShmSession | None = None


def set_worker_session(token: str | None) -> None:
    """Install (or with ``None`` clear) this process's segment factory."""
    global _SESSION
    _SESSION = None if token is None else ShmSession(token)


def worker_session() -> ShmSession | None:
    """This process's active :class:`ShmSession`, if any."""
    return _SESSION


def _walk_encode(value, session: ShmSession, threshold: int):
    if isinstance(value, np.ndarray):
        if (
            value.nbytes >= threshold
            and value.dtype != object
            and value.dtype.names is None
        ):
            return session.share_array(value)
        return value
    if isinstance(value, dict):
        return {k: _walk_encode(v, session, threshold) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        walked = [_walk_encode(v, session, threshold) for v in value]
        return type(value)(walked) if isinstance(value, tuple) else walked
    return value


def encode_payload(payload: dict, threshold: int = DEFAULT_THRESHOLD) -> dict:
    """Worker-side: move large ndarrays in ``payload`` into segments.

    Returns the payload with each qualifying array replaced by its
    :class:`ShmArrayRef`, plus an in-band ``"ipc"`` stats dict when any
    segment was created (how ``ipc.bytes_sent`` reaches the parent's
    counters).  A no-op when no worker session is installed.
    """
    session = _SESSION
    if session is None:
        return payload
    before_bytes = session.bytes_shared
    before_segments = session.segments_created
    encoded = _walk_encode(payload, session, threshold)
    shared = session.segments_created - before_segments
    if shared:
        encoded["ipc"] = {
            "bytes_sent": session.bytes_shared - before_bytes,
            "segments": shared,
        }
    return encoded


def _attach_ref(ref: ShmArrayRef) -> np.ndarray:
    segment = shared_memory.SharedMemory(name=ref.name)
    _disown(segment)
    try:
        # Consume-once, zero-copy: unlink the name immediately (POSIX keeps
        # the mapping valid while referenced) and return an ndarray view
        # over the segment's buffer — the parent never copies the payload.
        segment.unlink()
    except FileNotFoundError:  # already swept; our mapping is still valid
        pass
    array = np.ndarray(ref.shape, dtype=np.dtype(ref.dtype), buffer=segment.buf)
    # numpy releases its buffer export straight away (keeping only the raw
    # pointer), so nothing stops SharedMemory.__del__ from unmapping under
    # the array.  The finalizer pins the segment for exactly the array's
    # lifetime — it strongly references the bound method until the array is
    # collected, then closes the mapping and frees the memory.
    weakref.finalize(array, segment.close)
    obs.counter_add("ipc.shm_segments")
    obs.counter_add("ipc.bytes_received", ref.nbytes)
    return array


def _walk_decode(value):
    if isinstance(value, ShmArrayRef):
        return _attach_ref(value)
    if isinstance(value, dict):
        return {k: _walk_decode(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        walked = [_walk_decode(v) for v in value]
        return type(value)(walked) if isinstance(value, tuple) else walked
    return value


def decode_payload(payload: dict) -> dict:
    """Parent-side: materialise every :class:`ShmArrayRef` in ``payload``.

    Attaches and immediately unlinks each referenced segment
    (consume-once), returning zero-copy array views over the mappings and
    recording the ``ipc.*`` counters.  Refs whose segment
    has vanished (the creating worker was reaped and swept between send
    and receive) decode to ``None`` rather than raising — by then the
    task is being retried anyway.
    """
    stats = payload.pop("ipc", None) if isinstance(payload, dict) else None
    if stats:
        obs.counter_add("ipc.bytes_sent", int(stats.get("bytes_sent", 0)))
    try:
        return _walk_decode(payload)
    except FileNotFoundError:
        return {**payload, "result": None}


def sweep_segments(token: str, pid: int | None = None) -> int:
    """Destroy leftover segments for ``token`` (optionally one PID's).

    The crash-recovery path: called by the executor when it reaps a dead
    worker (``pid`` set) and once at pool shutdown (``pid`` ``None``).
    Returns the number of segments removed; a no-op on platforms without
    a visible shm filesystem.
    """
    if not _SHM_DIR.is_dir():  # pragma: no cover - non-Linux fallback
        return 0
    pattern = (
        f"{_SEGMENT_PREFIX}_{token}_*"
        if pid is None
        else f"{_SEGMENT_PREFIX}_{token}_{pid}_*"
    )
    removed = 0
    for path in _SHM_DIR.glob(pattern):
        try:
            path.unlink()
            removed += 1
        except OSError:  # pragma: no cover - raced with a consume-once unlink
            continue
    if removed:
        obs.counter_add("ipc.shm_swept", removed)
    return removed
