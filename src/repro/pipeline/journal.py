"""Crash-safe run journal: checkpoint completed tasks, resume after a crash.

A :class:`RunJournal` is an append-only JSONL file recording every task
the pipeline *finished* (one record per success, written the moment the
result lands).  If the run dies — power loss, OOM kill, a chaos-harness
crash — ``ropuf all --resume JOURNAL`` replays the journal and skips every
task whose record matches the current (task, dataset fingerprint, repro
version) triple, recomputing only what was in flight or never started.

Durability over elegance:

* each record is one line, flushed **and fsynced** before ``append``
  returns, so a completed task survives anything short of disk failure;
* ``load`` tolerates a truncated final line (the crash happened mid-write)
  by discarding it — every earlier record is still intact;
* records carry the same identity metadata as the result cache (scheme
  tag, task, fingerprint, version), so a journal from a different dataset
  or repro version silently contributes nothing instead of poisoning the
  resumed run.

The journal complements the cache rather than replacing it: the cache is
content-addressed and shared across runs, the journal is the linear story
of *one* run, cheap to replay and safe to delete once the run completes.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from .. import obs

__all__ = ["RunJournal", "JOURNAL_SCHEME"]

#: Bumped if the journal record layout ever changes incompatibly.
JOURNAL_SCHEME = "ropuf-journal-v1"


class RunJournal:
    """An append-only JSONL checkpoint of completed pipeline tasks.

    Args:
        path: journal file; created (with parents) on first append.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)

    def append(self, task_name: str, fingerprint: str, version: str, result) -> None:
        """Durably record one completed task (flush + fsync before return).

        ``result`` must already be canonical plain-JSON data — the
        executor journals the same canonicalised payload it caches.
        """
        record = {
            "scheme": JOURNAL_SCHEME,
            "task": task_name,
            "fingerprint": fingerprint,
            "version": version,
            "result": result,
        }
        line = json.dumps(record, separators=(",", ":"))
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with obs.span("journal.append", task=task_name):
            with open(self.path, "a") as handle:
                handle.write(line + "\n")
                handle.flush()
                os.fsync(handle.fileno())
            obs.counter_add("journal.appends")

    def load(self, version: str) -> dict[tuple[str, str], object]:
        """Completed results keyed by ``(task, fingerprint)``.

        Only records matching this scheme and ``version`` count.  A
        truncated or garbled trailing line — the signature of a crash
        mid-append — is discarded; a corrupt line *before* intact ones
        (which fsync ordering makes impossible in practice) stops the
        replay there, keeping everything already parsed.  A missing file
        is an empty journal, so ``--resume`` works on the first run too.
        """
        completed: dict[tuple[str, str], object] = {}
        try:
            text = self.path.read_text()
        except OSError:
            return completed
        with obs.span("journal.load", path=str(self.path)) as load_span:
            for line in text.splitlines():
                if not line.strip():
                    continue
                try:
                    record = json.loads(line)
                    if record["scheme"] != JOURNAL_SCHEME:
                        continue
                    if record["version"] != version:
                        continue
                    key = (record["task"], record["fingerprint"])
                    completed[key] = record["result"]
                except (ValueError, KeyError, TypeError):
                    obs.counter_add("journal.truncated_tail")
                    break
            load_span.set_attr("records", len(completed))
        return completed
