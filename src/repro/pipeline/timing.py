"""Timing and metrics layer: what each pipeline task cost.

The executor records one :class:`TaskTiming` per task — wall time, the
process that ran it, cache-hit/resume status, attempt count, and the full
failure history (exceptions, worker crashes, timeouts) — and aggregates
them into a :class:`PipelineTimings` block that lands in the summary JSON
under ``"_pipeline"`` when timings are requested.  Finer-grained telemetry
(spans inside a task, cache byte counters) lives in :mod:`repro.obs`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["TaskTiming", "PipelineTimings"]


@dataclass
class TaskTiming:
    """Execution record of one task.

    Attributes:
        task: task name.
        wall_seconds: wall-clock time spent computing (0.0 for cache hits).
        process: PID of the process that produced the result.
        cache_hit: whether the result came from the on-disk cache.
        attempts: executions needed — 1 means the first attempt succeeded,
            2 means the first attempt failed and the retry succeeded or
            failed definitively.  ``0`` is the **cache-hit sentinel**: the
            task never executed because its result was loaded from the
            cache (``cache_hit`` is then ``True``) or restored from a
            resume journal (``resumed`` is then ``True``).  Pinned by
            ``tests/test_pipeline_cache.py``.
        error: failure message when the task degraded to an error entry.
        resumed: whether the result was replayed from a ``--resume``
            journal instead of executing.
        failure_history: one record per failed attempt across the task's
            whole life — in-worker exceptions *and* parent-observed worker
            crashes/timeouts — each ``{"attempt", "kind", "error",
            "error_type"}`` with ``kind`` in ``exception`` / ``crash`` /
            ``timeout``.  Empty for first-try successes.
    """

    task: str
    wall_seconds: float
    process: int
    cache_hit: bool = False
    attempts: int = 0
    error: str | None = None
    resumed: bool = False
    failure_history: list = field(default_factory=list)

    def as_dict(self) -> dict:
        return {
            "task": self.task,
            "wall_seconds": round(self.wall_seconds, 6),
            "process": self.process,
            "cache_hit": self.cache_hit,
            "attempts": self.attempts,
            "error": self.error,
            "resumed": self.resumed,
            "failure_history": self.failure_history,
        }


@dataclass
class PipelineTimings:
    """Aggregate metrics of one pipeline run.

    Attributes:
        jobs: worker processes requested.
        total_wall_seconds: end-to-end wall time of the run.
        tasks: per-task records, in summary order.
    """

    jobs: int
    total_wall_seconds: float = 0.0
    tasks: list[TaskTiming] = field(default_factory=list)

    @property
    def cache_hits(self) -> int:
        return sum(1 for timing in self.tasks if timing.cache_hit)

    @property
    def failures(self) -> int:
        return sum(1 for timing in self.tasks if timing.error is not None)

    def as_dict(self) -> dict:
        # ``tasks`` is a *list* (summary order), not a name-keyed dict: a
        # dict would silently drop a record if a task name ever repeated.
        # Pinned by tests/test_pipeline.py::test_duplicate_task_names_survive.
        return {
            "jobs": self.jobs,
            "total_wall_seconds": round(self.total_wall_seconds, 6),
            "cache_hits": self.cache_hits,
            "failures": self.failures,
            "tasks": [timing.as_dict() for timing in self.tasks],
        }
