"""Pipeline executor: run the experiment task graph, in parallel if asked.

The paper's experiments are mutually independent (they share only the
read-only dataset), so the executor simply fans registered tasks out over a
``ProcessPoolExecutor`` when ``jobs > 1`` and runs them in-process when
``jobs == 1``.  Either way each task gets

* **retry-once** semantics — a transient failure is retried before the task
  is declared failed;
* **graceful degradation** — a definitively failed task contributes an
  ``{"error": ...}`` entry to the summary instead of aborting the run;
* **memoisation** — with a cache directory, results are looked up by
  content-addressed key (task name + dataset fingerprint + repro version)
  and recomputed only on a miss.

Results are canonicalised through a JSON round-trip as soon as they are
computed, so a fresh result, a cache hit, and a result shipped back from a
worker process are all byte-identical plain-Python structures — the basis
of the determinism guarantees the test suite locks down.

Observability (:mod:`repro.obs`): with ``trace=PATH`` the run records
nested spans — ``pipeline.run`` wrapping per-task ``task:<name>`` /
``task.attempt`` regions and the cache's load/store spans — in every
process; workers ship their spans and metric snapshots back inside the
task payload, and the merged multi-process trace is written to ``PATH``
as JSONL.  ``timings=True`` (or ``trace``) additionally lands the merged
metric snapshot under ``"_metrics"`` in the summary.  Both layers are off
by default and the instrumented paths are no-ops then.
"""

from __future__ import annotations

import json
import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from contextlib import contextmanager
from pathlib import Path

import numpy as np

from .. import obs
from ..datasets.base import RODataset
from .cache import NO_DATASET_FINGERPRINT, ResultCache
from .registry import TaskSpec, resolve_tasks
from .timing import PipelineTimings, TaskTiming

__all__ = ["run_pipeline", "execute_task", "json_default"]


def json_default(value):
    """JSON encoder hook for the numpy types experiments may emit."""
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    raise TypeError(f"not JSON-serialisable: {type(value)}")


def _canonical(value):
    """Normalise a task result to plain-Python JSON types."""
    return json.loads(json.dumps(value, default=json_default))


def execute_task(
    task_name: str, dataset: RODataset | None, collect_obs: bool = False
) -> dict:
    """Run one task with retry-once; never raises.

    Module-level so worker processes can unpickle it.  Returns a payload
    with the canonicalised ``result`` (or ``None``), the ``error`` message
    of the last failed attempt (or ``None``), the attempt count, the
    worker's PID, and the wall time spent.

    With ``collect_obs`` (the worker-process path of a traced run) the
    call enables tracing and metrics locally, then drains its spans and
    metric snapshot into ``payload["spans"]`` / ``payload["metrics"]`` so
    the parent can merge them; in-process runs leave the flag off and
    record straight into the parent's buffers.
    """
    import repro.pipeline.tasks  # noqa: F401  (populate the registry in workers)

    from .registry import get_task

    if collect_obs:
        obs.reset_tracing()
        obs.enable_tracing()
        obs.reset_metrics()
        obs.enable_metrics()

    spec = get_task(task_name)
    started = time.perf_counter()
    error = None
    result = None
    attempts = 0
    with obs.span(f"task:{task_name}") as task_span:
        for attempts in (1, 2):
            try:
                with obs.span("task.attempt", task=task_name, attempt=attempts):
                    result = _canonical(spec.run(dataset))
                error = None
                break
            except Exception as exc:  # degrade gracefully, never abort the run
                error = f"{type(exc).__name__}: {exc}"
                obs.counter_add("pipeline.retries" if attempts == 1 else "pipeline.task_failures")
        task_span.set_attr("attempts", attempts)
        task_span.set_attr("error", error)
    payload = {
        "task": task_name,
        "result": result,
        "error": error,
        "attempts": attempts,
        "pid": os.getpid(),
        "wall_seconds": time.perf_counter() - started,
    }
    if collect_obs:
        obs.disable_tracing()
        obs.disable_metrics()
        payload["spans"] = obs.drain_spans()
        payload["metrics"] = obs.snapshot()
        obs.reset_metrics()
    return payload


def _task_fingerprint(spec: TaskSpec, dataset_fingerprint: str) -> str:
    return dataset_fingerprint if spec.uses_dataset else NO_DATASET_FINGERPRINT


@contextmanager
def _observability(trace_on: bool, metrics_on: bool):
    """Enable (and reset) the requested obs layers for one pipeline run.

    Restores the previous enabled/disabled flags on exit; the span buffer
    and metric registry are reset on entry, so a traced run never mixes
    with records from earlier runs in the same process.
    """
    was_tracing = obs.tracing_enabled()
    was_metrics = obs.metrics_enabled()
    if trace_on:
        obs.reset_tracing()
        obs.enable_tracing()
    if metrics_on:
        obs.reset_metrics()
        obs.enable_metrics()
    try:
        yield
    finally:
        if trace_on and not was_tracing:
            obs.disable_tracing()
        if metrics_on and not was_metrics:
            obs.disable_metrics()


def run_pipeline(
    dataset: RODataset | None = None,
    *,
    jobs: int = 1,
    cache_dir=None,
    tasks=None,
    timings: bool = False,
    trace=None,
) -> dict:
    """Run the experiment pipeline; return the JSON-serialisable summary.

    Args:
        dataset: measurements to evaluate; ``None`` uses the default
            synthetic VT-shaped dataset (resolved only if a selected task
            needs it).
        jobs: worker processes; ``1`` runs everything in-process.
        cache_dir: directory for the content-addressed result cache, or a
            :class:`~repro.pipeline.cache.ResultCache`; ``None`` disables
            caching.
        tasks: task names to run (default: all registered tasks).
        timings: include a ``"_pipeline"`` metrics block in the summary
            (also enables the ``"_metrics"`` counter snapshot).
        trace: path for the merged multi-process span trace (JSONL);
            enables tracing and metrics for this run.  ``None`` (default)
            records nothing.

    Returns:
        ``{"dataset": <name>, <task>: <result>..., ["_pipeline": ...,
        "_metrics": ...]}`` with tasks in registration order; failed tasks
        appear as ``{"error": ..., "attempts": ...}`` entries.
    """
    from . import tasks as _tasks  # noqa: F401  (populate the registry)

    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    trace_path = None if trace is None else Path(trace)
    trace_on = trace_path is not None
    metrics_on = timings or trace_on
    specs = resolve_tasks(tasks)
    started = time.perf_counter()

    with _observability(trace_on, metrics_on):
        with obs.span(
            "pipeline.run", jobs=jobs, tasks=[spec.name for spec in specs]
        ):
            summary, outcomes, worker_snapshots = _run(
                dataset, jobs, cache_dir, specs, collect_obs=trace_on or metrics_on
            )

        if timings:
            metrics = PipelineTimings(
                jobs=jobs,
                total_wall_seconds=time.perf_counter() - started,
                tasks=[outcomes[spec.name] for spec in specs],
            )
            summary["_pipeline"] = metrics.as_dict()
        merged_metrics = None
        if metrics_on:
            merged_metrics = obs.merge_snapshots(
                [obs.snapshot()] + worker_snapshots
            )
            summary["_metrics"] = merged_metrics
        if trace_on:
            obs.write_trace(
                trace_path, spans=obs.drain_spans(), metrics=merged_metrics
            )
    return summary


def _run(
    dataset: RODataset | None,
    jobs: int,
    cache_dir,
    specs: list[TaskSpec],
    collect_obs: bool,
) -> tuple[dict, dict[str, TaskTiming], list[dict]]:
    """The pipeline body: cache lookup, fan-out, assembly."""
    needs_dataset = any(spec.uses_dataset for spec in specs)
    if needs_dataset:
        from ..experiments.common import dataset_or_default

        with obs.span("pipeline.dataset"):
            dataset = dataset_or_default(dataset)
            dataset_fingerprint = dataset.fingerprint()
    else:
        # no selected task reads the dataset: skip default generation and
        # fingerprinting, but keep an explicitly-passed dataset's identity
        dataset_fingerprint = NO_DATASET_FINGERPRINT

    if cache_dir is None:
        cache = None
    elif isinstance(cache_dir, ResultCache):
        cache = cache_dir
    else:
        cache = ResultCache(cache_dir)

    outcomes: dict[str, TaskTiming] = {}
    results: dict[str, object] = {}
    pending: list[TaskSpec] = []
    with obs.span("pipeline.cache_lookup", tasks=len(specs)):
        for spec in specs:
            cached = None
            if cache is not None:
                cached = cache.load(
                    spec.name, _task_fingerprint(spec, dataset_fingerprint)
                )
            if cached is not None:
                results[spec.name] = cached
                outcomes[spec.name] = TaskTiming(
                    task=spec.name,
                    wall_seconds=0.0,
                    process=os.getpid(),
                    cache_hit=True,
                    attempts=0,  # the documented cache-hit sentinel
                )
            else:
                pending.append(spec)

    payloads: list[dict] = []
    if pending and jobs > 1:
        with obs.span("pipeline.fanout", jobs=jobs, pending=len(pending)):
            with ProcessPoolExecutor(max_workers=min(jobs, len(pending))) as pool:
                futures = {
                    pool.submit(
                        execute_task,
                        spec.name,
                        dataset if spec.uses_dataset else None,
                        collect_obs,
                    ): spec
                    for spec in pending
                }
                payloads = [future.result() for future in as_completed(futures)]
    elif pending:
        # In-process: obs state is already the parent's; workers-only
        # collection would drain the parent's own spans, so leave it off.
        payloads = [
            execute_task(spec.name, dataset if spec.uses_dataset else None)
            for spec in pending
        ]

    worker_snapshots: list[dict] = []
    by_name = {spec.name: spec for spec in pending}
    for payload in payloads:
        name = payload["task"]
        spec = by_name[name]
        if "spans" in payload:
            obs.extend_spans(payload["spans"])
        if "metrics" in payload:
            worker_snapshots.append(payload["metrics"])
        if payload["error"] is None:
            results[name] = payload["result"]
            if cache is not None:
                cache.store(
                    name,
                    _task_fingerprint(spec, dataset_fingerprint),
                    payload["result"],
                )
        else:
            results[name] = {
                "error": payload["error"],
                "attempts": payload["attempts"],
            }
        outcomes[name] = TaskTiming(
            task=name,
            wall_seconds=payload["wall_seconds"],
            process=payload["pid"],
            attempts=payload["attempts"],
            error=payload["error"],
        )

    summary: dict = {"dataset": dataset.name if dataset is not None else None}
    for spec in specs:
        summary[spec.name] = results[spec.name]
    return summary, outcomes, worker_snapshots
