"""Pipeline executor: run the experiment task graph, in parallel if asked.

The paper's experiments are mutually independent (they share only the
read-only dataset), so the executor fans registered tasks out over a pool
of worker processes when ``jobs > 1`` and runs them in-process when
``jobs == 1``.  Either way each task gets

* **configurable retries** — a :class:`RetryPolicy` controls the attempt
  budget, exponential backoff with deterministic per-(task, attempt)
  jitter, and the per-task wall-clock timeout (default: the historical
  retry-once, no backoff, no timeout);
* **crash and hang survival** (``jobs > 1``) — the pool is hand-rolled
  (pipe per worker) precisely so the parent can *see* a worker die and
  *kill* one that blew its deadline; either way the task is re-dispatched
  to a fresh worker with its remaining attempt budget;
* **a circuit breaker / graceful degradation** — a task that keeps
  failing (exceptions, crashes, timeouts) trips after
  ``policy.max_attempts`` total attempts and degrades to an
  ``{"error": ...}`` summary entry carrying the exception type, the
  traceback, and the attempt count, instead of sinking the run;
* **memoisation** — with a cache directory, results are looked up by
  content-addressed key (task name + dataset fingerprint + repro version)
  and recomputed only on a miss;
* **checkpoint/resume** — with a journal
  (:class:`~repro.pipeline.journal.RunJournal`), every completed task is
  durably appended the moment it lands, and a re-run with the same
  journal replays those results instead of recomputing them.

Results are canonicalised through a JSON round-trip as soon as they are
computed, so a fresh result, a cache hit, a journal replay, and a result
shipped back from a worker process are all byte-identical plain-Python
structures — the basis of the determinism guarantees the test suite locks
down.

Chaos (:mod:`repro.faults.chaos`): ``run_pipeline(chaos=seed)`` makes the
run deterministically suffer a worker crash, a task hang, and a corrupt
cache entry, proving the machinery above in CI (``ropuf all --chaos``).

Observability (:mod:`repro.obs`): with ``trace=PATH`` the run records
nested spans — ``pipeline.run`` wrapping per-task ``task:<name>`` /
``task.attempt`` regions and the cache's load/store spans — in every
process; workers ship their spans and metric snapshots back inside the
task payload, and the merged multi-process trace is written to ``PATH``
as JSONL.  ``timings=True`` (or ``trace``) additionally lands the merged
metric snapshot under ``"_metrics"`` in the summary.  Failures increment
``pipeline.retries`` / ``pipeline.task_failures`` plus a per-cause
``pipeline.errors.<ExceptionType>`` counter (``WorkerCrash`` and
``TaskTimeout`` for parent-observed losses).  All layers are off by
default and the instrumented paths are no-ops then.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import time
import traceback
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from multiprocessing.connection import wait as _connection_wait
from pathlib import Path

import numpy as np

from .. import obs
from ..datasets.base import RODataset
from ..faults.chaos import CHAOS_CRASH_EXIT, ChaosPlan, chaos_worker_action
from . import shm
from .cache import NO_DATASET_FINGERPRINT, ResultCache, _repro_version
from .journal import RunJournal
from .registry import TaskSpec, resolve_tasks
from .timing import PipelineTimings, TaskTiming

__all__ = ["run_pipeline", "execute_task", "json_default", "RetryPolicy"]


def json_default(value):
    """JSON encoder hook for the numpy types experiments may emit."""
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    raise TypeError(f"not JSON-serialisable: {type(value)}")


def _canonical(value):
    """Normalise a task result to plain-Python JSON types."""
    return json.loads(json.dumps(value, default=json_default))


@dataclass(frozen=True)
class RetryPolicy:
    """How hard the executor fights for each task before degrading it.

    The attempt budget is shared across *every* failure mode: in-worker
    exceptions, worker crashes, and wall-clock timeouts all consume
    attempts from the same ``max_attempts`` pool, so a task cannot
    ping-pong between failure kinds forever — the circuit breaker trips
    once the budget is spent.

    Attributes:
        max_attempts: total attempts before the task degrades to an
            ``{"error": ...}`` entry (1 = no retry; the historical
            default is 2, i.e. retry-once).
        backoff_seconds: delay before the second attempt; 0 disables
            backoff entirely (the historical behaviour).
        backoff_multiplier: factor applied per further attempt
            (exponential backoff).
        jitter_fraction: each delay is stretched by up to this fraction,
            *deterministically* per (task, attempt) — sha256-derived, so
            reruns back off identically while parallel tasks still
            decorrelate.
        timeout_seconds: per-task wall-clock deadline.  Enforced by the
            parent killing the worker, so it needs worker processes
            (``jobs > 1``); serial runs cannot interrupt a task and
            ignore it.  ``None`` disables the deadline.
    """

    max_attempts: int = 2
    backoff_seconds: float = 0.0
    backoff_multiplier: float = 2.0
    jitter_fraction: float = 0.1
    timeout_seconds: float | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_seconds < 0.0:
            raise ValueError("backoff_seconds must be non-negative")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff_multiplier must be >= 1")
        if not 0.0 <= self.jitter_fraction <= 1.0:
            raise ValueError("jitter_fraction must be in [0, 1]")
        if self.timeout_seconds is not None and self.timeout_seconds <= 0.0:
            raise ValueError("timeout_seconds must be positive (or None)")

    def delay_before(self, task_name: str, attempt: int) -> float:
        """Seconds to wait before running ``attempt`` (first attempt: 0).

        The jitter is a pure function of ``(task_name, attempt)``, so a
        rerun of the same failing task backs off by exactly the same
        schedule — determinism extends to the failure path.
        """
        if attempt <= 1 or self.backoff_seconds == 0.0:
            return 0.0
        base = self.backoff_seconds * self.backoff_multiplier ** (attempt - 2)
        digest = hashlib.sha256(f"{task_name}:{attempt}".encode()).digest()
        unit = int.from_bytes(digest[:8], "big") / 2**64
        return base * (1.0 + self.jitter_fraction * unit)


def execute_task(
    task_name: str,
    dataset: RODataset | None,
    collect_obs: bool = False,
    policy: RetryPolicy | None = None,
    first_attempt: int = 1,
) -> dict:
    """Run one task under a retry policy; never raises.

    Module-level so worker processes can unpickle it.  Returns a payload
    with the canonicalised ``result`` (or ``None``), the ``error``
    message, ``error_type``, and ``traceback`` of the last failed attempt
    (all ``None`` on success), the per-attempt ``failure_history``, the
    attempt count, the worker's PID, and the wall time spent.

    ``first_attempt`` is how re-dispatch after a crash or timeout keeps
    one attempt budget across worker generations: the replacement worker
    resumes counting where the dead one stopped.

    With ``collect_obs`` (the worker-process path of a traced run) the
    call enables tracing and metrics locally, then drains its spans and
    metric snapshot into ``payload["spans"]`` / ``payload["metrics"]`` so
    the parent can merge them; in-process runs leave the flag off and
    record straight into the parent's buffers.
    """
    import repro.pipeline.tasks  # noqa: F401  (populate the registry in workers)

    from .registry import get_task

    if policy is None:
        policy = RetryPolicy()
    if first_attempt < 1 or first_attempt > policy.max_attempts:
        raise ValueError(
            f"first_attempt must be in [1, {policy.max_attempts}],"
            f" got {first_attempt}"
        )

    if collect_obs:
        obs.reset_tracing()
        obs.enable_tracing()
        obs.reset_metrics()
        obs.enable_metrics()

    spec = get_task(task_name)
    started = time.perf_counter()
    error = None
    error_type = None
    trace_text = None
    result = None
    attempts = first_attempt
    failure_history: list[dict] = []
    with obs.span(f"task:{task_name}") as task_span:
        for attempts in range(first_attempt, policy.max_attempts + 1):
            if attempts > first_attempt:
                delay = policy.delay_before(task_name, attempts)
                if delay > 0.0:
                    time.sleep(delay)
            try:
                with obs.span("task.attempt", task=task_name, attempt=attempts):
                    result = spec.run(dataset)
                    # Raw-channel tasks keep their ndarrays (shipped to the
                    # parent via shared memory, cached as pickle, never
                    # journaled); everything else lands as canonical JSON.
                    if spec.canonical_result:
                        result = _canonical(result)
                error = error_type = trace_text = None
                break
            except Exception as exc:  # degrade gracefully, never abort the run
                error_type = type(exc).__name__
                error = f"{error_type}: {exc}"
                trace_text = traceback.format_exc()
                failure_history.append(
                    {
                        "attempt": attempts,
                        "kind": "exception",
                        "error": error,
                        "error_type": error_type,
                    }
                )
                obs.counter_add(f"pipeline.errors.{error_type}")
                obs.counter_add(
                    "pipeline.retries"
                    if attempts < policy.max_attempts
                    else "pipeline.task_failures"
                )
        task_span.set_attr("attempts", attempts)
        task_span.set_attr("error", error)
    payload = {
        "task": task_name,
        "result": result,
        "error": error,
        "error_type": error_type,
        "traceback": trace_text,
        "attempts": attempts,
        "failure_history": failure_history,
        "pid": os.getpid(),
        "wall_seconds": time.perf_counter() - started,
    }
    if collect_obs:
        obs.disable_tracing()
        obs.disable_metrics()
        payload["spans"] = obs.drain_spans()
        payload["metrics"] = obs.snapshot()
        obs.reset_metrics()
    return payload


def _task_fingerprint(spec: TaskSpec, dataset_fingerprint: str) -> str:
    return dataset_fingerprint if spec.uses_dataset else NO_DATASET_FINGERPRINT


@contextmanager
def _observability(trace_on: bool, metrics_on: bool):
    """Enable (and reset) the requested obs layers for one pipeline run.

    Restores the previous enabled/disabled flags on exit; the span buffer
    and metric registry are reset on entry, so a traced run never mixes
    with records from earlier runs in the same process.
    """
    was_tracing = obs.tracing_enabled()
    was_metrics = obs.metrics_enabled()
    if trace_on:
        obs.reset_tracing()
        obs.enable_tracing()
    if metrics_on:
        obs.reset_metrics()
        obs.enable_metrics()
    try:
        yield
    finally:
        if trace_on and not was_tracing:
            obs.disable_tracing()
        if metrics_on and not was_metrics:
            obs.disable_metrics()


# ----------------------------------------------------------------------
# The worker pool
# ----------------------------------------------------------------------
#
# ``concurrent.futures`` hides exactly the events hardening needs to see:
# a BrokenProcessPool tears down the whole pool on one crash, and there is
# no way to kill a single hung worker.  So the pool here is hand-rolled —
# one pipe per worker process — giving the parent crash detection (EOF on
# the pipe), deadline enforcement (kill + replace the worker), and
# re-dispatch with the task's remaining attempt budget.


def _worker_main(
    conn, dataset, collect_obs, policy, chaos_assignment, shm_token=None
) -> None:
    """Worker process body: serve task requests until told to stop.

    Messages in: ``(task_name, uses_dataset, first_attempt, dispatch)``
    tuples, or ``None`` to exit.  Messages out: one ``execute_task``
    payload per request — large result arrays travel as shared-memory
    refs (see :mod:`repro.pipeline.shm`) when a pool token was supplied.
    Chaos actions (crash/hang) fire *before* the task runs, so a chaos
    casualty never half-completes work.
    """
    import repro.pipeline.tasks  # noqa: F401  (populate the registry in workers)

    shm.set_worker_session(shm_token)
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        if message is None:
            break
        task_name, uses_dataset, first_attempt, dispatch = message
        action = chaos_worker_action(chaos_assignment, task_name, dispatch)
        if action == "crash":
            os._exit(CHAOS_CRASH_EXIT)
        if action == "hang":
            time.sleep(chaos_assignment.hang_seconds)
        payload = execute_task(
            task_name,
            dataset if uses_dataset else None,
            collect_obs,
            policy=policy,
            first_attempt=first_attempt,
        )
        try:
            conn.send(shm.encode_payload(payload))
        except (BrokenPipeError, OSError):
            break


@dataclass
class _TaskState:
    """Parent-side lifecycle of one pending task.

    Attributes:
        spec: the task being run.
        first_attempt: where the next dispatch resumes the attempt budget.
        dispatch: how many workers have been handed this task (drives the
            chaos first-dispatch-only rule).
        not_before: earliest monotonic time the next dispatch may start
            (crash/timeout backoff); ``None`` means immediately.
        failure_history: crash/timeout records accumulated by the parent;
            the final worker payload's in-worker records are appended.
    """

    spec: TaskSpec
    first_attempt: int = 1
    dispatch: int = 0
    not_before: float | None = None
    failure_history: list = field(default_factory=list)


class _Worker:
    """One worker process plus the parent's view of what it is doing."""

    def __init__(
        self, dataset, collect_obs, policy, chaos_assignment, shm_token=None
    ) -> None:
        self.conn, child_conn = multiprocessing.Pipe()
        self.process = multiprocessing.Process(
            target=_worker_main,
            args=(
                child_conn,
                dataset,
                collect_obs,
                policy,
                chaos_assignment,
                shm_token,
            ),
            daemon=True,
        )
        self.process.start()
        child_conn.close()
        self.state: _TaskState | None = None
        self.deadline: float | None = None

    def dispatch(self, state: _TaskState, timeout_seconds: float | None) -> None:
        state.dispatch += 1
        state.not_before = None
        self.state = state
        self.deadline = (
            None
            if timeout_seconds is None
            else time.monotonic() + timeout_seconds
        )
        self.conn.send(
            (
                state.spec.name,
                state.spec.uses_dataset,
                state.first_attempt,
                state.dispatch,
            )
        )

    def settle(self) -> None:
        self.state = None
        self.deadline = None

    def kill(self) -> None:
        self.process.kill()
        self.process.join()
        self.conn.close()

    def stop(self) -> None:
        """Graceful shutdown; escalates to kill if the worker lingers."""
        try:
            self.conn.send(None)
        except (BrokenPipeError, OSError):
            pass
        self.process.join(timeout=5.0)
        if self.process.is_alive():
            self.process.kill()
            self.process.join()
        self.conn.close()


def _run_pool(
    pending: list[TaskSpec],
    dataset,
    jobs: int,
    collect_obs: bool,
    policy: RetryPolicy,
    chaos_assignment,
    finalize,
) -> None:
    """Fan ``pending`` out over worker processes, surviving their deaths.

    Calls ``finalize(payload)`` for each task the moment its outcome is
    known — success, definitive in-worker failure, or attempt-budget
    exhaustion after crashes/timeouts — so checkpoints land incrementally
    rather than after the whole run.
    """
    ship_dataset = (
        dataset if any(spec.uses_dataset for spec in pending) else None
    )
    shm_token = shm.new_token()
    states = deque(_TaskState(spec=spec) for spec in pending)
    workers = [
        _Worker(ship_dataset, collect_obs, policy, chaos_assignment, shm_token)
        for _ in range(min(jobs, len(pending)))
    ]
    idle = list(workers)

    def lose_worker(worker: _Worker, kind: str) -> None:
        """A dispatch died (crash) or blew its deadline (timeout)."""
        state = worker.state
        attempt = state.first_attempt
        if kind == "crash":
            worker.process.join(timeout=1.0)
            error_type = "WorkerCrash"
            error = (
                f"worker process {worker.process.pid} died"
                f" (exit code {worker.process.exitcode})"
            )
            obs.counter_add("pipeline.worker_crashes")
        else:
            error_type = "TaskTimeout"
            error = (
                f"no result within the {policy.timeout_seconds:g}s"
                " wall-clock timeout; worker killed"
            )
            obs.counter_add("pipeline.timeouts")
        obs.counter_add(f"pipeline.errors.{error_type}")
        state.failure_history.append(
            {
                "attempt": attempt,
                "kind": kind,
                "error": error,
                "error_type": error_type,
            }
        )
        dead_pid = worker.process.pid
        worker.kill()
        # The dead worker may have shipped (or been mid-copy into) shm
        # segments nobody will ever consume; reclaim them by name.
        shm.sweep_segments(shm_token, pid=dead_pid)
        workers.remove(worker)
        replacement = _Worker(
            ship_dataset, collect_obs, policy, chaos_assignment, shm_token
        )
        workers.append(replacement)
        idle.append(replacement)
        state.first_attempt = attempt + 1
        if state.first_attempt > policy.max_attempts:
            # Circuit breaker: budget exhausted, degrade without re-dispatch.
            obs.counter_add("pipeline.task_failures")
            last = state.failure_history[-1]
            finalize(
                {
                    "task": state.spec.name,
                    "result": None,
                    "error": last["error"],
                    "error_type": last["error_type"],
                    "traceback": None,
                    "attempts": policy.max_attempts,
                    "failure_history": list(state.failure_history),
                    "pid": os.getpid(),
                    "wall_seconds": 0.0,
                }
            )
        else:
            obs.counter_add("pipeline.retries")
            delay = policy.delay_before(state.spec.name, state.first_attempt)
            state.not_before = time.monotonic() + delay if delay > 0.0 else None
            states.append(state)

    try:
        while states or len(idle) < len(workers):
            now = time.monotonic()
            held: list[_TaskState] = []
            while states and idle:
                state = states.popleft()
                if state.not_before is not None and now < state.not_before:
                    held.append(state)
                    continue
                idle.pop().dispatch(state, policy.timeout_seconds)
            states.extendleft(reversed(held))

            busy = [worker for worker in workers if worker.state is not None]
            pending_wakes = [
                state.not_before
                for state in states
                if state.not_before is not None
            ]
            if not busy:
                # Everything runnable is backing off; sleep to the nearest
                # release time, then loop back to dispatch.
                time.sleep(max(0.0, min(pending_wakes) - time.monotonic()))
                continue
            deadlines = [
                worker.deadline for worker in busy if worker.deadline is not None
            ]
            waits = deadlines + pending_wakes
            timeout = (
                max(0.0, min(waits) - time.monotonic()) if waits else None
            )
            ready = _connection_wait(
                [worker.conn for worker in busy], timeout
            )
            now = time.monotonic()
            for worker in busy:
                if worker.conn in ready:
                    try:
                        payload = shm.decode_payload(worker.conn.recv())
                    except (EOFError, OSError):
                        lose_worker(worker, "crash")
                        continue
                    state = worker.state
                    payload["failure_history"] = state.failure_history + list(
                        payload.get("failure_history", [])
                    )
                    worker.settle()
                    idle.append(worker)
                    finalize(payload)
                elif worker.deadline is not None and now >= worker.deadline:
                    lose_worker(worker, "timeout")
    finally:
        for worker in workers:
            worker.stop()
        # Whatever segments survived consume-once and per-death sweeps
        # (e.g. created between the last recv and shutdown) die with the pool.
        shm.sweep_segments(shm_token)


def _chaos_corrupt_entry(
    cache: ResultCache, task_name: str, fingerprint: str
) -> None:
    """Truncate a just-stored cache entry mid-file (the chaos fault)."""
    path = cache.path(task_name, fingerprint)
    try:
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
    except OSError:
        return
    obs.counter_add("pipeline.chaos.cache_corrupted")


def run_pipeline(
    dataset: RODataset | None = None,
    *,
    jobs: int = 1,
    cache_dir=None,
    tasks=None,
    timings: bool = False,
    trace=None,
    profile=None,
    policy: RetryPolicy | None = None,
    journal=None,
    chaos=None,
) -> dict:
    """Run the experiment pipeline; return the JSON-serialisable summary.

    Args:
        dataset: measurements to evaluate; ``None`` uses the default
            synthetic VT-shaped dataset (resolved only if a selected task
            needs it).
        jobs: worker processes; ``1`` runs everything in-process.
        cache_dir: directory for the content-addressed result cache, or a
            :class:`~repro.pipeline.cache.ResultCache`; ``None`` disables
            caching.
        tasks: task names to run (default: all registered tasks).
        timings: include a ``"_pipeline"`` metrics block in the summary
            (also enables the ``"_metrics"`` counter snapshot).
        trace: path for the merged multi-process span trace (JSONL);
            enables tracing and metrics for this run.  ``None`` (default)
            records nothing.
        profile: path for a collapsed-stack sampling profile
            (:class:`~repro.obs.profiler.SamplingProfiler`) of the parent
            process over the whole run; workers are separate interpreters
            and are not sampled.  ``None`` (default) does not profile.
        policy: retry/backoff/timeout regime (:class:`RetryPolicy`);
            ``None`` keeps the historical retry-once behaviour.
        journal: path (or :class:`~repro.pipeline.journal.RunJournal`)
            of the crash-safe checkpoint journal.  Completed tasks found
            in it are replayed instead of recomputed; fresh completions
            are durably appended as they land, so an interrupted run can
            resume from where it died.
        chaos: a :class:`~repro.faults.chaos.ChaosPlan` or an int seed
            for one; deterministically injects a worker crash, a task
            hang, and a corrupt cache entry into this run.  Requires
            ``jobs >= 2`` and (for the hang) ``policy.timeout_seconds``.

    Returns:
        ``{"dataset": <name>, <task>: <result>..., ["_pipeline": ...,
        "_metrics": ...]}`` with tasks in registration order; failed
        tasks appear as ``{"error": ..., "error_type": ...,
        "traceback": ..., "attempts": ...}`` entries.
    """
    from . import tasks as _tasks  # noqa: F401  (populate the registry)

    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if policy is None:
        policy = RetryPolicy()
    chaos_plan = None
    if chaos is not None:
        chaos_plan = chaos if isinstance(chaos, ChaosPlan) else ChaosPlan(seed=int(chaos))
        if jobs < 2:
            raise ValueError(
                "chaos injection needs jobs >= 2 (worker processes to kill)"
            )
        if chaos_plan.hang and policy.timeout_seconds is None:
            raise ValueError(
                "chaos hang injection needs policy.timeout_seconds set"
            )
    trace_path = None if trace is None else Path(trace)
    trace_on = trace_path is not None
    metrics_on = timings or trace_on
    specs = resolve_tasks(tasks)
    started = time.perf_counter()

    profiler = None
    if profile is not None:
        profiler = obs.SamplingProfiler()
        profiler.start()
    try:
        with _observability(trace_on, metrics_on):
            with obs.span(
                "pipeline.run", jobs=jobs, tasks=[spec.name for spec in specs]
            ):
                summary, outcomes, worker_snapshots = _run(
                    dataset,
                    jobs,
                    cache_dir,
                    specs,
                    collect_obs=trace_on or metrics_on,
                    policy=policy,
                    journal=journal,
                    chaos_plan=chaos_plan,
                )

            if timings:
                metrics = PipelineTimings(
                    jobs=jobs,
                    total_wall_seconds=time.perf_counter() - started,
                    tasks=[outcomes[spec.name] for spec in specs],
                )
                summary["_pipeline"] = metrics.as_dict()
            merged_metrics = None
            if metrics_on:
                merged_metrics = obs.merge_snapshots(
                    [obs.snapshot()] + worker_snapshots
                )
                summary["_metrics"] = merged_metrics
            if trace_on:
                obs.write_trace(
                    trace_path, spans=obs.drain_spans(), metrics=merged_metrics
                )
    finally:
        if profiler is not None:
            profiler.stop()
            profiler.write(Path(profile))
    return summary


def _run(
    dataset: RODataset | None,
    jobs: int,
    cache_dir,
    specs: list[TaskSpec],
    collect_obs: bool,
    policy: RetryPolicy,
    journal,
    chaos_plan,
) -> tuple[dict, dict[str, TaskTiming], list[dict]]:
    """The pipeline body: resume/cache lookup, fan-out, incremental landing."""
    needs_dataset = any(spec.uses_dataset for spec in specs)
    if needs_dataset:
        from ..experiments.common import dataset_or_default

        with obs.span("pipeline.dataset"):
            dataset = dataset_or_default(dataset)
            dataset_fingerprint = dataset.fingerprint()
    else:
        # no selected task reads the dataset: skip default generation and
        # fingerprinting, but keep an explicitly-passed dataset's identity
        dataset_fingerprint = NO_DATASET_FINGERPRINT

    if cache_dir is None:
        cache = None
    elif isinstance(cache_dir, ResultCache):
        cache = cache_dir
    else:
        cache = ResultCache(cache_dir)
    if journal is None or isinstance(journal, RunJournal):
        run_journal = journal
    else:
        run_journal = RunJournal(journal)
    journal_version = _repro_version()

    outcomes: dict[str, TaskTiming] = {}
    results: dict[str, object] = {}
    pending: list[TaskSpec] = []

    completed: dict[tuple[str, str], object] = {}
    if run_journal is not None:
        with obs.span("pipeline.resume", journal=str(run_journal.path)):
            completed = run_journal.load(journal_version)
    with obs.span("pipeline.cache_lookup", tasks=len(specs)):
        for spec in specs:
            fingerprint = _task_fingerprint(spec, dataset_fingerprint)
            if (spec.name, fingerprint) in completed:
                results[spec.name] = completed[(spec.name, fingerprint)]
                outcomes[spec.name] = TaskTiming(
                    task=spec.name,
                    wall_seconds=0.0,
                    process=os.getpid(),
                    resumed=True,
                    attempts=0,  # like a cache hit: the task never executed
                )
                continue
            cached = None
            if cache is not None:
                cached = cache.load(spec.name, fingerprint)
            if cached is not None:
                results[spec.name] = cached
                outcomes[spec.name] = TaskTiming(
                    task=spec.name,
                    wall_seconds=0.0,
                    process=os.getpid(),
                    cache_hit=True,
                    attempts=0,  # the documented cache-hit sentinel
                )
            else:
                pending.append(spec)

    chaos_assignment = None
    if chaos_plan is not None and pending:
        chaos_assignment = chaos_plan.assign([spec.name for spec in pending])

    worker_snapshots: list[dict] = []
    by_name = {spec.name: spec for spec in pending}

    def finalize(payload: dict) -> None:
        """Land one task outcome: record, cache, journal — immediately."""
        name = payload["task"]
        spec = by_name[name]
        if "spans" in payload:
            obs.extend_spans(payload["spans"])
        if "metrics" in payload:
            worker_snapshots.append(payload["metrics"])
        fingerprint = _task_fingerprint(spec, dataset_fingerprint)
        if payload["error"] is None:
            results[name] = payload["result"]
            if cache is not None:
                cache.store(name, fingerprint, payload["result"])
                if (
                    chaos_assignment is not None
                    and name == chaos_assignment.corrupt_task
                ):
                    _chaos_corrupt_entry(cache, name, fingerprint)
            if run_journal is not None and spec.canonical_result:
                # Raw-channel results are not JSON; they resume from the
                # binary cache entry instead of the journal.
                run_journal.append(
                    name, fingerprint, journal_version, payload["result"]
                )
        else:
            results[name] = {
                "error": payload["error"],
                "error_type": payload.get("error_type"),
                "traceback": payload.get("traceback"),
                "attempts": payload["attempts"],
            }
        outcomes[name] = TaskTiming(
            task=name,
            wall_seconds=payload["wall_seconds"],
            process=payload["pid"],
            attempts=payload["attempts"],
            error=payload["error"],
            failure_history=list(payload.get("failure_history", [])),
        )

    if pending and jobs > 1:
        with obs.span("pipeline.fanout", jobs=jobs, pending=len(pending)):
            _run_pool(
                pending,
                dataset,
                jobs,
                collect_obs,
                policy,
                chaos_assignment,
                finalize,
            )
    elif pending:
        # In-process: obs state is already the parent's; workers-only
        # collection would drain the parent's own spans, so leave it off.
        # Timeouts cannot be enforced here (nothing to kill).
        for spec in pending:
            finalize(
                execute_task(
                    spec.name,
                    dataset if spec.uses_dataset else None,
                    policy=policy,
                )
            )

    summary: dict = {"dataset": dataset.name if dataset is not None else None}
    for spec in specs:
        summary[spec.name] = results[spec.name]
    return summary, outcomes, worker_snapshots
