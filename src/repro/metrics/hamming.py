"""Hamming-distance utilities over bit matrices.

All PUF quality metrics in the paper reduce to Hamming distances between
response bit-streams: uniqueness (Fig. 3), configuration diversity
(Tables III/IV), reliability (Fig. 4).  These helpers operate on boolean
numpy arrays; rows are bit-streams.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "hamming_distance",
    "pairwise_hamming_distances",
    "hamming_distance_histogram",
]


def _as_bit_matrix(bits: np.ndarray) -> np.ndarray:
    bits = np.asarray(bits)
    if bits.ndim != 2:
        raise ValueError(f"expected a 2-D bit matrix, got shape {bits.shape}")
    if bits.dtype != bool:
        unique = np.unique(bits)
        if not np.all(np.isin(unique, (0, 1))):
            raise ValueError("bit matrix entries must be boolean or 0/1")
        bits = bits.astype(bool)
    return bits


def hamming_distance(a: np.ndarray, b: np.ndarray) -> int:
    """Hamming distance between two equal-length bit vectors."""
    a = np.asarray(a).astype(bool).ravel()
    b = np.asarray(b).astype(bool).ravel()
    if a.shape != b.shape:
        raise ValueError(f"length mismatch: {a.shape} vs {b.shape}")
    return int(np.sum(a != b))


def pairwise_hamming_distances(bits: np.ndarray) -> np.ndarray:
    """All pairwise Hamming distances between the rows of a bit matrix.

    Returns a 1-D array of length ``m * (m - 1) / 2`` (condensed form,
    row-pair order matching ``itertools.combinations``).
    """
    bits = _as_bit_matrix(bits)
    m = bits.shape[0]
    if m < 2:
        return np.zeros(0, dtype=int)
    ones = bits.astype(np.int32)
    # HD(a, b) = popcount(a) + popcount(b) - 2 * dot(a, b), vectorised.
    weights = ones.sum(axis=1)
    gram = ones @ ones.T
    distances = weights[:, None] + weights[None, :] - 2 * gram
    upper = np.triu_indices(m, k=1)
    return distances[upper].astype(int)


def hamming_distance_histogram(
    bits: np.ndarray, max_distance: int | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Histogram of pairwise Hamming distances.

    Returns:
        (distances, counts): ``distances`` is ``0..max_distance`` and
        ``counts[i]`` the number of row pairs at distance ``i``.
    """
    bits = _as_bit_matrix(bits)
    if max_distance is None:
        max_distance = bits.shape[1]
    pairwise = pairwise_hamming_distances(bits)
    counts = np.bincount(pairwise, minlength=max_distance + 1)
    return np.arange(max_distance + 1), counts[: max_distance + 1]
