"""PUF quality metrics: uniqueness, reliability, uniformity, entropy."""

from .autocorrelation import (
    AutocorrelationReport,
    autocorrelation_report,
    bit_autocorrelation,
)
from .entropy import (
    min_entropy_per_bit,
    response_entropy_report,
    shannon_entropy_per_bit,
)
from .hamming import (
    hamming_distance,
    hamming_distance_histogram,
    pairwise_hamming_distances,
)
from .reliability import ReliabilityReport, bit_flip_report, flip_positions
from .streaming import (
    StreamingReliability,
    StreamingReliabilityReport,
    StreamingUniformity,
    StreamingUniformityReport,
    StreamingUniqueness,
    StreamingUniquenessReport,
)
from .uniformity import (
    UniformityReport,
    bit_aliasing,
    uniformity,
    uniformity_report,
)
from .uniqueness import UniquenessReport, uniqueness_report

__all__ = [
    "AutocorrelationReport",
    "autocorrelation_report",
    "bit_autocorrelation",
    "min_entropy_per_bit",
    "response_entropy_report",
    "shannon_entropy_per_bit",
    "hamming_distance",
    "hamming_distance_histogram",
    "pairwise_hamming_distances",
    "ReliabilityReport",
    "bit_flip_report",
    "flip_positions",
    "UniformityReport",
    "bit_aliasing",
    "uniformity",
    "uniformity_report",
    "UniquenessReport",
    "uniqueness_report",
    "StreamingReliability",
    "StreamingReliabilityReport",
    "StreamingUniformity",
    "StreamingUniformityReport",
    "StreamingUniqueness",
    "StreamingUniquenessReport",
]
