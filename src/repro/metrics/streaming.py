"""Streaming PUF population metrics via sufficient statistics.

The dense metrics (:mod:`repro.metrics.uniqueness` & friends) materialize
all ``m*(m-1)/2`` pairwise Hamming distances — at the fleet scales of
ROADMAP item 2 (10^5-10^6 devices) that vector alone is tens of
gigabytes.  The accumulators here fold bit matrices shard by shard into
small *sufficient statistics* from which the same population moments
follow exactly:

**Uniqueness.**  For an ``(m, b)`` bit matrix with column-ones counts
``c_j`` and the integer Gram matrix ``G = X^T X`` (``G[j, k]`` = rows
with a 1 in both columns), the pairwise-HD moments are::

    sum of HDs       S1 = sum_j c_j * (m - c_j)
    sum of HDs^2     S2 = sum_{j,k} n11*n00 + n10*n01
        with n11 = G[j,k],       n10 = c_j - G[j,k],
             n01 = c_k - G[j,k], n00 = m - c_j - c_k + G[j,k]

(``n11*n00 + n10*n01`` counts the row pairs that mismatch at *both*
columns; on the diagonal it degenerates to ``c_j * (m - c_j)``, the
pairs mismatching at column ``j``).  ``mean = S1/P`` and
``var = S2/P - mean^2`` over ``P = m*(m-1)/2`` pairs.  ``m``, ``c`` and
``G`` are all sums over rows, so shards fold by plain addition — in any
order, with bit-identical results, because every accumulator is an
integer.  State is ``O(b^2)`` (the Gram matrix), *independent of m*.

**Uniformity** needs ``c_j`` plus the row-sum first and second moments;
**reliability** needs four integer totals.  All three expose
``state_dict()/from_state()`` (plain JSON, the Gram matrix as base64
little-endian int64) so pipeline workers can ship shard states to the
parent, and ``merge()`` to fold them.

What streaming *cannot* give: the full HD histogram and the exact
minimum distance (collision detection) are not functions of these
moments — the streaming uniqueness report therefore carries moment
statistics only, where the dense report also has a histogram.

Equality with the dense implementations (exact for the integer counts,
float-tolerance for the derived moments) is pinned by
``tests/test_metrics_streaming.py``.
"""

from __future__ import annotations

import base64
from dataclasses import asdict, dataclass

import numpy as np

from ..backends import current_backend

__all__ = [
    "StreamingUniqueness",
    "StreamingUniquenessReport",
    "StreamingUniformity",
    "StreamingUniformityReport",
    "StreamingReliability",
    "StreamingReliabilityReport",
]


def _as_bit_matrix(bits: np.ndarray) -> np.ndarray:
    bits = np.asarray(bits)
    if bits.ndim != 2 or bits.shape[1] == 0:
        raise ValueError(
            f"expected a 2-D bit matrix with >= 1 column, got {bits.shape}"
        )
    return bits.astype(bool)


def _encode_int64(matrix: np.ndarray) -> str:
    return base64.b64encode(
        np.ascontiguousarray(matrix, dtype="<i8").tobytes()
    ).decode("ascii")


def _decode_int64(text: str, shape: tuple[int, ...]) -> np.ndarray:
    flat = np.frombuffer(base64.b64decode(text), dtype="<i8")
    return flat.reshape(shape).astype(np.int64)


# ----------------------------------------------------------------------
# Uniqueness
# ----------------------------------------------------------------------


@dataclass
class StreamingUniquenessReport:
    """Pairwise-HD moments of a device population (streamed).

    The integer fields (``total_distance``, ``total_squared_distance``,
    ``pair_count``) are exact; the floats derive from them.

    Attributes:
        bit_count: response length.
        stream_count: devices folded in.
        pair_count: ``stream_count * (stream_count - 1) / 2``.
        total_distance: exact sum of all pairwise HDs (bits).
        total_squared_distance: exact sum of squared pairwise HDs.
        mean_distance / std_distance: pairwise-HD moments in bits.
        uniqueness_percent: ``100 * mean / bits`` (ideal 50%).
    """

    bit_count: int
    stream_count: int
    pair_count: int
    total_distance: int
    total_squared_distance: int
    mean_distance: float
    std_distance: float
    uniqueness_percent: float

    def to_dict(self) -> dict:
        return asdict(self)


class StreamingUniqueness:
    """Folds bit-matrix shards into pairwise-HD sufficient statistics."""

    def __init__(self, bit_count: int):
        if bit_count < 1:
            raise ValueError(f"bit_count must be >= 1, got {bit_count}")
        self.bit_count = bit_count
        self.rows = 0
        self.column_ones = np.zeros(bit_count, dtype=np.int64)
        self.gram = np.zeros((bit_count, bit_count), dtype=np.int64)

    def update(self, bits: np.ndarray) -> None:
        """Fold one ``(devices, bit_count)`` shard in."""
        bits = _as_bit_matrix(bits)
        if bits.shape[1] != self.bit_count:
            raise ValueError(
                f"shard has {bits.shape[1]} bits, accumulator expects "
                f"{self.bit_count}"
            )
        x = bits.astype(np.int64)
        self.rows += bits.shape[0]
        self.column_ones += x.sum(axis=0)
        # Integer-exact on every backend (the statistics must stay exact).
        current_backend().gram_update(self.gram, x)

    def merge(self, other: "StreamingUniqueness") -> None:
        """Fold another accumulator in (commutative, exact)."""
        if other.bit_count != self.bit_count:
            raise ValueError(
                f"cannot merge accumulators over {other.bit_count} and "
                f"{self.bit_count} bits"
            )
        self.rows += other.rows
        self.column_ones += other.column_ones
        self.gram += other.gram

    def state_dict(self) -> dict:
        return {
            "kind": "uniqueness",
            "bit_count": self.bit_count,
            "rows": self.rows,
            "column_ones": [int(c) for c in self.column_ones],
            "gram_b64": _encode_int64(self.gram),
        }

    @classmethod
    def from_state(cls, doc: dict) -> "StreamingUniqueness":
        acc = cls(int(doc["bit_count"]))
        acc.rows = int(doc["rows"])
        acc.column_ones = np.asarray(doc["column_ones"], dtype=np.int64)
        acc.gram = _decode_int64(
            doc["gram_b64"], (acc.bit_count, acc.bit_count)
        )
        return acc

    def report(self) -> StreamingUniquenessReport:
        if self.rows < 2:
            raise ValueError(
                f"uniqueness needs >= 2 devices, have {self.rows}"
            )
        m = self.rows
        c = self.column_ones
        pair_count = m * (m - 1) // 2
        total = int(np.sum(c * (m - c)))
        n11 = self.gram
        n10 = c[:, None] - n11
        n01 = c[None, :] - n11
        n00 = m - c[:, None] - c[None, :] + n11
        total_squared = int(np.sum(n11 * n00 + n10 * n01))
        mean = total / pair_count
        # Integer numerator: P*S2 - S1^2 is exact, so E[x^2] - E[x]^2
        # never suffers catastrophic cancellation (identical devices
        # give std == 0.0 exactly, matching the dense metric).
        variance = max(
            pair_count * total_squared - total * total, 0
        ) / (pair_count * pair_count)
        return StreamingUniquenessReport(
            bit_count=self.bit_count,
            stream_count=m,
            pair_count=pair_count,
            total_distance=total,
            total_squared_distance=total_squared,
            mean_distance=mean,
            std_distance=float(np.sqrt(variance)),
            uniqueness_percent=100.0 * mean / self.bit_count,
        )


# ----------------------------------------------------------------------
# Uniformity
# ----------------------------------------------------------------------


@dataclass
class StreamingUniformityReport:
    """Uniformity / bit-aliasing moments of a device population.

    Matches :class:`repro.metrics.uniformity.UniformityReport` field for
    field, plus the population size.
    """

    stream_count: int
    bit_count: int
    mean_uniformity_percent: float
    std_uniformity_percent: float
    mean_aliasing_percent: float
    worst_aliasing_percent: float

    def to_dict(self) -> dict:
        return asdict(self)


class StreamingUniformity:
    """Row-sum moments + column counts: uniformity and aliasing."""

    def __init__(self, bit_count: int):
        if bit_count < 1:
            raise ValueError(f"bit_count must be >= 1, got {bit_count}")
        self.bit_count = bit_count
        self.rows = 0
        self.column_ones = np.zeros(bit_count, dtype=np.int64)
        self.row_ones_total = 0
        self.row_ones_sq_total = 0

    def update(self, bits: np.ndarray) -> None:
        bits = _as_bit_matrix(bits)
        if bits.shape[1] != self.bit_count:
            raise ValueError(
                f"shard has {bits.shape[1]} bits, accumulator expects "
                f"{self.bit_count}"
            )
        x = bits.astype(np.int64)
        row_ones = x.sum(axis=1)
        self.rows += bits.shape[0]
        self.column_ones += x.sum(axis=0)
        self.row_ones_total += int(row_ones.sum())
        self.row_ones_sq_total += int(np.sum(row_ones * row_ones))

    def merge(self, other: "StreamingUniformity") -> None:
        if other.bit_count != self.bit_count:
            raise ValueError(
                f"cannot merge accumulators over {other.bit_count} and "
                f"{self.bit_count} bits"
            )
        self.rows += other.rows
        self.column_ones += other.column_ones
        self.row_ones_total += other.row_ones_total
        self.row_ones_sq_total += other.row_ones_sq_total

    def state_dict(self) -> dict:
        return {
            "kind": "uniformity",
            "bit_count": self.bit_count,
            "rows": self.rows,
            "column_ones": [int(c) for c in self.column_ones],
            "row_ones_total": self.row_ones_total,
            "row_ones_sq_total": self.row_ones_sq_total,
        }

    @classmethod
    def from_state(cls, doc: dict) -> "StreamingUniformity":
        acc = cls(int(doc["bit_count"]))
        acc.rows = int(doc["rows"])
        acc.column_ones = np.asarray(doc["column_ones"], dtype=np.int64)
        acc.row_ones_total = int(doc["row_ones_total"])
        acc.row_ones_sq_total = int(doc["row_ones_sq_total"])
        return acc

    def report(self) -> StreamingUniformityReport:
        if self.rows < 1:
            raise ValueError("uniformity needs >= 1 device")
        m, b = self.rows, self.bit_count
        mean_u = self.row_ones_total / (m * b)
        # Exact integer numerator (see the uniqueness report): identical
        # rows give a spread of exactly 0.0, never a cancellation residue.
        var_u = max(
            m * self.row_ones_sq_total - self.row_ones_total**2, 0
        ) / (m * m * b * b)
        aliasing = 100.0 * self.column_ones / m
        worst = int(np.argmax(np.abs(aliasing - 50.0)))
        return StreamingUniformityReport(
            stream_count=m,
            bit_count=b,
            mean_uniformity_percent=100.0 * mean_u,
            std_uniformity_percent=100.0 * float(np.sqrt(var_u)),
            mean_aliasing_percent=float(np.mean(aliasing)),
            worst_aliasing_percent=float(aliasing[worst]),
        )


# ----------------------------------------------------------------------
# Reliability
# ----------------------------------------------------------------------


@dataclass
class StreamingReliabilityReport:
    """Population bit-flip statistics (paper Sec. IV.D, averaged).

    ``mean_flip_percent`` averages the dense per-device
    ``flip_percent`` (positions that flip at least once across the
    regenerated responses) over all devices; ``mean_intra_hd_percent``
    averages the per-observation HD to the reference over every
    (device, observation) pair.  The integer totals are exact.
    """

    device_count: int
    bit_count: int
    observation_count: int
    total_flipped_positions: int
    total_intra_hd: int
    mean_flip_percent: float
    mean_intra_hd_percent: float

    def to_dict(self) -> dict:
        return asdict(self)


class StreamingReliability:
    """Folds (reference, regenerated responses) shards into flip totals."""

    def __init__(self, bit_count: int):
        if bit_count < 1:
            raise ValueError(f"bit_count must be >= 1, got {bit_count}")
        self.bit_count = bit_count
        self.devices = 0
        self.total_flipped = 0
        self.total_hd = 0
        self.total_observations = 0

    def update(
        self, reference: np.ndarray, observations: np.ndarray
    ) -> None:
        """Fold one shard: reference ``(m, b)``, observations ``(n, m, b)``.

        ``observations`` holds the same shard's responses regenerated at
        ``n`` other corners; a device's flipped positions are the bits
        differing from its reference in *any* of them — so each shard
        must arrive with all its corners at once (devices partition
        across shards, corners do not).
        """
        reference = _as_bit_matrix(reference)
        observations = np.asarray(observations).astype(bool)
        if observations.ndim == 2:
            observations = observations[None, :, :]
        if observations.ndim != 3 or observations.shape[1:] != reference.shape:
            raise ValueError(
                f"observations shape {observations.shape} does not stack "
                f"over reference shape {reference.shape}"
            )
        if reference.shape[1] != self.bit_count:
            raise ValueError(
                f"shard has {reference.shape[1]} bits, accumulator "
                f"expects {self.bit_count}"
            )
        differs = observations ^ reference[None, :, :]
        self.devices += reference.shape[0]
        self.total_flipped += int(np.count_nonzero(np.any(differs, axis=0)))
        self.total_hd += int(np.count_nonzero(differs))
        self.total_observations += (
            observations.shape[0] * reference.shape[0]
        )

    def merge(self, other: "StreamingReliability") -> None:
        if other.bit_count != self.bit_count:
            raise ValueError(
                f"cannot merge accumulators over {other.bit_count} and "
                f"{self.bit_count} bits"
            )
        self.devices += other.devices
        self.total_flipped += other.total_flipped
        self.total_hd += other.total_hd
        self.total_observations += other.total_observations

    def state_dict(self) -> dict:
        return {
            "kind": "reliability",
            "bit_count": self.bit_count,
            "devices": self.devices,
            "total_flipped": self.total_flipped,
            "total_hd": self.total_hd,
            "total_observations": self.total_observations,
        }

    @classmethod
    def from_state(cls, doc: dict) -> "StreamingReliability":
        acc = cls(int(doc["bit_count"]))
        acc.devices = int(doc["devices"])
        acc.total_flipped = int(doc["total_flipped"])
        acc.total_hd = int(doc["total_hd"])
        acc.total_observations = int(doc["total_observations"])
        return acc

    def report(self) -> StreamingReliabilityReport:
        if self.devices < 1:
            raise ValueError("reliability needs >= 1 device")
        flip = 100.0 * self.total_flipped / (self.devices * self.bit_count)
        if self.total_observations:
            intra = 100.0 * self.total_hd / (
                self.total_observations * self.bit_count
            )
        else:
            intra = 0.0
        return StreamingReliabilityReport(
            device_count=self.devices,
            bit_count=self.bit_count,
            observation_count=self.total_observations,
            total_flipped_positions=self.total_flipped,
            total_intra_hd=self.total_hd,
            mean_flip_percent=flip,
            mean_intra_hd_percent=intra,
        )
