"""Bit-stream autocorrelation: the signature of residual spatial structure.

PUF bits derived from neighbouring silicon share variation, so lag-k
autocorrelation is the most direct diagnostic of distiller residue (and of
spatially-correlated mismatch, ablation A9).  Ideal responses have
autocorrelation ~ 0 at every non-zero lag.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["bit_autocorrelation", "AutocorrelationReport", "autocorrelation_report"]


def bit_autocorrelation(bits: np.ndarray, lag: int) -> float:
    """Correlation of a bit stream with itself shifted by ``lag``.

    Bits map to +/-1; the value lies in [-1, 1] with 0 expected for
    independent bits.
    """
    bits = np.asarray(bits).astype(bool).ravel()
    if lag < 1:
        raise ValueError(f"lag must be >= 1, got {lag}")
    if len(bits) <= lag + 1:
        raise ValueError(
            f"stream of {len(bits)} bits is too short for lag {lag}"
        )
    signed = bits.astype(float) * 2.0 - 1.0
    head = signed[:-lag]
    tail = signed[lag:]
    head = head - head.mean()
    tail = tail - tail.mean()
    denominator = np.sqrt(np.sum(head**2) * np.sum(tail**2))
    if denominator == 0.0:
        return 0.0
    return float(np.sum(head * tail) / denominator)


@dataclass
class AutocorrelationReport:
    """Autocorrelation profile of a population of bit streams.

    Attributes:
        lags: evaluated lags.
        mean_autocorrelation: per-lag mean across streams.
        worst_autocorrelation: per-lag maximum |value| across streams.
        threshold: |autocorrelation| above which a lag is flagged
            (a 4-sigma band for independent bits, Bonferroni-safe over
            the handful of lags tested).
    """

    lags: np.ndarray
    mean_autocorrelation: np.ndarray
    worst_autocorrelation: np.ndarray
    threshold: float

    @property
    def flagged_lags(self) -> np.ndarray:
        """Lags whose *mean* autocorrelation exceeds the 3-sigma band."""
        return self.lags[np.abs(self.mean_autocorrelation) > self.threshold]

    @property
    def clean(self) -> bool:
        return len(self.flagged_lags) == 0


def autocorrelation_report(
    bits: np.ndarray, max_lag: int = 8
) -> AutocorrelationReport:
    """Profile a (streams x bits) matrix over lags 1..max_lag."""
    bits = np.atleast_2d(np.asarray(bits).astype(bool))
    if bits.shape[1] <= max_lag + 1:
        raise ValueError(
            f"streams of {bits.shape[1]} bits are too short for lag {max_lag}"
        )
    lags = np.arange(1, max_lag + 1)
    values = np.array(
        [
            [bit_autocorrelation(stream, int(lag)) for lag in lags]
            for stream in bits
        ]
    )
    # 4-sigma band for the mean of `streams` independent-bit correlations
    # (false-flag probability ~1e-4 per lag).
    samples = bits.shape[0] * (bits.shape[1] - max_lag)
    threshold = 4.0 / np.sqrt(samples)
    return AutocorrelationReport(
        lags=lags,
        mean_autocorrelation=values.mean(axis=0),
        worst_autocorrelation=np.abs(values).max(axis=0),
        threshold=float(threshold),
    )
