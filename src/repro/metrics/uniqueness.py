"""Inter-chip uniqueness metrics (Fig. 3 of the paper).

Different chips must produce different responses.  The standard measure is
the distribution of pairwise Hamming distances between the chips' response
bit-streams: ideally binomial with mean ``bit_count / 2``.  The paper
reports mean 46.88 / 46.79 bits and sigma 4.89 / 4.95 bits over 97
96-bit streams for Case-1 / Case-2.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .hamming import hamming_distance_histogram, pairwise_hamming_distances

__all__ = ["UniquenessReport", "uniqueness_report"]


@dataclass
class UniquenessReport:
    """Summary of the inter-chip Hamming-distance distribution.

    Attributes:
        bit_count: length of each response bit-stream.
        stream_count: number of chips/streams compared.
        mean_distance: mean pairwise HD in bits.
        std_distance: standard deviation of pairwise HD in bits.
        uniqueness_percent: normalised uniqueness ``100 * mean / bits``
            (ideal: 50%).
        histogram_distances: HD axis of the histogram.
        histogram_counts: pair counts per HD value.
    """

    bit_count: int
    stream_count: int
    mean_distance: float
    std_distance: float
    uniqueness_percent: float
    histogram_distances: np.ndarray
    histogram_counts: np.ndarray

    @property
    def pair_count(self) -> int:
        return self.stream_count * (self.stream_count - 1) // 2

    @property
    def min_distance(self) -> int:
        """Smallest observed pairwise distance (0 means a collision)."""
        nonzero = np.nonzero(self.histogram_counts)[0]
        return int(nonzero[0]) if len(nonzero) else 0

    @property
    def has_collision(self) -> bool:
        """True when two chips produced identical responses."""
        return self.histogram_counts[0] > 0 if len(self.histogram_counts) else False


def uniqueness_report(bits: np.ndarray) -> UniquenessReport:
    """Compute the inter-chip uniqueness report for a response matrix.

    Args:
        bits: boolean matrix, one row per chip.
    """
    bits = np.asarray(bits)
    if bits.ndim != 2 or bits.shape[0] < 2:
        raise ValueError("need a 2-D matrix with at least two response rows")
    distances = pairwise_hamming_distances(bits)
    axis, counts = hamming_distance_histogram(bits)
    bit_count = bits.shape[1]
    mean = float(np.mean(distances))
    return UniquenessReport(
        bit_count=bit_count,
        stream_count=bits.shape[0],
        mean_distance=mean,
        std_distance=float(np.std(distances)),
        uniqueness_percent=100.0 * mean / bit_count,
        histogram_distances=axis,
        histogram_counts=counts,
    )
