"""Entropy estimates of PUF response populations.

Used by the extended analyses (DESIGN.md ablations) to quantify how much
secret material the responses actually carry.
"""

from __future__ import annotations

import numpy as np

__all__ = ["shannon_entropy_per_bit", "min_entropy_per_bit", "response_entropy_report"]


def _position_probabilities(bits: np.ndarray) -> np.ndarray:
    bits = np.asarray(bits).astype(bool)
    if bits.ndim != 2 or bits.shape[0] == 0 or bits.shape[1] == 0:
        raise ValueError(f"expected a non-empty 2-D bit matrix, got {bits.shape}")
    return bits.mean(axis=0)


def shannon_entropy_per_bit(bits: np.ndarray) -> np.ndarray:
    """Per-position Shannon entropy (bits) across the chip population."""
    p = _position_probabilities(bits)
    entropy = np.zeros_like(p)
    interior = (p > 0.0) & (p < 1.0)
    q = p[interior]
    entropy[interior] = -q * np.log2(q) - (1.0 - q) * np.log2(1.0 - q)
    return entropy


def min_entropy_per_bit(bits: np.ndarray) -> np.ndarray:
    """Per-position min-entropy ``-log2(max(p, 1-p))`` across chips."""
    p = _position_probabilities(bits)
    return -np.log2(np.maximum(p, 1.0 - p))


def response_entropy_report(bits: np.ndarray) -> dict[str, float]:
    """Aggregate entropy summary of a (chips x bits) response matrix."""
    shannon = shannon_entropy_per_bit(bits)
    minimum = min_entropy_per_bit(bits)
    return {
        "mean_shannon_entropy": float(np.mean(shannon)),
        "min_shannon_entropy": float(np.min(shannon)),
        "mean_min_entropy": float(np.mean(minimum)),
        "min_min_entropy": float(np.min(minimum)),
        "total_shannon_entropy": float(np.sum(shannon)),
    }
