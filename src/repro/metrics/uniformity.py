"""Uniformity and bit-aliasing metrics.

Standard PUF quality measures complementing the paper's NIST analysis:

* **uniformity** — fraction of 1s within one chip's response (ideal 50%);
* **bit-aliasing** — fraction of 1s at one bit position across chips
  (ideal 50%; values near 0 or 1 mean the position leaks no entropy).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "uniformity",
    "bit_aliasing",
    "UniformityReport",
    "uniformity_report",
]


def uniformity(bits: np.ndarray) -> np.ndarray:
    """Per-chip fraction of 1 bits. Accepts a vector or a chip-row matrix."""
    bits = np.asarray(bits).astype(bool)
    if bits.ndim == 1:
        if len(bits) == 0:
            raise ValueError("empty response")
        return np.array([float(np.mean(bits))])
    if bits.ndim != 2 or bits.shape[1] == 0:
        raise ValueError(f"expected 1-D or 2-D bits, got shape {bits.shape}")
    return bits.mean(axis=1)


def bit_aliasing(bits: np.ndarray) -> np.ndarray:
    """Per-position fraction of 1 bits across chips (rows)."""
    bits = np.asarray(bits).astype(bool)
    if bits.ndim != 2 or bits.shape[0] == 0:
        raise ValueError(f"expected a non-empty 2-D bit matrix, got {bits.shape}")
    return bits.mean(axis=0)


@dataclass
class UniformityReport:
    """Aggregate uniformity / bit-aliasing statistics over a chip population.

    Attributes:
        mean_uniformity_percent: average per-chip percentage of 1s.
        std_uniformity_percent: spread of per-chip uniformity.
        mean_aliasing_percent: average per-position percentage of 1s.
        worst_aliasing_percent: the aliasing value farthest from 50%.
    """

    mean_uniformity_percent: float
    std_uniformity_percent: float
    mean_aliasing_percent: float
    worst_aliasing_percent: float


def uniformity_report(bits: np.ndarray) -> UniformityReport:
    """Uniformity/aliasing summary for a (chips x bits) response matrix."""
    per_chip = uniformity(bits) * 100.0
    per_position = bit_aliasing(bits) * 100.0
    worst_index = int(np.argmax(np.abs(per_position - 50.0)))
    return UniformityReport(
        mean_uniformity_percent=float(np.mean(per_chip)),
        std_uniformity_percent=float(np.std(per_chip)),
        mean_aliasing_percent=float(np.mean(per_position)),
        worst_aliasing_percent=float(per_position[worst_index]),
    )
