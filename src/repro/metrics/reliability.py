"""Reliability metrics: bit flips across operating environments (Fig. 4).

The paper counts, for each PUF, the number of *bit positions* that change at
least once when the response is regenerated under different environments
("The number of bit positions that have one or multiple changes is
considered as the total number of bit flips", Sec. IV.D).  We provide both
that position-wise measure and the conventional average intra-chip HD.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ReliabilityReport", "bit_flip_report", "flip_positions"]


@dataclass
class ReliabilityReport:
    """Bit-flip statistics of one PUF across environments.

    Attributes:
        bit_count: response length.
        observation_count: number of regenerated responses compared against
            the reference.
        flipped_positions: indices of bits that differed at least once.
        flip_percent: the paper's metric — ``100 * flipped / bit_count``.
        mean_intra_hd_percent: average per-observation HD to the reference,
            as a percentage of the bit count.
    """

    bit_count: int
    observation_count: int
    flipped_positions: np.ndarray
    flip_percent: float
    mean_intra_hd_percent: float

    @property
    def flip_count(self) -> int:
        return len(self.flipped_positions)

    @property
    def is_perfectly_stable(self) -> bool:
        return self.flip_count == 0


def flip_positions(reference: np.ndarray, observations: np.ndarray) -> np.ndarray:
    """Bit positions that differ from the reference in any observation."""
    reference = np.asarray(reference).astype(bool).ravel()
    observations = np.atleast_2d(np.asarray(observations)).astype(bool)
    if observations.shape[1] != len(reference):
        raise ValueError(
            f"observations have {observations.shape[1]} bits but the "
            f"reference has {len(reference)}"
        )
    differs = observations != reference[None, :]
    return np.nonzero(np.any(differs, axis=0))[0]


def bit_flip_report(
    reference: np.ndarray, observations: np.ndarray
) -> ReliabilityReport:
    """The paper's bit-flip metric for one reference and many observations.

    Args:
        reference: enrollment response bits (1-D).
        observations: regenerated responses, one row per environment.
    """
    reference = np.asarray(reference).astype(bool).ravel()
    observations = np.atleast_2d(np.asarray(observations)).astype(bool)
    if len(reference) == 0:
        raise ValueError("reference response is empty")
    positions = flip_positions(reference, observations)
    differs = observations != reference[None, :]
    per_observation_hd = differs.sum(axis=1)
    # Zero observations carry no evidence of instability: both the
    # position-wise metric and the mean intra-chip HD are 0.0 by definition
    # (rather than a nan from averaging an empty array).
    if observations.shape[0] == 0:
        mean_intra_hd = 0.0
    else:
        mean_intra_hd = 100.0 * float(np.mean(per_observation_hd)) / len(reference)
    return ReliabilityReport(
        bit_count=len(reference),
        observation_count=observations.shape[0],
        flipped_positions=positions,
        flip_percent=100.0 * len(positions) / len(reference),
        mean_intra_hd_percent=mean_intra_hd,
    )
