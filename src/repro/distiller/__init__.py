"""Systematic-variation distillers (the paper's ref [18] substitute)."""

from .regression import DistillerResult, MeanDistiller, PolynomialDistiller

__all__ = ["DistillerResult", "MeanDistiller", "PolynomialDistiller"]
