"""Regression-based distiller (Yin & Qu, DAC 2013 — the paper's ref [18]).

Raw RO delays carry a smooth *systematic* spatial component shared by
neighbouring devices; PUF bits derived from raw delays are therefore
correlated and fail the NIST randomness tests (the paper reproduces this in
Sec. IV.A).  The distiller fits a low-order polynomial regression of each
board's delays over die coordinates and keeps only the residuals — the
random variation that actually identifies the chip.

The distilled values are *relative* residuals re-centred on the board mean,
so downstream code can keep treating them as delays (all PUF decisions are
comparisons, which the common offset never affects).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..variation.process import polynomial_design_matrix

__all__ = ["PolynomialDistiller", "MeanDistiller", "DistillerResult"]


@dataclass
class DistillerResult:
    """Outcome of distilling one board.

    Attributes:
        distilled: residual delays (same shape/unit as the input).
        fitted: the removed systematic component (trend + mean).
        coefficients: regression coefficients, intercept first.
    """

    distilled: np.ndarray
    fitted: np.ndarray
    coefficients: np.ndarray


@dataclass
class PolynomialDistiller:
    """Removes a polynomial spatial trend from per-device delays.

    Attributes:
        degree: total degree of the fitted 2-D polynomial (the paper's
            source technique uses low orders; 2 matches our process model's
            dominant term).
        keep_mean: when True, the board-mean delay is added back to the
            residuals so the output remains a physically-scaled delay.
    """

    degree: int = 2
    keep_mean: bool = True

    def __post_init__(self) -> None:
        if self.degree < 1:
            raise ValueError(f"degree must be >= 1, got {self.degree}")

    def distill(self, delays: np.ndarray, coords: np.ndarray) -> DistillerResult:
        """Fit and remove the spatial trend of one board.

        Args:
            delays: per-device delays (1-D).
            coords: ``(k, 2)`` normalised die coordinates of the devices.
        """
        delays = np.asarray(delays, dtype=float)
        coords = np.asarray(coords, dtype=float)
        if delays.ndim != 1:
            raise ValueError("delays must be 1-D")
        if coords.shape != (len(delays), 2):
            raise ValueError(
                f"coords shape {coords.shape} does not match "
                f"{len(delays)} delays"
            )
        monomials = polynomial_design_matrix(coords, self.degree)
        design = np.column_stack([np.ones(len(delays)), monomials])
        coefficients, _, _, _ = np.linalg.lstsq(design, delays, rcond=None)
        fitted = design @ coefficients
        residuals = delays - fitted
        if self.keep_mean:
            residuals = residuals + float(np.mean(delays))
        return DistillerResult(
            distilled=residuals, fitted=fitted, coefficients=coefficients
        )

    def __call__(self, delays: np.ndarray, coords: np.ndarray) -> np.ndarray:
        """Convenience: return only the distilled delays."""
        return self.distill(delays, coords).distilled


@dataclass
class MeanDistiller:
    """Removes only the board-mean offset (a degenerate distiller baseline)."""

    def distill(self, delays: np.ndarray, coords: np.ndarray) -> DistillerResult:
        delays = np.asarray(delays, dtype=float)
        if delays.ndim != 1:
            raise ValueError("delays must be 1-D")
        mean = float(np.mean(delays))
        fitted = np.full_like(delays, mean)
        return DistillerResult(
            distilled=delays - fitted,
            fitted=fitted,
            coefficients=np.array([mean]),
        )

    def __call__(self, delays: np.ndarray, coords: np.ndarray) -> np.ndarray:
        return self.distill(delays, coords).distilled
