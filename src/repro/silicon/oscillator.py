"""Event-driven ring-oscillator simulation and counter-based measurement.

Everywhere else in the library a configured ring's frequency is the
analytic ``1 / (2 * chain_delay)``.  This module derives that number from
first principles: a transition propagates stage by stage around the ring
(each crossing adding the stage's delay plus thermal jitter), the output
node toggles once per lap, and a frequency counter totals the toggles in
a gate window.  It provides

* a validation target for the analytic formula (they must agree to the
  counter's quantisation),
* an honest model of counter resolution and jitter accumulation — the
  physical origin of the `GaussianNoise`/`QuantizedGaussianNoise`
  measurement models used by the enrollment pipeline.

An odd inverting-stage count is required: with an even count the ring
latches (no oscillation), exactly the constraint behind `require_odd`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..variation.environment import NOMINAL_OPERATING_POINT, OperatingPoint

if TYPE_CHECKING:  # imported lazily at runtime to avoid a core<->silicon cycle
    from ..core.config_vector import ConfigVector
    from ..core.ring import ConfigurableRO

__all__ = ["RingOscillatorSimulator", "simulate_configured_ring"]


@dataclass
class RingOscillatorSimulator:
    """Simulates a free-running ring from its per-stage one-way delays.

    Attributes:
        stage_delays: one-way propagation delay of each stage (seconds).
        jitter_sigma: per-stage-crossing timing jitter (seconds, RMS).
            Accumulates as sqrt(crossings), the physical random-walk law.
    """

    stage_delays: np.ndarray
    jitter_sigma: float = 0.0

    def __post_init__(self) -> None:
        self.stage_delays = np.asarray(self.stage_delays, dtype=float)
        if self.stage_delays.ndim != 1 or len(self.stage_delays) == 0:
            raise ValueError("stage_delays must be a non-empty 1-D array")
        if np.any(self.stage_delays <= 0.0):
            raise ValueError("stage delays must be positive")
        if self.jitter_sigma < 0.0:
            raise ValueError("jitter_sigma must be non-negative")

    @property
    def lap_time(self) -> float:
        """Nominal time for one edge lap (one output toggle), seconds."""
        return float(np.sum(self.stage_delays))

    @property
    def nominal_frequency(self) -> float:
        """The analytic frequency ``1 / (2 * lap_time)``, hertz."""
        return 1.0 / (2.0 * self.lap_time)

    def toggle_times(
        self, duration: float, rng: np.random.Generator
    ) -> np.ndarray:
        """Output-node toggle instants within ``[0, duration]``.

        One toggle per lap; each lap's duration is the stage-delay sum
        plus the accumulated per-stage jitter of that lap.
        """
        if duration <= 0.0:
            raise ValueError("duration must be positive")
        nominal = self.lap_time
        # Generous lap budget: nominal count plus jitter slack.
        budget = int(duration / nominal) + 3
        if self.jitter_sigma > 0.0:
            per_lap_jitter = rng.normal(
                0.0,
                self.jitter_sigma * np.sqrt(len(self.stage_delays)),
                size=budget,
            )
            lap_times = np.maximum(nominal + per_lap_jitter, 0.1 * nominal)
        else:
            lap_times = np.full(budget, nominal)
        instants = np.cumsum(lap_times)
        return instants[instants <= duration]

    def count_toggles(self, window: float, rng: np.random.Generator) -> int:
        """A frequency counter's raw reading over a gate window."""
        return len(self.toggle_times(window, rng))

    def measure_frequency(
        self, window: float, rng: np.random.Generator
    ) -> float:
        """Counter-based frequency estimate: toggles / (2 * window).

        Quantisation step is ``1 / (2 * window)`` — longer gates measure
        finer, the real trade-off behind the measurement-noise models.
        """
        return self.count_toggles(window, rng) / (2.0 * window)


def simulate_configured_ring(
    ring: "ConfigurableRO",
    config: "ConfigVector",
    op: OperatingPoint = NOMINAL_OPERATING_POINT,
    jitter_sigma: float = 0.0,
) -> RingOscillatorSimulator:
    """Build a simulator for a configured ring at an operating point.

    The configured chain collapses to per-stage contributions
    (``d + d1`` selected, ``d0`` bypassed); oscillation requires an odd
    selected count.

    Raises:
        ValueError: when the configuration cannot oscillate.
    """
    if len(config) != ring.stage_count:
        raise ValueError(
            f"configuration length {len(config)} != ring stages "
            f"{ring.stage_count}"
        )
    if not config.can_oscillate:
        raise ValueError(
            f"configuration {config} selects an even number of inverters; "
            "the ring latches instead of oscillating"
        )
    mask = config.as_array()
    stage_delays = np.where(
        mask, ring.selected_path_delays(op), ring.bypass_delays(op)
    )
    return RingOscillatorSimulator(
        stage_delays=stage_delays, jitter_sigma=jitter_sigma
    )
