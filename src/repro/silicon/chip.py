"""A fabricated chip: an array of delay units with individual delays.

One *delay unit* is the paper's Fig. 2 structure — an inverter followed by a
2-to-1 MUX.  When the MUX selection bit is 1 the signal passes through the
inverter and the MUX's "1" path (delay ``d + d1``); when it is 0 the signal
bypasses the inverter through the MUX's "0" path (delay ``d0``).  All three
delays vary with fabrication and environment, so a chip carries base delays
*and* environmental sensitivities for every inverter and both MUX paths.

The chip is a structure of arrays for speed; `repro.core` provides the
object-per-unit view on top of it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..variation.environment import (
    NOMINAL_OPERATING_POINT,
    DeviceSensitivities,
    EnvironmentModel,
    OperatingPoint,
)

__all__ = ["Chip"]


@dataclass
class Chip:
    """A die populated with configurable-RO delay units.

    Attributes:
        name: identifier used in reports (e.g. ``"board03"``).
        coords: ``(k, 2)`` normalised die coordinates of the units.
        inverter_base: reference-corner inverter delays, seconds.
        mux_selected_base: reference-corner delays of the MUX "1" paths (d1).
        mux_bypass_base: reference-corner delays of the MUX "0" paths (d0).
        inverter_sensitivities: environmental sensitivities of the inverters.
        mux_selected_sensitivities: sensitivities of the MUX "1" paths.
        mux_bypass_sensitivities: sensitivities of the MUX "0" paths.
        environment: the delay-vs-environment model shared by all devices.
    """

    name: str
    coords: np.ndarray
    inverter_base: np.ndarray
    mux_selected_base: np.ndarray
    mux_bypass_base: np.ndarray
    inverter_sensitivities: DeviceSensitivities
    mux_selected_sensitivities: DeviceSensitivities
    mux_bypass_sensitivities: DeviceSensitivities
    environment: EnvironmentModel = field(default_factory=EnvironmentModel)

    def __post_init__(self) -> None:
        self.coords = np.asarray(self.coords, dtype=float)
        self.inverter_base = np.asarray(self.inverter_base, dtype=float)
        self.mux_selected_base = np.asarray(self.mux_selected_base, dtype=float)
        self.mux_bypass_base = np.asarray(self.mux_bypass_base, dtype=float)
        k = len(self.inverter_base)
        if self.coords.shape != (k, 2):
            raise ValueError(
                f"coords shape {self.coords.shape} inconsistent with {k} units"
            )
        for name in ("mux_selected_base", "mux_bypass_base"):
            if getattr(self, name).shape != (k,):
                raise ValueError(f"{name} must have shape ({k},)")
        for name in (
            "inverter_sensitivities",
            "mux_selected_sensitivities",
            "mux_bypass_sensitivities",
        ):
            if getattr(self, name).shape != (k,):
                raise ValueError(f"{name} must describe {k} devices")
        if np.any(self.inverter_base <= 0.0):
            raise ValueError("inverter delays must be positive")
        if np.any(self.mux_selected_base <= 0.0) or np.any(self.mux_bypass_base <= 0.0):
            raise ValueError("MUX path delays must be positive")

    @property
    def unit_count(self) -> int:
        """Number of delay units on the chip."""
        return len(self.inverter_base)

    def __len__(self) -> int:
        return self.unit_count

    # ------------------------------------------------------------------
    # Delay queries (all vectorised over units)
    # ------------------------------------------------------------------

    def inverter_delays(self, op: OperatingPoint = NOMINAL_OPERATING_POINT) -> np.ndarray:
        """Per-unit inverter delays ``d`` at an operating point."""
        return self.environment.delays_at(
            self.inverter_base, self.inverter_sensitivities, op
        )

    def mux_selected_delays(
        self, op: OperatingPoint = NOMINAL_OPERATING_POINT
    ) -> np.ndarray:
        """Per-unit MUX "1"-path delays ``d1`` at an operating point."""
        return self.environment.delays_at(
            self.mux_selected_base, self.mux_selected_sensitivities, op
        )

    def mux_bypass_delays(
        self, op: OperatingPoint = NOMINAL_OPERATING_POINT
    ) -> np.ndarray:
        """Per-unit MUX "0"-path delays ``d0`` at an operating point."""
        return self.environment.delays_at(
            self.mux_bypass_base, self.mux_bypass_sensitivities, op
        )

    def selected_path_delays(
        self, op: OperatingPoint = NOMINAL_OPERATING_POINT
    ) -> np.ndarray:
        """Per-unit delays when selected: ``d + d1``."""
        return self.inverter_delays(op) + self.mux_selected_delays(op)

    def ddiffs(self, op: OperatingPoint = NOMINAL_OPERATING_POINT) -> np.ndarray:
        """The paper's per-unit delay differences ``ddiff = d + d1 - d0``."""
        return self.selected_path_delays(op) - self.mux_bypass_delays(op)

    # ------------------------------------------------------------------
    # Subsetting
    # ------------------------------------------------------------------

    def subset(self, indices: np.ndarray, name: str | None = None) -> "Chip":
        """A new Chip view containing only the units at ``indices``.

        Used to carve a long column of delay units into individual ROs.
        """
        indices = np.asarray(indices)
        return Chip(
            name=name if name is not None else f"{self.name}[{len(indices)} units]",
            coords=self.coords[indices],
            inverter_base=self.inverter_base[indices],
            mux_selected_base=self.mux_selected_base[indices],
            mux_bypass_base=self.mux_bypass_base[indices],
            inverter_sensitivities=self.inverter_sensitivities.take(indices),
            mux_selected_sensitivities=self.mux_selected_sensitivities.take(indices),
            mux_bypass_sensitivities=self.mux_bypass_sensitivities.take(indices),
            environment=self.environment,
        )
