"""Simulated silicon: chips of delay units sampled from the variation model.

Replaces the paper's physical FPGA boards (9 Virtex-5 boards for the
inverter-level experiments).  See DESIGN.md Sec. 2.
"""

from .aging import AgingModel, age_chip
from .chip import Chip
from .fabrication import FabricationProcess
from .geometry import GridPlacement, grid_coordinates
from .oscillator import RingOscillatorSimulator, simulate_configured_ring

__all__ = [
    "AgingModel",
    "age_chip",
    "Chip",
    "FabricationProcess",
    "GridPlacement",
    "grid_coordinates",
    "RingOscillatorSimulator",
    "simulate_configured_ring",
]
