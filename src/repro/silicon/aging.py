"""Device aging: NBTI/HCI-style delay drift over operating lifetime.

PUF responses must stay stable not only across (V, T) corners but across
*years* of silicon wear-out — a standard extension of the paper's
reliability question.  We model the dominant effect (threshold-voltage
shift from bias-temperature instability) as a power-law relative slowdown
with a per-device random severity::

    delay(t) = delay(0) * (1 + severity_i * (t / t0) ** exponent)

Because the severities differ per device, delay *orderings* drift with
age, and marginal PUF bits eventually flip.  :func:`age_chip` returns an
aged copy of a chip so any enrollment can be replayed against it; the
aging bench compares the configurable and traditional schemes' wear-out.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from .chip import Chip

__all__ = ["AgingModel", "age_chip"]


@dataclass(frozen=True)
class AgingModel:
    """Power-law aging with per-device severity spread.

    Attributes:
        mean_severity: mean relative slowdown at ``reference_years``.
        severity_sigma: per-device spread of the slowdown (this is what
            reorders delays and flips marginal bits).
        exponent: power-law time exponent (NBTI is classically ~0.16-0.25).
        reference_years: time at which ``mean_severity`` applies.
    """

    mean_severity: float = 0.04
    severity_sigma: float = 0.008
    exponent: float = 0.2
    reference_years: float = 10.0

    def __post_init__(self) -> None:
        if self.mean_severity < 0.0 or self.severity_sigma < 0.0:
            raise ValueError("severities must be non-negative")
        if self.exponent <= 0.0:
            raise ValueError("exponent must be positive")
        if self.reference_years <= 0.0:
            raise ValueError("reference_years must be positive")

    def sample_severities(
        self, count: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Per-device severities, clipped at zero (aging never speeds up)."""
        severities = rng.normal(self.mean_severity, self.severity_sigma, count)
        return np.clip(severities, 0.0, None)

    def slowdown(self, severities: np.ndarray, years: float) -> np.ndarray:
        """Multiplicative delay factors after ``years`` of stress."""
        if years < 0.0:
            raise ValueError("years must be non-negative")
        if years == 0.0:
            return np.ones_like(np.asarray(severities, dtype=float))
        scale = (years / self.reference_years) ** self.exponent
        return 1.0 + np.asarray(severities, dtype=float) * scale


def age_chip(
    chip: Chip,
    years: float,
    rng: np.random.Generator,
    model: AgingModel | None = None,
) -> Chip:
    """Return an aged copy of a chip (the original is untouched).

    All three device populations (inverters and both MUX paths) age with
    independent severities drawn from the same model.
    """
    if model is None:
        model = AgingModel()
    inverter_factors = model.slowdown(
        model.sample_severities(chip.unit_count, rng), years
    )
    selected_factors = model.slowdown(
        model.sample_severities(chip.unit_count, rng), years
    )
    bypass_factors = model.slowdown(
        model.sample_severities(chip.unit_count, rng), years
    )
    return replace(
        chip,
        name=f"{chip.name}@{years:g}y",
        inverter_base=chip.inverter_base * inverter_factors,
        mux_selected_base=chip.mux_selected_base * selected_factors,
        mux_bypass_base=chip.mux_bypass_base * bypass_factors,
    )
