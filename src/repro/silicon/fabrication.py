"""Fabrication: sampling chips from the process-variation model.

`FabricationProcess` plays the role of the foundry.  Each call to
:meth:`FabricationProcess.fabricate` produces one :class:`~repro.silicon.chip.Chip`
with a fresh board offset, a fresh systematic field, and fresh per-device
random variation and environmental sensitivities — the same chip design,
never the same chip, which is the whole premise of a PUF.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..variation.environment import EnvironmentModel
from ..variation.process import ProcessVariationModel
from .chip import Chip
from .geometry import GridPlacement

__all__ = ["FabricationProcess"]


@dataclass
class FabricationProcess:
    """A foundry that fabricates chips of configurable-RO delay units.

    Attributes:
        process: fabrication-variation model (board offset, systematic
            field, random mismatch, nominal inverter delay).
        environment: delay-vs-(V, T) model; supplies per-device sensitivities.
        mux_delay_ratio: nominal MUX path delay as a fraction of the nominal
            inverter delay.  Applied to both the "1" and "0" paths, whose
            actual delays then vary independently.
        mux_variation_scale: relative strength of random variation on MUX
            paths compared to inverters (MUX paths are shorter structures,
            so their absolute mismatch is smaller).
    """

    process: ProcessVariationModel = field(default_factory=ProcessVariationModel)
    environment: EnvironmentModel = field(default_factory=EnvironmentModel)
    mux_delay_ratio: float = 0.4
    mux_variation_scale: float = 0.6

    def __post_init__(self) -> None:
        if self.mux_delay_ratio <= 0.0:
            raise ValueError("mux_delay_ratio must be positive")
        if self.mux_variation_scale < 0.0:
            raise ValueError("mux_variation_scale must be non-negative")

    def fabricate(
        self,
        unit_count: int,
        rng: np.random.Generator,
        name: str = "chip",
        placement: GridPlacement | None = None,
    ) -> Chip:
        """Fabricate one chip with ``unit_count`` delay units.

        Args:
            unit_count: number of delay units to place.
            rng: random generator; a fixed seed reproduces the same "wafer".
            name: chip identifier for reports.
            placement: die grid; defaults to a near-square grid that fits.
        """
        if unit_count < 1:
            raise ValueError(f"unit_count must be >= 1, got {unit_count}")
        if placement is None:
            placement = _default_placement(unit_count)
        coords = placement.coordinates(unit_count)

        fld = self.process.sample_field(rng)
        offset = self.process.sample_board_offset(rng)
        inverter_base = self.process.sample_delays(coords, fld, offset, rng)

        mux_nominal = self.process.parameters.nominal_delay * self.mux_delay_ratio
        mux_selected_base = self._sample_mux_delays(
            mux_nominal, coords, fld, offset, rng
        )
        mux_bypass_base = self._sample_mux_delays(
            mux_nominal, coords, fld, offset, rng
        )

        return Chip(
            name=name,
            coords=coords,
            inverter_base=inverter_base,
            mux_selected_base=mux_selected_base,
            mux_bypass_base=mux_bypass_base,
            inverter_sensitivities=self.environment.sample_sensitivities(
                unit_count, rng
            ),
            mux_selected_sensitivities=self.environment.sample_sensitivities(
                unit_count, rng
            ),
            mux_bypass_sensitivities=self.environment.sample_sensitivities(
                unit_count, rng
            ),
            environment=self.environment,
        )

    def fabricate_lot(
        self,
        chip_count: int,
        unit_count: int,
        rng: np.random.Generator,
        name_prefix: str = "board",
    ) -> list[Chip]:
        """Fabricate a lot of chips sharing the design but not the silicon."""
        if chip_count < 0:
            raise ValueError(f"chip_count must be non-negative, got {chip_count}")
        width = max(2, len(str(max(chip_count - 1, 0))))
        return [
            self.fabricate(unit_count, rng, name=f"{name_prefix}{i:0{width}d}")
            for i in range(chip_count)
        ]

    def _sample_mux_delays(
        self,
        mux_nominal: float,
        coords: np.ndarray,
        fld,
        offset: float,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """MUX path delays: same systematic trend, scaled random mismatch."""
        systematic = fld.evaluate(coords)
        sigma = self.process.parameters.sigma_random * self.mux_variation_scale
        random_part = rng.normal(0.0, sigma, size=len(coords))
        return mux_nominal * (1.0 + offset + systematic + random_part)


def _default_placement(unit_count: int) -> GridPlacement:
    """A near-square grid wide enough for ``unit_count`` devices."""
    columns = int(np.ceil(np.sqrt(unit_count)))
    rows = int(np.ceil(unit_count / columns))
    return GridPlacement(columns=columns, rows=rows)
