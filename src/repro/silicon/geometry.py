"""Die geometry: placing devices on a normalised grid.

Systematic process variation is spatial, so every device needs a die
coordinate.  We place devices on a regular ``columns x rows`` grid (like CLB
columns/rows on an FPGA) and normalise coordinates to ``[-1, 1]`` so the
polynomial variation field and the polynomial distiller share one domain.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["GridPlacement", "grid_coordinates"]


@dataclass(frozen=True)
class GridPlacement:
    """A rectangular device grid on the die.

    Attributes:
        columns: number of grid columns (x direction).
        rows: number of grid rows (y direction).
    """

    columns: int
    rows: int

    def __post_init__(self) -> None:
        if self.columns < 1 or self.rows < 1:
            raise ValueError(
                f"grid must be at least 1x1, got {self.columns}x{self.rows}"
            )

    @property
    def capacity(self) -> int:
        """Total number of grid sites."""
        return self.columns * self.rows

    def coordinates(self, count: int | None = None) -> np.ndarray:
        """Normalised ``(count, 2)`` coordinates in row-major placement order.

        Args:
            count: number of devices to place; defaults to the full grid.

        Raises:
            ValueError: if ``count`` exceeds the grid capacity.
        """
        if count is None:
            count = self.capacity
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        if count > self.capacity:
            raise ValueError(
                f"cannot place {count} devices on a "
                f"{self.columns}x{self.rows} grid ({self.capacity} sites)"
            )
        return grid_coordinates(self.columns, self.rows)[:count]


def grid_coordinates(columns: int, rows: int) -> np.ndarray:
    """Row-major normalised coordinates of a ``columns x rows`` grid.

    Column index ``c`` maps to ``x`` in ``[-1, 1]`` and row index ``r`` to
    ``y`` in ``[-1, 1]``; a single row or column maps to 0.
    """
    if columns < 1 or rows < 1:
        raise ValueError("grid dimensions must be positive")
    xs = np.linspace(-1.0, 1.0, columns) if columns > 1 else np.zeros(1)
    ys = np.linspace(-1.0, 1.0, rows) if rows > 1 else np.zeros(1)
    grid_y, grid_x = np.meshgrid(ys, xs, indexing="ij")
    return np.stack([grid_x.ravel(), grid_y.ravel()], axis=1)
