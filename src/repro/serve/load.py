"""Load generator: many concurrent clients, latency percentiles out.

Drives an :class:`~repro.serve.server.AuthServer` with ``clients``
concurrent connections, each issuing ``auths_per_client`` authentication
rounds cycling deterministically through the fleet's devices, measured
corners, and verbs (``attest``, ``regen``, and — when the device farm is
available in-process for genuine answers — ``challenge`` + ``auth``).

Every request is expected to *succeed and authenticate*: any transport
error, ``ok: false`` response, rejected genuine auth, or unverified key
counts as a failure, so a zero-failure run certifies the whole stack
under concurrency.  Latency is measured per request round (a
challenge+auth pair counts once).

Memory model: each worker folds its latencies into
:class:`~repro.obs.quantiles.QuantileSketch` instances (one overall, one
per verb) instead of an unbounded raw list, and the harness merges the
worker sketches at the end — so a million-request soak run costs the
same few kilobytes as a ten-request smoke test, and the reported
percentiles agree with exact ``np.percentile`` within the sketch's
documented 1% relative error (pinned by ``tests/test_serve_load.py``
via ``record_raw=True``).
"""

from __future__ import annotations

import threading
import time

import numpy as np

from ..obs.quantiles import QuantileSketch
from ..variation.environment import OperatingPoint
from .client import AuthClient, ServeClientError
from .fleet import DeviceFarm
from .protocol import is_retriable

__all__ = ["run_load", "run_overload", "percentiles"]


def percentiles(
    samples: list[float], points: tuple[float, ...] = (50.0, 90.0, 99.0)
) -> dict:
    """``{"p50": ..., "p90": ..., "p99": ..., "max": ...}`` of ``samples``.

    Exact (``np.percentile``) — the reference the sketch-based summary
    is pinned against; the harness itself no longer keeps raw samples
    unless asked to (``run_load(record_raw=True)``).
    """
    if not samples:
        return {f"p{point:g}": 0.0 for point in points} | {"max": 0.0}
    values = np.sort(np.asarray(samples, dtype=float))
    summary = {
        f"p{point:g}": float(np.percentile(values, point))
        for point in points
    }
    summary["max"] = float(values[-1])
    return summary


class _ClientWorker(threading.Thread):
    """One synthetic client: a connection plus its request loop."""

    def __init__(
        self,
        index: int,
        host: str,
        port: int,
        auths: int,
        device_ids: list[str],
        corners: list[OperatingPoint],
        farm: DeviceFarm | None,
        timeout: float,
        record_raw: bool = False,
    ):
        super().__init__(name=f"load-client-{index}", daemon=True)
        self.index = index
        self.host = host
        self.port = port
        self.auths = auths
        self.device_ids = device_ids
        self.corners = corners
        self.farm = farm
        self.timeout = timeout
        self.sketch = QuantileSketch()
        self.verb_sketches: dict[str, QuantileSketch] = {}
        self.raw_latencies_ms: list[float] | None = [] if record_raw else None
        self.failures: list[str] = []
        self.verb_counts: dict[str, int] = {}

    def _verbs(self) -> list[str]:
        verbs = ["attest", "regen"]
        if self.farm is not None:
            verbs.append("challenge-auth")
        return verbs

    def _observe(self, verb: str, latency_ms: float) -> None:
        self.sketch.observe(latency_ms)
        verb_sketch = self.verb_sketches.get(verb)
        if verb_sketch is None:
            verb_sketch = self.verb_sketches[verb] = QuantileSketch()
        verb_sketch.observe(latency_ms)
        if self.raw_latencies_ms is not None:
            self.raw_latencies_ms.append(latency_ms)

    def run(self) -> None:
        verbs = self._verbs()
        try:
            with AuthClient(
                self.host, self.port, timeout=self.timeout
            ) as client:
                for round_index in range(self.auths):
                    cursor = self.index * self.auths + round_index
                    device = self.device_ids[cursor % len(self.device_ids)]
                    corner = self.corners[cursor % len(self.corners)]
                    verb = verbs[cursor % len(verbs)]
                    self.verb_counts[verb] = self.verb_counts.get(verb, 0) + 1
                    started = time.perf_counter()
                    try:
                        failure = self._one_round(client, verb, device, corner)
                    except (ServeClientError, OSError) as exc:
                        failure = f"{verb} {device}: transport {exc}"
                    self._observe(
                        verb, (time.perf_counter() - started) * 1000.0
                    )
                    if failure is not None:
                        self.failures.append(failure)
        except (ServeClientError, OSError) as exc:
            self.failures.append(f"client {self.index}: connect {exc}")

    def _one_round(
        self, client: AuthClient, verb: str, device: str, corner
    ) -> str | None:
        """Run one request round; a failure description or ``None``."""
        if verb == "attest":
            response = client.attest(device, corner)
            if not (response.get("ok") and response.get("accepted")):
                return f"attest {device}: {response}"
        elif verb == "regen":
            response = client.regen(device, corner)
            if not (response.get("ok") and response.get("verified")):
                return f"regen {device}: {response}"
        else:  # challenge-auth round-trip with a genuine answer
            issued = client.challenge(device)
            if not issued.get("ok"):
                return f"challenge {device}: {issued}"
            twin = self.farm.device(device)
            bits = twin.evaluator.response(corner)
            answer = bits[np.array(issued["indices"])]
            verdict = client.auth(device, issued["challenge_id"], answer)
            if not (verdict.get("ok") and verdict.get("accepted")):
                return f"auth {device}: {verdict}"
        return None


def run_load(
    host: str,
    port: int,
    clients: int = 100,
    auths_per_client: int = 10,
    farm: DeviceFarm | None = None,
    device_ids: list[str] | None = None,
    corners: list[OperatingPoint] | None = None,
    timeout: float = 30.0,
    record_raw: bool = False,
) -> dict:
    """Drive the server with concurrent clients; return a summary dict.

    Args:
        host / port: server address.
        clients: concurrent connections (each its own thread).
        auths_per_client: authentication rounds per connection.
        farm: in-process device twins; enables genuine ``challenge``/
            ``auth`` rounds and supplies default device ids and corners.
        device_ids / corners: targets to cycle through (derived from
            ``farm`` when omitted).
        timeout: per-request socket timeout.
        record_raw: additionally keep every raw latency sample and
            return it as ``"raw_latencies_ms"`` — for pinning the sketch
            percentiles against the exact ones; leave off (the default)
            for constant-memory operation.

    Returns a plain-JSON summary: request/failure counts, wall seconds,
    throughput, per-verb counts, and sketch-backed latency percentiles
    in ms (overall and per verb).
    """
    if farm is not None:
        device_ids = device_ids or farm.device_ids
        if corners is None:
            corners = next(iter(farm)).corners
    if not device_ids:
        raise ValueError("no devices to drive load against")
    if not corners:
        raise ValueError("no operating points to authenticate at")
    workers = [
        _ClientWorker(
            index,
            host,
            port,
            auths_per_client,
            device_ids,
            corners,
            farm,
            timeout,
            record_raw=record_raw,
        )
        for index in range(clients)
    ]
    started = time.perf_counter()
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
    wall = time.perf_counter() - started
    overall = QuantileSketch()
    by_verb: dict[str, QuantileSketch] = {}
    for worker in workers:
        overall.merge(worker.sketch)
        for verb, sketch in worker.verb_sketches.items():
            if verb in by_verb:
                by_verb[verb].merge(sketch)
            else:
                merged = by_verb[verb] = QuantileSketch()
                merged.merge(sketch)
    failures = [text for worker in workers for text in worker.failures]
    verb_counts: dict[str, int] = {}
    for worker in workers:
        for verb, count in worker.verb_counts.items():
            verb_counts[verb] = verb_counts.get(verb, 0) + count
    requests = overall.count
    summary = {
        "clients": clients,
        "auths_per_client": auths_per_client,
        "requests": requests,
        "failures": len(failures),
        "failure_samples": failures[:10],
        "wall_seconds": wall,
        "throughput_rps": (requests / wall) if wall > 0 else 0.0,
        "verbs": dict(sorted(verb_counts.items())),
        "latency_ms": overall.quantiles(),
        "latency_ms_by_verb": {
            verb: by_verb[verb].quantiles() for verb in sorted(by_verb)
        },
    }
    if record_raw:
        summary["raw_latencies_ms"] = [
            ms
            for worker in workers
            for ms in (worker.raw_latencies_ms or [])
        ]
    return summary


class _OverloadWorker(threading.Thread):
    """One open-loop sender: fires on a fixed schedule, never waits to
    retry, and classifies every outcome instead of demanding success."""

    def __init__(
        self,
        index: int,
        workers: int,
        host: str,
        port: int,
        deadline_end: float,
        interval_s: float,
        device_ids: list[str],
        corners: list[OperatingPoint],
        deadline_ms: float | None,
        timeout: float,
    ):
        super().__init__(name=f"overload-client-{index}", daemon=True)
        self.index = index
        self.workers = workers
        self.host = host
        self.port = port
        self.deadline_end = deadline_end
        self.interval_s = interval_s
        self.device_ids = device_ids
        self.corners = corners
        self.deadline_ms = deadline_ms
        self.timeout = timeout
        self.sent = 0
        self.goodput = 0
        self.wrong = 0
        self.transport_errors = 0
        self.behind_schedule = 0
        self.shed_by_type: dict[str, int] = {}
        self.terminal_by_type: dict[str, int] = {}
        self.admitted_sketch = QuantileSketch()
        self.shed_sketch = QuantileSketch()

    def _classify(self, verb: str, response: dict, latency_ms: float) -> None:
        if response.get("ok"):
            verdict = response.get(
                "accepted" if verb == "attest" else "verified"
            )
            if verdict:
                self.goodput += 1
                self.admitted_sketch.observe(latency_ms)
            else:
                # A genuine device got a wrong auth verdict under load —
                # the one outcome overload must never produce.
                self.wrong += 1
            return
        error_type = str(response.get("error_type", "Unknown"))
        bucket = (
            self.shed_by_type
            if is_retriable(response)
            else self.terminal_by_type
        )
        bucket[error_type] = bucket.get(error_type, 0) + 1
        if bucket is self.shed_by_type:
            self.shed_sketch.observe(latency_ms)

    def run(self) -> None:
        # Open loop: request n fires at start + n * interval regardless
        # of how request n-1 fared — the arrival rate is the experiment's
        # independent variable.  Sheds are answered in microseconds, so a
        # protecting server keeps the sender on schedule; falling behind
        # is counted rather than hidden.
        client: AuthClient | None = None
        start = time.perf_counter() + self.index * (
            self.interval_s / self.workers
        )
        cursor = 0
        try:
            while True:
                target = start + cursor * self.interval_s
                now = time.perf_counter()
                if target >= self.deadline_end:
                    return
                if target > now:
                    time.sleep(target - now)
                elif now - target > self.interval_s:
                    self.behind_schedule += 1
                verb = ("attest", "regen")[cursor % 2]
                device = self.device_ids[cursor % len(self.device_ids)]
                corner = self.corners[cursor % len(self.corners)]
                cursor += 1
                self.sent += 1
                issued_at = time.perf_counter()
                try:
                    if client is None:
                        client = AuthClient(
                            self.host, self.port, timeout=self.timeout
                        )
                    caller = client.attest if verb == "attest" else client.regen
                    response = caller(
                        device, corner, deadline_ms=self.deadline_ms
                    )
                except (ServeClientError, OSError):
                    # Connection refused / reset / hung up: drop the
                    # connection and re-dial on the next scheduled send.
                    self.transport_errors += 1
                    if client is not None:
                        client.close()
                        client = None
                    continue
                self._classify(
                    verb,
                    response,
                    (time.perf_counter() - issued_at) * 1000.0,
                )
        finally:
            if client is not None:
                client.close()


def run_overload(
    host: str,
    port: int,
    offered_rps: float = 200.0,
    duration_s: float = 5.0,
    workers: int = 8,
    farm: DeviceFarm | None = None,
    device_ids: list[str] | None = None,
    corners: list[OperatingPoint] | None = None,
    deadline_ms: float | None = None,
    timeout: float = 10.0,
) -> dict:
    """Open-loop overload harness: offer a fixed arrival rate, report
    goodput versus shed.

    Unlike :func:`run_load` (closed loop: each client waits for its
    answer before asking again, so a slow server quietly lowers the
    offered rate), this drives the server at ``offered_rps`` regardless
    of how it responds — the regime where overload protection either
    works or collapses.  Nothing here is retried: every response is
    classified once as

    * **goodput** — ``ok`` and the auth verdict correct;
    * **shed** — a typed *retriable* rejection (``Overloaded``,
      ``RateLimited``, ``DeadlineExceeded``, ...), bucketed by type;
    * **wrong** — ``ok`` but a genuine device got a wrong verdict
      (must be zero: overload may cost throughput, never correctness);
    * **terminal** — a non-retriable error frame, bucketed by type;
    * **transport** — connection refused/reset/hung up.

    Admitted and shed latencies go to separate sketches: mixing them
    would let microsecond rejections mask a saturated compute path.

    Returns a plain-JSON summary with the counts above plus offered/
    achieved/goodput rates and both latency profiles.
    """
    if offered_rps <= 0.0:
        raise ValueError(f"offered_rps must be > 0, got {offered_rps}")
    if duration_s <= 0.0:
        raise ValueError(f"duration_s must be > 0, got {duration_s}")
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if farm is not None:
        device_ids = device_ids or farm.device_ids
        if corners is None:
            corners = next(iter(farm)).corners
    if not device_ids:
        raise ValueError("no devices to drive load against")
    if not corners:
        raise ValueError("no operating points to authenticate at")
    interval_s = workers / offered_rps
    started = time.perf_counter()
    deadline_end = started + duration_s
    threads = [
        _OverloadWorker(
            index,
            workers,
            host,
            port,
            deadline_end,
            interval_s,
            device_ids,
            corners,
            deadline_ms,
            timeout,
        )
        for index in range(workers)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started
    admitted = QuantileSketch()
    shed_sketch = QuantileSketch()
    shed_by_type: dict[str, int] = {}
    terminal_by_type: dict[str, int] = {}
    for thread in threads:
        admitted.merge(thread.admitted_sketch)
        shed_sketch.merge(thread.shed_sketch)
        for bucket, merged in (
            (thread.shed_by_type, shed_by_type),
            (thread.terminal_by_type, terminal_by_type),
        ):
            for error_type, count in bucket.items():
                merged[error_type] = merged.get(error_type, 0) + count
    sent = sum(thread.sent for thread in threads)
    goodput = sum(thread.goodput for thread in threads)
    shed = sum(shed_by_type.values())
    return {
        "offered_rps": offered_rps,
        "duration_s": duration_s,
        "workers": workers,
        "deadline_ms": deadline_ms,
        "sent": sent,
        "goodput": goodput,
        "shed": shed,
        "shed_by_type": dict(sorted(shed_by_type.items())),
        "wrong": sum(thread.wrong for thread in threads),
        "terminal_by_type": dict(sorted(terminal_by_type.items())),
        "transport_errors": sum(
            thread.transport_errors for thread in threads
        ),
        "behind_schedule": sum(
            thread.behind_schedule for thread in threads
        ),
        "wall_seconds": wall,
        "achieved_rps": (sent / wall) if wall > 0 else 0.0,
        "goodput_rps": (goodput / wall) if wall > 0 else 0.0,
        "admitted_latency_ms": admitted.quantiles(),
        "shed_latency_ms": shed_sketch.quantiles(),
    }
