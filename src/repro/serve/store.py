"""Persistent, crash-safe CRP/helper-data store for enrolled devices.

One :class:`DeviceRecord` per enrolled device holds everything the
verifier needs in the field — the reference response bits, the fuzzy
extractor's public helper data, which response bits feed the extractor,
and a digest of the enrolled key so regeneration can be checked without
storing the key itself.

Durability follows the pipeline journal's pattern (``repro.pipeline.
journal``): the store is an append-only JSONL file, every record flushed
*and fsynced* before the mutating call returns, so an enrollment that was
acknowledged survives anything short of disk failure.  Recovery is
equally boring on purpose:

* a truncated trailing line — the signature of a crash mid-append — is
  discarded on open and the file is repaired (truncated back to the last
  intact record) before the next append, so the journal never grows a
  corrupted seam in the middle;
* eviction writes a tombstone record rather than rewriting the file;
  :meth:`CRPStore.compact` rewrites the journal atomically (tmp file +
  fsync + ``os.replace``) when tombstones pile up;
* records from an incompatible scheme version stop the replay at the
  first mismatch instead of guessing.

All mutating and reading entry points are thread-safe — the serve layer
calls them from one handler thread per connection.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from .. import obs
from ..crypto.fuzzy_extractor import HelperData
from .protocol import decode_bits, encode_bits

__all__ = ["STORE_SCHEME", "DeviceRecord", "CRPStore"]

#: Bumped if the record layout ever changes incompatibly.
STORE_SCHEME = "ropuf-crp-v1"


@dataclass(frozen=True, eq=False)
class DeviceRecord:
    """Everything the verifier stores about one enrolled device.

    Attributes:
        device_id: the device's identity (unique per store).
        reference_bits: the enrolled reference response.
        helper_offset: code-offset helper data (public).
        helper_salt: key-derivation salt (public).
        used_bits: response-bit indices feeding the fuzzy extractor
            (top-margin dark-bit mask, sorted).
        key_digest: SHA-256 hex digest of the enrolled key; lets the
            server verify a regenerated key without storing the key.
        enrolled_at: operating-point label of the enrollment corner.
    """

    device_id: str
    reference_bits: np.ndarray
    helper_offset: np.ndarray
    helper_salt: bytes
    used_bits: tuple[int, ...]
    key_digest: str
    enrolled_at: str

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "reference_bits", np.asarray(self.reference_bits, dtype=bool)
        )
        object.__setattr__(
            self, "helper_offset", np.asarray(self.helper_offset, dtype=bool)
        )
        if not self.device_id:
            raise ValueError("device_id must be non-empty")
        if self.reference_bits.ndim != 1 or len(self.reference_bits) == 0:
            raise ValueError("reference_bits must be a non-empty bit vector")
        if any(
            i < 0 or i >= len(self.reference_bits) for i in self.used_bits
        ):
            raise ValueError("used_bits index outside the reference response")

    @property
    def bit_count(self) -> int:
        return len(self.reference_bits)

    def helper(self) -> HelperData:
        """The record's helper data in the fuzzy extractor's shape."""
        return HelperData(offset=self.helper_offset, salt=self.helper_salt)

    def matches_key(self, key: bytes) -> bool:
        """Whether ``key`` hashes to the enrolled key digest."""
        return hashlib.sha256(key).hexdigest() == self.key_digest

    def to_payload(self) -> dict:
        """The record as plain-JSON data (inverse of :meth:`from_payload`)."""
        return {
            "device_id": self.device_id,
            "reference_bits": encode_bits(self.reference_bits),
            "helper_offset": encode_bits(self.helper_offset),
            "helper_salt": self.helper_salt.hex(),
            "used_bits": list(self.used_bits),
            "key_digest": self.key_digest,
            "enrolled_at": self.enrolled_at,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "DeviceRecord":
        """Rebuild a record from :meth:`to_payload` data.

        Raises:
            KeyError / ValueError / TypeError: on any malformed field —
                the store treats those as a corrupt journal line.
        """
        return cls(
            device_id=payload["device_id"],
            reference_bits=decode_bits(payload["reference_bits"]),
            helper_offset=decode_bits(payload["helper_offset"]),
            helper_salt=bytes.fromhex(payload["helper_salt"]),
            used_bits=tuple(int(i) for i in payload["used_bits"]),
            key_digest=payload["key_digest"],
            enrolled_at=payload["enrolled_at"],
        )


class CRPStore:
    """Append-only journal of device enrollments with an in-memory index.

    Args:
        path: journal file (created with parents on first append); ``None``
            keeps the store purely in memory — handy for benches and tests
            that do not exercise durability.
    """

    def __init__(self, path: str | Path | None = None) -> None:
        self.path = Path(path) if path is not None else None
        self._lock = threading.Lock()
        self._records: dict[str, DeviceRecord] = {}
        self._hits = 0
        self._misses = 0
        self._tombstones = 0
        self._load()

    # ------------------------------------------------------------------
    # Journal replay and repair
    # ------------------------------------------------------------------

    def _load(self) -> None:
        if self.path is None:
            return
        try:
            raw = self.path.read_bytes()
        except OSError:
            return
        good_bytes = 0
        with obs.span("serve.store.load", path=str(self.path)) as span:
            for line in raw.split(b"\n"):
                if not line.strip():
                    good_bytes += len(line) + 1
                    continue
                try:
                    record = json.loads(line.decode("utf-8"))
                    if record["scheme"] != STORE_SCHEME:
                        break
                    kind = record["kind"]
                    if kind == "enroll":
                        parsed = DeviceRecord.from_payload(record["device"])
                        self._records[parsed.device_id] = parsed
                    elif kind == "evict":
                        self._records.pop(record["device_id"], None)
                        self._tombstones += 1
                    else:
                        break
                except (ValueError, KeyError, TypeError):
                    # A garbled line: the crash-mid-append signature when
                    # it is the last one; either way nothing after it can
                    # be trusted, so replay stops here and the file is
                    # truncated back to the last intact record.
                    obs.counter_add("serve.store.truncated_tail")
                    break
                good_bytes += len(line) + 1
            span.set_attr("records", len(self._records))
        good_bytes = min(good_bytes, len(raw))
        if good_bytes < len(raw):
            with open(self.path, "r+b") as handle:
                handle.truncate(good_bytes)

    def _append(self, record: dict) -> None:
        if self.path is None:
            return
        line = json.dumps(record, separators=(",", ":"))
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        obs.counter_add("serve.store.appends")

    def probe_writable(self) -> bool:
        """Whether the journal's append path currently works.

        Opens the journal for append and fsyncs without writing a byte —
        surfacing permission loss, a vanished directory, or a dead disk
        without polluting the journal.  The serve layer uses this to
        decide when to leave degraded read-only mode
        (``docs/serving.md#failure-modes--operations``); an in-memory
        store is always "writable".
        """
        if self.path is None:
            return True
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with open(self.path, "a") as handle:
                handle.flush()
                os.fsync(handle.fileno())
            return True
        except OSError:
            return False

    # ------------------------------------------------------------------
    # CRUD
    # ------------------------------------------------------------------

    def enroll(self, record: DeviceRecord) -> None:
        """Durably add one device.

        Raises:
            ValueError: when the device is already enrolled (re-enrollment
                must be an explicit evict-then-enroll, so a stolen identity
                cannot silently overwrite the legitimate record).
        """
        with self._lock:
            if record.device_id in self._records:
                raise ValueError(
                    f"device {record.device_id!r} already enrolled"
                )
            self._append(
                {
                    "scheme": STORE_SCHEME,
                    "kind": "enroll",
                    "device": record.to_payload(),
                }
            )
            self._records[record.device_id] = record

    def get(self, device_id: str) -> DeviceRecord | None:
        """The device's record, or ``None`` (counted as a store miss)."""
        with self._lock:
            record = self._records.get(device_id)
            if record is None:
                self._misses += 1
                obs.counter_add("serve.store.misses")
            else:
                self._hits += 1
                obs.counter_add("serve.store.hits")
            return record

    def evict(self, device_id: str) -> None:
        """Durably remove one device (a tombstone record is appended).

        Raises:
            KeyError: when the device is not enrolled.
        """
        with self._lock:
            if device_id not in self._records:
                raise KeyError(f"device {device_id!r} not enrolled")
            self._append(
                {
                    "scheme": STORE_SCHEME,
                    "kind": "evict",
                    "device_id": device_id,
                }
            )
            del self._records[device_id]
            self._tombstones += 1

    def compact(self) -> None:
        """Rewrite the journal with only live records (atomic replace)."""
        with self._lock:
            if self.path is None:
                self._tombstones = 0
                return
            tmp = self.path.with_suffix(
                self.path.suffix + f".compact.{os.getpid()}"
            )
            lines = [
                json.dumps(
                    {
                        "scheme": STORE_SCHEME,
                        "kind": "enroll",
                        "device": record.to_payload(),
                    },
                    separators=(",", ":"),
                )
                for _, record in sorted(self._records.items())
            ]
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with open(tmp, "w") as handle:
                handle.write("".join(line + "\n" for line in lines))
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, self.path)
            self._tombstones = 0
            obs.counter_add("serve.store.compactions")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def device_ids(self) -> list[str]:
        with self._lock:
            return sorted(self._records)

    def __contains__(self, device_id: str) -> bool:
        with self._lock:
            return device_id in self._records

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def stats(self) -> dict:
        """Hit/miss/occupancy counters (plain JSON)."""
        with self._lock:
            return {
                "devices": len(self._records),
                "hits": self._hits,
                "misses": self._misses,
                "tombstones": self._tombstones,
            }
