"""A resilient blocking client for the serve protocol.

Used by the load generator, the tests, and as reference code for anyone
wiring a real verifier to the service.  One :class:`AuthClient` holds one
persistent connection; calls are synchronous request/response pairs.

Resilience (opt-in via ``retries > 0``, pinned by
``tests/test_serve_client.py``):

* **automatic reconnect** — a dead or desynchronised connection is torn
  down and re-dialled on the next attempt, so a server restart costs one
  retry, not a client crash;
* **retries with jittered exponential backoff** — transport failures
  retry only *idempotent* verbs (:data:`IDEMPOTENT_VERBS`: a lost
  ``auth`` answer must not be replayed against a one-time challenge),
  while typed **retriable error frames** (``Overloaded`` /
  ``RateLimited`` / ``DeadlineExceeded`` / ... — the server's promise
  that nothing happened) retry for *every* verb.  Jitter is
  deterministic (sha256 over verb/attempt, the executor's idiom) so
  reruns back off identically while concurrent clients decorrelate;
* **circuit breaker** — ``breaker_threshold`` consecutive failures open
  the circuit: calls fail fast with :class:`CircuitOpen` (no socket
  traffic) until ``breaker_reset_s`` passes, then one half-open probe
  either closes it or re-opens.  A thousand retrying clients with open
  breakers is a recovering server; without them it is a thundering herd.

With the default ``retries=0`` the client behaves exactly like the
pre-overload one: every failure surfaces immediately.
"""

from __future__ import annotations

import hashlib
import socket
import time

import numpy as np

from ..variation.environment import OperatingPoint
from .protocol import (
    MAX_FRAME_BYTES,
    encode_bits,
    is_retriable,
    read_frame,
    write_frame,
)

__all__ = ["AuthClient", "ServeClientError", "CircuitOpen", "IDEMPOTENT_VERBS"]

#: Verbs safe to retry after an *ambiguous* transport failure (the
#: request may or may not have been processed).  ``auth`` is excluded:
#: its challenge is consumed server-side on first processing, so a blind
#: replay would read as a replay attack and report a false rejection.
#: ``evict`` is excluded as the only enrollment-mutating verb (though a
#: double evict is merely noisy, not unsafe).
IDEMPOTENT_VERBS = frozenset(
    {
        "ping",
        "devices",
        "challenge",
        "attest",
        "regen",
        "stats",
        "metrics",
        "health",
        "ready",
    }
)


class ServeClientError(Exception):
    """Transport-level failure: connection lost or stream desynchronised."""


class CircuitOpen(ServeClientError):
    """The client-side circuit breaker is open; call again after the
    cooldown (no request was sent)."""


class AuthClient:
    """One connection to an :class:`~repro.serve.server.AuthServer`.

    Args:
        host / port: server address (e.g. ``server.address``).
        timeout: per-operation socket timeout in seconds.
        max_frame_bytes: must match the server's ceiling.
        retries: extra attempts after a retriable failure (0 = the
            historical fail-fast behaviour; reconnect/backoff/breaker
            only engage when this is positive).
        backoff_s: base delay before the first retry; doubles per
            further attempt, stretched by up to ``jitter_fraction``
            deterministically per (verb, attempt).
        breaker_threshold: consecutive failed attempts that open the
            circuit breaker.
        breaker_reset_s: how long an open breaker rejects calls before
            allowing one half-open probe.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 10.0,
        max_frame_bytes: int = MAX_FRAME_BYTES,
        retries: int = 0,
        backoff_s: float = 0.05,
        backoff_multiplier: float = 2.0,
        jitter_fraction: float = 0.1,
        breaker_threshold: int = 5,
        breaker_reset_s: float = 1.0,
    ):
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if backoff_s < 0.0:
            raise ValueError(f"backoff_s must be >= 0, got {backoff_s}")
        if breaker_threshold < 1:
            raise ValueError(
                f"breaker_threshold must be >= 1, got {breaker_threshold}"
            )
        if breaker_reset_s <= 0.0:
            raise ValueError(
                f"breaker_reset_s must be > 0, got {breaker_reset_s}"
            )
        self.host = host
        self.port = port
        self.timeout = timeout
        self.max_frame_bytes = max_frame_bytes
        self.retries = retries
        self.backoff_s = backoff_s
        self.backoff_multiplier = backoff_multiplier
        self.jitter_fraction = jitter_fraction
        self.breaker_threshold = breaker_threshold
        self.breaker_reset_s = breaker_reset_s
        self._sock: socket.socket | None = None
        self._rfile = None
        self._wfile = None
        self._consecutive_failures = 0
        self._breaker_open_until: float | None = None
        self._retried = 0
        self._reconnects = 0
        self._breaker_opens = 0
        self._connect()

    # ------------------------------------------------------------------
    # Connection management
    # ------------------------------------------------------------------

    def _connect(self) -> None:
        self._sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        )
        self._rfile = self._sock.makefile("rb")
        self._wfile = self._sock.makefile("wb")

    def _drop_connection(self) -> None:
        for closer in (self._wfile, self._rfile, self._sock):
            if closer is not None:
                try:
                    closer.close()
                except OSError:
                    pass
        self._sock = self._rfile = self._wfile = None

    def _ensure_connected(self) -> None:
        if self._sock is None:
            self._connect()
            self._reconnects += 1

    # ------------------------------------------------------------------
    # Circuit breaker
    # ------------------------------------------------------------------

    @property
    def breaker_state(self) -> str:
        """``"closed"``, ``"open"``, or ``"half-open"``."""
        if self._breaker_open_until is None:
            return "closed"
        if time.monotonic() >= self._breaker_open_until:
            return "half-open"
        return "open"

    def _breaker_check(self) -> None:
        if self._breaker_open_until is None:
            return
        remaining = self._breaker_open_until - time.monotonic()
        if remaining > 0.0:
            raise CircuitOpen(
                f"circuit breaker open for another {remaining:.2f}s after "
                f"{self._consecutive_failures} consecutive failures"
            )
        # Half-open: let exactly this call through as the probe.

    def _breaker_failure(self) -> None:
        self._consecutive_failures += 1
        if (
            self.retries > 0
            and self._consecutive_failures >= self.breaker_threshold
        ):
            if self._breaker_open_until is None:
                self._breaker_opens += 1
            self._breaker_open_until = time.monotonic() + self.breaker_reset_s

    def _breaker_success(self) -> None:
        self._consecutive_failures = 0
        self._breaker_open_until = None

    # ------------------------------------------------------------------
    # The request path
    # ------------------------------------------------------------------

    def _backoff_delay(self, op: str, attempt: int) -> float:
        """Deterministically jittered exponential backoff (attempt >= 1)."""
        if self.backoff_s == 0.0:
            return 0.0
        base = self.backoff_s * self.backoff_multiplier ** (attempt - 1)
        digest = hashlib.sha256(f"{op}:{attempt}".encode()).digest()
        unit = int.from_bytes(digest[:8], "big") / 2**64
        return base * (1.0 + self.jitter_fraction * unit)

    def _exchange(self, op: str, fields: dict) -> dict:
        """One write/read on the live connection; raises on transport."""
        self._ensure_connected()
        try:
            write_frame(self._wfile, {"op": op, **fields}, self.max_frame_bytes)
            response = read_frame(self._rfile, self.max_frame_bytes)
        except OSError as exc:
            self._drop_connection()
            raise ServeClientError(f"transport failure: {exc}") from exc
        if response is None:
            self._drop_connection()
            raise ServeClientError("server closed the connection")
        return response

    def call(self, op: str, **fields) -> dict:
        """Send one ``{"op": op, **fields}`` frame, return the response.

        With ``retries > 0``: transport failures reconnect and retry
        idempotent verbs; typed retriable error frames retry every verb;
        both back off exponentially with deterministic jitter, and
        repeated failures open the circuit breaker.

        Raises:
            CircuitOpen: breaker is open — nothing was sent.
            ServeClientError: transport failed (and retries, if any,
                were exhausted or the verb is not idempotent).
        """
        attempts = self.retries + 1
        last_error: ServeClientError | None = None
        for attempt in range(1, attempts + 1):
            self._breaker_check()
            if attempt > 1:
                self._retried += 1
                delay = self._backoff_delay(op, attempt - 1)
                if delay > 0.0:
                    time.sleep(delay)
            try:
                response = self._exchange(op, fields)
            except ServeClientError as exc:
                self._breaker_failure()
                last_error = exc
                if op in IDEMPOTENT_VERBS and attempt < attempts:
                    continue
                raise
            if is_retriable(response):
                # A typed overload rejection: the server promises no
                # state changed, so every verb may retry — and the
                # breaker counts it, because hammering an overloaded
                # server is how overload becomes an outage.
                self._breaker_failure()
                if attempt < attempts:
                    continue
                return response
            # Any coherent response — success or a terminal error frame —
            # proves the server is healthy; only transport failures and
            # overload rejections count against the breaker.
            self._breaker_success()
            return response
        raise last_error  # pragma: no cover - loop always raises/returns

    # Convenience wrappers, one per verb -------------------------------

    def ping(self) -> dict:
        return self.call("ping")

    def health(self) -> dict:
        """Liveness + degraded-mode flag (see docs/serving.md)."""
        return self.call("health")

    def ready(self) -> dict:
        """Readiness: enrolled devices present and coalescer alive."""
        return self.call("ready")

    def devices(self) -> list[str]:
        return self.call("devices").get("devices", [])

    def challenge(self, device: str) -> dict:
        return self.call("challenge", device=device)

    def auth(self, device: str, challenge_id: str, answer) -> dict:
        """Answer a challenge; ``answer`` is a bit vector or bit string."""
        if not isinstance(answer, str):
            answer = encode_bits(np.asarray(answer))
        return self.call(
            "auth", device=device, challenge_id=challenge_id, answer=answer
        )

    def attest(
        self,
        device: str,
        op: OperatingPoint,
        deadline_ms: float | None = None,
    ) -> dict:
        fields = {"voltage": op.voltage, "temperature": op.temperature}
        if deadline_ms is not None:
            fields["deadline_ms"] = deadline_ms
        return self.call("attest", device=device, **fields)

    def regen(
        self,
        device: str,
        op: OperatingPoint,
        deadline_ms: float | None = None,
    ) -> dict:
        fields = {"voltage": op.voltage, "temperature": op.temperature}
        if deadline_ms is not None:
            fields["deadline_ms"] = deadline_ms
        return self.call("regen", device=device, **fields)

    def evict(self, device: str) -> dict:
        """Durably remove a device's enrollment (mutating verb)."""
        return self.call("evict", device=device)

    def stats(self) -> dict:
        return self.call("stats").get("stats", {})

    def metrics(self, format: str = "json") -> dict | str:
        """One telemetry scrape: the JSON exposition document, or the
        Prometheus text when ``format="prometheus"``."""
        response = self.call("metrics", format=format)
        if not response.get("ok"):
            raise ServeClientError(
                f"metrics scrape failed: {response.get('error')}"
            )
        return response["text" if format == "prometheus" else "metrics"]

    def retry_stats(self) -> dict:
        """Client-side resilience counters (plain JSON)."""
        return {
            "retried": self._retried,
            "reconnects": self._reconnects,
            "breaker_opens": self._breaker_opens,
            "breaker_state": self.breaker_state,
            "consecutive_failures": self._consecutive_failures,
        }

    def close(self) -> None:
        self._drop_connection()

    def __enter__(self) -> "AuthClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
