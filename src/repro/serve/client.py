"""A small blocking client for the serve protocol.

Used by the load generator, the tests, and as reference code for anyone
wiring a real verifier to the service.  One :class:`AuthClient` holds one
persistent connection; calls are synchronous request/response pairs.
"""

from __future__ import annotations

import socket

import numpy as np

from ..variation.environment import OperatingPoint
from .protocol import MAX_FRAME_BYTES, encode_bits, read_frame, write_frame

__all__ = ["AuthClient", "ServeClientError"]


class ServeClientError(Exception):
    """Transport-level failure: connection lost or stream desynchronised."""


class AuthClient:
    """One connection to an :class:`~repro.serve.server.AuthServer`.

    Args:
        host / port: server address (e.g. ``server.address``).
        timeout: per-operation socket timeout in seconds.
        max_frame_bytes: must match the server's ceiling.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 10.0,
        max_frame_bytes: int = MAX_FRAME_BYTES,
    ):
        self.max_frame_bytes = max_frame_bytes
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._rfile = self._sock.makefile("rb")
        self._wfile = self._sock.makefile("wb")

    def call(self, op: str, **fields) -> dict:
        """Send one ``{"op": op, **fields}`` frame, return the response.

        Raises:
            ServeClientError: when the server closed the connection or the
                transport failed mid-exchange.
        """
        try:
            write_frame(self._wfile, {"op": op, **fields}, self.max_frame_bytes)
            response = read_frame(self._rfile, self.max_frame_bytes)
        except OSError as exc:
            raise ServeClientError(f"transport failure: {exc}") from exc
        if response is None:
            raise ServeClientError("server closed the connection")
        return response

    # Convenience wrappers, one per verb -------------------------------

    def ping(self) -> dict:
        return self.call("ping")

    def devices(self) -> list[str]:
        return self.call("devices").get("devices", [])

    def challenge(self, device: str) -> dict:
        return self.call("challenge", device=device)

    def auth(self, device: str, challenge_id: str, answer) -> dict:
        """Answer a challenge; ``answer`` is a bit vector or bit string."""
        if not isinstance(answer, str):
            answer = encode_bits(np.asarray(answer))
        return self.call(
            "auth", device=device, challenge_id=challenge_id, answer=answer
        )

    def attest(self, device: str, op: OperatingPoint) -> dict:
        return self.call(
            "attest",
            device=device,
            voltage=op.voltage,
            temperature=op.temperature,
        )

    def regen(self, device: str, op: OperatingPoint) -> dict:
        return self.call(
            "regen",
            device=device,
            voltage=op.voltage,
            temperature=op.temperature,
        )

    def stats(self) -> dict:
        return self.call("stats").get("stats", {})

    def metrics(self, format: str = "json") -> dict | str:
        """One telemetry scrape: the JSON exposition document, or the
        Prometheus text when ``format="prometheus"``."""
        response = self.call("metrics", format=format)
        if not response.get("ok"):
            raise ServeClientError(
                f"metrics scrape failed: {response.get('error')}"
            )
        return response["text" if format == "prometheus" else "metrics"]

    def close(self) -> None:
        for closer in (self._wfile, self._rfile, self._sock):
            try:
                closer.close()
            except OSError:
                pass

    def __enter__(self) -> "AuthClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
