"""Rate limiting and connection budgets for the serve front-end.

Admission control (:mod:`~repro.serve.admission`) bounds how much work is
*in flight*; this module bounds how fast any single peer may *offer*
work, and how many connections the whole server will hold open:

* :class:`TokenBucket` — the classic refill-at-``rate``, burst-up-to-
  ``burst`` accounting.  Pure arithmetic over caller-supplied timestamps
  (no hidden clock reads), which keeps it property-testable: tokens
  never go negative, never exceed the burst ceiling, and refill is
  monotone in elapsed time (pinned by ``tests/test_serve_ratelimit.py``).

* :class:`RateLimiter` — one bucket per client key (the serve layer keys
  on peer address).  The key table is bounded: past ``max_keys`` the
  least-recently-seen bucket is evicted, so an address-scanning client
  cannot grow server memory without bound.

* :class:`ConnectionLimiter` — a global cap on simultaneously open
  connections plus per-connection accounting, so a slow-loris herd can
  exhaust at most ``max_connections`` handler threads, never the
  process.

Metrics: ``serve.ratelimit.limited``, ``serve.connections.rejected``.
"""

from __future__ import annotations

import threading
import time

from .. import obs

__all__ = ["TokenBucket", "RateLimiter", "ConnectionLimiter"]


class TokenBucket:
    """Token-bucket accounting over caller-supplied monotonic timestamps.

    Args:
        rate: tokens added per second.
        burst: bucket capacity (also the initial fill) — the largest
            burst a quiet client may spend at once.
    """

    __slots__ = ("rate", "burst", "tokens", "updated")

    def __init__(self, rate: float, burst: float):
        if not rate > 0.0:
            raise ValueError(f"rate must be > 0, got {rate}")
        if not burst >= 1.0:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self.updated = 0.0

    def refill(self, now: float) -> None:
        """Advance the bucket to ``now`` (time never runs backwards:
        an earlier timestamp adds nothing and does not rewind)."""
        elapsed = max(0.0, now - self.updated)
        self.updated = max(self.updated, now)
        self.tokens = min(self.burst, self.tokens + elapsed * self.rate)

    def try_acquire(self, now: float, amount: float = 1.0) -> bool:
        """Spend ``amount`` tokens if available; never goes negative."""
        self.refill(now)
        if self.tokens >= amount:
            self.tokens -= amount
            return True
        return False


class RateLimiter:
    """Per-key token buckets with a bounded, LRU-evicted key table.

    Args:
        rate: sustained requests per second allowed per key.
        burst: instantaneous burst allowance per key (default: one
            second's worth of rate, at least 1).
        max_keys: bucket-table bound; the least-recently-used bucket is
            dropped past it (a dropped key starts over with a full
            bucket — strictly more permissive, never less).
    """

    def __init__(
        self,
        rate: float,
        burst: float | None = None,
        max_keys: int = 4096,
    ):
        if max_keys < 1:
            raise ValueError(f"max_keys must be >= 1, got {max_keys}")
        self.rate = float(rate)
        self.burst = float(burst) if burst is not None else max(1.0, rate)
        self.max_keys = max_keys
        self._lock = threading.Lock()
        self._buckets: dict[str, TokenBucket] = {}
        self._allowed = 0
        self._limited = 0
        self._evicted = 0
        # Validate eagerly with the same messages TokenBucket would give.
        TokenBucket(self.rate, self.burst)

    def try_acquire(self, key: str, now: float | None = None) -> bool:
        """Whether ``key`` may send one more request right now."""
        if now is None:
            now = time.monotonic()
        with self._lock:
            bucket = self._buckets.pop(key, None)
            if bucket is None:
                bucket = TokenBucket(self.rate, self.burst)
            # Re-insert at the back: the dict is the LRU order.
            self._buckets[key] = bucket
            while len(self._buckets) > self.max_keys:
                self._buckets.pop(next(iter(self._buckets)))
                self._evicted += 1
            allowed = bucket.try_acquire(now)
            if allowed:
                self._allowed += 1
            else:
                self._limited += 1
        if not allowed:
            obs.counter_add("serve.ratelimit.limited")
        return allowed

    def stats(self) -> dict:
        with self._lock:
            return {
                "rate": self.rate,
                "burst": self.burst,
                "keys": len(self._buckets),
                "allowed": self._allowed,
                "limited": self._limited,
                "evicted_keys": self._evicted,
            }


class ConnectionLimiter:
    """A global cap on simultaneously open connections.

    Args:
        max_connections: slots available; ``try_acquire`` past the cap
            fails (the server answers with a retriable error and closes).
    """

    def __init__(self, max_connections: int):
        if max_connections < 1:
            raise ValueError(
                f"max_connections must be >= 1, got {max_connections}"
            )
        self.max_connections = max_connections
        self._lock = threading.Lock()
        self._active = 0
        self._peak = 0
        self._accepted = 0
        self._rejected = 0

    def try_acquire(self) -> bool:
        with self._lock:
            if self._active >= self.max_connections:
                self._rejected += 1
                rejected = True
            else:
                self._active += 1
                self._accepted += 1
                self._peak = max(self._peak, self._active)
                rejected = False
        if rejected:
            obs.counter_add("serve.connections.rejected")
        return not rejected

    def release(self) -> None:
        with self._lock:
            if self._active > 0:
                self._active -= 1

    @property
    def active(self) -> int:
        with self._lock:
            return self._active

    def stats(self) -> dict:
        with self._lock:
            return {
                "max_connections": self.max_connections,
                "active": self._active,
                "peak": self._peak,
                "accepted": self._accepted,
                "rejected": self._rejected,
            }
