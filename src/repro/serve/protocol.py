"""The serve layer's wire protocol: length-prefixed JSON frames.

One frame is a 4-byte big-endian unsigned payload length followed by that
many bytes of UTF-8 JSON encoding a single object.  Requests carry an
``"op"`` verb plus verb-specific fields; responses carry ``"ok"`` and
either result fields or ``"error"``/``"error_type"``.  The format is
deliberately trivial — any language with sockets and JSON can speak it —
and every parsing failure maps to a distinct exception so the server can
decide whether the *stream* is still synchronised:

* :class:`FrameMalformed` — the frame arrived whole but its payload is not
  a JSON object (or the declared length is zero).  Framing is intact, so
  the server answers with an error frame and keeps the connection.
* :class:`FrameTooLarge` — the declared length exceeds the negotiated
  maximum.  The payload is *not* read (a hostile length would stall the
  reader), so the stream position is lost: the server answers with an
  error frame and closes.
* :class:`FrameTruncated` — EOF arrived mid-frame (client died or was cut
  off).  Nothing can be answered; the connection is simply dropped.

Response bits travel as ``"0"``/``"1"`` strings (:func:`encode_bits` /
:func:`decode_bits`): a few hundred bits per response makes the ~8x size
overhead irrelevant, and frames stay grep-able in packet captures.

**Deadlines.**  Any request frame may carry ``"deadline_ms"`` — a
relative latency budget in milliseconds from frame receipt.  The server
sheds requests whose budget has run out instead of queueing doomed work
(see :mod:`~repro.serve.admission`); budgets are relative so client and
server clocks never need to agree.

**Error taxonomy.**  Error frames are
``{"ok": false, "error": ..., "error_type": ..., "retriable": ...}``
(:func:`error_frame`).  ``retriable: true`` is the server's promise that
*no state changed* — the request was refused before any work happened —
so the client may safely retry any verb after backing off.  The overload
family (:data:`RETRIABLE_ERROR_TYPES`: ``Overloaded``, ``RateLimited``,
``DeadlineExceeded``, ``TooManyConnections``, ``Unavailable``) is
retriable; everything else (``BadRequest``, ``UnknownDevice``,
``DegradedReadOnly``, ...) is terminal for that request.  Overload
rejections keep the connection alive and the stream in sync — the
offending frame was read whole.

See ``docs/serving.md`` for the full frame catalogue and
``docs/serving.md#failure-modes--operations`` for the taxonomy table.
"""

from __future__ import annotations

import json
import struct

import numpy as np

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "RETRIABLE_ERROR_TYPES",
    "ProtocolError",
    "FrameMalformed",
    "FrameTooLarge",
    "FrameTruncated",
    "read_frame",
    "write_frame",
    "error_frame",
    "is_retriable",
    "encode_bits",
    "decode_bits",
]

#: Bumped on incompatible changes to the frame layout or verb contracts.
PROTOCOL_VERSION = 1

#: Default ceiling on one frame's payload size.
MAX_FRAME_BYTES = 1 << 20

#: Error types whose frames default to ``"retriable": true`` — overload
#: rejections issued *before* any state changed, safe to retry for every
#: verb (including non-idempotent ones) after client-side backoff.
RETRIABLE_ERROR_TYPES = frozenset(
    {
        "Overloaded",
        "RateLimited",
        "DeadlineExceeded",
        "TooManyConnections",
        "Unavailable",
    }
)

_HEADER = struct.Struct(">I")


class ProtocolError(Exception):
    """Base class of every frame-level failure."""


class FrameMalformed(ProtocolError):
    """A complete frame arrived but its payload is not a JSON object."""


class FrameTooLarge(ProtocolError):
    """A frame's declared (or encoded) length exceeds the maximum."""


class FrameTruncated(ProtocolError):
    """The stream ended in the middle of a frame."""


def write_frame(wfile, obj: dict, max_bytes: int = MAX_FRAME_BYTES) -> None:
    """Serialise ``obj`` and write one frame to a binary file-like object.

    Raises:
        FrameTooLarge: when the encoded payload exceeds ``max_bytes``.
    """
    payload = json.dumps(obj, separators=(",", ":")).encode("utf-8")
    if len(payload) > max_bytes:
        raise FrameTooLarge(
            f"frame payload is {len(payload)} bytes (maximum {max_bytes})"
        )
    wfile.write(_HEADER.pack(len(payload)) + payload)
    wfile.flush()


def read_frame(rfile, max_bytes: int = MAX_FRAME_BYTES) -> dict | None:
    """Read one frame from a binary file-like object.

    Returns the decoded object, or ``None`` on a clean EOF *between*
    frames (the peer closed an idle connection).

    Raises:
        FrameTruncated: EOF inside a header or payload.
        FrameTooLarge: declared length exceeds ``max_bytes`` (the payload
            is left unread — the stream is no longer synchronised).
        FrameMalformed: zero-length frame, undecodable payload, or a
            payload that is not a JSON object.
    """
    header = rfile.read(_HEADER.size)
    if header == b"":
        return None
    if len(header) < _HEADER.size:
        raise FrameTruncated(
            f"EOF after {len(header)} of {_HEADER.size} header bytes"
        )
    (length,) = _HEADER.unpack(header)
    if length == 0:
        raise FrameMalformed("zero-length frame")
    if length > max_bytes:
        raise FrameTooLarge(
            f"frame declares {length} bytes (maximum {max_bytes})"
        )
    payload = rfile.read(length)
    if len(payload) < length:
        raise FrameTruncated(
            f"EOF after {len(payload)} of {length} payload bytes"
        )
    try:
        obj = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FrameMalformed(f"payload is not valid JSON: {exc}") from exc
    if not isinstance(obj, dict):
        raise FrameMalformed(
            f"frame payload must be a JSON object, got {type(obj).__name__}"
        )
    return obj


def error_frame(
    message: str, error_type: str, retriable: bool | None = None
) -> dict:
    """One ``ok: false`` response frame with the typed-error contract.

    ``retriable`` defaults from :data:`RETRIABLE_ERROR_TYPES`; pass it
    explicitly to override for a specific frame.
    """
    if retriable is None:
        retriable = error_type in RETRIABLE_ERROR_TYPES
    return {
        "ok": False,
        "error": message,
        "error_type": error_type,
        "retriable": bool(retriable),
    }


def is_retriable(response: dict) -> bool:
    """Whether an error response invites a retry.

    Trusts the frame's own ``retriable`` flag when present (any server
    that sets it is making the no-state-changed promise); falls back to
    the error-type taxonomy for older servers that do not send the flag.
    """
    if response.get("ok", False):
        return False
    flag = response.get("retriable")
    if flag is not None:
        return bool(flag)
    return response.get("error_type") in RETRIABLE_ERROR_TYPES


def encode_bits(bits) -> str:
    """A bit vector as a ``"0"``/``"1"`` string (JSON-safe, human-legible)."""
    return "".join("1" if b else "0" for b in np.asarray(bits).astype(bool))


def decode_bits(text: str) -> np.ndarray:
    """Inverse of :func:`encode_bits`.

    Raises:
        ValueError: on non-string input or characters outside ``01``.
    """
    if not isinstance(text, str) or not text:
        raise ValueError("bits must be a non-empty '0'/'1' string")
    if set(text) - {"0", "1"}:
        raise ValueError("bits may contain only '0' and '1'")
    return np.frombuffer(text.encode("ascii"), dtype=np.uint8) == ord("1")
