"""Admission control: bounded in-flight work and deadline-aware shedding.

Under overload a server has exactly one good move: refuse work it cannot
finish in time, *fast*, so the capacity it does have goes to requests
that can still succeed.  This module provides the two primitives the
serve stack uses for that:

* :class:`Deadline` — a client-supplied latency budget carried on the
  wire as ``deadline_ms``.  Budgets are relative (milliseconds from frame
  receipt), so client and server clocks never need to agree; the server
  converts to a monotonic expiry once and every later layer (admission
  gate, coalescer, dispatch) asks the same object "is this still worth
  doing?".  Remaining budget is clamped at zero — it never goes negative
  (pinned by property tests in ``tests/test_serve_admission.py``).

* :class:`AdmissionGate` — a bounded in-flight counter.  A request is
  either admitted (and holds a slot until its response is written) or
  rejected immediately with :class:`Overloaded`; nothing queues.  Queues
  are where overload goes to metastasise: a queued request waits, times
  out client-side, and then wastes a batch slot on an answer nobody
  reads.  The gate also sheds already-expired requests up front with
  :class:`DeadlineExceeded` — admitting doomed work is just a slower way
  of rejecting it.

Both rejection types are **retriable** on the wire (``"retriable": true``
in the error frame): the request was refused *before* any state changed,
so a client may safely retry any verb — including non-idempotent ones —
after backing off.

Metrics: ``serve.admission.admitted`` / ``.shed`` / ``.expired``.
"""

from __future__ import annotations

import math
import threading
import time

from .. import obs

__all__ = [
    "Overloaded",
    "DeadlineExceeded",
    "Deadline",
    "AdmissionGate",
    "parse_deadline",
]


class Overloaded(Exception):
    """The server is at its in-flight capacity; retry after backoff."""


class DeadlineExceeded(Exception):
    """The request's latency budget ran out before useful work happened."""


class Deadline:
    """A monotonic expiry derived from a relative client budget.

    Args:
        expires_at: ``time.monotonic()`` value after which the request
            is dead.
    """

    __slots__ = ("expires_at",)

    def __init__(self, expires_at: float):
        self.expires_at = float(expires_at)

    @classmethod
    def after_ms(cls, budget_ms: float, now: float | None = None) -> "Deadline":
        """A deadline ``budget_ms`` milliseconds from ``now``.

        Raises:
            ValueError: on a non-finite or non-positive budget.
        """
        budget_ms = float(budget_ms)
        if not (math.isfinite(budget_ms) and budget_ms > 0.0):
            raise ValueError(
                f"deadline_ms must be a positive finite number, got {budget_ms!r}"
            )
        if now is None:
            now = time.monotonic()
        return cls(now + budget_ms / 1e3)

    def remaining_ms(self, now: float | None = None) -> float:
        """Milliseconds of budget left; never negative."""
        if now is None:
            now = time.monotonic()
        return max(0.0, (self.expires_at - now) * 1e3)

    def remaining_s(self, now: float | None = None) -> float:
        """Seconds of budget left; never negative."""
        return self.remaining_ms(now) / 1e3

    def expired(self, now: float | None = None) -> bool:
        if now is None:
            now = time.monotonic()
        return now >= self.expires_at

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Deadline(remaining_ms={self.remaining_ms():.1f})"


def parse_deadline(request: dict, now: float | None = None) -> Deadline | None:
    """The request's ``deadline_ms`` field as a :class:`Deadline`.

    ``None`` when the field is absent (no budget: the request waits as
    long as the server's own timeouts allow).

    Raises:
        ValueError: when the field is present but not a positive finite
            number — the server maps this to a ``BadRequest`` frame.
    """
    budget_ms = request.get("deadline_ms")
    if budget_ms is None:
        return None
    if isinstance(budget_ms, bool) or not isinstance(budget_ms, (int, float)):
        raise ValueError(
            f"deadline_ms must be a number, got {type(budget_ms).__name__}"
        )
    return Deadline.after_ms(budget_ms, now=now)


class _Permit:
    """One admitted request's slot; releases on ``__exit__`` exactly once."""

    __slots__ = ("_gate", "_released")

    def __init__(self, gate: "AdmissionGate"):
        self._gate = gate
        self._released = False

    def release(self) -> None:
        if not self._released:
            self._released = True
            self._gate._release()

    def __enter__(self) -> "_Permit":
        return self

    def __exit__(self, *exc) -> None:
        self.release()


class AdmissionGate:
    """Bounded in-flight admission with deadline-aware load shedding.

    Args:
        max_inflight: how many requests may hold a slot simultaneously.

    ``try_admit`` either returns a context-manager permit or raises —
    nothing ever waits for a slot.  Use::

        with gate.try_admit(deadline):
            response = service.handle(request)
    """

    def __init__(self, max_inflight: int):
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        self.max_inflight = max_inflight
        self._lock = threading.Lock()
        self._inflight = 0
        self._admitted = 0
        self._shed = 0
        self._expired = 0
        self._peak_inflight = 0

    def try_admit(self, deadline: Deadline | None = None) -> _Permit:
        """Claim a slot, or reject fast.

        Raises:
            DeadlineExceeded: the request arrived already out of budget —
                shed before it can waste a slot.
            Overloaded: every slot is taken.
        """
        if deadline is not None and deadline.expired():
            with self._lock:
                self._expired += 1
            obs.counter_add("serve.admission.expired")
            raise DeadlineExceeded(
                "deadline expired before admission; nothing was done"
            )
        with self._lock:
            if self._inflight >= self.max_inflight:
                self._shed += 1
                shed = self._shed
            else:
                self._inflight += 1
                self._admitted += 1
                self._peak_inflight = max(self._peak_inflight, self._inflight)
                shed = None
        if shed is not None:
            obs.counter_add("serve.admission.shed")
            raise Overloaded(
                f"server is at capacity ({self.max_inflight} in flight); "
                f"retry after backoff"
            )
        obs.counter_add("serve.admission.admitted")
        return _Permit(self)

    def _release(self) -> None:
        with self._lock:
            self._inflight -= 1

    @property
    def inflight(self) -> int:
        with self._lock:
            return self._inflight

    def stats(self) -> dict:
        """Admission counters (plain JSON)."""
        with self._lock:
            return {
                "max_inflight": self.max_inflight,
                "inflight": self._inflight,
                "peak_inflight": self._peak_inflight,
                "admitted": self._admitted,
                "shed": self._shed,
                "expired": self._expired,
            }
