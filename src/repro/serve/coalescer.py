"""Request coalescing: concurrent auths ride one vectorized dispatch.

Every authentication or key regeneration needs one PUF evaluation.  Served
naively, N concurrent requests cost N independent delay reductions; the
:class:`RequestCoalescer` instead parks incoming requests for a short
window (or until a batch fills) and dispatches the whole batch through
:func:`repro.core.batch.coalesce_responses` — one ``einsum`` per stage
width for the entire fleet slice, the same ~80x path the sweep engines
ride.

Correctness contract (pinned by ``tests/test_serve_coalescer.py``):

* results are **byte-identical** to evaluating the same requests serially
  in submission order — the delay reduction is bit-stable under
  concatenation and noise is observed per request in order;
* a request that fails to gather (unknown corner, broken provider) fails
  *alone*: the rest of the batch dispatches normally;
* evaluator RNGs are only ever advanced from the single dispatcher
  thread, so devices' noise streams stay sequential no matter how many
  server threads submit.

Overload behaviour (pinned by the same suite plus
``tests/test_serve_admission.py``):

* a ``submit`` whose wait times out — or whose caller deadline expires —
  marks its job **abandoned** before raising, and the dispatcher skips
  abandoned jobs instead of burning batch capacity computing answers
  nobody will read;
* a job carrying an expired :class:`~repro.serve.admission.Deadline` is
  dropped *before* dispatch with
  :class:`~repro.serve.admission.DeadlineExceeded`;
* an unexpected exception escaping the dispatcher loop does not hang the
  service: every pending job fails with a clear ``RuntimeError``, the
  coalescer marks itself closed (later ``submit`` calls raise
  immediately rather than blocking out their full timeout), and the
  crash is counted in ``errors``/``serve.coalesce.crashed``.

The dispatcher is one daemon thread; ``submit`` blocks the calling
(connection-handler) thread until its result lands, so server concurrency
is unchanged — only the compute is batched.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from contextlib import nullcontext

import numpy as np

from .. import obs
from ..backends import current_backend
from ..core.batch import BatchEvaluator, coalesce_responses
from ..variation.environment import OperatingPoint
from .admission import Deadline, DeadlineExceeded

__all__ = ["RequestCoalescer"]


class _Job:
    """One pending evaluation and its completion signal."""

    __slots__ = (
        "evaluator",
        "op",
        "done",
        "result",
        "error",
        "request_id",
        "deadline",
        "abandoned",
    )

    def __init__(
        self,
        evaluator: BatchEvaluator,
        op: OperatingPoint,
        deadline: Deadline | None = None,
    ):
        self.evaluator = evaluator
        self.op = op
        self.done = threading.Event()
        self.result: np.ndarray | None = None
        self.error: BaseException | None = None
        # Set by the submitter (under the coalescer's condition lock)
        # when it gives up waiting; the dispatcher skips abandoned jobs.
        self.abandoned = False
        self.deadline = deadline
        # Captured at submission on the handler thread, so the dispatcher
        # can stamp batch spans with every member request's id.
        self.request_id = obs.current_request_id()


class RequestCoalescer:
    """Batches concurrent PUF evaluations onto the vectorized engine.

    Args:
        max_batch: dispatch as soon as this many requests are pending.
        max_wait_s: how long the first request of a batch may wait for
            company before the batch dispatches anyway.  The window bounds
            added latency; 2 ms is invisible next to socket round-trips.
    """

    def __init__(self, max_batch: int = 64, max_wait_s: float = 0.002):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_wait_s < 0.0:
            raise ValueError(f"max_wait_s must be >= 0, got {max_wait_s}")
        self.max_batch = max_batch
        self.max_wait_s = max_wait_s
        self._pending: deque[_Job] = deque()
        self._cond = threading.Condition()
        self._closed = False
        self._crash_error: BaseException | None = None
        self._stats_lock = threading.Lock()
        self._requests = 0
        self._errors = 0
        self._batches = 0
        self._batched_requests = 0
        self._max_batch_seen = 0
        self._dropped_abandoned = 0
        self._dropped_expired = 0
        self._thread = threading.Thread(
            target=self._run, name="ropuf-coalescer", daemon=True
        )
        self._thread.start()

    # ------------------------------------------------------------------
    # Caller side
    # ------------------------------------------------------------------

    def submit(
        self,
        evaluator: BatchEvaluator,
        op: OperatingPoint,
        timeout: float = 30.0,
        deadline: Deadline | None = None,
    ) -> np.ndarray:
        """Evaluate one response through the next coalesced batch.

        Blocks until the dispatcher delivers this request's bits, the
        ``timeout`` elapses, or ``deadline`` (when given) expires —
        whichever comes first.  A timed-out or expired job is marked
        abandoned so the dispatcher will not waste a batch slot on it.

        Raises:
            RuntimeError: when the coalescer is closed (cleanly or by a
                dispatcher crash) or the wait times out.
            DeadlineExceeded: when the caller's deadline ran out before
                the result landed (or had already run out at submission).
            Exception: whatever the evaluator's delay gathering raised for
                *this* request (e.g. ``KeyError`` for an unmeasured
                operating point).
        """
        if deadline is not None and deadline.expired():
            with self._stats_lock:
                self._dropped_expired += 1
            obs.counter_add("serve.coalesce.dropped_expired")
            raise DeadlineExceeded(
                "deadline expired before coalescer submission"
            )
        job = _Job(evaluator, op, deadline=deadline)
        with self._cond:
            if self._closed:
                raise self._closed_error()
            self._pending.append(job)
            self._cond.notify()
        # Count the submission at enqueue, not on success: errored and
        # timed-out requests must stay visible in stats() instead of
        # silently vanishing from the request total.
        with self._stats_lock:
            self._requests += 1
        wait = timeout
        if deadline is not None:
            wait = min(wait, deadline.remaining_s())
        if not job.done.wait(wait):
            # Abandon under the lock so the dispatcher either sees the
            # flag before gathering, or has already drained the job (in
            # which case the computed result is simply discarded).  A
            # result that lands in the race window between the failed
            # wait and the lock is still delivered normally.
            with self._cond:
                if not job.done.is_set():
                    job.abandoned = True
                    try:
                        self._pending.remove(job)
                    except ValueError:
                        pass
            if job.abandoned:
                with self._stats_lock:
                    self._errors += 1
                if deadline is not None and deadline.expired():
                    with self._stats_lock:
                        self._dropped_expired += 1
                    obs.counter_add("serve.coalesce.dropped_expired")
                    raise DeadlineExceeded(
                        "deadline expired while waiting for the "
                        "coalesced batch"
                    )
                raise RuntimeError(
                    f"coalesced evaluation timed out after {timeout}s"
                )
        if job.error is not None:
            with self._stats_lock:
                self._errors += 1
            raise job.error
        return job.result

    def close(self) -> None:
        """Stop accepting work; queued jobs drain, then the thread exits."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            self._cond.notify_all()
        self._thread.join(timeout=5.0)

    def __enter__(self) -> "RequestCoalescer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def closed(self) -> bool:
        """Whether the coalescer stopped accepting work (close or crash)."""
        with self._cond:
            return self._closed

    def stats(self) -> dict:
        """Batching counters (plain JSON): sizes, batch count, mean.

        ``requests`` counts every submission (incremented at enqueue),
        ``errors`` the submissions that raised — delivery failures, wait
        timeouts, and dispatcher-crash failures — so ``requests -
        errors`` is the success total.  ``dropped_abandoned`` and
        ``dropped_expired`` count the jobs the dispatcher (or ``submit``
        itself) shed without evaluating.
        """
        with self._stats_lock:
            batches = self._batches
            batched = self._batched_requests
            return {
                "requests": self._requests,
                "errors": self._errors,
                "batches": batches,
                "max_batch": self._max_batch_seen,
                "mean_batch": (batched / batches) if batches else 0.0,
                "dropped_abandoned": self._dropped_abandoned,
                "dropped_expired": self._dropped_expired,
                "crashed": self._crash_error is not None,
            }

    # ------------------------------------------------------------------
    # Dispatcher side
    # ------------------------------------------------------------------

    def _closed_error(self) -> RuntimeError:
        if self._crash_error is not None:
            return RuntimeError(
                f"coalescer is closed: dispatcher crashed with "
                f"{self._crash_error!r}"
            )
        return RuntimeError("coalescer is closed")

    def _collect(self) -> list[_Job] | None:
        """Wait for work, then drain up to one batch (None on close)."""
        with self._cond:
            while not self._pending and not self._closed:
                self._cond.wait()
            if not self._pending and self._closed:
                return None
            deadline = time.monotonic() + self.max_wait_s
            while (
                len(self._pending) < self.max_batch and not self._closed
            ):
                remaining = deadline - time.monotonic()
                if remaining <= 0.0:
                    break
                self._cond.wait(timeout=remaining)
            batch = []
            while self._pending and len(batch) < self.max_batch:
                batch.append(self._pending.popleft())
            return batch

    def _run(self) -> None:
        # The guard around the loop is the difference between "one batch
        # failed" and "the service hangs": without it, an exception from
        # anywhere but the evaluator (a broken metrics hook, a bug in
        # batch bookkeeping) kills this thread silently and every later
        # submit() blocks for its full timeout.
        batch: list[_Job] = []
        try:
            while True:
                collected = self._collect()
                if collected is None:
                    return
                batch = collected
                self._dispatch(batch)
                batch = []
        except BaseException as exc:  # noqa: BLE001 - must fail pending jobs
            self._crash(exc, batch)

    def _crash(self, exc: BaseException, batch: list[_Job]) -> None:
        """Dispatcher died: fail everything in flight, close the shop."""
        with self._cond:
            self._closed = True
            self._crash_error = exc
            stranded = batch + list(self._pending)
            self._pending.clear()
            self._cond.notify_all()
        error = RuntimeError(f"coalescer dispatcher crashed: {exc!r}")
        failed = 0
        for job in stranded:
            if not job.done.is_set():
                job.error = error
                job.done.set()
                failed += 1
        with self._stats_lock:
            self._errors += failed
        obs.counter_add("serve.coalesce.crashed")

    def _dispatch(self, batch: list[_Job]) -> None:
        # Shed before gathering: jobs whose submitter already gave up
        # (abandoned) or whose deadline ran out must not consume a batch
        # slot — under overload those slots are exactly what is scarce.
        live: list[_Job] = []
        dropped_abandoned = 0
        dropped_expired = 0
        with self._cond:
            for job in batch:
                if job.abandoned:
                    dropped_abandoned += 1
                    job.done.set()
                else:
                    live.append(job)
        for job in list(live):
            if job.deadline is not None and job.deadline.expired():
                live.remove(job)
                dropped_expired += 1
                job.error = DeadlineExceeded(
                    "deadline expired before batch dispatch"
                )
                job.done.set()
        if dropped_abandoned or dropped_expired:
            with self._stats_lock:
                self._dropped_abandoned += dropped_abandoned
                self._dropped_expired += dropped_expired
            if dropped_abandoned:
                obs.counter_add(
                    "serve.coalesce.dropped_abandoned", dropped_abandoned
                )
            if dropped_expired:
                obs.counter_add(
                    "serve.coalesce.dropped_expired", dropped_expired
                )
        # Gather per job so one bad operating point fails only its own
        # request; everything that gathered cleanly is batched.
        ready: list[_Job] = []
        requests = []
        for job in live:
            try:
                requests.append(job.evaluator.delay_request(job.op))
                ready.append(job)
            except BaseException as exc:  # noqa: BLE001 - delivered to caller
                job.error = exc
                job.done.set()
        if ready:
            # Request-scoped tracing across the thread hop: the dispatch
            # span records every member request's id; when the batch
            # serves exactly one request, the dispatcher adopts that
            # request's context so the batch engine's own spans join the
            # same request tree.
            member_ids = sorted(
                {job.request_id for job in ready if job.request_id}
            )
            attrs = {"batch": len(ready), "backend": current_backend().name}
            if member_ids:
                attrs["request_ids"] = member_ids
            context = (
                obs.request_context(member_ids[0])
                if len(member_ids) == 1
                else nullcontext()
            )
            with context, obs.span("serve.coalesce.dispatch", **attrs):
                try:
                    responses = coalesce_responses(
                        [(job.evaluator, job.op) for job in ready],
                        requests=requests,
                    )
                    for job, bits in zip(ready, responses):
                        job.result = bits
                except BaseException as exc:  # noqa: BLE001
                    for job in ready:
                        job.error = exc
                finally:
                    for job in ready:
                        job.done.set()
            with self._stats_lock:
                self._batches += 1
                self._batched_requests += len(ready)
                self._max_batch_seen = max(self._max_batch_seen, len(ready))
            obs.histogram_observe("serve.coalesce.batch_size", len(ready))
            obs.counter_add("serve.coalesce.batches")
