"""Threaded TCP front-end speaking the length-prefixed frame protocol.

:class:`AuthServer` is a stdlib ``socketserver.ThreadingTCPServer`` (one
daemon thread per connection, connections persistent: a client may send
any number of frames before closing).  All request semantics live in
:class:`~repro.serve.service.AuthService`; the handler's only jobs are
framing and survival:

* malformed-but-framed garbage gets an error frame and the connection
  continues;
* an oversized frame gets an error frame and the connection closes (the
  stream position is untrustworthy after a hostile length prefix);
* a truncated frame or mid-request disconnect just drops the connection;
* nothing that happens on one connection can affect another or the
  listener itself.
"""

from __future__ import annotations

import socketserver
import threading
import time

from .. import obs
from .protocol import (
    MAX_FRAME_BYTES,
    FrameMalformed,
    FrameTooLarge,
    FrameTruncated,
    read_frame,
    write_frame,
)
from .service import AuthService

__all__ = ["AuthServer"]


class _Handler(socketserver.StreamRequestHandler):
    """One connection: read frames, dispatch to the service, answer."""

    def handle(self) -> None:  # pragma: no cover - exercised over sockets
        server: "AuthServer" = self.server
        service = server.service
        obs.counter_add("serve.connections")
        while True:
            try:
                request = read_frame(self.rfile, server.max_frame_bytes)
            except FrameTooLarge as exc:
                service.note_protocol_error("FrameTooLarge")
                self._try_reply(
                    {
                        "ok": False,
                        "error": str(exc),
                        "error_type": "FrameTooLarge",
                    }
                )
                return
            except FrameMalformed as exc:
                service.note_protocol_error("FrameMalformed")
                if not self._try_reply(
                    {
                        "ok": False,
                        "error": str(exc),
                        "error_type": "FrameMalformed",
                    }
                ):
                    return
                continue
            except (FrameTruncated, OSError):
                service.note_protocol_error("FrameTruncated")
                return
            if request is None:
                return
            # The serve frame boundary mints the request id: everything
            # done for this frame — service handler, coalescer dispatch,
            # batch engine — runs inside its request_context and records
            # the id on its spans.  The tail sampler keys on the frame
            # latency measured here.
            request_id = obs.new_request_id()
            sampler = server.sampler
            if sampler is not None:
                sampler.begin(request_id)
            started = time.perf_counter()
            with obs.request_context(request_id):
                with obs.span(
                    "serve.request", verb=str(request.get("op"))
                ) as root:
                    response = service.handle(request)
                    root.set_attr("ok", bool(response.get("ok")))
            if sampler is not None:
                sampler.finish(
                    request_id, (time.perf_counter() - started) * 1000.0
                )
            if not self._try_reply(response):
                return

    def _try_reply(self, response: dict) -> bool:
        """Write one frame; False when the client is gone."""
        try:
            write_frame(self.wfile, response, self.server.max_frame_bytes)
            return True
        except (OSError, ValueError, FrameTooLarge):
            return False


class AuthServer(socketserver.ThreadingTCPServer):
    """The serving front-end: bind, start in the background, stop cleanly.

    Args:
        service: verb semantics (farm + store + coalescer).
        address: bind address; port 0 picks an ephemeral port — read the
            bound address back from :attr:`address`.
        max_frame_bytes: per-connection frame-size ceiling.

    Usage::

        with AuthServer(service) as server:
            server.start()
            host, port = server.address
            ...

    ``stop`` (or leaving the ``with`` block) shuts the listener down,
    closes the service's coalescer if the service owns it, and joins the
    serving thread; per-connection threads are daemons.
    """

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        service: AuthService,
        address: tuple[str, int] = ("127.0.0.1", 0),
        max_frame_bytes: int = MAX_FRAME_BYTES,
        sampler=None,
    ):
        super().__init__(address, _Handler)
        self.service = service
        self.max_frame_bytes = max_frame_bytes
        #: Optional :class:`repro.obs.TailSampler` — fed the per-frame
        #: latency of every request; retains slow requests' span trees.
        self.sampler = sampler
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        """The actually-bound (host, port)."""
        host, port = self.server_address[:2]
        return host, port

    def start(self) -> "AuthServer":
        """Serve in a background daemon thread until :meth:`stop`."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self.serve_forever,
            name="ropuf-serve",
            daemon=True,
            kwargs={"poll_interval": 0.05},
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Shut down the listener and join the serving thread."""
        if self._thread is not None:
            self.shutdown()
            self._thread.join(timeout=5.0)
            self._thread = None
        self.server_close()
        self.service.close()

    def __exit__(self, *exc) -> None:
        self.stop()
