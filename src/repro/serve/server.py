"""Threaded TCP front-end speaking the length-prefixed frame protocol.

:class:`AuthServer` is a stdlib ``socketserver.ThreadingTCPServer`` (one
daemon thread per connection, connections persistent: a client may send
any number of frames before closing).  All request semantics live in
:class:`~repro.serve.service.AuthService`; the handler's jobs are
framing, survival, and **overload protection**:

* malformed-but-framed garbage gets an error frame and the connection
  continues;
* an oversized frame gets an error frame and the connection closes (the
  stream position is untrustworthy after a hostile length prefix);
* a truncated frame or mid-request disconnect just drops the connection;
* nothing that happens on one connection can affect another or the
  listener itself.

The overload path (``docs/serving.md#failure-modes--operations``) runs
*before* any service work, in cost order:

1. **connection cap** — past ``max_connections`` a new connection gets
   one retriable ``TooManyConnections`` frame and is closed;
2. **idle/read timeout** — a connection that neither completes a frame
   nor sends its next one within ``idle_timeout`` seconds is closed, so
   a slow-loris can pin a handler thread for at most that long;
3. **per-peer rate limit** — a token bucket per client address; an
   over-rate frame gets a retriable ``RateLimited`` error and the
   connection (and stream sync) survives;
4. **deadline check + admission gate** — a frame whose ``deadline_ms``
   budget is already spent is shed with ``DeadlineExceeded``; otherwise
   the request must claim one of ``max_inflight`` slots or is shed with
   ``Overloaded``.  Cheap introspection verbs (:data:`ADMISSION_EXEMPT_VERBS`)
   bypass the gate so operators can always reach ``health``/``ready``/
   ``metrics``/``ping`` on an overloaded server.

Every rejection is a *typed, retriable* error frame sent before any
state changes — the resilient :class:`~repro.serve.client.AuthClient`
backs off and retries on exactly these.
"""

from __future__ import annotations

import socketserver
import threading
import time

from .. import obs
from .admission import AdmissionGate, DeadlineExceeded, Overloaded, parse_deadline
from .protocol import (
    MAX_FRAME_BYTES,
    FrameMalformed,
    FrameTooLarge,
    FrameTruncated,
    error_frame,
    read_frame,
    write_frame,
)
from .ratelimit import ConnectionLimiter, RateLimiter
from .service import AuthService

__all__ = ["AuthServer", "ADMISSION_EXEMPT_VERBS"]

#: Introspection verbs that bypass the admission gate (never the
#: connection cap or rate limit): an overloaded server must stay
#: observable, or operators cannot tell shedding from an outage.
ADMISSION_EXEMPT_VERBS = frozenset({"ping", "health", "ready", "metrics"})


class _Handler(socketserver.StreamRequestHandler):
    """One connection: read frames, dispatch to the service, answer."""

    def handle(self) -> None:  # pragma: no cover - exercised over sockets
        server: "AuthServer" = self.server
        service = server.service
        connections = server.connections
        if connections is not None and not connections.try_acquire():
            # Over the global cap: one retriable error frame, then close.
            # The frame (rather than a silent RST) lets a well-behaved
            # client back off instead of hammering reconnects.
            self._try_reply(
                error_frame(
                    f"server connection cap "
                    f"({connections.max_connections}) reached; retry "
                    f"after backoff",
                    "TooManyConnections",
                )
            )
            return
        try:
            obs.counter_add("serve.connections")
            self._serve_frames(server, service)
        finally:
            if connections is not None:
                connections.release()

    def _serve_frames(self, server: "AuthServer", service) -> None:
        if server.idle_timeout is not None:
            # One socket timeout covers both idle connections and
            # slow-loris mid-frame trickles: the blocking read must
            # make frame progress within the window or the connection
            # is dropped.
            self.connection.settimeout(server.idle_timeout)
        while True:
            try:
                request = read_frame(self.rfile, server.max_frame_bytes)
            except (TimeoutError, OSError) as exc:
                # socket.timeout is TimeoutError (an OSError subclass);
                # either way the connection is unusable mid-stream.
                if isinstance(exc, TimeoutError):
                    service.note_protocol_error("IdleTimeout")
                    obs.counter_add("serve.connections.idle_closed")
                else:
                    service.note_protocol_error("FrameTruncated")
                return
            except FrameTooLarge as exc:
                service.note_protocol_error("FrameTooLarge")
                self._try_reply(
                    error_frame(str(exc), "FrameTooLarge", retriable=False)
                )
                return
            except FrameMalformed as exc:
                service.note_protocol_error("FrameMalformed")
                if not self._try_reply(
                    error_frame(str(exc), "FrameMalformed", retriable=False)
                ):
                    return
                continue
            except FrameTruncated:
                service.note_protocol_error("FrameTruncated")
                return
            if request is None:
                return
            if not self._answer(server, service, request):
                return

    def _answer(self, server: "AuthServer", service, request: dict) -> bool:
        """Overload checks + dispatch for one frame; False to close."""
        if server.rate_limiter is not None:
            peer = str(self.client_address[0])
            if not server.rate_limiter.try_acquire(peer):
                service.note_overload("RateLimited")
                return self._try_reply(
                    error_frame(
                        f"per-client rate limit "
                        f"({server.rate_limiter.rate:g}/s) exceeded; "
                        f"retry after backoff",
                        "RateLimited",
                    )
                )
        try:
            deadline = parse_deadline(request)
        except ValueError as exc:
            return self._try_reply(
                error_frame(str(exc), "BadRequest", retriable=False)
            )
        verb = str(request.get("op"))
        permit = None
        if server.admission is not None and verb not in ADMISSION_EXEMPT_VERBS:
            try:
                permit = server.admission.try_admit(deadline)
            except DeadlineExceeded as exc:
                service.note_overload("DeadlineExceeded")
                return self._try_reply(
                    error_frame(str(exc), "DeadlineExceeded")
                )
            except Overloaded as exc:
                service.note_overload("Overloaded")
                return self._try_reply(error_frame(str(exc), "Overloaded"))
        try:
            # The serve frame boundary mints the request id: everything
            # done for this frame — service handler, coalescer dispatch,
            # batch engine — runs inside its request_context and records
            # the id on its spans.  The tail sampler keys on the frame
            # latency measured here.
            request_id = obs.new_request_id()
            sampler = server.sampler
            if sampler is not None:
                sampler.begin(request_id)
            started = time.perf_counter()
            with obs.request_context(request_id):
                with obs.span("serve.request", verb=verb) as root:
                    response = service.handle(request)
                    root.set_attr("ok", bool(response.get("ok")))
            if sampler is not None:
                sampler.finish(
                    request_id, (time.perf_counter() - started) * 1000.0
                )
        finally:
            if permit is not None:
                permit.release()
        return self._try_reply(response)

    def _try_reply(self, response: dict) -> bool:
        """Write one frame; False when the client is gone."""
        try:
            write_frame(self.wfile, response, self.server.max_frame_bytes)
            return True
        except (OSError, ValueError, FrameTooLarge):
            return False


class AuthServer(socketserver.ThreadingTCPServer):
    """The serving front-end: bind, start in the background, stop cleanly.

    Args:
        service: verb semantics (farm + store + coalescer).
        address: bind address; port 0 picks an ephemeral port — read the
            bound address back from :attr:`address`.
        max_frame_bytes: per-connection frame-size ceiling.
        max_inflight: admission-gate capacity — how many requests may be
            in service simultaneously; the rest are shed fast with
            retriable ``Overloaded`` frames.  ``None`` disables the gate.
        rate_limit: per-client-address sustained requests/second; over-
            rate frames get retriable ``RateLimited`` errors.  ``None``
            disables rate limiting.
        rate_burst: per-client burst allowance (default: one second of
            ``rate_limit``, at least 1).
        max_connections: global simultaneous-connection cap; ``None``
            disables it (the historical thread-per-connection behaviour).
        idle_timeout: per-connection read timeout in seconds — an idle
            or slow-loris connection is closed after this long without a
            completed frame.  ``None`` disables it.

    Usage::

        with AuthServer(service) as server:
            server.start()
            host, port = server.address
            ...

    ``stop`` (or leaving the ``with`` block) shuts the listener down,
    closes the service's coalescer if the service owns it, and joins the
    serving thread; per-connection threads are daemons.
    """

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        service: AuthService,
        address: tuple[str, int] = ("127.0.0.1", 0),
        max_frame_bytes: int = MAX_FRAME_BYTES,
        sampler=None,
        max_inflight: int | None = 64,
        rate_limit: float | None = None,
        rate_burst: float | None = None,
        max_connections: int | None = None,
        idle_timeout: float | None = None,
    ):
        super().__init__(address, _Handler)
        self.service = service
        self.max_frame_bytes = max_frame_bytes
        #: Optional :class:`repro.obs.TailSampler` — fed the per-frame
        #: latency of every request; retains slow requests' span trees.
        self.sampler = sampler
        if idle_timeout is not None and idle_timeout <= 0.0:
            raise ValueError(f"idle_timeout must be > 0, got {idle_timeout}")
        self.idle_timeout = idle_timeout
        self.admission = (
            AdmissionGate(max_inflight) if max_inflight is not None else None
        )
        self.rate_limiter = (
            RateLimiter(rate_limit, burst=rate_burst)
            if rate_limit is not None
            else None
        )
        self.connections = (
            ConnectionLimiter(max_connections)
            if max_connections is not None
            else None
        )
        # Let the stats verb expose the overload counters in one scrape.
        service.overload_stats = self.overload_stats
        self._thread: threading.Thread | None = None

    def overload_stats(self) -> dict:
        """Admission/rate-limit/connection counters (plain JSON)."""
        stats: dict = {}
        if self.admission is not None:
            stats["admission"] = self.admission.stats()
        if self.rate_limiter is not None:
            stats["ratelimit"] = self.rate_limiter.stats()
        if self.connections is not None:
            stats["connections"] = self.connections.stats()
        if self.idle_timeout is not None:
            stats["idle_timeout_s"] = self.idle_timeout
        return stats

    @property
    def address(self) -> tuple[str, int]:
        """The actually-bound (host, port)."""
        host, port = self.server_address[:2]
        return host, port

    def start(self) -> "AuthServer":
        """Serve in a background daemon thread until :meth:`stop`."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self.serve_forever,
            name="ropuf-serve",
            daemon=True,
            kwargs={"poll_interval": 0.05},
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Shut down the listener and join the serving thread."""
        if self._thread is not None:
            self.shutdown()
            self._thread.join(timeout=5.0)
            self._thread = None
        self.server_close()
        self.service.close()

    def __exit__(self, *exc) -> None:
        self.stop()
