"""Device fleets for the serve layer: digital twins behind the server.

The authentication service fronts a *device farm* — the measurement side
of the deployment.  In this reproduction each device is a synthetic board
from the VT-shaped dataset wrapped in a configurable PUF and its compiled
batch evaluator; on real hardware the same interface would be backed by a
board attached over JTAG/UART (ROADMAP item 5), which is why the farm is
deliberately a thin mapping from device ids to evaluators rather than
anything dataset-specific.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.batch import BatchEvaluator
from ..core.pairing import allocate_rings
from ..core.puf import BoardROPUF, Enrollment
from ..datasets.base import BoardRecord, RODataset
from ..datasets.vtlike import VTLikeConfig, generate_vt_like
from ..variation.environment import OperatingPoint

__all__ = ["FleetConfig", "Device", "DeviceFarm"]


@dataclass(frozen=True)
class FleetConfig:
    """Parameters of a synthetic serve fleet.

    The defaults yield 32 response bits per device (320 units, n = 5,
    64 rings) — comfortably above the BCH(31, 16, t=3) code length the
    default fuzzy extractor needs.

    Attributes:
        boards: fleet size (each board is measured over the full (V, T)
            grid, so any corner can be requested in the field).
        ro_count: delay units per board.
        stage_count: units per configurable ring.
        method: selection method (``"case1"``/``"case2"``/``"traditional"``).
        require_odd: force odd selected stage counts.
        seed: dataset master seed; the same seed rebuilds the same fleet,
            which is what lets a restarted server reuse a persisted store.
    """

    boards: int = 4
    ro_count: int = 320
    stage_count: int = 5
    method: str = "case1"
    require_odd: bool = True
    seed: int = 20140601


@dataclass
class Device:
    """One farm entry: a board, its PUF, and the compiled evaluator.

    Attributes:
        device_id: identity presented on the wire.
        board: the underlying measurements (corners define which operating
            points the device can be evaluated at).
        puf: the configurable PUF bound to the board.
        enrollment: the reference enrollment (test-time configuration).
        evaluator: compiled batch evaluator, shared by every evaluation.
    """

    device_id: str
    board: BoardRecord
    puf: BoardROPUF
    enrollment: Enrollment
    evaluator: BatchEvaluator

    @property
    def corners(self) -> list[OperatingPoint]:
        """Operating points this device can be measured at."""
        return self.board.corners


class DeviceFarm:
    """An ordered mapping of device ids to :class:`Device` twins."""

    def __init__(self, devices: list[Device], enroll_op: OperatingPoint):
        self._devices = {device.device_id: device for device in devices}
        if len(self._devices) != len(devices):
            raise ValueError("duplicate device ids in the fleet")
        self.enroll_op = enroll_op

    @classmethod
    def from_dataset(
        cls,
        dataset: RODataset,
        stage_count: int = 5,
        method: str = "case1",
        require_odd: bool = True,
    ) -> "DeviceFarm":
        """Wrap every swept board of ``dataset`` as one device.

        Swept boards are required because field authentications name
        arbitrary grid corners; enrollment happens at the dataset's
        nominal corner.
        """
        boards = dataset.swept_boards
        if not boards:
            raise ValueError("dataset has no swept boards to build a fleet")
        devices = []
        for board in boards:
            allocation = allocate_rings(board.ro_count, stage_count)
            puf = BoardROPUF(
                delay_provider=board.delay_provider(),
                allocation=allocation,
                method=method,
                require_odd=require_odd,
            )
            enrollment = puf.enroll(dataset.nominal)
            devices.append(
                Device(
                    device_id=board.name,
                    board=board,
                    puf=puf,
                    enrollment=enrollment,
                    evaluator=puf.batch(enrollment),
                )
            )
        return cls(devices, enroll_op=dataset.nominal)

    @classmethod
    def from_config(cls, config: FleetConfig | None = None) -> "DeviceFarm":
        """Generate a synthetic fleet (board enrollment is deterministic)."""
        config = config or FleetConfig()
        dataset = generate_vt_like(
            VTLikeConfig(
                nominal_boards=0,
                swept_boards=config.boards,
                ro_count=config.ro_count,
                seed=config.seed,
            )
        )
        return cls.from_dataset(
            dataset,
            stage_count=config.stage_count,
            method=config.method,
            require_odd=config.require_odd,
        )

    def device(self, device_id: str) -> Device:
        """Raises ``KeyError`` for unknown ids (the service maps this to a
        clean protocol error)."""
        try:
            return self._devices[device_id]
        except KeyError:
            raise KeyError(f"unknown device {device_id!r}") from None

    @property
    def device_ids(self) -> list[str]:
        return sorted(self._devices)

    def __iter__(self):
        return iter(self._devices.values())

    def __len__(self) -> int:
        return len(self._devices)
