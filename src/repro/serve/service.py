"""The authentication service: verb handlers over farm + store + coalescer.

:class:`AuthService` is transport-free — it maps one request dict to one
response dict — so the socket server, the tests, and any future transport
(HTTP, in-process) share the exact same semantics.  Verbs:

``ping``
    Liveness and protocol version.
``devices``
    Enrolled device ids (from the store, not the farm — an evicted device
    stays physically attached but can no longer authenticate).
``challenge``
    Draw a one-time challenge over a device's stored reference response
    (:class:`repro.crypto.crp.Challenge` shape: bit indices + fold).
``auth``
    Verify a challenge answer against the stored reference within a
    Hamming-distance threshold.  Challenges are single-use: replaying a
    (challenge, answer) pair is rejected, as is answering a challenge
    issued for a different device.
``attest``
    Measure the *attached* device at a requested operating point (through
    the coalescer) and compare the fresh response against the stored
    reference — the counterfeit-detection shape: has the silicon behind
    this identity changed?
``regen``
    Measure the device and regenerate its fuzzy-extractor key from the
    stored helper data; the key is checked against the enrolled key
    digest before being released.
``stats``
    Service, coalescer, and store counters.
``metrics``
    Live telemetry exposition from the process
    :class:`~repro.obs.exporter.MetricsExporter`: the JSON document
    (counter rates over rolling windows, sketch quantiles per latency
    histogram) by default, the Prometheus text format with
    ``{"format": "prometheus"}``.  ``ropuf top`` polls this verb.

Every handler failure becomes an ``{"ok": false, "error": ...}`` response;
nothing a client sends can take the service down (pinned by the protocol
robustness tests).
"""

from __future__ import annotations

import hashlib
import secrets
import threading
import time
from typing import Callable

import numpy as np

from .. import obs
from ..crypto.crp import Challenge
from ..crypto.ecc import BCHCode
from ..crypto.fuzzy_extractor import FuzzyExtractor
from ..variation.environment import OperatingPoint
from .coalescer import RequestCoalescer
from .fleet import DeviceFarm
from .protocol import PROTOCOL_VERSION, decode_bits, encode_bits
from .store import CRPStore, DeviceRecord

__all__ = ["AuthService", "ServiceError"]


class ServiceError(Exception):
    """A request-level failure reported to the client as ``ok: false``."""

    def __init__(self, message: str, error_type: str = "ServiceError"):
        super().__init__(message)
        self.error_type = error_type


class AuthService:
    """Enrollment/authentication logic shared by every transport.

    Args:
        farm: the device twins the service can measure.
        store: persistent CRP/helper-data store (the verifier's state).
        coalescer: batches concurrent evaluations; a private one is
            created when omitted.
        threshold_fraction: accepted Hamming distance as a fraction of the
            compared width (defaults to the authenticator's 15%).
        extractor: fuzzy extractor for key enrollment/regeneration; its
            code length must fit the fleet's response width.
        challenge_width: response bits per challenge.
        seed: drives challenge drawing and helper-data generation.
        challenge_ttl_s: how long an issued challenge stays answerable.
            Expired challenges are rejected exactly like unknown ones and
            evicted, so clients that request challenges and never answer
            cannot grow the pending table without bound.
        max_pending_challenges: hard cap on simultaneously pending
            challenges; issuing past the cap evicts the oldest.
        exporter: metrics exposition source for the ``metrics`` verb; a
            private :class:`~repro.obs.exporter.MetricsExporter` over the
            process registry is created when omitted.
    """

    def __init__(
        self,
        farm: DeviceFarm,
        store: CRPStore,
        coalescer: RequestCoalescer | None = None,
        threshold_fraction: float = 0.15,
        extractor: FuzzyExtractor | None = None,
        challenge_width: int = 16,
        seed: int = 20140601,
        challenge_ttl_s: float = 120.0,
        max_pending_challenges: int = 4096,
        exporter=None,
    ):
        if not 0.0 < threshold_fraction < 0.5:
            raise ValueError(
                f"threshold_fraction must be in (0, 0.5), got "
                f"{threshold_fraction}"
            )
        if challenge_ttl_s <= 0.0:
            raise ValueError(
                f"challenge_ttl_s must be > 0, got {challenge_ttl_s}"
            )
        if max_pending_challenges < 1:
            raise ValueError(
                f"max_pending_challenges must be >= 1, got "
                f"{max_pending_challenges}"
            )
        self.farm = farm
        self.store = store
        self.coalescer = coalescer or RequestCoalescer()
        self._owns_coalescer = coalescer is None
        self.threshold_fraction = threshold_fraction
        self.extractor = extractor or FuzzyExtractor(
            code=BCHCode(m=5, t=3), key_bytes=16
        )
        self.challenge_width = challenge_width
        self.challenge_ttl_s = challenge_ttl_s
        self.max_pending_challenges = max_pending_challenges
        self.exporter = exporter if exporter is not None else (
            obs.MetricsExporter()
        )
        self._rng = np.random.default_rng(seed)
        # challenge_id -> (device_id, challenge, issued_at monotonic).
        # Insertion-ordered, so the first key is always the oldest —
        # both TTL sweeping and overflow eviction walk from the front.
        self._challenges: dict[str, tuple[str, Challenge, float]] = {}
        self._challenge_lock = threading.Lock()
        self._count_lock = threading.Lock()
        self._counts: dict[str, int] = {}
        self._verbs: dict[str, Callable[[dict], dict]] = {
            "ping": self._op_ping,
            "devices": self._op_devices,
            "challenge": self._op_challenge,
            "auth": self._op_auth,
            "attest": self._op_attest,
            "regen": self._op_regen,
            "stats": self._op_stats,
            "metrics": self._op_metrics,
        }

    # ------------------------------------------------------------------
    # Enrollment
    # ------------------------------------------------------------------

    def enroll_fleet(self) -> dict:
        """Enroll every farm device that the store does not already hold.

        A persisted store from an earlier run is *reused*: the fleet is
        rebuilt deterministically from its seed, so existing records stay
        valid across restarts — the crash-recovery story of the store
        tests.  Returns ``{"enrolled": [...], "reused": [...]}``.
        """
        enrolled, reused = [], []
        for device in self.farm:
            if device.device_id in self.store:
                reused.append(device.device_id)
                continue
            bits = device.enrollment.bits
            needed = self.extractor.response_bits
            if len(bits) < needed:
                raise ValueError(
                    f"device {device.device_id!r} yields {len(bits)} bits "
                    f"but the extractor's code needs {needed}"
                )
            order = np.argsort(
                -np.abs(device.enrollment.margins), kind="stable"
            )
            used = np.sort(order[:needed])
            key, helper = self.extractor.generate(bits[used], self._rng)
            self.store.enroll(
                DeviceRecord(
                    device_id=device.device_id,
                    reference_bits=bits,
                    helper_offset=helper.offset,
                    helper_salt=helper.salt,
                    used_bits=tuple(int(i) for i in used),
                    key_digest=hashlib.sha256(key).hexdigest(),
                    enrolled_at=self.farm.enroll_op.label(),
                )
            )
            enrolled.append(device.device_id)
        return {"enrolled": enrolled, "reused": reused}

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def handle(self, request: dict) -> dict:
        """One request dict in, one response dict out — never raises."""
        verb = request.get("op")
        handler = self._verbs.get(verb)
        if handler is None:
            self._count("errors")
            return self._error(
                f"unknown op {verb!r} (known: {sorted(self._verbs)})",
                "UnknownOp",
            )
        self._count(f"requests.{verb}")
        obs.counter_add(f"serve.requests.{verb}")
        try:
            with obs.timed(f"serve.latency_ms.{verb}"):
                return handler(request)
        except ServiceError as exc:
            self._count("errors")
            obs.counter_add("serve.errors")
            return self._error(str(exc), exc.error_type)
        except Exception as exc:  # noqa: BLE001 - the server must survive
            self._count("errors")
            obs.counter_add("serve.errors")
            return self._error(str(exc), type(exc).__name__)

    def note_protocol_error(self, error_type: str) -> None:
        """Fold a transport-level frame failure into the counters."""
        self._count(f"protocol_errors.{error_type}")
        obs.counter_add("serve.protocol_errors")

    def close(self) -> None:
        """Release the coalescer if this service created it."""
        if self._owns_coalescer:
            self.coalescer.close()

    # ------------------------------------------------------------------
    # Verb handlers
    # ------------------------------------------------------------------

    def _op_ping(self, request: dict) -> dict:
        return {"ok": True, "version": PROTOCOL_VERSION}

    def _op_devices(self, request: dict) -> dict:
        return {"ok": True, "devices": self.store.device_ids}

    def _op_challenge(self, request: dict) -> dict:
        record = self._record(request)
        width = min(self.challenge_width, record.bit_count)
        now = time.monotonic()
        with self._challenge_lock:
            self._sweep_expired(now)
            # Oldest-first overflow eviction: the dict is insertion
            # ordered, so the front entry is the longest-pending one.
            while len(self._challenges) >= self.max_pending_challenges:
                oldest = next(iter(self._challenges))
                del self._challenges[oldest]
                self._count("challenges.evicted")
                obs.counter_add("serve.challenges.evicted")
            indices = self._rng.choice(
                record.bit_count, size=width, replace=False
            )
            challenge = Challenge(
                indices=tuple(int(i) for i in np.sort(indices)), fold=1
            )
            challenge_id = secrets.token_hex(16)
            self._challenges[challenge_id] = (
                record.device_id,
                challenge,
                now,
            )
        return {
            "ok": True,
            "challenge_id": challenge_id,
            "indices": list(challenge.indices),
            "fold": challenge.fold,
        }

    def _op_auth(self, request: dict) -> dict:
        record = self._record(request)
        challenge_id = request.get("challenge_id")
        answer_text = request.get("answer")
        if not isinstance(challenge_id, str) or answer_text is None:
            raise ServiceError(
                "auth needs 'challenge_id' and 'answer'", "BadRequest"
            )
        now = time.monotonic()
        with self._challenge_lock:
            pending = self._challenges.pop(challenge_id, None)
        if pending is not None and now - pending[2] > self.challenge_ttl_s:
            # Expired: counted separately, but rejected with the exact
            # same response as an unknown id — the client cannot tell
            # whether an id was ever issued.
            self._count("challenges.expired")
            obs.counter_add("serve.challenges.expired")
            pending = None
        if pending is None:
            self._count("auth.replayed")
            obs.counter_add("serve.auth.replayed")
            return {
                "ok": True,
                "accepted": False,
                "reason": "unknown or already-used challenge",
            }
        issued_for, challenge, _issued_at = pending
        if issued_for != record.device_id:
            return {
                "ok": True,
                "accepted": False,
                "reason": "challenge was issued for a different device",
            }
        answer = self._decode(answer_text, "answer")
        expected = record.reference_bits[np.array(challenge.indices)]
        if len(answer) != len(expected):
            raise ServiceError(
                f"answer has {len(answer)} bits, challenge expects "
                f"{len(expected)}",
                "BadRequest",
            )
        distance = int(np.count_nonzero(answer ^ expected))
        threshold = int(np.floor(self.threshold_fraction * len(expected)))
        accepted = distance <= threshold
        self._count("auth.accepted" if accepted else "auth.rejected")
        obs.counter_add(
            "serve.auth.accepted" if accepted else "serve.auth.rejected"
        )
        return {
            "ok": True,
            "accepted": accepted,
            "distance": distance,
            "threshold": threshold,
        }

    def _op_attest(self, request: dict) -> dict:
        record = self._record(request)
        bits = self._measure(record.device_id, self._operating_point(request))
        if len(bits) != record.bit_count:
            raise ServiceError(
                f"device yields {len(bits)} bits but the stored reference "
                f"has {record.bit_count}",
                "FleetMismatch",
            )
        distance = int(np.count_nonzero(bits ^ record.reference_bits))
        threshold = int(
            np.floor(self.threshold_fraction * record.bit_count)
        )
        accepted = distance <= threshold
        self._count("attest.accepted" if accepted else "attest.rejected")
        obs.counter_add(
            "serve.attest.accepted" if accepted else "serve.attest.rejected"
        )
        return {
            "ok": True,
            "accepted": accepted,
            "distance": distance,
            "threshold": threshold,
            "response": encode_bits(bits),
        }

    def _op_regen(self, request: dict) -> dict:
        record = self._record(request)
        bits = self._measure(record.device_id, self._operating_point(request))
        try:
            key = self.extractor.reproduce(
                bits[np.array(record.used_bits)], record.helper()
            )
        except ValueError as exc:
            raise ServiceError(
                f"key regeneration failed: {exc}", "KeyRegenError"
            ) from exc
        verified = record.matches_key(key)
        self._count("regen.verified" if verified else "regen.mismatched")
        return {"ok": True, "key": key.hex(), "verified": verified}

    def _op_stats(self, request: dict) -> dict:
        with self._count_lock:
            counts = dict(sorted(self._counts.items()))
        with self._challenge_lock:
            pending = len(self._challenges)
        return {
            "ok": True,
            "stats": {
                "service": counts,
                "challenges": {
                    "pending": pending,
                    "ttl_s": self.challenge_ttl_s,
                    "max_pending": self.max_pending_challenges,
                },
                "coalescer": self.coalescer.stats(),
                "store": self.store.stats(),
            },
        }

    def _op_metrics(self, request: dict) -> dict:
        fmt = request.get("format", "json")
        if fmt == "json":
            return {"ok": True, "metrics": self.exporter.collect()}
        if fmt == "prometheus":
            return {"ok": True, "text": self.exporter.prometheus()}
        raise ServiceError(
            f"unknown metrics format {fmt!r} (known: json, prometheus)",
            "BadRequest",
        )

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _record(self, request: dict) -> DeviceRecord:
        device_id = request.get("device")
        if not isinstance(device_id, str):
            raise ServiceError("request needs a 'device' field", "BadRequest")
        record = self.store.get(device_id)
        if record is None:
            raise ServiceError(
                f"device {device_id!r} is not enrolled", "UnknownDevice"
            )
        return record

    def _operating_point(self, request: dict) -> OperatingPoint:
        try:
            return OperatingPoint(
                voltage=float(request["voltage"]),
                temperature=float(request["temperature"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ServiceError(
                f"request needs numeric 'voltage' and 'temperature': {exc}",
                "BadRequest",
            ) from exc

    def _measure(self, device_id: str, op: OperatingPoint) -> np.ndarray:
        try:
            device = self.farm.device(device_id)
        except KeyError as exc:
            raise ServiceError(str(exc), "DeviceDetached") from exc
        try:
            return self.coalescer.submit(device.evaluator, op)
        except KeyError as exc:
            raise ServiceError(
                f"device {device_id!r} cannot be measured at that corner: "
                f"{exc}",
                "UnmeasuredCorner",
            ) from exc

    def _decode(self, text, field: str) -> np.ndarray:
        try:
            return decode_bits(text)
        except ValueError as exc:
            raise ServiceError(f"bad {field}: {exc}", "BadRequest") from exc

    def _error(self, message: str, error_type: str) -> dict:
        return {"ok": False, "error": message, "error_type": error_type}

    def _sweep_expired(self, now: float) -> None:
        """Drop every expired pending challenge (caller holds the lock).

        Insertion order is issue order, so expiry is monotone from the
        front: stop at the first still-live entry.
        """
        expired = 0
        for challenge_id, (_, _, issued_at) in list(self._challenges.items()):
            if now - issued_at <= self.challenge_ttl_s:
                break
            del self._challenges[challenge_id]
            expired += 1
        if expired:
            with self._count_lock:
                self._counts["challenges.expired"] = (
                    self._counts.get("challenges.expired", 0) + expired
                )
            obs.counter_add("serve.challenges.expired", expired)

    def _count(self, name: str) -> None:
        with self._count_lock:
            self._counts[name] = self._counts.get(name, 0) + 1
