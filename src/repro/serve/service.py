"""The authentication service: verb handlers over farm + store + coalescer.

:class:`AuthService` is transport-free — it maps one request dict to one
response dict — so the socket server, the tests, and any future transport
(HTTP, in-process) share the exact same semantics.  Verbs:

``ping``
    Liveness and protocol version.
``devices``
    Enrolled device ids (from the store, not the farm — an evicted device
    stays physically attached but can no longer authenticate).
``challenge``
    Draw a one-time challenge over a device's stored reference response
    (:class:`repro.crypto.crp.Challenge` shape: bit indices + fold).
``auth``
    Verify a challenge answer against the stored reference within a
    Hamming-distance threshold.  Challenges are single-use: replaying a
    (challenge, answer) pair is rejected, as is answering a challenge
    issued for a different device.
``attest``
    Measure the *attached* device at a requested operating point (through
    the coalescer) and compare the fresh response against the stored
    reference — the counterfeit-detection shape: has the silicon behind
    this identity changed?
``regen``
    Measure the device and regenerate its fuzzy-extractor key from the
    stored helper data; the key is checked against the enrolled key
    digest before being released.
``evict``
    Durably remove a device's enrollment (tombstone in the CRP store).
    The only enrollment-*mutating* verb on the wire: in degraded
    read-only mode it returns a typed ``DegradedReadOnly`` error.
``health``
    Liveness plus the degradation flag: a server that lost its store's
    append path keeps authenticating enrolled devices but reports
    ``status: "degraded"`` here until the append path heals (probed
    lazily, at most once per ``degraded_probe_interval_s``).
``ready``
    Readiness: whether the service can usefully serve — devices are
    enrolled and the coalescer is alive.  Load balancers should gate on
    this, not ``health``.
``stats``
    Service, coalescer, store, and (when fronted by an
    :class:`~repro.serve.server.AuthServer`) overload-protection
    counters.
``metrics``
    Live telemetry exposition from the process
    :class:`~repro.obs.exporter.MetricsExporter`: the JSON document
    (counter rates over rolling windows, sketch quantiles per latency
    histogram) by default, the Prometheus text format with
    ``{"format": "prometheus"}``.  ``ropuf top`` polls this verb.

Every handler failure becomes an ``{"ok": false, "error": ...,
"retriable": ...}`` response; nothing a client sends can take the service
down (pinned by the protocol robustness tests).  Requests carrying a
``deadline_ms`` budget propagate it into the coalescer, which drops the
job instead of evaluating it once the budget runs out (see
:mod:`~repro.serve.admission` and
``docs/serving.md#failure-modes--operations``).
"""

from __future__ import annotations

import hashlib
import secrets
import threading
import time
from typing import Callable

import numpy as np

from .. import obs
from ..crypto.crp import Challenge
from ..crypto.ecc import BCHCode
from ..crypto.fuzzy_extractor import FuzzyExtractor
from ..variation.environment import OperatingPoint
from .admission import Deadline, DeadlineExceeded, parse_deadline
from .coalescer import RequestCoalescer
from .fleet import DeviceFarm
from .protocol import (
    PROTOCOL_VERSION,
    decode_bits,
    encode_bits,
    error_frame,
)
from .store import CRPStore, DeviceRecord

__all__ = ["AuthService", "ServiceError"]


class ServiceError(Exception):
    """A request-level failure reported to the client as ``ok: false``.

    ``retriable`` rides into the error frame: ``True`` promises the
    request was refused before any state changed, so the client may
    safely retry after backoff (see
    :data:`repro.serve.protocol.RETRIABLE_ERROR_TYPES`).
    """

    def __init__(
        self,
        message: str,
        error_type: str = "ServiceError",
        retriable: bool = False,
    ):
        super().__init__(message)
        self.error_type = error_type
        self.retriable = retriable


class AuthService:
    """Enrollment/authentication logic shared by every transport.

    Args:
        farm: the device twins the service can measure.
        store: persistent CRP/helper-data store (the verifier's state).
        coalescer: batches concurrent evaluations; a private one is
            created when omitted.
        threshold_fraction: accepted Hamming distance as a fraction of the
            compared width (defaults to the authenticator's 15%).
        extractor: fuzzy extractor for key enrollment/regeneration; its
            code length must fit the fleet's response width.
        challenge_width: response bits per challenge.
        seed: drives challenge drawing and helper-data generation.
        challenge_ttl_s: how long an issued challenge stays answerable.
            Expired challenges are rejected exactly like unknown ones and
            evicted, so clients that request challenges and never answer
            cannot grow the pending table without bound.
        max_pending_challenges: hard cap on simultaneously pending
            challenges; issuing past the cap evicts the oldest.
        exporter: metrics exposition source for the ``metrics`` verb; a
            private :class:`~repro.obs.exporter.MetricsExporter` over the
            process registry is created when omitted.
        degraded_probe_interval_s: while in degraded read-only mode, how
            often (at most) a mutating request re-probes the store's
            append path before failing fast with ``DegradedReadOnly``.
    """

    def __init__(
        self,
        farm: DeviceFarm,
        store: CRPStore,
        coalescer: RequestCoalescer | None = None,
        threshold_fraction: float = 0.15,
        extractor: FuzzyExtractor | None = None,
        challenge_width: int = 16,
        seed: int = 20140601,
        challenge_ttl_s: float = 120.0,
        max_pending_challenges: int = 4096,
        exporter=None,
        degraded_probe_interval_s: float = 1.0,
    ):
        if not 0.0 < threshold_fraction < 0.5:
            raise ValueError(
                f"threshold_fraction must be in (0, 0.5), got "
                f"{threshold_fraction}"
            )
        if challenge_ttl_s <= 0.0:
            raise ValueError(
                f"challenge_ttl_s must be > 0, got {challenge_ttl_s}"
            )
        if max_pending_challenges < 1:
            raise ValueError(
                f"max_pending_challenges must be >= 1, got "
                f"{max_pending_challenges}"
            )
        self.farm = farm
        self.store = store
        self.coalescer = coalescer or RequestCoalescer()
        self._owns_coalescer = coalescer is None
        self.threshold_fraction = threshold_fraction
        self.extractor = extractor or FuzzyExtractor(
            code=BCHCode(m=5, t=3), key_bytes=16
        )
        self.challenge_width = challenge_width
        self.challenge_ttl_s = challenge_ttl_s
        self.max_pending_challenges = max_pending_challenges
        self.exporter = exporter if exporter is not None else (
            obs.MetricsExporter()
        )
        if degraded_probe_interval_s < 0.0:
            raise ValueError(
                f"degraded_probe_interval_s must be >= 0, got "
                f"{degraded_probe_interval_s}"
            )
        self.degraded_probe_interval_s = degraded_probe_interval_s
        # Degraded read-only mode: set when the store's append path
        # fails; reads (auth against enrolled records) keep working,
        # mutating verbs fail fast with a typed error until a lazy
        # re-probe sees the append path heal.
        self._degraded_lock = threading.Lock()
        self._degraded_reason: str | None = None
        self._degraded_last_probe = 0.0
        # Set by the fronting AuthServer so the stats verb can expose
        # admission/rate-limit/connection counters in one scrape.
        self.overload_stats: Callable[[], dict] | None = None
        self._rng = np.random.default_rng(seed)
        # challenge_id -> (device_id, challenge, issued_at monotonic).
        # Insertion-ordered, so the first key is always the oldest —
        # both TTL sweeping and overflow eviction walk from the front.
        self._challenges: dict[str, tuple[str, Challenge, float]] = {}
        self._challenge_lock = threading.Lock()
        self._count_lock = threading.Lock()
        self._counts: dict[str, int] = {}
        self._verbs: dict[str, Callable[[dict], dict]] = {
            "ping": self._op_ping,
            "devices": self._op_devices,
            "challenge": self._op_challenge,
            "auth": self._op_auth,
            "attest": self._op_attest,
            "regen": self._op_regen,
            "evict": self._op_evict,
            "health": self._op_health,
            "ready": self._op_ready,
            "stats": self._op_stats,
            "metrics": self._op_metrics,
        }

    # ------------------------------------------------------------------
    # Enrollment
    # ------------------------------------------------------------------

    def enroll_fleet(self) -> dict:
        """Enroll every farm device that the store does not already hold.

        A persisted store from an earlier run is *reused*: the fleet is
        rebuilt deterministically from its seed, so existing records stay
        valid across restarts — the crash-recovery story of the store
        tests.  Returns ``{"enrolled": [...], "reused": [...]}``.
        """
        enrolled, reused = [], []
        for device in self.farm:
            if device.device_id in self.store:
                reused.append(device.device_id)
                continue
            bits = device.enrollment.bits
            needed = self.extractor.response_bits
            if len(bits) < needed:
                raise ValueError(
                    f"device {device.device_id!r} yields {len(bits)} bits "
                    f"but the extractor's code needs {needed}"
                )
            order = np.argsort(
                -np.abs(device.enrollment.margins), kind="stable"
            )
            used = np.sort(order[:needed])
            key, helper = self.extractor.generate(bits[used], self._rng)
            self.store.enroll(
                DeviceRecord(
                    device_id=device.device_id,
                    reference_bits=bits,
                    helper_offset=helper.offset,
                    helper_salt=helper.salt,
                    used_bits=tuple(int(i) for i in used),
                    key_digest=hashlib.sha256(key).hexdigest(),
                    enrolled_at=self.farm.enroll_op.label(),
                )
            )
            enrolled.append(device.device_id)
        return {"enrolled": enrolled, "reused": reused}

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def handle(self, request: dict) -> dict:
        """One request dict in, one response dict out — never raises."""
        verb = request.get("op")
        handler = self._verbs.get(verb)
        if handler is None:
            self._count("errors")
            return self._error(
                f"unknown op {verb!r} (known: {sorted(self._verbs)})",
                "UnknownOp",
            )
        self._count(f"requests.{verb}")
        obs.counter_add(f"serve.requests.{verb}")
        try:
            with obs.timed(f"serve.latency_ms.{verb}"):
                return handler(request)
        except ServiceError as exc:
            self._count("errors")
            obs.counter_add("serve.errors")
            return self._error(str(exc), exc.error_type, exc.retriable)
        except Exception as exc:  # noqa: BLE001 - the server must survive
            self._count("errors")
            obs.counter_add("serve.errors")
            return self._error(str(exc), type(exc).__name__)

    @property
    def degraded(self) -> bool:
        """Whether the service is in degraded read-only mode."""
        with self._degraded_lock:
            return self._degraded_reason is not None

    def note_protocol_error(self, error_type: str) -> None:
        """Fold a transport-level frame failure into the counters."""
        self._count(f"protocol_errors.{error_type}")
        obs.counter_add("serve.protocol_errors")

    def note_overload(self, rejection_type: str) -> None:
        """Fold a front-end overload rejection into the counters.

        The :class:`~repro.serve.server.AuthServer` sheds these before
        ``handle`` ever runs, so they would otherwise be invisible in
        the service's own request totals.
        """
        self._count(f"overload.{rejection_type}")
        obs.counter_add("serve.overload.rejected")

    def close(self) -> None:
        """Release the coalescer if this service created it."""
        if self._owns_coalescer:
            self.coalescer.close()

    # ------------------------------------------------------------------
    # Verb handlers
    # ------------------------------------------------------------------

    def _op_ping(self, request: dict) -> dict:
        return {"ok": True, "version": PROTOCOL_VERSION}

    def _op_devices(self, request: dict) -> dict:
        return {"ok": True, "devices": self.store.device_ids}

    def _op_challenge(self, request: dict) -> dict:
        record = self._record(request)
        width = min(self.challenge_width, record.bit_count)
        now = time.monotonic()
        with self._challenge_lock:
            self._sweep_expired(now)
            # Oldest-first overflow eviction: the dict is insertion
            # ordered, so the front entry is the longest-pending one.
            while len(self._challenges) >= self.max_pending_challenges:
                oldest = next(iter(self._challenges))
                del self._challenges[oldest]
                self._count("challenges.evicted")
                obs.counter_add("serve.challenges.evicted")
            indices = self._rng.choice(
                record.bit_count, size=width, replace=False
            )
            challenge = Challenge(
                indices=tuple(int(i) for i in np.sort(indices)), fold=1
            )
            challenge_id = secrets.token_hex(16)
            self._challenges[challenge_id] = (
                record.device_id,
                challenge,
                now,
            )
        return {
            "ok": True,
            "challenge_id": challenge_id,
            "indices": list(challenge.indices),
            "fold": challenge.fold,
        }

    def _op_auth(self, request: dict) -> dict:
        record = self._record(request)
        challenge_id = request.get("challenge_id")
        answer_text = request.get("answer")
        if not isinstance(challenge_id, str) or answer_text is None:
            raise ServiceError(
                "auth needs 'challenge_id' and 'answer'", "BadRequest"
            )
        now = time.monotonic()
        with self._challenge_lock:
            pending = self._challenges.pop(challenge_id, None)
        if pending is not None and now - pending[2] > self.challenge_ttl_s:
            # Expired: counted separately, but rejected with the exact
            # same response as an unknown id — the client cannot tell
            # whether an id was ever issued.
            self._count("challenges.expired")
            obs.counter_add("serve.challenges.expired")
            pending = None
        if pending is None:
            self._count("auth.replayed")
            obs.counter_add("serve.auth.replayed")
            return {
                "ok": True,
                "accepted": False,
                "reason": "unknown or already-used challenge",
            }
        issued_for, challenge, _issued_at = pending
        if issued_for != record.device_id:
            return {
                "ok": True,
                "accepted": False,
                "reason": "challenge was issued for a different device",
            }
        answer = self._decode(answer_text, "answer")
        expected = record.reference_bits[np.array(challenge.indices)]
        if len(answer) != len(expected):
            raise ServiceError(
                f"answer has {len(answer)} bits, challenge expects "
                f"{len(expected)}",
                "BadRequest",
            )
        distance = int(np.count_nonzero(answer ^ expected))
        threshold = int(np.floor(self.threshold_fraction * len(expected)))
        accepted = distance <= threshold
        self._count("auth.accepted" if accepted else "auth.rejected")
        obs.counter_add(
            "serve.auth.accepted" if accepted else "serve.auth.rejected"
        )
        return {
            "ok": True,
            "accepted": accepted,
            "distance": distance,
            "threshold": threshold,
        }

    def _op_attest(self, request: dict) -> dict:
        record = self._record(request)
        bits = self._measure(
            record.device_id,
            self._operating_point(request),
            deadline=self._deadline(request),
        )
        if len(bits) != record.bit_count:
            raise ServiceError(
                f"device yields {len(bits)} bits but the stored reference "
                f"has {record.bit_count}",
                "FleetMismatch",
            )
        distance = int(np.count_nonzero(bits ^ record.reference_bits))
        threshold = int(
            np.floor(self.threshold_fraction * record.bit_count)
        )
        accepted = distance <= threshold
        self._count("attest.accepted" if accepted else "attest.rejected")
        obs.counter_add(
            "serve.attest.accepted" if accepted else "serve.attest.rejected"
        )
        return {
            "ok": True,
            "accepted": accepted,
            "distance": distance,
            "threshold": threshold,
            "response": encode_bits(bits),
        }

    def _op_evict(self, request: dict) -> dict:
        record = self._record(request)
        self._mutate_store(lambda: self.store.evict(record.device_id))
        self._count("evicted")
        obs.counter_add("serve.evicted")
        return {"ok": True, "evicted": record.device_id}

    def _op_health(self, request: dict) -> dict:
        degraded = self._check_degraded()
        return {
            "ok": True,
            "status": "degraded" if degraded else "ok",
            "degraded": degraded is not None,
            "reason": degraded,
            "version": PROTOCOL_VERSION,
        }

    def _op_ready(self, request: dict) -> dict:
        devices = len(self.store)
        coalescing = not self.coalescer.closed
        ready = devices > 0 and coalescing
        return {
            "ok": True,
            "ready": ready,
            "devices": devices,
            "coalescer_alive": coalescing,
        }

    def _op_regen(self, request: dict) -> dict:
        record = self._record(request)
        bits = self._measure(
            record.device_id,
            self._operating_point(request),
            deadline=self._deadline(request),
        )
        try:
            key = self.extractor.reproduce(
                bits[np.array(record.used_bits)], record.helper()
            )
        except ValueError as exc:
            raise ServiceError(
                f"key regeneration failed: {exc}", "KeyRegenError"
            ) from exc
        verified = record.matches_key(key)
        self._count("regen.verified" if verified else "regen.mismatched")
        return {"ok": True, "key": key.hex(), "verified": verified}

    def _op_stats(self, request: dict) -> dict:
        with self._count_lock:
            counts = dict(sorted(self._counts.items()))
        with self._challenge_lock:
            pending = len(self._challenges)
        stats = {
            "service": counts,
            "challenges": {
                "pending": pending,
                "ttl_s": self.challenge_ttl_s,
                "max_pending": self.max_pending_challenges,
            },
            "coalescer": self.coalescer.stats(),
            "store": self.store.stats(),
            "degraded": self.degraded,
        }
        if self.overload_stats is not None:
            stats["overload"] = self.overload_stats()
        return {"ok": True, "stats": stats}

    def _op_metrics(self, request: dict) -> dict:
        fmt = request.get("format", "json")
        if fmt == "json":
            return {"ok": True, "metrics": self.exporter.collect()}
        if fmt == "prometheus":
            return {"ok": True, "text": self.exporter.prometheus()}
        raise ServiceError(
            f"unknown metrics format {fmt!r} (known: json, prometheus)",
            "BadRequest",
        )

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _record(self, request: dict) -> DeviceRecord:
        device_id = request.get("device")
        if not isinstance(device_id, str):
            raise ServiceError("request needs a 'device' field", "BadRequest")
        record = self.store.get(device_id)
        if record is None:
            raise ServiceError(
                f"device {device_id!r} is not enrolled", "UnknownDevice"
            )
        return record

    def _operating_point(self, request: dict) -> OperatingPoint:
        try:
            return OperatingPoint(
                voltage=float(request["voltage"]),
                temperature=float(request["temperature"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ServiceError(
                f"request needs numeric 'voltage' and 'temperature': {exc}",
                "BadRequest",
            ) from exc

    def _deadline(self, request: dict) -> Deadline | None:
        try:
            return parse_deadline(request)
        except ValueError as exc:
            raise ServiceError(str(exc), "BadRequest") from exc

    def _measure(
        self,
        device_id: str,
        op: OperatingPoint,
        deadline: Deadline | None = None,
    ) -> np.ndarray:
        try:
            device = self.farm.device(device_id)
        except KeyError as exc:
            raise ServiceError(str(exc), "DeviceDetached") from exc
        try:
            return self.coalescer.submit(
                device.evaluator, op, deadline=deadline
            )
        except KeyError as exc:
            raise ServiceError(
                f"device {device_id!r} cannot be measured at that corner: "
                f"{exc}",
                "UnmeasuredCorner",
            ) from exc
        except DeadlineExceeded as exc:
            raise ServiceError(
                str(exc), "DeadlineExceeded", retriable=True
            ) from exc
        except RuntimeError as exc:
            # Coalescer closed (shutdown or dispatcher crash) or a
            # dispatch stall: retriable — another replica (or this one,
            # shortly) can serve the request; no state changed.
            raise ServiceError(
                f"evaluation unavailable: {exc}", "Unavailable", retriable=True
            ) from exc

    def _mutate_store(self, mutation: Callable[[], object]) -> object:
        """Run an enrollment-mutating store call with degraded-mode rails.

        In degraded mode the mutation fails fast with a typed
        ``DegradedReadOnly`` error unless a (rate-limited) re-probe of
        the store's append path says it healed.  An ``OSError`` escaping
        the mutation *enters* degraded mode: the memory index was not
        changed (the store appends before mutating it), so reads keep
        serving the last durable state.
        """
        reason = self._check_degraded()
        if reason is not None:
            raise ServiceError(
                f"store is in degraded read-only mode ({reason}); "
                f"enrollment-mutating verbs are disabled",
                "DegradedReadOnly",
            )
        try:
            return mutation()
        except OSError as exc:
            self._enter_degraded(str(exc))
            raise ServiceError(
                f"store append failed ({exc}); entering degraded "
                f"read-only mode",
                "DegradedReadOnly",
            ) from exc

    def _enter_degraded(self, reason: str) -> None:
        with self._degraded_lock:
            entered = self._degraded_reason is None
            self._degraded_reason = reason
            self._degraded_last_probe = time.monotonic()
        if entered:
            self._count("degraded.entered")
            obs.counter_add("serve.degraded.entered")

    def _check_degraded(self) -> str | None:
        """Current degraded reason, re-probing the append path lazily.

        Returns ``None`` when healthy.  While degraded, at most one
        probe per ``degraded_probe_interval_s`` touches the filesystem;
        every other caller fails fast on the cached reason.
        """
        with self._degraded_lock:
            reason = self._degraded_reason
            if reason is None:
                return None
            now = time.monotonic()
            if now - self._degraded_last_probe < self.degraded_probe_interval_s:
                return reason
            self._degraded_last_probe = now
        if self.store.probe_writable():
            with self._degraded_lock:
                self._degraded_reason = None
            self._count("degraded.recovered")
            obs.counter_add("serve.degraded.recovered")
            return None
        return reason

    def _decode(self, text, field: str) -> np.ndarray:
        try:
            return decode_bits(text)
        except ValueError as exc:
            raise ServiceError(f"bad {field}: {exc}", "BadRequest") from exc

    def _error(
        self, message: str, error_type: str, retriable: bool | None = None
    ) -> dict:
        return error_frame(message, error_type, retriable)

    def _sweep_expired(self, now: float) -> None:
        """Drop every expired pending challenge (caller holds the lock).

        Insertion order is issue order, so expiry is monotone from the
        front: stop at the first still-live entry.
        """
        expired = 0
        for challenge_id, (_, _, issued_at) in list(self._challenges.items()):
            if now - issued_at <= self.challenge_ttl_s:
                break
            del self._challenges[challenge_id]
            expired += 1
        if expired:
            with self._count_lock:
                self._counts["challenges.expired"] = (
                    self._counts.get("challenges.expired", 0) + expired
                )
            obs.counter_add("serve.challenges.expired", expired)

    def _count(self, name: str) -> None:
        with self._count_lock:
            self._counts[name] = self._counts.get(name, 0) + 1
