"""repro.serve — the CRP authentication service (``ropuf serve``).

Turns the experiment stack into a long-running serving system: a device
fleet is enrolled into a persistent, crash-safe CRP/helper-data store
(:mod:`~repro.serve.store`); challenge-response authentication, device
attestation, and fuzzy-extractor key regeneration are served over a
length-prefixed socket protocol (:mod:`~repro.serve.protocol`,
:mod:`~repro.serve.server`); and concurrent evaluations are coalesced
onto the vectorized batch engines (:mod:`~repro.serve.coalescer`,
:func:`repro.core.batch.coalesce_responses`) so throughput rides the
einsum path instead of per-request loops.

Quick start::

    from repro.serve import (
        AuthServer, AuthService, CRPStore, DeviceFarm, FleetConfig,
    )

    farm = DeviceFarm.from_config(FleetConfig(boards=4))
    service = AuthService(farm, CRPStore("crp.jsonl"))
    service.enroll_fleet()
    with AuthServer(service).start() as server:
        host, port = server.address
        ...

See ``docs/serving.md`` for the protocol frame catalogue, the store's
durability contract, the coalescing model, and the metrics it emits.
"""

from .admission import AdmissionGate, Deadline, DeadlineExceeded, Overloaded
from .client import IDEMPOTENT_VERBS, AuthClient, CircuitOpen, ServeClientError
from .coalescer import RequestCoalescer
from .fleet import Device, DeviceFarm, FleetConfig
from .load import percentiles, run_load, run_overload
from .protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    RETRIABLE_ERROR_TYPES,
    FrameMalformed,
    FrameTooLarge,
    FrameTruncated,
    ProtocolError,
    decode_bits,
    encode_bits,
    error_frame,
    is_retriable,
    read_frame,
    write_frame,
)
from .ratelimit import ConnectionLimiter, RateLimiter, TokenBucket
from .server import ADMISSION_EXEMPT_VERBS, AuthServer
from .service import AuthService, ServiceError
from .store import STORE_SCHEME, CRPStore, DeviceRecord

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "RETRIABLE_ERROR_TYPES",
    "ProtocolError",
    "FrameMalformed",
    "FrameTooLarge",
    "FrameTruncated",
    "read_frame",
    "write_frame",
    "error_frame",
    "is_retriable",
    "encode_bits",
    "decode_bits",
    "STORE_SCHEME",
    "CRPStore",
    "DeviceRecord",
    "FleetConfig",
    "Device",
    "DeviceFarm",
    "RequestCoalescer",
    "AuthService",
    "ServiceError",
    "AuthServer",
    "ADMISSION_EXEMPT_VERBS",
    "AdmissionGate",
    "Deadline",
    "DeadlineExceeded",
    "Overloaded",
    "TokenBucket",
    "RateLimiter",
    "ConnectionLimiter",
    "AuthClient",
    "ServeClientError",
    "CircuitOpen",
    "IDEMPOTENT_VERBS",
    "run_load",
    "run_overload",
    "percentiles",
]
