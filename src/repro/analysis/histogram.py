"""Text histograms for terminal-friendly figures (Fig. 3, Fig. 4)."""

from __future__ import annotations

import numpy as np

__all__ = ["bar_chart", "histogram_lines"]


def bar_chart(
    labels: list[str],
    values: np.ndarray,
    width: int = 50,
    unit: str = "",
) -> str:
    """Horizontal bar chart: one labelled bar per value."""
    values = np.asarray(values, dtype=float)
    if len(labels) != len(values):
        raise ValueError(
            f"{len(labels)} labels but {len(values)} values"
        )
    peak = float(np.max(values)) if len(values) and np.max(values) > 0 else 1.0
    label_width = max((len(label) for label in labels), default=0)
    lines = []
    for label, value in zip(labels, values):
        bar = "#" * int(round(width * value / peak))
        lines.append(f"{label.rjust(label_width)} | {bar} {value:g}{unit}")
    return "\n".join(lines)


def histogram_lines(
    bin_centers: np.ndarray,
    counts: np.ndarray,
    width: int = 50,
    skip_empty_tails: bool = True,
) -> str:
    """Text rendering of a pre-binned histogram."""
    bin_centers = np.asarray(bin_centers)
    counts = np.asarray(counts, dtype=float)
    if bin_centers.shape != counts.shape:
        raise ValueError("bin_centers and counts must align")
    if skip_empty_tails and np.any(counts > 0):
        nonzero = np.nonzero(counts)[0]
        lo, hi = int(nonzero[0]), int(nonzero[-1]) + 1
        bin_centers = bin_centers[lo:hi]
        counts = counts[lo:hi]
    labels = [f"{c:g}" for c in bin_centers]
    return bar_chart(labels, counts, width=width)
