"""ASCII die heatmaps: visualise spatial delay structure in a terminal.

Used by the dataset-tour example and handy when debugging the distiller:
the systematic field shows up as a smooth gradient across the die, and a
well-distilled board looks like salt-and-pepper noise.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ascii_heatmap", "board_heatmap"]

#: Shading ramp from low to high.
_RAMP = " .:-=+*#%@"


def ascii_heatmap(values: np.ndarray, width: int | None = None) -> str:
    """Render a 2-D array as shaded ASCII (row 0 on top).

    Args:
        values: 2-D numeric array.
        width: optional horizontal repetition factor per cell (default 2,
            which roughly squares the character aspect ratio).
    """
    values = np.asarray(values, dtype=float)
    if values.ndim != 2 or values.size == 0:
        raise ValueError(f"expected a non-empty 2-D array, got {values.shape}")
    repeat = 2 if width is None else width
    if repeat < 1:
        raise ValueError("width must be >= 1")
    low = float(np.min(values))
    high = float(np.max(values))
    span = high - low
    if span == 0.0:
        normalised = np.zeros_like(values)
    else:
        normalised = (values - low) / span
    indices = np.minimum(
        (normalised * len(_RAMP)).astype(int), len(_RAMP) - 1
    )
    lines = []
    for row in indices:
        lines.append("".join(_RAMP[i] * repeat for i in row))
    return "\n".join(lines)


def board_heatmap(
    delays: np.ndarray, coords: np.ndarray, columns: int | None = None
) -> str:
    """Heatmap of per-device delays placed by their die coordinates.

    Devices are assumed to lie on a regular grid (as all datasets here do);
    the grid shape is inferred from the distinct coordinate values.
    """
    delays = np.asarray(delays, dtype=float)
    coords = np.asarray(coords, dtype=float)
    if coords.shape != (len(delays), 2):
        raise ValueError(
            f"coords shape {coords.shape} does not match {len(delays)} delays"
        )
    xs = np.unique(coords[:, 0])
    ys = np.unique(coords[:, 1])
    if columns is not None and len(xs) != columns:
        raise ValueError(
            f"inferred {len(xs)} columns but caller expected {columns}"
        )
    grid = np.full((len(ys), len(xs)), np.nan)
    x_index = {x: i for i, x in enumerate(xs)}
    y_index = {y: i for i, y in enumerate(ys)}
    for value, (x, y) in zip(delays, coords):
        grid[y_index[y], x_index[x]] = value
    filled = np.where(np.isnan(grid), np.nanmean(grid), grid)
    return ascii_heatmap(filled)
