"""ASCII table rendering for experiment reports.

Every experiment prints tables shaped like the paper's, so results can be
eyeballed against the original side by side.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Table", "format_percent"]


def format_percent(value: float, decimals: int = 2) -> str:
    """Render a percentage like the paper's tables (``"38.3"``, ``"~0"``).

    Values below 0.001% that are not exactly zero render as ``"~0"``,
    matching Table IV's convention.
    """
    if value == 0.0:
        return "0"
    if value < 0.001:
        return "~0"
    return f"{value:.{decimals}g}" if value < 10 else f"{value:.3g}"


@dataclass
class Table:
    """A simple column-aligned ASCII table.

    Attributes:
        headers: column titles.
        rows: cell values (converted with ``str``).
        title: optional caption printed above the table.
    """

    headers: list[str]
    rows: list[list] = field(default_factory=list)
    title: str = ""

    def add_row(self, *cells) -> None:
        """Append one row; must match the header count."""
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells but table has "
                f"{len(self.headers)} columns"
            )
        self.rows.append(list(cells))

    def render(self) -> str:
        """Render the table with aligned columns."""
        cells = [[str(c) for c in row] for row in self.rows]
        widths = [
            max(len(self.headers[i]), *(len(row[i]) for row in cells))
            if cells
            else len(self.headers[i])
            for i in range(len(self.headers))
        ]
        lines = []
        if self.title:
            lines.append(self.title)
        header = "  ".join(h.ljust(w) for h, w in zip(self.headers, widths))
        lines.append(header)
        lines.append("-" * len(header))
        for row in cells:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
