"""Full reproduction-report builder: every experiment, one document.

``ropuf report`` (or :func:`build_report`) runs the complete evaluation —
the paper's nine experiments plus the six ablations/extensions — and emits
a single markdown document with a pass/fail verdict per paper claim.  This
is the artifact a reviewer reads first.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

__all__ = ["ClaimCheck", "ReproductionReport", "build_report"]


@dataclass
class ClaimCheck:
    """One verifiable claim of the paper and its measured verdict.

    Attributes:
        claim: the paper's statement, paraphrased.
        holds: whether the reproduction confirms it.
        evidence: one-line measured summary.
    """

    claim: str
    holds: bool
    evidence: str


@dataclass
class ReproductionReport:
    """The complete report: rendered sections plus claim checks.

    Attributes:
        sections: (title, rendered text) for each experiment.
        claims: the claim checklist.
    """

    sections: list[tuple[str, str]] = field(default_factory=list)
    claims: list[ClaimCheck] = field(default_factory=list)

    @property
    def all_claims_hold(self) -> bool:
        return all(check.holds for check in self.claims)

    def to_markdown(self) -> str:
        lines = [
            "# Reproduction report — A Highly Flexible Ring Oscillator PUF",
            "",
            "## Claim checklist",
            "",
            "| verdict | claim | evidence |",
            "|---|---|---|",
        ]
        for check in self.claims:
            verdict = "PASS" if check.holds else "FAIL"
            lines.append(f"| {verdict} | {check.claim} | {check.evidence} |")
        lines.append("")
        for title, text in self.sections:
            lines.append(f"## {title}")
            lines.append("")
            lines.append("```")
            lines.append(text)
            lines.append("```")
            lines.append("")
        return "\n".join(lines)

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(self.to_markdown())
        return path


def build_report(dataset=None) -> ReproductionReport:
    """Run every experiment and assemble the reproduction report.

    Args:
        dataset: an :class:`~repro.datasets.base.RODataset`; defaults to the
            full paper-scale synthetic dataset (takes ~30 s).
    """
    from ..experiments import (
        ablations,
        config_tables,
        extensions,
        fig3_uniqueness,
        fig4_reliability,
        nist_tables,
        sec4e_threshold,
        table5_bits,
    )
    from ..experiments.common import dataset_or_default

    dataset = dataset_or_default(dataset)
    report = ReproductionReport()

    nist_case1 = nist_tables.run_nist_experiment(dataset, method="case1")
    report.sections.append(
        ("Table I — NIST, Case-1", nist_tables.format_result(nist_case1))
    )
    nist_case2 = nist_tables.run_nist_experiment(dataset, method="case2")
    report.sections.append(
        ("Table II — NIST, Case-2", nist_tables.format_result(nist_case2))
    )
    report.claims.append(
        ClaimCheck(
            claim="distilled PUF outputs pass the NIST battery (Tables I-II)",
            holds=nist_case1.passed and nist_case2.passed,
            evidence=(
                f"case1 {'PASS' if nist_case1.passed else 'FAIL'}, "
                f"case2 {'PASS' if nist_case2.passed else 'FAIL'} over "
                f"{nist_case1.streams.shape[0]} sequences"
            ),
        )
    )

    distiller_ablation = ablations.run_distiller_ablation(dataset)
    report.sections.append(
        (
            "A1 — distiller ablation",
            ablations.format_distiller_ablation(distiller_ablation),
        )
    )
    report.claims.append(
        ClaimCheck(
            claim="raw (undistilled) outputs fail the NIST battery",
            holds=not distiller_ablation.raw_passed,
            evidence=(
                "raw failing tests: "
                + (", ".join(distiller_ablation.raw_failed_tests) or "none")
            ),
        )
    )

    uniqueness = fig3_uniqueness.run_uniqueness_experiment(dataset)
    report.sections.append(
        ("Fig. 3 — uniqueness", fig3_uniqueness.format_result(uniqueness))
    )
    mean_hd = uniqueness.case1.mean_distance
    report.claims.append(
        ClaimCheck(
            claim="inter-chip HD is a bell near 48/96 bits (Fig. 3)",
            holds=abs(mean_hd - 48.0) < 5.0 and not uniqueness.case1.has_collision,
            evidence=f"mean {mean_hd:.2f} bits (paper 46.88), no collisions",
        )
    )

    # Table III/IV use n = 15 at paper scale; small datasets fall back to a
    # ring length their boards can host (keeping the study meaningful).
    config_stage_count = 15 if dataset.ro_count >= 16 * 2 * 15 else 7
    for method, title in (("case1", "Table III"), ("case2", "Table IV")):
        study = config_tables.run_config_study(
            dataset, method=method, stage_count=config_stage_count
        )
        report.sections.append(
            (
                f"{title} — configuration HDs ({method})",
                config_tables.format_result(study),
            )
        )
        if method == "case1":
            report.claims.append(
                ClaimCheck(
                    claim="best configurations are diverse, HD mass at 6-8 "
                    "(Table III)",
                    holds=int(np.argmax(study.hd_percentages)) in (6, 8)
                    and study.hd_percentages[0] < 0.05,
                    evidence=(
                        f"mode at HD {int(np.argmax(study.hd_percentages))}, "
                        f"duplicates {study.hd_percentages[0]:.3f}%"
                    ),
                )
            )
            report.claims.append(
                ClaimCheck(
                    claim="optimal configurations select about n/2 inverters",
                    holds=0.35 < study.mean_selected_fraction < 0.7,
                    evidence=f"mean fraction {study.mean_selected_fraction:.2f}",
                )
            )

    from ..core.pairing import rings_per_board

    fig4_stage_counts = tuple(
        n
        for n in fig4_reliability.FIG4_STAGE_COUNTS
        if rings_per_board(dataset.ro_count, n) >= 2
    )
    voltage = fig4_reliability.run_voltage_reliability(
        dataset, stage_counts=fig4_stage_counts
    )
    report.sections.append(
        ("Fig. 4 — voltage reliability", fig4_reliability.format_result(voltage))
    )
    long_rings = [s for s in voltage.subplots if s.stage_count >= 7]
    zero_at_7 = bool(long_rings) and all(
        np.all(s.configurable_flip_percent == 0.0) for s in long_rings
    )
    report.claims.append(
        ClaimCheck(
            claim="configurable PUF reaches 0% flips at n=7 (Fig. 4)",
            holds=zero_at_7,
            evidence=(
                f"mean flips n=7: {voltage.mean_configurable_flips(7):.2f}% vs "
                f"traditional {voltage.mean_traditional_flips(7):.2f}%"
            ),
        )
    )
    report.claims.append(
        ClaimCheck(
            claim="1-out-of-8 never flips but yields 1/4 the bits",
            holds=voltage.max_one_of_8_flips() == 0.0,
            evidence=f"max 1-of-8 flips {voltage.max_one_of_8_flips():.2f}%",
        )
    )

    temperature = fig4_reliability.run_temperature_reliability(
        dataset, stage_counts=fig4_stage_counts
    )
    report.sections.append(
        (
            "Sec. IV.D — temperature reliability",
            fig4_reliability.format_result(temperature),
        )
    )
    only_traditional = all(
        np.all(s.configurable_flip_percent == 0.0) for s in temperature.subplots
    )
    report.claims.append(
        ClaimCheck(
            claim="under temperature variation only the traditional PUF flips",
            holds=only_traditional,
            evidence=(
                "configurable 0%, traditional mean "
                f"{temperature.mean_traditional_flips(3):.2f}% at n=3"
            ),
        )
    )

    table5 = table5_bits.run_table5()
    report.sections.append(
        ("Table V — bits per board", table5_bits.format_result(table5))
    )
    report.claims.append(
        ClaimCheck(
            claim="Table V bit counts and the 4x hardware advantage",
            holds=all(row.matches_paper() for row in table5),
            evidence="80/48/32/24 vs 20/12/8/6 reproduced exactly",
        )
    )

    threshold = sec4e_threshold.run_threshold_study()
    report.sections.append(
        ("Sec. IV.E — R_th sweep", sec4e_threshold.format_result(threshold))
    )
    at3 = int(np.argmin(np.abs(threshold.thresholds_units - 3.0)))
    report.claims.append(
        ClaimCheck(
            claim="traditional 32->13 bits at R_th=3; configurable keeps ~32",
            holds=abs(threshold.traditional[at3] - 13.0) < 3.0
            and threshold.configurable[at3] > 29.0,
            evidence=(
                f"traditional {threshold.traditional[at3]:.1f}, "
                f"configurable {threshold.configurable[at3]:.1f} of 32"
            ),
        )
    )

    leakage = extensions.run_leakage_study(dataset)
    report.sections.append(
        ("A4 — configuration leakage", extensions.format_leakage_study(leakage))
    )
    by_scheme = {r.scheme: r for r in leakage.results}
    report.claims.append(
        ClaimCheck(
            claim="equal selected counts prevent bit leakage (Sec. III.D)",
            holds=by_scheme["case1"].advantage < 0.1
            and by_scheme["unconstrained"].accuracy > 0.95,
            evidence=(
                f"attack accuracy: case1 {by_scheme['case1'].accuracy:.2f} "
                f"vs unconstrained {by_scheme['unconstrained'].accuracy:.2f}"
            ),
        )
    )

    aging = extensions.run_aging_study()
    report.sections.append(
        ("A5 — aging", extensions.format_aging_study(aging))
    )
    report.claims.append(
        ClaimCheck(
            claim="margin maximisation also extends lifetime (aging)",
            holds=aging.flip_percent["case2"][-1]
            <= aging.flip_percent["traditional"][-1],
            evidence=(
                f"20y flips: case2 {aging.flip_percent['case2'][-1]:.1f}% vs "
                f"traditional {aging.flip_percent['traditional'][-1]:.1f}%"
            ),
        )
    )

    zoo = extensions.run_scheme_zoo(dataset)
    report.sections.append(
        ("A6 — scheme zoo", extensions.format_scheme_zoo(zoo))
    )

    return report
