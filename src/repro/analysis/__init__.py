"""Reporting helpers: ASCII tables, text histograms, full reports."""

from .ecc_cost import EccRequirement, block_failure_probability, required_bch_strength
from .heatmap import ascii_heatmap, board_heatmap
from .histogram import bar_chart, histogram_lines
from .report import ClaimCheck, ReproductionReport, build_report
from .tables import Table, format_percent

__all__ = [
    "EccRequirement",
    "block_failure_probability",
    "required_bch_strength",
    "ascii_heatmap",
    "board_heatmap",
    "bar_chart",
    "histogram_lines",
    "ClaimCheck",
    "ReproductionReport",
    "build_report",
    "Table",
    "format_percent",
]
