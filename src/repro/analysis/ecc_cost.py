"""ECC-cost analysis: what error correction would each scheme need?

Sec. III.C's third advantage: because the configurable PUF can refuse
low-margin pairs, "this can eliminate the cost of ECC circuitry".  This
module prices that claim.  Given a scheme's measured per-bit error rate,
it sizes the smallest BCH code that brings a key block's failure rate
under a target, and reports the implied storage/parity overhead.  The
traditional PUF's percent-level error rates demand a real code; the
configurable PUF's near-zero rates need none (or a trivial one).
"""

from __future__ import annotations

from dataclasses import dataclass

from scipy.stats import binom

from ..crypto.ecc import BCHCode

__all__ = ["EccRequirement", "block_failure_probability", "required_bch_strength"]


def block_failure_probability(
    bit_error_rate: float, code_length: int, correctable: int
) -> float:
    """P(more than ``correctable`` of ``code_length`` bits flip)."""
    if not 0.0 <= bit_error_rate <= 1.0:
        raise ValueError("bit_error_rate must be in [0, 1]")
    if code_length < 1 or correctable < 0:
        raise ValueError("invalid code parameters")
    return float(1.0 - binom.cdf(correctable, code_length, bit_error_rate))


@dataclass(frozen=True)
class EccRequirement:
    """The smallest BCH code meeting a failure target.

    Attributes:
        scheme: label of the PUF scheme analysed.
        bit_error_rate: measured per-bit flip probability.
        m: BCH field degree (code length ``2^m - 1``).
        t: required correction capability (0 = no ECC needed).
        code_length / message_bits: resulting code dimensions.
        failure_probability: residual block failure probability.
        overhead_bits_per_key_bit: (parity + helper) bits stored per
            extracted key bit; 0 when no ECC is needed.
    """

    scheme: str
    bit_error_rate: float
    m: int
    t: int
    code_length: int
    message_bits: int
    failure_probability: float
    overhead_bits_per_key_bit: float

    @property
    def needs_ecc(self) -> bool:
        return self.t > 0


def required_bch_strength(
    scheme: str,
    bit_error_rate: float,
    target_failure: float = 1e-6,
    m: int = 7,
) -> EccRequirement:
    """Size the smallest BCH(2^m - 1, k, t) meeting the failure target.

    Args:
        scheme: label for reports.
        bit_error_rate: per-bit flip probability of the PUF.
        target_failure: acceptable probability that a codeword decodes
            wrongly (per block).
        m: BCH field degree to search within.

    Raises:
        ValueError: when even the strongest code of this length falls
            short of the target.
    """
    if not 0.0 < target_failure < 1.0:
        raise ValueError("target_failure must be in (0, 1)")
    code_length = 2**m - 1
    for t in range(0, code_length // 2):
        failure = block_failure_probability(bit_error_rate, code_length, t)
        if failure > target_failure:
            continue
        if t == 0:
            return EccRequirement(
                scheme=scheme,
                bit_error_rate=bit_error_rate,
                m=m,
                t=0,
                code_length=code_length,
                message_bits=code_length,
                failure_probability=failure,
                overhead_bits_per_key_bit=0.0,
            )
        try:
            code = BCHCode(m=m, t=t)
        except ValueError:
            break  # generator swallowed every message bit: no such code
        # Helper data stores the n-bit code offset; parity is implicit in
        # it, so total stored bits per key bit = n / k.
        return EccRequirement(
            scheme=scheme,
            bit_error_rate=bit_error_rate,
            m=m,
            t=code.t,
            code_length=code.n,
            message_bits=code.k,
            failure_probability=failure,
            overhead_bits_per_key_bit=code.n / code.k,
        )
    raise ValueError(
        f"no BCH code of length {code_length} reaches failure "
        f"{target_failure} at bit error rate {bit_error_rate}"
    )
