"""repro — a reproduction of "A Highly Flexible Ring Oscillator PUF"
(Mingze Gao, Khai Lai, Gang Qu; DAC 2014, DOI 10.1145/2593069.2593072).

The package implements the paper's inverter-level configurable RO PUF and
everything it stands on:

* :mod:`repro.variation` — process variation, environment (V/T) response,
  measurement noise (the silicon substitute; DESIGN.md Sec. 2);
* :mod:`repro.silicon` — fabricated chips of delay units;
* :mod:`repro.core` — configurable ROs, the Sec. III.B measurement
  schemes, the Sec. III.D Case-1/Case-2 selection algorithms, and the
  PUF enrollment/response life cycle;
* :mod:`repro.baselines` — traditional RO PUF, 1-out-of-8, R_th masking,
  Maiti-Schaumont configurable ROs;
* :mod:`repro.distiller` — the regression-based systematic-variation
  distiller ([18]);
* :mod:`repro.nist` — the full NIST SP 800-22 statistical test suite;
* :mod:`repro.metrics` — uniqueness, reliability, uniformity, entropy;
* :mod:`repro.datasets` — synthetic equivalents of the Virginia Tech
  dataset and the paper's in-house Virtex-5 boards;
* :mod:`repro.crypto` — fuzzy extractor, BCH/repetition ECC, key
  generation, and challenge-response authentication;
* :mod:`repro.experiments` — one module per paper table/figure.

Quickstart::

    import numpy as np
    from repro import FabricationProcess, ChipROPUF, OperatingPoint

    chip = FabricationProcess().fabricate(64, np.random.default_rng(0))
    puf = ChipROPUF.deploy(chip, stage_count=4, method="case1")
    enrollment = puf.enroll()                        # test corner
    bits = puf.response(OperatingPoint(0.98, 65.0), enrollment)
"""

from .baselines import OneOutOfEightPUF, traditional_puf
from .core import (
    BatchEvaluator,
    BoardROPUF,
    ChipROPUF,
    ConfigVector,
    ConfigurableRO,
    DelayMeasurer,
    Enrollment,
    PairSelection,
    RingAllocation,
    allocate_rings,
    select_case1,
    select_case2,
    select_exhaustive,
    select_traditional,
)
from .crypto import Authenticator, BCHCode, FuzzyExtractor, KeyGenerator
from .datasets import (
    RODataset,
    default_inhouse_boards,
    default_vt_dataset,
    generate_vt_like,
)
from .distiller import PolynomialDistiller
from .metrics import bit_flip_report, uniqueness_report
from .nist import evaluate_sequences, run_battery
from .pipeline import run_pipeline
from .silicon import Chip, FabricationProcess
from .variation import (
    NOMINAL_OPERATING_POINT,
    EnvironmentModel,
    OperatingPoint,
    ProcessVariationModel,
)

__version__ = "1.2.0"

__all__ = [
    "OneOutOfEightPUF",
    "traditional_puf",
    "BatchEvaluator",
    "BoardROPUF",
    "ChipROPUF",
    "ConfigVector",
    "ConfigurableRO",
    "DelayMeasurer",
    "Enrollment",
    "PairSelection",
    "RingAllocation",
    "allocate_rings",
    "select_case1",
    "select_case2",
    "select_exhaustive",
    "select_traditional",
    "Authenticator",
    "BCHCode",
    "FuzzyExtractor",
    "KeyGenerator",
    "RODataset",
    "default_inhouse_boards",
    "default_vt_dataset",
    "generate_vt_like",
    "PolynomialDistiller",
    "bit_flip_report",
    "uniqueness_report",
    "evaluate_sequences",
    "run_battery",
    "run_pipeline",
    "Chip",
    "FabricationProcess",
    "NOMINAL_OPERATING_POINT",
    "EnvironmentModel",
    "OperatingPoint",
    "ProcessVariationModel",
    "__version__",
]
