"""Command-line entry points: regenerate every paper table and figure.

Usage (installed as the ``ropuf`` script, or ``python -m repro``)::

    ropuf table1           # NIST battery, Case-1 (Table I)
    ropuf table2           # NIST battery, Case-2 (Table II)
    ropuf fig3             # uniqueness histograms (Fig. 3)
    ropuf table3           # Case-1 configuration HDs (Table III)
    ropuf table4           # Case-2 configuration HDs (Table IV)
    ropuf fig4             # voltage-reliability sweep (Fig. 4)
    ropuf temperature      # temperature-reliability sweep (Sec. IV.D)
    ropuf table5           # bits per board (Table V)
    ropuf threshold        # R_th sweep (Sec. IV.E)
    ropuf ablations        # A1-A3 ablation studies
    ropuf all              # full evaluation as one summary JSON

``ropuf all`` runs the declarative experiment pipeline
(:mod:`repro.pipeline`) and prints the summary JSON.  It accepts
``--jobs N`` (parallel worker processes), ``--cache-dir PATH`` (skip tasks
whose results are already cached for this dataset and repro version),
``--timings`` (embed per-task wall-time/cache metrics), ``--tasks a,b``
(run a subset of the registered tasks), ``--trace PATH`` (write the
merged cross-process span trace as JSONL), and ``--profile PATH``
(sampling-profiler collapsed stacks of the run; see
docs/observability.md for both).

Hardening flags (see docs/robustness.md): ``--retries N`` (total attempt
budget per task), ``--backoff SECONDS`` (exponential backoff base with
deterministic jitter), ``--task-timeout SECONDS`` (per-task wall-clock
deadline; the hung worker is killed and the task re-dispatched),
``--resume PATH`` (crash-safe checkpoint journal: completed tasks are
replayed, fresh ones are durably appended), and ``--chaos SEED``
(deterministically inject a worker crash, a task hang, and a corrupt
cache entry to prove the run survives them).

Three observability verbs round out the tooling::

    ropuf trace summarize trace.jsonl      # top spans, per-process stats
    ropuf bench compare old.json new.json  # regression gate for CI
    ropuf top --port N                     # live dashboard for a server

``trace summarize --json`` emits the summary as machine-readable JSON.
``bench compare`` exits non-zero when any metric regressed past the
threshold (or when the artifacts are incomparable), so CI can gate on it.
``ropuf top`` polls a running server's ``metrics`` verb and renders
requests/s, per-verb latency quantiles, coalescer batch sizes, backend
throughput, and error counts (``--once`` prints a single snapshot).

``ropuf fleet`` runs the out-of-core sharded fleet analytics
(:mod:`repro.pipeline.fleet`, see docs/datasets.md): uniqueness,
uniformity, and reliability over ``--devices`` synthetic devices,
generated and reduced shard by shard so peak memory stays bounded by
``--shard-devices`` regardless of fleet size.  It shares the pipeline
hardening flags (``--jobs``, ``--cache-dir``, ``--resume``,
``--retries``, ``--backoff``, ``--task-timeout``) and exits non-zero if
any shard degraded after retries.

``ropuf serve`` stands up the CRP authentication service
(:mod:`repro.serve`, see docs/serving.md): a synthetic device fleet is
enrolled into a crash-safe store (``--store PATH`` to persist it) and
served over a length-prefixed socket protocol with request coalescing
onto the vectorized batch engines.  ``--bench`` instead runs the built-in
load generator against an ephemeral in-process server (``--clients`` x
``--auths`` authentication rounds) and prints a latency-percentile
summary; the exit code is non-zero if any authentication failed, so CI
can gate on it.  Production telemetry flags: ``--metrics-port`` exposes
a Prometheus/JSON HTTP sidecar, ``--trace PATH`` + ``--slow-ms``
tail-sample span trees of slow requests, and ``--profile PATH`` runs
the sampling profiler for the server's lifetime
(docs/observability.md).
"""

from __future__ import annotations

import argparse
import os
import sys

__all__ = ["main", "build_parser"]


def _load_dataset(args):
    """The dataset an experiment should run on: real files or synthetic."""
    data_dir = getattr(args, "data", None)
    if data_dir is None:
        return None  # experiments fall back to the cached synthetic dataset
    from .datasets.vtlike import load_vt_directory

    return load_vt_directory(data_dir)


def _cmd_table1(args) -> str:
    from .experiments.nist_tables import format_result, run_nist_experiment

    return format_result(
        run_nist_experiment(
            _load_dataset(args), method="case1", distilled=not args.raw
        )
    )


def _cmd_table2(args) -> str:
    from .experiments.nist_tables import format_result, run_nist_experiment

    return format_result(
        run_nist_experiment(
            _load_dataset(args), method="case2", distilled=not args.raw
        )
    )


def _cmd_fig3(args) -> str:
    from .experiments.fig3_uniqueness import format_result, run_uniqueness_experiment

    return format_result(
        run_uniqueness_experiment(_load_dataset(args), distilled=not args.raw)
    )


def _cmd_table3(args) -> str:
    from .experiments.config_tables import format_result, run_config_study

    return format_result(run_config_study(_load_dataset(args), method="case1"))


def _cmd_table4(args) -> str:
    from .experiments.config_tables import format_result, run_config_study

    return format_result(run_config_study(_load_dataset(args), method="case2"))


def _cmd_fig4(args) -> str:
    from .experiments.fig4_reliability import format_result, run_voltage_reliability

    return format_result(
        run_voltage_reliability(_load_dataset(args), method=args.method)
    )


def _cmd_temperature(args) -> str:
    from .experiments.fig4_reliability import (
        format_result,
        run_temperature_reliability,
    )

    return format_result(
        run_temperature_reliability(_load_dataset(args), method=args.method)
    )


def _cmd_table5(args) -> str:
    from .experiments.table5_bits import format_result, run_table5

    return format_result(run_table5())


def _cmd_threshold(args) -> str:
    from .experiments.sec4e_threshold import format_result, run_threshold_study

    return format_result(run_threshold_study())


def _cmd_ablations(args) -> str:
    from .experiments.ablations import (
        format_distiller_ablation,
        format_noise_ablation,
        format_selector_ablation,
        run_distiller_ablation,
        run_measurement_noise_ablation,
        run_selector_ablation,
    )

    sections = [
        format_distiller_ablation(run_distiller_ablation()),
        format_selector_ablation(run_selector_ablation()),
        format_noise_ablation(run_measurement_noise_ablation()),
    ]
    return "\n\n".join(sections)


def _cmd_extensions(args) -> str:
    from .experiments.extensions import (
        format_aging_study,
        format_ecc_cost_study,
        format_leakage_study,
        format_margin_scaling,
        format_multicorner_study,
        format_scheme_zoo,
        run_aging_study,
        run_ecc_cost_study,
        run_leakage_study,
        run_margin_scaling_study,
        run_multicorner_study,
        run_scheme_zoo,
    )

    dataset = _load_dataset(args)
    sections = [
        format_leakage_study(run_leakage_study(dataset)),
        format_aging_study(run_aging_study()),
        format_scheme_zoo(run_scheme_zoo(dataset)),
        format_ecc_cost_study(run_ecc_cost_study(dataset)),
        format_margin_scaling(run_margin_scaling_study()),
        format_multicorner_study(run_multicorner_study(dataset)),
    ]
    return "\n\n".join(sections)


def _cmd_report(args) -> str:
    from .analysis.report import build_report

    report = build_report()
    output = getattr(args, "output", None) or "reproduction_report.md"
    path = report.save(output)
    verdict = "ALL CLAIMS HOLD" if report.all_claims_hold else "SOME CLAIMS FAIL"
    failing = [c.claim for c in report.claims if not c.holds]
    lines = [f"report written to {path}", verdict]
    lines.extend(f"  failing: {claim}" for claim in failing)
    return "\n".join(lines)


def _cmd_all(args) -> str:
    """Run the experiment pipeline; return the summary as pretty JSON."""
    import json

    from .pipeline import RetryPolicy, run_pipeline

    tasks = None
    if getattr(args, "tasks", None):
        tasks = [name.strip() for name in args.tasks.split(",") if name.strip()]
    policy = RetryPolicy(
        max_attempts=args.retries,
        backoff_seconds=args.backoff,
        timeout_seconds=args.task_timeout,
    )
    summary = run_pipeline(
        dataset=_load_dataset(args),
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        tasks=tasks,
        timings=args.timings,
        trace=args.trace,
        profile=args.profile,
        policy=policy,
        journal=args.resume,
        chaos=args.chaos,
    )
    text = json.dumps(summary, indent=2)
    output = getattr(args, "output", None)
    if output:
        from pathlib import Path

        Path(output).write_text(text)
    return text


def _cmd_trace(args) -> str:
    """Summarize a trace JSONL file written by ``ropuf all --trace``."""
    import json

    from .obs import format_trace_summary, summarize_trace

    summary = summarize_trace(args.trace_file, top=args.top)
    if args.json:
        return json.dumps(summary, indent=2)
    return format_trace_summary(summary)


def _cmd_bench(args) -> tuple[str, int]:
    """Compare two benchmark JSON artifacts; non-zero exit on regression."""
    from .obs import compare_bench, format_bench_compare

    result = compare_bench(
        args.old, args.new, threshold=args.threshold, metric=args.metric
    )
    return format_bench_compare(result), 0 if result["ok"] else 1


def _cmd_fleet(args) -> tuple[str, int]:
    """Sharded out-of-core fleet analytics (docs/datasets.md)."""
    import json

    from .datasets.fleet import FleetSpec
    from .pipeline import RetryPolicy, run_fleet_analysis

    spec = FleetSpec(
        devices=args.devices,
        ro_count=args.ro_count,
        shard_devices=args.shard_devices,
        seed=args.seed,
    )
    policy = RetryPolicy(
        max_attempts=args.retries,
        backoff_seconds=args.backoff,
        timeout_seconds=args.task_timeout,
    )
    summary = run_fleet_analysis(
        spec,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        policy=policy,
        journal=args.resume,
        timings=args.timings,
        trace=args.trace,
        shard_dir=args.shard_dir,
    )
    text = json.dumps(summary, indent=2)
    output = getattr(args, "output", None)
    if output:
        from pathlib import Path

        Path(output).write_text(text)
    return text, 0 if summary["complete"] else 1


def _cmd_serve(args) -> tuple[str, int]:
    """Run the CRP authentication service (or its load benchmark)."""
    import json
    from pathlib import Path

    from . import obs
    from .serve import (
        AuthServer,
        AuthService,
        CRPStore,
        DeviceFarm,
        FleetConfig,
        RequestCoalescer,
        run_load,
        run_overload,
    )

    # Telemetry wiring (docs/observability.md).  The standalone server
    # always records metrics so the ``metrics`` verb and ``ropuf top``
    # work out of the box; ``--bench`` keeps them off unless a sidecar
    # was requested, so the latency baseline measures the quiet path.
    # ``--open-loop`` turns them back on: the overload run's whole point
    # is that its shed counters land in the metrics exposition.
    metrics_on = (
        args.metrics_port is not None or not args.bench or args.open_loop
    )
    if metrics_on:
        obs.enable_metrics()
    sampler = None
    if args.trace is not None:
        obs.enable_tracing()
        sampler = obs.TailSampler(slow_ms=args.slow_ms)
    profiler = None
    if args.profile is not None:
        profiler = obs.SamplingProfiler()
        profiler.start()

    farm = DeviceFarm.from_config(
        FleetConfig(
            boards=args.boards,
            ro_count=args.ro_count,
            stage_count=args.stages,
            method=args.fleet_method,
            seed=args.seed,
        )
    )
    service = AuthService(
        farm,
        CRPStore(args.store),
        coalescer=RequestCoalescer(
            max_batch=args.max_batch, max_wait_s=args.window
        ),
        threshold_fraction=args.auth_threshold,
        seed=args.seed,
    )
    enrollment = service.enroll_fleet()
    server = AuthServer(
        service,
        address=(args.host, args.port),
        sampler=sampler,
        max_inflight=args.max_inflight if args.max_inflight > 0 else None,
        rate_limit=args.rate_limit,
        rate_burst=args.rate_burst,
        max_connections=args.max_connections,
        idle_timeout=args.idle_timeout,
    )
    sidecar = None
    if args.metrics_port is not None:
        sidecar = obs.start_http_exporter(
            service.exporter, port=args.metrics_port, host=args.host
        )
    try:
        if args.bench:
            server.start()
            host, port = server.address
            try:
                if args.open_loop:
                    summary = run_overload(
                        host,
                        port,
                        offered_rps=args.offered_rps,
                        duration_s=args.duration,
                        workers=args.clients,
                        farm=farm,
                        deadline_ms=args.deadline_ms,
                    )
                else:
                    summary = run_load(
                        host,
                        port,
                        clients=args.clients,
                        auths_per_client=args.auths,
                        farm=farm,
                    )
                summary["enrollment"] = {
                    "enrolled": len(enrollment["enrolled"]),
                    "reused": len(enrollment["reused"]),
                }
                summary["coalescer"] = service.coalescer.stats()
                summary["store"] = service.store.stats()
                summary["overload"] = server.overload_stats()
                if args.open_loop:
                    # The shed counters as the metrics scrape reports
                    # them — the chaos gate greps these out of the
                    # artifact rather than trusting the harness's own
                    # bookkeeping.
                    exposition = service.exporter.collect()
                    summary["metrics_counters"] = {
                        name: value
                        for name, value in exposition["counters"].items()
                        if name.startswith(
                            ("serve.admission.", "serve.ratelimit.",
                             "serve.overload.", "serve.degraded.",
                             "serve.coalesce.dropped"),
                        )
                    }
            finally:
                server.stop()
            text = json.dumps(summary, indent=2)
            output = getattr(args, "output", None)
            if output:
                Path(output).write_text(text)
            if args.open_loop:
                # Overload runs budget for shedding; the failure signal
                # is a wrong verdict or an untyped error, never volume.
                bad = summary["wrong"] + sum(
                    summary["terminal_by_type"].values()
                )
                return text, 0 if bad == 0 else 1
            return text, 0 if summary["failures"] == 0 else 1
        host, port = server.address
        print(
            f"ropuf serve: {len(farm)} devices "
            f"({len(enrollment['enrolled'])} enrolled, "
            f"{len(enrollment['reused'])} reused) on {host}:{port}",
            flush=True,
        )
        if sidecar is not None:
            sidecar_host, sidecar_port = sidecar.server_address
            print(
                f"ropuf serve: metrics sidecar on "
                f"http://{sidecar_host}:{sidecar_port}/metrics",
                flush=True,
            )
        # Graceful shutdown on SIGTERM too (CI and process supervisors
        # send it): route it through the KeyboardInterrupt path so the
        # telemetry artifacts below are still written.
        import signal

        def _terminate(signum, frame):
            raise KeyboardInterrupt

        try:
            signal.signal(signal.SIGTERM, _terminate)
        except ValueError:
            pass  # not the main thread (embedded use); skip the hook
        try:
            server.serve_forever(poll_interval=0.2)
        except KeyboardInterrupt:
            pass
        finally:
            server.server_close()
            service.close()
        return "", 0
    finally:
        if sidecar is not None:
            sidecar.shutdown()
            sidecar.server_close()
        if profiler is not None:
            profiler.stop()
            profiler.write(Path(args.profile))
        if sampler is not None:
            obs.write_trace(args.trace, spans=sampler.spans())
            obs.disable_tracing()
        if metrics_on:
            obs.disable_metrics()


def _render_top(doc: dict) -> str:
    """Render one exposition document as the ``ropuf top`` dashboard."""
    counters = doc.get("counters", {})
    histograms = doc.get("histograms", {})
    rates = doc.get("rates", {})

    def rate(name: str, window: str = "10s") -> float:
        return rates.get(window, {}).get(name, 0.0)

    def requests_per_second(window: str) -> float:
        return sum(
            value
            for name, value in rates.get(window, {}).items()
            if name.startswith("serve.requests.")
        )

    windows = sorted(rates, key=lambda w: float(w.rstrip("s")))
    lines = [
        f"ropuf top — server uptime {doc.get('uptime_seconds', 0.0):.1f}s",
        "requests/s: "
        + "  ".join(
            f"{window}={requests_per_second(window):.1f}"
            for window in windows
        ),
        "errors: {:g} ({:.2f}/s)  protocol: {:g} ({:.2f}/s)".format(
            counters.get("serve.errors", 0.0),
            rate("serve.errors"),
            counters.get("serve.protocol_errors", 0.0),
            rate("serve.protocol_errors"),
        ),
    ]
    verbs = sorted(
        name.split(".", 2)[2]
        for name in counters
        if name.startswith("serve.requests.")
    )
    if verbs:
        lines.append("")
        lines.append(
            f"{'verb':<16}{'count':>10}{'rps':>10}{'p50 ms':>10}{'p99 ms':>10}"
        )
        for verb in verbs:
            latency = histograms.get(f"serve.latency_ms.{verb}") or {}
            lines.append(
                f"{verb:<16}"
                f"{counters[f'serve.requests.{verb}']:>10g}"
                f"{rate(f'serve.requests.{verb}'):>10.1f}"
                f"{latency.get('p50') or 0.0:>10.2f}"
                f"{latency.get('p99') or 0.0:>10.2f}"
            )
    shed = counters.get("serve.admission.shed", 0.0)
    expired = counters.get("serve.admission.expired", 0.0)
    limited = counters.get("serve.ratelimit.limited", 0.0)
    conn_rejected = counters.get("serve.connections.rejected", 0.0)
    if shed or expired or limited or conn_rejected:
        lines.append("")
        lines.append(
            "overload: shed={:g} ({:.1f}/s)  expired={:g}  "
            "rate-limited={:g}  conn-rejected={:g}".format(
                shed,
                rate("serve.admission.shed"),
                expired,
                limited,
                conn_rejected,
            )
        )
    degraded_entered = counters.get("serve.degraded.entered", 0.0)
    if degraded_entered:
        lines.append(
            "degraded: entered={:g}  recovered={:g}".format(
                degraded_entered,
                counters.get("serve.degraded.recovered", 0.0),
            )
        )
    batch = histograms.get("serve.coalesce.batch_size")
    if batch:
        lines.append("")
        lines.append(
            "coalescer: batches={:g} ({:.1f}/s)  "
            "batch size mean={:.1f} max={:g}".format(
                counters.get("serve.coalesce.batches", 0.0),
                rate("serve.coalesce.batches"),
                batch.get("mean", 0.0),
                batch.get("max", 0.0),
            )
        )
    backend_counters = sorted(
        name for name in counters if name.startswith("backend.")
    )
    if backend_counters:
        lines.append("")
        lines.append("backend throughput:")
        lines.extend(
            f"  {name} {counters[name]:g} ({rate(name):.1f}/s)"
            for name in backend_counters
        )
    return "\n".join(lines)


def _cmd_top(args) -> tuple[str, int]:
    """Live dashboard over a running server's ``metrics`` verb."""
    import time

    from .serve import AuthClient, ServeClientError

    try:
        with AuthClient(args.host, args.port, timeout=args.timeout) as client:
            client.metrics()  # baseline scrape: rates need two samples
            if args.once:
                time.sleep(min(args.interval, 1.0))
                return _render_top(client.metrics()), 0
            while True:
                time.sleep(args.interval)
                text = _render_top(client.metrics())
                print("\x1b[2J\x1b[H" + text, flush=True)
    except KeyboardInterrupt:
        return "", 0
    except (ServeClientError, OSError) as exc:
        return f"ropuf top: {exc}", 1


_COMMANDS = {
    "table1": _cmd_table1,
    "table2": _cmd_table2,
    "fig3": _cmd_fig3,
    "table3": _cmd_table3,
    "table4": _cmd_table4,
    "fig4": _cmd_fig4,
    "temperature": _cmd_temperature,
    "table5": _cmd_table5,
    "threshold": _cmd_threshold,
    "ablations": _cmd_ablations,
    "extensions": _cmd_extensions,
    "report": _cmd_report,
    "all": _cmd_all,
}

#: Tooling verbs with their own positional arguments; they skip the shared
#: experiment flags that ``build_parser`` attaches to every ``_COMMANDS``
#: entry.  Handlers may return ``(text, exit_code)`` instead of plain text.
_TOOL_COMMANDS = {
    "trace": _cmd_trace,
    "bench": _cmd_bench,
    "serve": _cmd_serve,
    "fleet": _cmd_fleet,
    "top": _cmd_top,
}


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="ropuf",
        description=(
            "Reproduce the evaluation of 'A Highly Flexible Ring Oscillator "
            "PUF' (DAC 2014) on synthetic silicon."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    for name in _COMMANDS:
        sub = subparsers.add_parser(name, help=f"run the {name} experiment")
        sub.add_argument(
            "--raw",
            action="store_true",
            help="skip the systematic-variation distiller",
        )
        sub.add_argument(
            "--data",
            default=None,
            help="directory of real measurement files (default: synthetic)",
        )
        sub.add_argument(
            "--output",
            default=None,
            help="output path (report command)",
        )
        sub.add_argument(
            "--method",
            choices=("case1", "case2"),
            default="case1",
            help="configurable selection method (reliability sweeps)",
        )
        sub.add_argument(
            "--jobs",
            type=int,
            default=1,
            help="parallel worker processes for the pipeline (all command)",
        )
        sub.add_argument(
            "--cache-dir",
            default=None,
            help="directory of the on-disk result cache (all command)",
        )
        sub.add_argument(
            "--timings",
            action="store_true",
            help="embed per-task timing/cache metrics in the summary JSON",
        )
        sub.add_argument(
            "--tasks",
            default=None,
            help="comma-separated pipeline task subset (all command)",
        )
        sub.add_argument(
            "--trace",
            default=None,
            metavar="PATH",
            help="write the merged span trace as JSONL (all command)",
        )
        sub.add_argument(
            "--profile",
            default=None,
            metavar="PATH",
            help="write a sampling-profiler collapsed-stack profile of "
            "the run (all command)",
        )
        sub.add_argument(
            "--retries",
            type=int,
            default=2,
            metavar="N",
            help="total attempts per task before degrading it (default: 2)",
        )
        sub.add_argument(
            "--backoff",
            type=float,
            default=0.0,
            metavar="SECONDS",
            help="exponential backoff base between attempts (default: 0)",
        )
        sub.add_argument(
            "--task-timeout",
            type=float,
            default=None,
            metavar="SECONDS",
            help="per-task wall-clock timeout; kills and re-dispatches "
            "(needs --jobs >= 2)",
        )
        sub.add_argument(
            "--resume",
            default=None,
            metavar="PATH",
            help="crash-safe checkpoint journal to replay and append "
            "(all command)",
        )
        sub.add_argument(
            "--chaos",
            type=int,
            default=None,
            metavar="SEED",
            help="inject seeded worker-crash/hang/cache-corruption chaos "
            "(all command)",
        )
        sub.add_argument(
            "--backend",
            default=None,
            metavar="NAME",
            help="compute backend for the dense kernels (numpy, "
            "numpy-float32, tiled; see docs/backends.md)",
        )

    trace = subparsers.add_parser(
        "trace", help="inspect trace files written by 'all --trace'"
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    summarize = trace_sub.add_parser(
        "summarize", help="print top spans, per-process stats, cache ratio"
    )
    summarize.add_argument("trace_file", help="trace JSONL path")
    summarize.add_argument(
        "--top",
        type=int,
        default=10,
        help="how many spans to list by self-time (default: 10)",
    )
    summarize.add_argument(
        "--json",
        action="store_true",
        help="emit the summary as machine-readable JSON",
    )

    serve = subparsers.add_parser(
        "serve",
        help="run the CRP authentication service (docs/serving.md)",
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: loopback)"
    )
    serve.add_argument(
        "--port",
        type=int,
        default=0,
        help="bind port; 0 picks an ephemeral port (default: 0)",
    )
    serve.add_argument(
        "--boards",
        type=int,
        default=4,
        help="synthetic fleet size (default: 4)",
    )
    serve.add_argument(
        "--ro-count",
        type=int,
        default=320,
        help="delay units per board (default: 320 -> 32 response bits)",
    )
    serve.add_argument(
        "--stages",
        type=int,
        default=5,
        help="units per configurable ring (default: 5)",
    )
    serve.add_argument(
        "--fleet-method",
        choices=("case1", "case2", "traditional"),
        default="case1",
        help="selection method used at fleet enrollment (default: case1)",
    )
    serve.add_argument(
        "--seed",
        type=int,
        default=20140601,
        help="fleet/dataset seed; reuse it to resume a persisted store",
    )
    serve.add_argument(
        "--store",
        default=None,
        metavar="PATH",
        help="crash-safe CRP store journal (default: in-memory only)",
    )
    serve.add_argument(
        "--auth-threshold",
        type=float,
        default=0.15,
        help="accepted Hamming-distance fraction (default: 0.15)",
    )
    serve.add_argument(
        "--window",
        type=float,
        default=0.002,
        metavar="SECONDS",
        help="coalescing window: how long a request waits for batch "
        "company (default: 0.002)",
    )
    serve.add_argument(
        "--max-batch",
        type=int,
        default=64,
        help="coalesced batch-size ceiling (default: 64)",
    )
    serve.add_argument(
        "--max-inflight",
        type=int,
        default=64,
        metavar="N",
        help="admission gate: requests in service simultaneously before "
        "shedding with retriable Overloaded frames; 0 disables "
        "(default: 64)",
    )
    serve.add_argument(
        "--rate-limit",
        type=float,
        default=None,
        metavar="RPS",
        help="per-client-address token-bucket rate limit in requests/s "
        "(default: off)",
    )
    serve.add_argument(
        "--rate-burst",
        type=float,
        default=None,
        metavar="N",
        help="per-client burst allowance (default: one second of "
        "--rate-limit)",
    )
    serve.add_argument(
        "--max-connections",
        type=int,
        default=None,
        metavar="N",
        help="global simultaneous-connection cap (default: unlimited)",
    )
    serve.add_argument(
        "--idle-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="close a connection that makes no frame progress for this "
        "long — slow-loris defence (default: off)",
    )
    serve.add_argument(
        "--bench",
        action="store_true",
        help="run the load generator against an ephemeral server and "
        "print a latency-percentile summary (non-zero exit on failures)",
    )
    serve.add_argument(
        "--open-loop",
        action="store_true",
        help="with --bench: drive a fixed offered rate instead of the "
        "closed loop, reporting goodput vs shed (docs/serving.md)",
    )
    serve.add_argument(
        "--offered-rps",
        type=float,
        default=200.0,
        metavar="RPS",
        help="open-loop offered arrival rate (default: 200)",
    )
    serve.add_argument(
        "--duration",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="open-loop run length (default: 5)",
    )
    serve.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        metavar="MS",
        help="attach this deadline budget to every open-loop request",
    )
    serve.add_argument(
        "--clients",
        type=int,
        default=100,
        help="concurrent load-generator clients (default: 100)",
    )
    serve.add_argument(
        "--auths",
        type=int,
        default=10,
        help="authentication rounds per client (default: 10)",
    )
    serve.add_argument(
        "--output",
        default=None,
        help="also write the --bench summary JSON to this path",
    )
    serve.add_argument(
        "--backend",
        default=None,
        metavar="NAME",
        help="compute backend for coalesced dispatch (docs/backends.md)",
    )
    serve.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="PORT",
        help="also expose GET /metrics (Prometheus text) and "
        "/metrics.json on this HTTP sidecar port (0 picks one)",
    )
    serve.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="tail-sampled request tracing: retain span trees only for "
        "requests slower than --slow-ms; written as JSONL on shutdown",
    )
    serve.add_argument(
        "--slow-ms",
        type=float,
        default=100.0,
        metavar="MS",
        help="tail-sampling latency threshold in milliseconds "
        "(default: 100)",
    )
    serve.add_argument(
        "--profile",
        default=None,
        metavar="PATH",
        help="run the sampling profiler; collapsed stacks are written "
        "here on shutdown",
    )

    top = subparsers.add_parser(
        "top",
        help="live telemetry dashboard for a running 'ropuf serve'",
    )
    top.add_argument(
        "--host", default="127.0.0.1", help="server address to poll"
    )
    top.add_argument(
        "--port", type=int, required=True, help="server port to poll"
    )
    top.add_argument(
        "--interval",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="refresh interval (default: 2)",
    )
    top.add_argument(
        "--once",
        action="store_true",
        help="print one snapshot and exit (for scripting)",
    )
    top.add_argument(
        "--timeout",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="per-request socket timeout (default: 5)",
    )

    fleet = subparsers.add_parser(
        "fleet",
        help="sharded out-of-core fleet analytics (docs/datasets.md)",
    )
    fleet.add_argument(
        "--devices",
        type=int,
        default=100_000,
        help="fleet size in devices (default: 100000)",
    )
    fleet.add_argument(
        "--ro-count",
        type=int,
        default=128,
        help="ROs per device; adjacent pairs give half as many response "
        "bits (default: 128)",
    )
    fleet.add_argument(
        "--shard-devices",
        type=int,
        default=4096,
        help="devices per shard — the memory high-water mark "
        "(default: 4096)",
    )
    fleet.add_argument(
        "--seed",
        type=int,
        default=20140601,
        help="master seed; shard i draws from (seed, i) (default: 20140601)",
    )
    fleet.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="parallel worker processes (default: 1)",
    )
    fleet.add_argument(
        "--cache-dir",
        default=None,
        help="directory of the on-disk shard-result cache",
    )
    fleet.add_argument(
        "--resume",
        default=None,
        metavar="PATH",
        help="crash-safe checkpoint journal: completed shards are "
        "replayed, fresh ones durably appended",
    )
    fleet.add_argument(
        "--retries",
        type=int,
        default=2,
        metavar="N",
        help="total attempts per shard before degrading it (default: 2)",
    )
    fleet.add_argument(
        "--backoff",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="exponential backoff base between attempts (default: 0)",
    )
    fleet.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-shard wall-clock timeout (needs --jobs >= 2)",
    )
    fleet.add_argument(
        "--timings",
        action="store_true",
        help="embed per-shard timing metrics in the summary JSON",
    )
    fleet.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="write the merged span trace as JSONL",
    )
    fleet.add_argument(
        "--output",
        default=None,
        help="also write the summary JSON to this path",
    )
    fleet.add_argument(
        "--backend",
        default=None,
        metavar="NAME",
        help="compute backend for the shard statistics (docs/backends.md)",
    )
    fleet.add_argument(
        "--shard-dir",
        default=None,
        metavar="PATH",
        help="persist generated shards here and memory-map them on "
        "re-analysis instead of regenerating",
    )

    bench = subparsers.add_parser(
        "bench", help="compare benchmark JSON artifacts"
    )
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)
    compare = bench_sub.add_parser(
        "compare", help="flag metric regressions between two BENCH_*.json"
    )
    compare.add_argument("old", help="baseline benchmark JSON")
    compare.add_argument("new", help="candidate benchmark JSON")
    compare.add_argument(
        "--threshold",
        type=float,
        default=0.20,
        help="relative change that counts as a regression (default: 0.20)",
    )
    compare.add_argument(
        "--metric",
        choices=("all", "seconds", "speedup", "throughput", "memory"),
        default="all",
        help="which metric family to gate on (default: all)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    backend = getattr(args, "backend", None)
    if backend is not None:
        from .backends import resolve_backend

        resolve_backend(backend)  # fail fast on unknown names
        # Through the environment (not set_backend) so pipeline worker
        # processes inherit the selection under fork and spawn alike.
        os.environ["ROPUF_BACKEND"] = backend
    handler = {**_COMMANDS, **_TOOL_COMMANDS}[args.command]
    outcome = handler(args)
    if isinstance(outcome, tuple):
        text, code = outcome
    else:
        text, code = outcome, 0
    print(text)
    return code


if __name__ == "__main__":
    sys.exit(main())
