"""Named counters, gauges, and histograms for the hot paths.

A tiny process-local metrics registry in the Prometheus style, recorded by
the instrumented modules and exported as a plain-JSON *snapshot*:

* **counters** — monotonically accumulated totals (cache hits, noise
  elements drawn, selector rows processed, retries);
* **gauges** — last-set values (per-process, merged by max);
* **histograms** — ``{count, total, min, max}`` aggregates of observed
  values **plus a mergeable quantile sketch**
  (:class:`~repro.obs.quantiles.QuantileSketch`), so any histogram — the
  serve layer's per-verb latencies, the batch engine's throughput — can
  answer p50/p90/p99 at any moment (:func:`histogram_quantiles`, the
  exposition endpoints of :mod:`repro.obs.exporter`).

Like tracing (:mod:`repro.obs.trace`), metrics are **disabled by
default**; every recording call returns after one module-flag check, so
instrumented hot paths pay effectively nothing when observability is off
(pinned by ``benchmarks/test_bench_obs_overhead.py``).

The registry is **thread-safe**: the serve layer records counters and
latency histograms from many connection-handler threads at once, so every
enabled read-modify-write holds one module lock (the disabled fast path
stays a single flag check and never touches it).  Exact totals under
concurrent recording are pinned by the hammer test in
``tests/test_obs_metrics.py``.

Snapshots merge across processes with :func:`merge_snapshots` — the
pipeline's workers ship their snapshot back inside the task payload and
the parent folds them into the ``"_metrics"`` block of the summary JSON.

Metric names are dot-separated, lowest-cardinality-first
(``cache.hits``, ``noise.elements.sweep-v1``, ``selector.case1.rows``);
the full list lives in ``docs/observability.md``.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager

from .quantiles import QuantileSketch

__all__ = [
    "METRICS_SCHEMA",
    "metrics_enabled",
    "enable_metrics",
    "disable_metrics",
    "reset_metrics",
    "counter_add",
    "gauge_set",
    "histogram_observe",
    "histogram_quantiles",
    "timed",
    "snapshot",
    "merge_snapshots",
]

#: Version of the snapshot layout; bumped on incompatible change.
#: Schema 2: histogram entries carry a ``"sketch"`` quantile-sketch state
#: beside the classic ``{count, total, min, max}`` aggregate.
METRICS_SCHEMA = 2

_enabled = False
#: Guards every enabled read-modify-write on the dicts below.  Recording
#: calls check ``_enabled`` *before* acquiring it, so disabled paths pay
#: one flag check and no lock traffic.
_lock = threading.Lock()
_counters: dict[str, float] = {}
_gauges: dict[str, float] = {}
_histograms: dict[str, dict] = {}


def metrics_enabled() -> bool:
    """Whether metric recordings are currently accumulated."""
    return _enabled


def enable_metrics() -> None:
    """Start accumulating metrics (existing values are kept)."""
    global _enabled
    _enabled = True


def disable_metrics() -> None:
    """Stop accumulating; the registry stays readable via :func:`snapshot`."""
    global _enabled
    _enabled = False


def reset_metrics() -> None:
    """Clear every counter, gauge, and histogram."""
    with _lock:
        _counters.clear()
        _gauges.clear()
        _histograms.clear()


def counter_add(name: str, value: float = 1.0) -> None:
    """Add ``value`` to the counter ``name`` (no-op while disabled)."""
    if not _enabled:
        return
    with _lock:
        _counters[name] = _counters.get(name, 0.0) + value


def gauge_set(name: str, value: float) -> None:
    """Set the gauge ``name`` to ``value`` (no-op while disabled)."""
    if not _enabled:
        return
    with _lock:
        _gauges[name] = value


def histogram_observe(name: str, value: float) -> None:
    """Fold ``value`` into the histogram ``name`` (no-op while disabled).

    Beside the classic ``{count, total, min, max}`` aggregate every
    histogram feeds a :class:`~repro.obs.quantiles.QuantileSketch`, so
    p50/p90/p99 are answerable live (:func:`histogram_quantiles`) and in
    every snapshot.
    """
    if not _enabled:
        return
    with _lock:
        histogram = _histograms.get(name)
        if histogram is None:
            sketch = QuantileSketch()
            sketch.observe(value)
            _histograms[name] = {
                "count": 1,
                "total": value,
                "min": value,
                "max": value,
                "sketch": sketch,
            }
            return
        histogram["count"] += 1
        histogram["total"] += value
        if value < histogram["min"]:
            histogram["min"] = value
        if value > histogram["max"]:
            histogram["max"] = value
        histogram["sketch"].observe(value)


def histogram_quantiles(
    name: str, points: tuple[float, ...] = (0.5, 0.9, 0.99)
) -> dict[str, float] | None:
    """Live quantiles of histogram ``name``, or ``None`` if never observed.

    Reads the registry's sketch under the lock, so a racing recorder can
    never produce a half-applied answer.
    """
    with _lock:
        histogram = _histograms.get(name)
        if histogram is None:
            return None
        return histogram["sketch"].quantiles(points)


@contextmanager
def timed(name: str):
    """Time a block and fold its duration (milliseconds) into a histogram.

    The request-latency histograms of the serve layer
    (``serve.latency_ms.<verb>``) ride this.  Like every recording call it
    is a no-op while metrics are disabled — one flag check, no clock read.
    """
    if not _enabled:
        yield
        return
    started = time.perf_counter()
    try:
        yield
    finally:
        histogram_observe(name, (time.perf_counter() - started) * 1000.0)


def snapshot() -> dict:
    """The registry as a plain-JSON document (deep-copied, sorted keys).

    Taken under the registry lock, so a snapshot racing concurrent
    recorders is internally consistent (no half-applied histogram
    update) and fully detached from the live dicts.
    """
    with _lock:
        return {
            "schema": METRICS_SCHEMA,
            "counters": dict(sorted(_counters.items())),
            "gauges": dict(sorted(_gauges.items())),
            "histograms": {
                name: {
                    **{
                        key: value
                        for key, value in histogram.items()
                        if key != "sketch"
                    },
                    "sketch": histogram["sketch"].to_dict(),
                }
                for name, histogram in sorted(_histograms.items())
            },
        }


def merge_snapshots(snapshots: list[dict]) -> dict:
    """Fold per-process snapshots into one: counters sum, gauges take the
    max, histograms combine their aggregates and merge their quantile
    sketches (shard-order-invariant: any merge order yields identical
    state)."""
    counters: dict[str, float] = {}
    gauges: dict[str, float] = {}
    histograms: dict[str, dict] = {}
    sketches: dict[str, QuantileSketch] = {}
    for snap in snapshots:
        if snap.get("schema") != METRICS_SCHEMA:
            raise ValueError(
                f"cannot merge metrics snapshot with schema "
                f"{snap.get('schema')!r} (expected {METRICS_SCHEMA})"
            )
        for name, value in snap.get("counters", {}).items():
            counters[name] = counters.get(name, 0.0) + value
        for name, value in snap.get("gauges", {}).items():
            gauges[name] = max(gauges[name], value) if name in gauges else value
        for name, incoming in snap.get("histograms", {}).items():
            incoming_sketch = incoming.get("sketch")
            if incoming_sketch is not None:
                if name in sketches:
                    sketches[name].merge(
                        QuantileSketch.from_dict(incoming_sketch)
                    )
                else:
                    sketches[name] = QuantileSketch.from_dict(incoming_sketch)
            merged = histograms.get(name)
            if merged is None:
                histograms[name] = {
                    key: value
                    for key, value in incoming.items()
                    if key != "sketch"
                }
                continue
            merged["count"] += incoming["count"]
            merged["total"] += incoming["total"]
            merged["min"] = min(merged["min"], incoming["min"])
            merged["max"] = max(merged["max"], incoming["max"])
    for name, sketch in sketches.items():
        histograms[name]["sketch"] = sketch.to_dict()
    return {
        "schema": METRICS_SCHEMA,
        "counters": dict(sorted(counters.items())),
        "gauges": dict(sorted(gauges.items())),
        "histograms": {
            name: histograms[name] for name in sorted(histograms)
        },
    }
