"""A sampling profiler: where the process spends its time, flamegraph-ready.

Spans answer "how long did this *region* take"; the profiler answers
"what was the code *actually doing*" — without instrumenting anything.
A daemon thread wakes every ``interval_s`` seconds, snapshots every
thread's Python stack via :func:`sys._current_frames`, and counts
identical stacks.  The output is the **collapsed-stack** format every
flamegraph tool eats directly (``flamegraph.pl``, speedscope, inferno)::

    repro.cli.main;repro.pipeline.executor.run_pipeline;... 412

one line per distinct stack — frames root-first, semicolon-joined,
trailing sample count.  Frames are named ``<module>.<function>``.

Cost model: the *profiled code pays nothing* — no sys.settrace, no
instrumentation, no per-call hook.  The only cost is the sampler thread
itself (one ``sys._current_frames`` walk per tick, ~microseconds), so
the default 10 ms interval adds well under 1% load while catching
anything that takes more than a few ticks.  As with any sampler the
numbers are statistical: a function must accumulate samples to appear,
and sub-interval events are invisible.

Attach points:

* ``ropuf <experiment> --profile PATH`` / ``run_pipeline(profile=...)``
  — profiles the parent pipeline process for the whole run (worker
  processes are separate interpreters and are *not* sampled; their time
  shows up under the parent's pool-wait frames);
* ``ropuf serve --profile PATH`` — profiles the serving process
  (connection handlers, coalescer dispatcher, batch engine alike),
  written on shutdown.

The profiler's own sampler thread is excluded from its samples.
"""

from __future__ import annotations

import sys
import threading
from pathlib import Path

__all__ = ["SamplingProfiler"]


class SamplingProfiler:
    """Periodic whole-process stack sampling with collapsed-stack output.

    Usage::

        with SamplingProfiler(interval_s=0.01) as profiler:
            ...work...
        profiler.write("profile.collapsed")

    Args:
        interval_s: seconds between stack snapshots (default 10 ms).
        max_depth: frames kept per stack, deepest-first truncation guard
            against pathological recursion.
    """

    def __init__(self, interval_s: float = 0.01, max_depth: int = 128):
        if interval_s <= 0.0:
            raise ValueError(f"interval_s must be > 0, got {interval_s}")
        self.interval_s = interval_s
        self.max_depth = max_depth
        self._counts: dict[tuple[str, ...], int] = {}
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._samples = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "SamplingProfiler":
        """Start the sampler thread (idempotent start is an error)."""
        if self._thread is not None:
            raise RuntimeError("profiler already started")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="ropuf-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop sampling; counts stay readable."""
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._thread = None

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------

    @staticmethod
    def _frame_label(frame) -> str:
        module = frame.f_globals.get("__name__", "?")
        return f"{module}.{frame.f_code.co_name}"

    def _sample_once(self) -> None:
        own = threading.get_ident()
        # sys._current_frames is a point-in-time dict of every thread's
        # top frame; walking f_back links needs no locks — frames are
        # snapshots the moment we hold a reference.
        for thread_id, frame in sys._current_frames().items():
            if thread_id == own:
                continue
            stack: list[str] = []
            while frame is not None and len(stack) < self.max_depth:
                stack.append(self._frame_label(frame))
                frame = frame.f_back
            if not stack:
                continue
            stack.reverse()  # collapsed format is root-first
            key = tuple(stack)
            with self._lock:
                self._counts[key] = self._counts.get(key, 0) + 1
                self._samples += 1

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            self._sample_once()

    # ------------------------------------------------------------------
    # Output
    # ------------------------------------------------------------------

    def collapsed(self) -> str:
        """The samples in collapsed-stack format (one stack per line,
        heaviest first, ties broken lexically so output is stable)."""
        with self._lock:
            entries = sorted(
                self._counts.items(), key=lambda item: (-item[1], item[0])
            )
        return "".join(
            f"{';'.join(stack)} {count}\n" for stack, count in entries
        )

    def write(self, path: str | Path) -> Path:
        """Write :meth:`collapsed` output to ``path``; returns the path."""
        path = Path(path)
        path.write_text(self.collapsed())
        return path

    def stats(self) -> dict:
        """Sampler counters: total samples, distinct stacks, interval."""
        with self._lock:
            return {
                "samples": self._samples,
                "stacks": len(self._counts),
                "interval_s": self.interval_s,
            }
