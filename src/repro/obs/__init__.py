"""repro.obs — lightweight, stdlib-only tracing and metrics.

Observability for the pipeline and the batch engines:

* :mod:`~repro.obs.trace` — nested :func:`span` records with per-process
  buffering, JSONL serialisation, and cross-process merging;
* :mod:`~repro.obs.metrics` — named counters / gauges / histograms with
  mergeable snapshots (the ``"_metrics"`` summary block);
* :mod:`~repro.obs.report` — trace summarisation and BENCH-artifact
  comparison, surfaced as ``ropuf trace summarize`` and
  ``ropuf bench compare``.

Both layers are disabled by default and cost one flag check per call when
off — instrumented hot paths stay hot (<2% overhead, pinned by
``benchmarks/test_bench_obs_overhead.py``).  ``run_pipeline(trace=...)``
(CLI ``ropuf all --trace PATH``) turns them on for one run and writes the
merged multi-process trace next to the summary.

See ``docs/observability.md`` for the span model, metric name catalogue,
and file formats.
"""

from .metrics import (
    METRICS_SCHEMA,
    counter_add,
    disable_metrics,
    enable_metrics,
    gauge_set,
    histogram_observe,
    histogram_quantiles,
    merge_snapshots,
    metrics_enabled,
    reset_metrics,
    snapshot,
    timed,
)
from .exporter import (
    EXPOSITION_SCHEMA,
    MetricsExporter,
    prometheus_text,
    start_http_exporter,
)
from .profiler import SamplingProfiler
from .quantiles import QuantileSketch
from .requests import TailSampler
from .report import (
    BENCH_SCHEMA,
    compare_bench,
    format_bench_compare,
    format_trace_summary,
    summarize_trace,
)
from .trace import (
    TRACE_SCHEMA,
    buffered_spans,
    current_request_id,
    disable_tracing,
    drain_spans,
    enable_tracing,
    extend_spans,
    new_request_id,
    read_trace,
    request_context,
    reset_tracing,
    span,
    tracing_enabled,
    write_trace,
)

__all__ = [
    "TRACE_SCHEMA",
    "span",
    "tracing_enabled",
    "enable_tracing",
    "disable_tracing",
    "reset_tracing",
    "drain_spans",
    "extend_spans",
    "buffered_spans",
    "write_trace",
    "read_trace",
    "new_request_id",
    "current_request_id",
    "request_context",
    "TailSampler",
    "SamplingProfiler",
    "METRICS_SCHEMA",
    "metrics_enabled",
    "enable_metrics",
    "disable_metrics",
    "reset_metrics",
    "counter_add",
    "gauge_set",
    "histogram_observe",
    "histogram_quantiles",
    "QuantileSketch",
    "EXPOSITION_SCHEMA",
    "MetricsExporter",
    "prometheus_text",
    "start_http_exporter",
    "timed",
    "snapshot",
    "merge_snapshots",
    "BENCH_SCHEMA",
    "summarize_trace",
    "format_trace_summary",
    "compare_bench",
    "format_bench_compare",
]
