"""Nested spans: where a run's wall time went, across processes.

A *span* is one timed region of code, opened with the :func:`span` context
manager::

    with span("task:fig3_uniqueness", jobs=2):
        with span("task.attempt", attempt=1):
            ...

Spans nest: the innermost open span on the current thread becomes the
parent of any span opened under it, so a finished trace is a forest of
intervals.  Each record carries monotonic start/stop stamps
(``time.perf_counter``), a wall-clock anchor, the process id, a
per-process unique id, its parent's id, and arbitrary JSON-serialisable
attributes.

Tracing is **disabled by default** and the disabled path is a near-free
no-op — one module-flag check and the return of a shared null context
manager, no allocation, no clock read.  The enroll-engine overhead
benchmark (``benchmarks/test_bench_obs_overhead.py``) pins the disabled
instrumentation at <2% of the uninstrumented runtime.

Process model
-------------

Spans are buffered per process.  Worker processes (the pipeline's
``ProcessPoolExecutor`` fan-out) enable tracing locally, run their task,
then :func:`drain_spans` and ship the records back to the parent inside
the ordinary result payload; the parent merges them with
:func:`extend_spans` and serialises the whole forest with
:func:`write_trace`.  Span ids are ``"<pid>-<n>"`` so merged traces never
collide, and parent links only ever point within one process.

Trace file format (``schema`` 1): JSON Lines.  The first record is a
header, every span is one ``{"type": "span", ...}`` record (appended in
completion order, so ``t1`` is non-decreasing per process), and an
optional final ``{"type": "metrics", ...}`` record carries the merged
:mod:`repro.obs.metrics` snapshot.  See ``docs/observability.md``.
"""

from __future__ import annotations

import contextvars
import itertools
import json
import os
import threading
import time
from contextlib import contextmanager
from pathlib import Path

__all__ = [
    "TRACE_SCHEMA",
    "span",
    "tracing_enabled",
    "enable_tracing",
    "disable_tracing",
    "reset_tracing",
    "drain_spans",
    "extend_spans",
    "buffered_spans",
    "write_trace",
    "read_trace",
    "new_request_id",
    "current_request_id",
    "request_context",
]

#: Version of the JSONL trace-file layout; bumped on incompatible change.
TRACE_SCHEMA = 1

_enabled = False
_buffer: list[dict] = []
_ids = itertools.count(1)
_stack = threading.local()

#: The request id of the request currently being served, if any.  A
#: :mod:`contextvars` variable rather than thread-local state so the
#: coalescer's dispatcher thread can adopt a submitting request's context
#: (``contextvars.copy_context`` / :func:`request_context`) and the batch
#: engine's spans land in the right request tree.
_request_id: contextvars.ContextVar[str | None] = contextvars.ContextVar(
    "ropuf_request_id", default=None
)
_request_ids = itertools.count(1)


def new_request_id() -> str:
    """Mint a process-unique request id (``"r<pid>-<n>"``).

    The serve layer calls this once per inbound frame; everything that
    happens on behalf of that frame — service handler, coalescer
    dispatch, batch engine — carries the id via :func:`request_context`.
    """
    return f"r{os.getpid()}-{next(_request_ids)}"


def current_request_id() -> str | None:
    """The request id of the active :func:`request_context`, or None."""
    return _request_id.get()


@contextmanager
def request_context(request_id: str | None):
    """Scope ``request_id`` to a block: spans opened inside it (on this
    thread, or in a context copied from it) record a ``request_id``
    attribute automatically."""
    token = _request_id.set(request_id)
    try:
        yield request_id
    finally:
        _request_id.reset(token)


def tracing_enabled() -> bool:
    """Whether spans are currently being recorded in this process."""
    return _enabled


def enable_tracing() -> None:
    """Start recording spans (buffer is kept; see :func:`reset_tracing`)."""
    global _enabled
    _enabled = True


def disable_tracing() -> None:
    """Stop recording spans; already-buffered spans stay drainable."""
    global _enabled
    _enabled = False


def reset_tracing() -> None:
    """Drop all buffered spans and any open-span nesting state."""
    del _buffer[:]
    _stack.open = []


def buffered_spans() -> list[dict]:
    """A snapshot (copy) of the per-process span buffer."""
    return list(_buffer)


def drain_spans() -> list[dict]:
    """Remove and return every buffered span record.

    Length-bounded copy-then-delete, so a span completing on another
    thread mid-drain is never lost: concurrent appends land past the
    copied prefix and survive for the next drain.
    """
    n = len(_buffer)
    spans = _buffer[:n]
    del _buffer[:n]
    return spans


def extend_spans(spans: list[dict]) -> None:
    """Merge span records from another process into this buffer."""
    _buffer.extend(spans)


class _NullSpan:
    """The shared disabled-path context manager: does nothing, fast."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def set_attr(self, key: str, value) -> None:
        """Dropped — no record exists while tracing is disabled."""


_NULL_SPAN = _NullSpan()


class _Span:
    """One live span; records itself into the buffer on exit."""

    __slots__ = ("record",)

    def __init__(self, name: str, attrs: dict) -> None:
        pid = os.getpid()
        open_spans = getattr(_stack, "open", None)
        if open_spans is None:
            open_spans = _stack.open = []
        request_id = _request_id.get()
        if request_id is not None and "request_id" not in attrs:
            attrs["request_id"] = request_id
        self.record = {
            "type": "span",
            "id": f"{pid}-{next(_ids)}",
            "parent": open_spans[-1] if open_spans else None,
            "name": name,
            "pid": pid,
            "t0": time.perf_counter(),
            "t1": None,
            "wall0": time.time(),
            "attrs": attrs,
        }

    def set_attr(self, key: str, value) -> None:
        """Attach one attribute to the span while it is open."""
        self.record["attrs"][key] = value

    def __enter__(self) -> "_Span":
        _stack.open.append(self.record["id"])
        return self

    def __exit__(self, *exc_info) -> bool:
        self.record["t1"] = time.perf_counter()
        open_spans = _stack.open
        if open_spans and open_spans[-1] == self.record["id"]:
            open_spans.pop()
        _buffer.append(self.record)
        return False


def span(name: str, **attrs):
    """Open a timed span named ``name`` with JSON-serialisable ``attrs``.

    Returns a context manager.  When tracing is disabled this is the
    shared null span — no record is created.  Both span flavours expose
    ``set_attr(key, value)`` for attributes only known mid-region (a
    no-op on the null span), so instrumented code never branches on the
    tracing state.
    """
    if not _enabled:
        return _NULL_SPAN
    return _Span(name, attrs)


def write_trace(
    path: str | Path,
    spans: list[dict] | None = None,
    metrics: dict | None = None,
) -> Path:
    """Serialise a span forest (default: the buffer) to a JSONL file.

    Writes the schema header first, then one line per span in the given
    order, then — if ``metrics`` is not ``None`` — one trailing metrics
    record.  Returns the path written.
    """
    path = Path(path)
    if spans is None:
        spans = buffered_spans()
    lines = [
        json.dumps(
            {
                "type": "header",
                "schema": TRACE_SCHEMA,
                "pid": os.getpid(),
                "span_count": len(spans),
            }
        )
    ]
    lines.extend(json.dumps(record) for record in spans)
    if metrics is not None:
        lines.append(json.dumps({"type": "metrics", "metrics": metrics}))
    path.write_text("\n".join(lines) + "\n")
    return path


def read_trace(path: str | Path) -> tuple[list[dict], dict | None]:
    """Parse a trace file back into (span records, metrics snapshot).

    Raises:
        ValueError: on a missing/incompatible header or malformed line.
    """
    lines = Path(path).read_text().splitlines()
    if not lines:
        raise ValueError(f"empty trace file: {path}")
    header = json.loads(lines[0])
    if header.get("type") != "header" or header.get("schema") != TRACE_SCHEMA:
        raise ValueError(
            f"not a schema-{TRACE_SCHEMA} trace file: {path} "
            f"(header: {header!r})"
        )
    spans: list[dict] = []
    metrics: dict | None = None
    for number, line in enumerate(lines[1:], start=2):
        record = json.loads(line)
        kind = record.get("type")
        if kind == "span":
            spans.append(record)
        elif kind == "metrics":
            metrics = record["metrics"]
        else:
            raise ValueError(f"{path}:{number}: unknown record type {kind!r}")
    return spans, metrics
