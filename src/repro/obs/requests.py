"""Tail-based trace sampling: keep the span trees worth keeping.

A serving process with tracing on would buffer every span of every
request forever — at thousands of requests per second that is an
unbounded memory leak recording almost nothing of interest.  Tail-based
sampling inverts the decision: record everything *cheaply*, decide at
the **end** of each request whether its tree was interesting (slow), and
drop the rest.  An operator asking "where did that 200 ms auth go?" gets
the full serve-frame → coalescer-dispatch → batch-engine tree for
exactly the requests that hurt.

Mechanics
---------

The serve front-end calls :meth:`TailSampler.begin` when it mints a
request id and :meth:`TailSampler.finish` with the measured latency once
the reply is written.  ``finish`` drains the process span buffer
(:func:`repro.obs.trace.drain_spans` — the sampler must be the only
drainer in the process) and routes each span by the request ids it
references:

* ``attrs.request_id`` — the span ran inside one request's
  :func:`~repro.obs.trace.request_context`;
* ``attrs.request_ids`` — a coalesced-batch span serving several
  requests at once;
* neither — ambient machinery (accept loops, idle ticks): dropped.

A span is *decidable* once every request it references has finished; a
batch span shared with a still-in-flight request is held until that
request completes, so a slow batch member always gets its batch spans.
Decidable spans are retained into the tree of every referencing request
whose latency met ``slow_ms``, and dropped when none did.

Everything is bounded: at most ``max_trees`` retained trees (oldest
evicted first), at most ``max_finished`` remembered latencies (a span
referencing an evicted request id treats it as fast).  The sampler is
thread-safe — ``finish`` arrives concurrently from every
connection-handler thread.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from . import trace

__all__ = ["TailSampler"]


class TailSampler:
    """Retain full span trees only for slow requests.

    Args:
        slow_ms: retention threshold — a request whose latency is at
            least this many milliseconds keeps its spans.
        max_trees: how many slow-request trees to hold (oldest evicted).
        max_finished: how many finished-request latencies to remember
            for deciding shared batch spans.
    """

    def __init__(
        self,
        slow_ms: float,
        max_trees: int = 64,
        max_finished: int = 4096,
    ):
        if slow_ms < 0.0:
            raise ValueError(f"slow_ms must be >= 0, got {slow_ms}")
        self.slow_ms = slow_ms
        self.max_trees = max_trees
        self.max_finished = max_finished
        self._lock = threading.Lock()
        self._active: set[str] = set()
        self._latencies: OrderedDict[str, float] = OrderedDict()
        #: Spans waiting on a still-active referenced request.
        self._held: list[tuple[dict, frozenset[str]]] = []
        #: Slow request id -> its retained spans (insertion-ordered).
        self._trees: OrderedDict[str, list[dict]] = OrderedDict()
        self._finished_count = 0
        self._retained_count = 0
        self._dropped_count = 0

    # ------------------------------------------------------------------
    # Serve-side lifecycle
    # ------------------------------------------------------------------

    def begin(self, request_id: str) -> None:
        """Mark a request in flight (call when the id is minted)."""
        with self._lock:
            self._active.add(request_id)

    def finish(self, request_id: str, latency_ms: float) -> None:
        """Record a request's latency and (re)decide drained spans."""
        drained = trace.drain_spans()
        with self._lock:
            self._active.discard(request_id)
            self._latencies[request_id] = latency_ms
            self._finished_count += 1
            while len(self._latencies) > self.max_finished:
                self._latencies.popitem(last=False)
            undecided: list[tuple[dict, frozenset[str]]] = []
            for record, refs in self._held:
                if not self._decide(record, refs):
                    undecided.append((record, refs))
            for record in drained:
                refs = self._references(record)
                if refs is None:
                    self._dropped_count += 1
                    continue
                if not self._decide(record, refs):
                    undecided.append((record, refs))
            self._held = undecided

    # ------------------------------------------------------------------
    # Decision internals (lock held)
    # ------------------------------------------------------------------

    @staticmethod
    def _references(record: dict) -> frozenset[str] | None:
        """Request ids a span serves, or None for ambient spans."""
        attrs = record.get("attrs", {})
        refs = set(attrs.get("request_ids", ()))
        single = attrs.get("request_id")
        if single is not None:
            refs.add(single)
        return frozenset(refs) if refs else None

    def _decide(self, record: dict, refs: frozenset[str]) -> bool:
        """Retain or drop ``record`` if decidable; False to keep holding."""
        if refs & self._active:
            return False
        slow = [
            rid
            for rid in refs
            if self._latencies.get(rid, 0.0) >= self.slow_ms
        ]
        if not slow:
            self._dropped_count += 1
            return True
        self._retained_count += 1
        for rid in slow:
            self._trees.setdefault(rid, []).append(record)
        while len(self._trees) > self.max_trees:
            self._trees.popitem(last=False)
        return True

    # ------------------------------------------------------------------
    # Reading the retained trees
    # ------------------------------------------------------------------

    def trees(self) -> dict[str, list[dict]]:
        """Retained trees: slow request id -> its spans (copies)."""
        with self._lock:
            return {rid: list(spans) for rid, spans in self._trees.items()}

    def spans(self) -> list[dict]:
        """Every retained span, deduplicated (a batch span shared by two
        slow requests appears once), in completion order — ready for
        :func:`repro.obs.trace.write_trace`."""
        with self._lock:
            seen: set[str] = set()
            out: list[dict] = []
            for records in self._trees.values():
                for record in records:
                    if record["id"] not in seen:
                        seen.add(record["id"])
                        out.append(record)
            out.sort(key=lambda record: record["t1"] or 0.0)
            return out

    def stats(self) -> dict:
        """Sampler counters (plain JSON, for the ``stats`` serve verb)."""
        with self._lock:
            return {
                "slow_ms": self.slow_ms,
                "active": len(self._active),
                "finished": self._finished_count,
                "retained_trees": len(self._trees),
                "retained_spans": self._retained_count,
                "dropped_spans": self._dropped_count,
                "held_spans": len(self._held),
            }
