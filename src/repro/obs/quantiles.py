"""A mergeable, fixed-size quantile sketch for live percentiles.

The metrics registry's histograms historically kept only
``{count, total, min, max}`` — enough for a mean, useless for a p99.
:class:`QuantileSketch` upgrades them: a log-bucketed sketch in the
DDSketch family that answers any quantile at any moment from a bounded
number of integer counters, merges across processes, and — crucially for
this codebase's determinism guarantees — produces **shard-order-invariant**
state, like the PR 7 streaming metrics.

Design
------

Positive values map to geometric buckets: with relative accuracy ``a``
and ``gamma = (1 + a) / (1 - a)``, value ``v > 0`` lands in bucket
``ceil(log(v) / log(gamma))`` — bucket ``i`` covers ``(gamma^(i-1),
gamma^i]``.  The estimate reported for bucket ``i`` is
``2 * gamma^i / (gamma + 1)``, which is within relative error ``a`` of
*every* value in the bucket.  Negative values use a mirrored bucket map,
and exact zeros get their own counter, so the sketch handles any real
input (latencies only ever exercise the positive side).

**Error bound (documented contract).**  Let ``r = max(0, ceil(q * n) - 1)``
be the inverse-CDF rank of quantile ``q`` over ``n`` observations, and
``x`` the ``r``-th smallest observed value.  Then ``quantile(q)`` returns
an estimate ``e`` with ``|e - x| <= relative_accuracy * |x|`` — a *value*
error bound at the exact rank (rank error is zero: the walk counts exact
integer bucket populations).  The bound holds for every bucket that has
not been collapsed (see below); ``tests/test_obs_quantiles.py`` pins it
property-style with Hypothesis.

**Fixed size.**  Each side keeps at most ``max_bins`` buckets.  On
overflow the two lowest-index buckets merge (the low-magnitude tail —
the *un*interesting end for latency telemetry).  The surviving state is a
pure function of the observed multiset: the kept indices are the top
``max_bins`` distinct indices ever seen, with all lower mass accumulated
into the lowest survivor.  That makes every path to the same multiset —
one stream, many shards, any merge order — land on byte-identical state:

* ``merge(a, b) == merge(b, a)``;
* sharded observation + merge == one unsharded stream (the ``total``
  field alone is a float sum, so it is order-invariant only up to
  float-addition reassociation — everything the quantile walk reads is
  integer-exact).

Both invariants are pinned by Hypothesis property tests.  Inside the
collapsed region the error bound degrades to "somewhere at or below the
lowest kept bucket"; with the default ``max_bins=1024`` and 1% accuracy
the un-collapsed span covers ~44 decades, so collapse never triggers for
realistic latencies.

The sketch serialises to plain JSON (:meth:`to_dict` /
:meth:`from_dict`), which is how it rides inside metrics snapshots from
worker processes back to the parent and out through the exposition
endpoints (:mod:`repro.obs.exporter`).
"""

from __future__ import annotations

import math

__all__ = ["QuantileSketch", "DEFAULT_RELATIVE_ACCURACY", "DEFAULT_MAX_BINS"]

#: Default relative accuracy: estimates within 1% of the exact value.
DEFAULT_RELATIVE_ACCURACY = 0.01

#: Default per-side bucket budget (~44 decades at 1% accuracy).
DEFAULT_MAX_BINS = 1024


class QuantileSketch:
    """Mergeable log-bucket quantile sketch with a relative-error bound.

    Args:
        relative_accuracy: documented value-error bound ``a`` in (0, 1);
            quantile estimates are within ``a * |exact|`` of the exact
            inverse-CDF sample value (un-collapsed buckets).
        max_bins: per-side bucket budget; on overflow the lowest-value
            buckets collapse together, canonically (order-invariant).
    """

    __slots__ = (
        "relative_accuracy",
        "max_bins",
        "_gamma",
        "_log_gamma",
        "_positive",
        "_negative",
        "_zero",
        "count",
        "total",
        "min",
        "max",
    )

    def __init__(
        self,
        relative_accuracy: float = DEFAULT_RELATIVE_ACCURACY,
        max_bins: int = DEFAULT_MAX_BINS,
    ):
        if not 0.0 < relative_accuracy < 1.0:
            raise ValueError(
                f"relative_accuracy must be in (0, 1), got {relative_accuracy}"
            )
        if max_bins < 2:
            raise ValueError(f"max_bins must be >= 2, got {max_bins}")
        self.relative_accuracy = relative_accuracy
        self.max_bins = max_bins
        self._gamma = (1.0 + relative_accuracy) / (1.0 - relative_accuracy)
        self._log_gamma = math.log(self._gamma)
        self._positive: dict[int, int] = {}
        self._negative: dict[int, int] = {}
        self._zero = 0
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def _index(self, magnitude: float) -> int:
        """Bucket index of a positive magnitude."""
        return math.ceil(math.log(magnitude) / self._log_gamma)

    def _estimate(self, index: int) -> float:
        """Representative value of bucket ``index`` (positive side)."""
        return 2.0 * self._gamma**index / (self._gamma + 1.0)

    @staticmethod
    def _collapse(bins: dict[int, int], max_bins: int) -> None:
        """Fold the lowest buckets together until within budget.

        Merging the two lowest indices preserves the canonical form —
        "top ``max_bins`` distinct indices, lower mass folded into the
        lowest survivor" — which is what makes observation order and
        merge order invisible in the final state.
        """
        while len(bins) > max_bins:
            lowest, second = sorted(bins)[:2]
            bins[second] += bins.pop(lowest)

    def observe(self, value: float) -> None:
        """Fold one observation into the sketch."""
        value = float(value)
        if value != value:  # NaN: refuse quietly-corrupting input
            raise ValueError("cannot observe NaN")
        if value == 0.0:
            self._zero += 1
        elif value > 0.0:
            index = self._index(value)
            self._positive[index] = self._positive.get(index, 0) + 1
            self._collapse(self._positive, self.max_bins)
        else:
            index = self._index(-value)
            self._negative[index] = self._negative.get(index, 0) + 1
            self._collapse(self._negative, self.max_bins)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def merge(self, other: "QuantileSketch") -> None:
        """Fold ``other`` into this sketch (in place, commutative result).

        Raises:
            ValueError: when the sketches' accuracy/budget configs differ
                (their bucket maps would not line up).
        """
        if (
            other.relative_accuracy != self.relative_accuracy
            or other.max_bins != self.max_bins
        ):
            raise ValueError(
                "cannot merge sketches with different configs: "
                f"({self.relative_accuracy}, {self.max_bins}) vs "
                f"({other.relative_accuracy}, {other.max_bins})"
            )
        for index, n in other._positive.items():
            self._positive[index] = self._positive.get(index, 0) + n
        for index, n in other._negative.items():
            self._negative[index] = self._negative.get(index, 0) + n
        self._collapse(self._positive, self.max_bins)
        self._collapse(self._negative, self.max_bins)
        self._zero += other._zero
        self.count += other.count
        self.total += other.total
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (inverse-CDF rank; see error bound).

        Returns 0.0 on an empty sketch.  The exact observed ``min`` /
        ``max`` clamp the estimate, so q=0/q=1 are exact.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        if q == 0.0:
            return self.min
        if q == 1.0:
            return self.max
        rank = max(0, math.ceil(q * self.count) - 1)
        cumulative = 0
        estimate = None
        # Ascending value order: most-negative first (descending index on
        # the mirrored side), then zeros, then positives ascending.
        for index in sorted(self._negative, reverse=True):
            cumulative += self._negative[index]
            if cumulative > rank:
                estimate = -self._estimate(index)
                break
        if estimate is None:
            cumulative += self._zero
            if cumulative > rank:
                estimate = 0.0
        if estimate is None:
            for index in sorted(self._positive):
                cumulative += self._positive[index]
                if cumulative > rank:
                    estimate = self._estimate(index)
                    break
        if estimate is None:  # unreachable unless counters were corrupted
            estimate = self.max
        return min(self.max, max(self.min, estimate))

    def quantiles(
        self, points: tuple[float, ...] = (0.5, 0.9, 0.99)
    ) -> dict[str, float]:
        """``{"p50": ..., "p90": ..., "p99": ...}`` plus exact ``max``."""
        summary = {
            f"p{point * 100.0:g}": self.quantile(point) for point in points
        }
        summary["max"] = self.max if self.count else 0.0
        return summary

    # ------------------------------------------------------------------
    # Serialisation (plain JSON, travels inside metrics snapshots)
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        """The sketch as a plain-JSON document (bucket keys as strings)."""
        return {
            "relative_accuracy": self.relative_accuracy,
            "max_bins": self.max_bins,
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "zero": self._zero,
            "positive": {str(i): n for i, n in sorted(self._positive.items())},
            "negative": {str(i): n for i, n in sorted(self._negative.items())},
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "QuantileSketch":
        """Inverse of :meth:`to_dict`."""
        sketch = cls(
            relative_accuracy=payload["relative_accuracy"],
            max_bins=payload["max_bins"],
        )
        sketch.count = int(payload["count"])
        sketch.total = float(payload["total"])
        sketch.min = math.inf if payload["min"] is None else float(payload["min"])
        sketch.max = -math.inf if payload["max"] is None else float(payload["max"])
        sketch._zero = int(payload["zero"])
        sketch._positive = {
            int(i): int(n) for i, n in payload["positive"].items()
        }
        sketch._negative = {
            int(i): int(n) for i, n in payload["negative"].items()
        }
        return sketch

    def __eq__(self, other) -> bool:
        if not isinstance(other, QuantileSketch):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return (
            f"QuantileSketch(count={self.count}, "
            f"bins={len(self._positive) + len(self._negative)}, "
            f"accuracy={self.relative_accuracy})"
        )
