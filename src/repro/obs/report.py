"""Offline analysis of observability artifacts.

Two consumers, both surfaced as CLI verbs:

* :func:`summarize_trace` / :func:`format_trace_summary` — digest a merged
  JSONL trace (``ropuf all --trace``) into per-span-name totals and
  *self-times* (time in a span minus time in its children), a per-process
  breakdown, and the cache hit ratio.  Backs ``ropuf trace summarize``.
* :func:`compare_bench` / :func:`format_bench_compare` — diff two
  ``BENCH_<name>.json`` artifacts (:mod:`benchmarks.conftest` writes them
  with a versioned schema) and flag regressions beyond a threshold.
  Backs ``ropuf bench compare``, whose nonzero exit makes it a CI gate.
"""

from __future__ import annotations

import json
from pathlib import Path

from .trace import read_trace

__all__ = [
    "BENCH_SCHEMA",
    "BENCH_METRIC_FAMILIES",
    "summarize_trace",
    "format_trace_summary",
    "compare_bench",
    "format_bench_compare",
]

#: Version of the BENCH_<name>.json artifact layout this reader understands.
BENCH_SCHEMA = 1


# ----------------------------------------------------------------------
# Trace summarization
# ----------------------------------------------------------------------


def summarize_trace(path: str | Path, top: int = 10) -> dict:
    """Digest a trace file into a machine-readable summary document.

    Returns::

        {
          "span_count": ...,
          "process_count": ...,
          "by_name": {name: {count, total_seconds, self_seconds}, ...},
          "top_self_time": [name, ...],           # up to ``top`` entries
          "processes": {pid: {span_count, root_seconds}, ...},
          "cache": {"hits": h, "misses": m, "hit_ratio": r} | None,
          "metrics": <merged snapshot> | None,
        }

    ``self_seconds`` is a span's duration minus its direct children's
    durations, aggregated per span name; ``root_seconds`` sums only spans
    with no parent, so per-process totals are not double-counted.
    """
    spans, metrics = read_trace(path)
    durations: dict[str, float] = {}
    child_time: dict[str, float] = {}
    by_name: dict[str, dict] = {}
    processes: dict[int, dict] = {}
    for record in spans:
        if record["t1"] is None:
            continue  # span never closed (crashed region); skip
        durations[record["id"]] = record["t1"] - record["t0"]
    for record in spans:
        duration = durations.get(record["id"])
        if duration is None:
            continue
        if record["parent"] is not None:
            child_time[record["parent"]] = (
                child_time.get(record["parent"], 0.0) + duration
            )
        process = processes.setdefault(
            record["pid"], {"span_count": 0, "root_seconds": 0.0}
        )
        process["span_count"] += 1
        if record["parent"] is None:
            process["root_seconds"] += duration
    for record in spans:
        duration = durations.get(record["id"])
        if duration is None:
            continue
        entry = by_name.setdefault(
            record["name"],
            {"count": 0, "total_seconds": 0.0, "self_seconds": 0.0},
        )
        entry["count"] += 1
        entry["total_seconds"] += duration
        entry["self_seconds"] += duration - child_time.get(record["id"], 0.0)
    top_self = sorted(
        by_name, key=lambda name: by_name[name]["self_seconds"], reverse=True
    )[:top]
    cache = None
    ipc = None
    if metrics is not None:
        counters = metrics.get("counters", {})
        hits = counters.get("cache.hits", 0.0)
        misses = counters.get("cache.misses", 0.0)
        if hits or misses:
            cache = {
                "hits": hits,
                "misses": misses,
                "hit_ratio": hits / (hits + misses),
            }
        segments = counters.get("ipc.shm_segments", 0.0)
        bytes_sent = counters.get("ipc.bytes_sent", 0.0)
        bytes_received = counters.get("ipc.bytes_received", 0.0)
        if segments or bytes_sent or bytes_received:
            ipc = {
                "shm_segments": segments,
                "bytes_sent": bytes_sent,
                "bytes_received": bytes_received,
                "swept": counters.get("ipc.shm_swept", 0.0),
            }
    return {
        "span_count": len(spans),
        "process_count": len(processes),
        "by_name": by_name,
        "top_self_time": top_self,
        "processes": {
            str(pid): processes[pid] for pid in sorted(processes)
        },
        "cache": cache,
        "ipc": ipc,
        "metrics": metrics,
    }


def format_trace_summary(summary: dict) -> str:
    """Render a :func:`summarize_trace` document for the terminal."""
    lines = [
        f"{summary['span_count']} spans across "
        f"{summary['process_count']} process(es)",
        "",
        "top spans by self-time:",
    ]
    by_name = summary["by_name"]
    # Dynamic task names (fleet_shard:<i>:<spec-json>) can be hundreds of
    # characters; cap the aligned column and elide the middle.
    def clip(name: str, limit: int = 48) -> str:
        if len(name) <= limit:
            return name
        keep = (limit - 3) // 2
        return name[:keep] + "..." + name[-(limit - 3 - keep):]

    width = max(
        (len(clip(name)) for name in summary["top_self_time"]), default=4
    )
    for name in summary["top_self_time"]:
        entry = by_name[name]
        lines.append(
            f"  {clip(name):<{width}}  self {entry['self_seconds'] * 1e3:10.3f} ms"
            f"  total {entry['total_seconds'] * 1e3:10.3f} ms"
            f"  x{entry['count']}"
        )
    lines.append("")
    lines.append("per-process breakdown:")
    for pid, process in summary["processes"].items():
        lines.append(
            f"  pid {pid}: {process['span_count']} spans, "
            f"{process['root_seconds'] * 1e3:.3f} ms in root spans"
        )
    cache = summary["cache"]
    if cache is not None:
        lines.append("")
        lines.append(
            f"cache: {cache['hits']:.0f} hits / {cache['misses']:.0f} misses "
            f"(hit ratio {cache['hit_ratio']:.1%})"
        )
    ipc = summary.get("ipc")
    if ipc is not None:
        lines.append("")
        lines.append(
            f"ipc: {ipc['shm_segments']:.0f} shm segment(s), "
            f"{ipc['bytes_sent'] / 1e6:.1f} MB sent / "
            f"{ipc['bytes_received'] / 1e6:.1f} MB received"
            + (
                f", {ipc['swept']:.0f} swept after worker loss"
                if ipc.get("swept")
                else ""
            )
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Benchmark artifact comparison
# ----------------------------------------------------------------------


def _load_bench(path: str | Path) -> dict:
    payload = json.loads(Path(path).read_text())
    schema = payload.get("schema")
    if schema != BENCH_SCHEMA:
        raise ValueError(
            f"{path}: expected a schema-{BENCH_SCHEMA} BENCH artifact, got "
            f"schema {schema!r} (re-run the benchmarks to regenerate it)"
        )
    return payload


def _numeric_leaves(payload, prefix: str = "") -> dict[str, float]:
    """Flatten nested dicts to dotted-path -> numeric value."""
    leaves: dict[str, float] = {}
    if isinstance(payload, dict):
        for key, value in payload.items():
            leaves.update(_numeric_leaves(value, f"{prefix}{key}."))
    elif isinstance(payload, bool):
        pass  # bools are ints in Python; never a benchmark quantity
    elif isinstance(payload, (int, float)):
        leaves[prefix[:-1]] = float(payload)
    return leaves


#: Metric families ``compare_bench``'s ``metric`` argument can gate on.
BENCH_METRIC_FAMILIES = ("seconds", "speedup", "throughput", "memory")


def _classify(path: str) -> tuple[str, str] | None:
    """``(family, worse_direction)`` of a quantity, or None for config.

    Families: ``seconds`` (wall times, higher is worse), ``speedup``
    (loop-vs-vectorized ratios, lower is worse), ``throughput``
    (``*_per_second`` rates, lower is worse), ``memory`` (``peak_rss*`` /
    ``*bytes*`` footprints, higher is worse).
    """
    leaf = path.rsplit(".", 1)[-1]
    if leaf == "required_speedup" or ".problem." in f".{path}.":
        return None  # configuration, not a measurement
    if "per_second" in leaf:
        return "throughput", "lower"  # less throughput = regression
    if "seconds" in leaf:
        return "seconds", "higher"  # more seconds = slower = regression
    if "speedup" in leaf:
        return "speedup", "lower"  # less speedup = regression
    if "peak_rss" in leaf or "bytes" in leaf:
        return "memory", "higher"  # bigger footprint = regression
    return None


def compare_bench(
    old_path: str | Path,
    new_path: str | Path,
    threshold: float = 0.20,
    metric: str = "all",
) -> dict:
    """Compare two BENCH artifacts; flag changes beyond ``threshold``.

    Quantities classify into families by their leaf name (see
    :func:`_classify`): ``seconds`` and ``memory`` (``peak_rss*`` /
    ``*bytes*``) regress when they *increase* by more than ``threshold``
    (relative); ``speedup`` and ``throughput`` (``*_per_second``) regress
    when they *decrease*.  ``problem.*`` sizes and ``required_speedup``
    are configuration: a mismatch there makes the artifacts incomparable
    and is reported separately (and also fails the comparison).

    Args:
        threshold: relative change flagged as a regression (0.20 = 20%).
        metric: restrict the regression check to one family
            (``"seconds"``, ``"speedup"``, ``"throughput"``,
            ``"memory"``), or ``"all"`` (default).  Useful in CI, where
            wall times and throughputs vary across runners but speedup
            ratios and memory footprints are stable.

    Returns a document with ``regressions``, ``improvements``,
    ``unchanged``, ``incomparable``, and ``ok`` (no regressions and
    nothing incomparable).
    """
    if metric != "all" and metric not in BENCH_METRIC_FAMILIES:
        raise ValueError(
            "metric must be all|" + "|".join(BENCH_METRIC_FAMILIES)
            + f", got {metric!r}"
        )
    old = _numeric_leaves(_load_bench(old_path))
    new = _numeric_leaves(_load_bench(new_path))
    regressions: list[dict] = []
    improvements: list[dict] = []
    unchanged: list[dict] = []
    incomparable: list[str] = []
    for path in sorted(set(old) | set(new)):
        if path == "schema":
            continue
        if path not in old or path not in new:
            incomparable.append(path)
            continue
        classified = _classify(path)
        if classified is None:
            if old[path] != new[path]:
                incomparable.append(path)
            continue
        family, direction = classified
        if metric != "all" and family != metric:
            continue
        if old[path] == 0.0:
            change = 0.0 if new[path] == 0.0 else float("inf")
        else:
            change = (new[path] - old[path]) / old[path]
        worse = change > threshold if direction == "higher" else change < -threshold
        better = change < -threshold if direction == "higher" else change > threshold
        entry = {
            "path": path,
            "old": old[path],
            "new": new[path],
            "change": change,
        }
        if worse:
            regressions.append(entry)
        elif better:
            improvements.append(entry)
        else:
            unchanged.append(entry)
    return {
        "threshold": threshold,
        "metric": metric,
        "regressions": regressions,
        "improvements": improvements,
        "unchanged": unchanged,
        "incomparable": incomparable,
        "ok": not regressions and not incomparable,
    }


def format_bench_compare(result: dict) -> str:
    """Render a :func:`compare_bench` document for the terminal."""

    def row(entry: dict) -> str:
        return (
            f"  {entry['path']}: {entry['old']:.6g} -> {entry['new']:.6g} "
            f"({entry['change']:+.1%})"
        )

    lines = [
        f"bench compare (threshold {result['threshold']:.0%}, "
        f"metric {result['metric']})"
    ]
    if result["regressions"]:
        lines.append("REGRESSIONS:")
        lines.extend(row(entry) for entry in result["regressions"])
    if result["incomparable"]:
        lines.append("incomparable (missing or configuration mismatch):")
        lines.extend(f"  {path}" for path in result["incomparable"])
    if result["improvements"]:
        lines.append("improvements:")
        lines.extend(row(entry) for entry in result["improvements"])
    lines.append(
        f"{len(result['regressions'])} regression(s), "
        f"{len(result['improvements'])} improvement(s), "
        f"{len(result['unchanged'])} within threshold"
    )
    lines.append("OK" if result["ok"] else "FAIL")
    return "\n".join(lines)
