"""Live metrics exposition: rolling-window rates, Prometheus text, JSON.

The metrics registry (:mod:`repro.obs.metrics`) accumulates *cumulative*
counters and sketch-backed histograms; this module turns that into the
two things an operator actually reads while the process runs:

* **rates** — requests/s over rolling 1 s / 10 s / 60 s windows, computed
  by diffing cumulative counter snapshots (no per-event timestamps, so
  observation cost stays zero);
* **exposition documents** — a JSON document (consumed by ``ropuf top``
  and the serve protocol's ``metrics`` verb) and the Prometheus text
  format (scraped off the ``--metrics-port`` HTTP sidecar by any
  standard collector).

The exporter samples *lazily*: every exposition call records one
``(monotonic_time, counters)`` sample into a bounded history and diffs
against the oldest sample inside each window.  No background thread, no
work while nobody is looking — a process that is never scraped pays
nothing beyond the registry itself.  The first scrape after startup has
no baseline, so its rate maps are empty; pollers (``ropuf top``) see
rates from their second tick onward.

The HTTP sidecar (:func:`start_http_exporter`) is a
:class:`http.server.ThreadingHTTPServer` in a daemon thread serving

* ``GET /metrics`` — Prometheus text (``text/plain; version=0.0.4``);
* ``GET /metrics.json`` — the JSON exposition document.

Prometheus naming: metric names are dot-separated in the registry
(``serve.latency_ms.auth``); exposition rewrites every character outside
``[a-zA-Z0-9_:]`` to ``_`` and prefixes ``ropuf_``
(``ropuf_serve_latency_ms_auth``).  Histograms export as *summaries*
(``{quantile="0.5|0.9|0.99"}`` from the sketch, plus ``_sum`` /
``_count``).  Rolling rates are JSON-only — Prometheus derives rates
from the cumulative counters itself.
"""

from __future__ import annotations

import http.server
import json
import re
import threading
import time
from collections import deque

from . import metrics

__all__ = [
    "EXPOSITION_SCHEMA",
    "DEFAULT_WINDOWS",
    "MetricsExporter",
    "prometheus_text",
    "start_http_exporter",
]

#: Version tag on the JSON exposition document.
EXPOSITION_SCHEMA = 1

#: Rolling windows (seconds) for counter rates.
DEFAULT_WINDOWS = (1.0, 10.0, 60.0)

_PROM_INVALID = re.compile(r"[^a-zA-Z0-9_:]")
#: Quantile points exported on every histogram summary.
_SUMMARY_POINTS = (0.5, 0.9, 0.99)


def _prom_name(name: str) -> str:
    """Registry name → Prometheus metric name (``ropuf_`` prefixed)."""
    return "ropuf_" + _PROM_INVALID.sub("_", name)


def _prom_value(value: float) -> str:
    """A float in Prometheus text form (integers without the ``.0``)."""
    as_float = float(value)
    if as_float != as_float or as_float in (float("inf"), float("-inf")):
        return {float("inf"): "+Inf", float("-inf"): "-Inf"}.get(
            as_float, "NaN"
        )
    if as_float == int(as_float) and abs(as_float) < 1e15:
        return str(int(as_float))
    return repr(as_float)


class MetricsExporter:
    """Rolling-window rates + exposition over the metrics registry.

    One exporter per process; the serve layer constructs one and mounts
    it on both the ``metrics`` protocol verb and the HTTP sidecar.  The
    sample history is bounded (windows are finite, samples past the
    largest window get pruned), so a long-lived server's exporter stays
    constant-size no matter how often it is scraped.

    Args:
        source: snapshot callable (defaults to the process registry's
            :func:`repro.obs.metrics.snapshot`); injectable for tests.
        clock: monotonic-seconds callable; injectable for tests.
        windows: rolling windows in seconds, ascending.
    """

    def __init__(self, source=None, clock=None, windows=DEFAULT_WINDOWS):
        if not windows or list(windows) != sorted(windows):
            raise ValueError(f"windows must be ascending, got {windows!r}")
        self._source = source if source is not None else metrics.snapshot
        self._clock = clock if clock is not None else time.monotonic
        self.windows = tuple(float(w) for w in windows)
        self._samples: deque[tuple[float, dict[str, float]]] = deque()
        self._lock = threading.Lock()
        self._started = self._clock()

    def _rates(
        self, now: float, counters: dict[str, float], window: float
    ) -> dict[str, float]:
        """Per-second counter rates over ``window``, from the oldest
        in-window sample (empty until a baseline exists)."""
        baseline = None
        for sample_at, sample_counters in self._samples:
            if sample_at >= now - window:
                baseline = (sample_at, sample_counters)
                break
        if baseline is None:
            return {}
        sample_at, sample_counters = baseline
        elapsed = now - sample_at
        if elapsed <= 0.0:
            return {}
        return {
            name: (value - sample_counters.get(name, 0.0)) / elapsed
            for name, value in sorted(counters.items())
        }

    def collect(self) -> dict:
        """One scrape: sample the registry, return the JSON exposition.

        The document::

            {"schema": 1, "uptime_seconds": ..., "counters": {...},
             "gauges": {...},
             "histograms": {name: {count, total, min, max, mean,
                                   p50, p90, p99}},
             "rates": {"1s": {counter: per_second}, "10s": ..., "60s": ...}}
        """
        with self._lock:
            snap = self._source()
            now = self._clock()
            counters = snap.get("counters", {})
            rates = {
                f"{window:g}s": self._rates(now, counters, window)
                for window in self.windows
            }
            self._samples.append((now, dict(counters)))
            horizon = now - self.windows[-1]
            while len(self._samples) > 1 and self._samples[1][0] <= horizon:
                self._samples.popleft()
        histograms = {}
        for name, histogram in snap.get("histograms", {}).items():
            entry = {
                "count": histogram["count"],
                "total": histogram["total"],
                "min": histogram["min"],
                "max": histogram["max"],
                "mean": histogram["total"] / histogram["count"],
            }
            sketch_state = histogram.get("sketch")
            if sketch_state is not None:
                from .quantiles import QuantileSketch

                sketch = QuantileSketch.from_dict(sketch_state)
                for point in _SUMMARY_POINTS:
                    entry[f"p{point * 100.0:g}"] = sketch.quantile(point)
            histograms[name] = entry
        return {
            "schema": EXPOSITION_SCHEMA,
            "uptime_seconds": now - self._started,
            "counters": dict(sorted(counters.items())),
            "gauges": dict(sorted(snap.get("gauges", {}).items())),
            "histograms": histograms,
            "rates": rates,
        }

    def prometheus(self) -> str:
        """One scrape in the Prometheus text exposition format."""
        return prometheus_text(self.collect())


def prometheus_text(exposition: dict) -> str:
    """Render a JSON exposition document as Prometheus text format.

    Counters export as ``counter``, gauges as ``gauge``, histograms as
    ``summary`` with sketch quantiles.  Rolling rates are omitted —
    Prometheus computes rates from the cumulative counters.
    """
    lines = []
    for name, value in exposition.get("counters", {}).items():
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} counter")
        lines.append(f"{prom} {_prom_value(value)}")
    for name, value in exposition.get("gauges", {}).items():
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} gauge")
        lines.append(f"{prom} {_prom_value(value)}")
    for name, histogram in exposition.get("histograms", {}).items():
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} summary")
        for point in _SUMMARY_POINTS:
            key = f"p{point * 100.0:g}"
            if key in histogram:
                lines.append(
                    f'{prom}{{quantile="{point:g}"}} '
                    f"{_prom_value(histogram[key])}"
                )
        lines.append(f"{prom}_sum {_prom_value(histogram['total'])}")
        lines.append(f"{prom}_count {_prom_value(histogram['count'])}")
    return "\n".join(lines) + "\n"


class _ExporterHandler(http.server.BaseHTTPRequestHandler):
    """GET-only handler over the process exporter (sidecar scrapes)."""

    exporter: MetricsExporter = None  # set on the server class

    def do_GET(self):  # noqa: N802 - http.server API
        if self.path in ("/metrics", "/"):
            body = self.server.exporter.prometheus().encode()
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        elif self.path == "/metrics.json":
            body = json.dumps(
                self.server.exporter.collect(), sort_keys=True
            ).encode()
            content_type = "application/json"
        else:
            self.send_error(404, "unknown path (try /metrics)")
            return
        self.send_response(200)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, *args):  # scrapes are not operator news
        pass


class _ExporterServer(http.server.ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, exporter: MetricsExporter):
        super().__init__(address, _ExporterHandler)
        self.exporter = exporter


def start_http_exporter(
    exporter: MetricsExporter, port: int, host: str = "127.0.0.1"
):
    """Serve ``/metrics`` (+ ``/metrics.json``) on a daemon thread.

    Returns the server; ``server.server_address`` carries the bound
    ``(host, port)`` (pass ``port=0`` for an ephemeral port) and
    ``server.shutdown()`` stops it.
    """
    server = _ExporterServer((host, port), exporter)
    thread = threading.Thread(
        target=server.serve_forever, name="ropuf-metrics-http", daemon=True
    )
    thread.start()
    return server
