"""Deterministic fault models for RO-PUF measurements.

Real FPGA RO counters are not the well-behaved Gaussian instruments the
paper's Sec. III.B idealises: ripple counters glitch (a metastable capture
multiplies the count), readout latches stick, measurement windows get
dropped, supply/thermal excursions shift a whole capture, and the fabric
ages over a session (statistic-based analyses of measured RO-PUF data,
e.g. Wilde/Hiller/Pehl arXiv:1910.07068, catalogue exactly this pathology;
Mansouri/Dubrova arXiv:1207.4017 show supply excursions alone reordering
rings).  This module models those pathologies as composable, *seedable*
transformations of observed measurement arrays.

Every model implements :meth:`FaultModel.apply`, taking the observed
values, the **plan's** dedicated fault generator, and the running
:class:`FaultSession`.  Models never touch the measurement-noise RNG, so a
plan whose models all fire with probability zero leaves a seeded
experiment byte-identical — the fault stream is a separate, independently
seeded universe (see :mod:`repro.faults.plan` for the draw-order
contract).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "FaultSession",
    "FaultModel",
    "CounterGlitch",
    "StuckAt",
    "Dropout",
    "ThermalExcursion",
    "AgingDrift",
]


@dataclass
class FaultSession:
    """Mutable per-plan measurement-session state.

    Attributes:
        calls: ``observe`` calls the plan has faulted so far.
        elements_observed: total measurement elements seen before the
            current call — the session "clock" that drives aging drift.
    """

    calls: int = 0
    elements_observed: int = 0


class FaultModel:
    """Interface of one fault mechanism.

    Subclasses draw *only* from the generator they are handed (the plan's
    fault RNG) and must consume a deterministic number of draws per call
    given the observation shape, so a fixed plan seed plus a fixed sequence
    of observation shapes reproduces the exact same faults.
    """

    #: Metric/statistics key; defaults to the class name, lowercased.
    name: str = "fault"

    def apply(
        self,
        values: np.ndarray,
        rng: np.random.Generator,
        session: FaultSession,
    ) -> tuple[np.ndarray, int]:
        """Fault one observed array in place; return (values, injected count)."""
        raise NotImplementedError


def _bernoulli(
    rng: np.random.Generator, probability: float, shape: tuple[int, ...]
) -> np.ndarray:
    """One uniform tensor per observation shape -> boolean fault mask.

    Drawing the uniform tensor even when ``probability`` is 0 keeps the
    fault stream's draw order independent of the probability value, so
    tuning a model's rate never reshuffles the *other* models' faults.
    """
    return rng.random(size=shape) < probability


def _validate_probability(probability: float) -> None:
    if not 0.0 <= probability <= 1.0:
        raise ValueError(f"probability must be in [0, 1], got {probability}")


@dataclass
class CounterGlitch(FaultModel):
    """Multiplicative counter spikes: a capture multiplied by a large factor.

    Models a ripple-counter metastability or a double-launch: the affected
    measurement is scaled by a factor drawn uniformly from
    ``[min_factor, max_factor]`` — far outside any plausible noise band,
    which is what makes these detectable by residual/MAD screens.

    Attributes:
        probability: per-element chance of a glitch.
        min_factor: smallest spike multiplier.
        max_factor: largest spike multiplier.
    """

    probability: float = 0.001
    min_factor: float = 3.0
    max_factor: float = 30.0
    name: str = field(default="counter_glitch", repr=False)

    def __post_init__(self) -> None:
        _validate_probability(self.probability)
        if not 0.0 < self.min_factor <= self.max_factor:
            raise ValueError(
                "need 0 < min_factor <= max_factor, got "
                f"{self.min_factor}..{self.max_factor}"
            )

    def apply(self, values, rng, session):
        mask = _bernoulli(rng, self.probability, values.shape)
        factors = rng.uniform(self.min_factor, self.max_factor, size=values.shape)
        count = int(mask.sum())
        if count:
            values[mask] *= factors[mask]
        return values, count


@dataclass
class StuckAt(FaultModel):
    """A latched readout: the measurement reports a constant instead.

    Models a stuck counter register or a ring that stopped oscillating
    (reads as zero, the default) or latched a rail value.

    Attributes:
        probability: per-element chance of the readout being stuck.
        value: the constant the stuck readout reports.
    """

    probability: float = 0.001
    value: float = 0.0
    name: str = field(default="stuck_at", repr=False)

    def __post_init__(self) -> None:
        _validate_probability(self.probability)

    def apply(self, values, rng, session):
        mask = _bernoulli(rng, self.probability, values.shape)
        count = int(mask.sum())
        if count:
            values[mask] = self.value
        return values, count


@dataclass
class Dropout(FaultModel):
    """A lost measurement window: the observation is NaN.

    Models a capture that never completed (timeout, handshake failure).
    NaN is deliberate — downstream robust estimators must treat missing
    data as missing, and non-robust paths surface it loudly instead of
    silently averaging garbage.

    Attributes:
        probability: per-element chance of the window being dropped.
    """

    probability: float = 0.001
    name: str = field(default="dropout", repr=False)

    def __post_init__(self) -> None:
        _validate_probability(self.probability)

    def apply(self, values, rng, session):
        mask = _bernoulli(rng, self.probability, values.shape)
        count = int(mask.sum())
        if count:
            values[mask] = np.nan
        return values, count


@dataclass
class ThermalExcursion(FaultModel):
    """A transient whole-capture drift: one observe call runs hot (or cold).

    Models a supply/thermal excursion spanning one measurement window: every
    element of the affected call is scaled by the same ``1 + delta`` factor,
    ``delta ~ N(0, drift_sigma)``.  Because the drift is *common mode* it
    mostly cancels in pairwise comparisons — but not in absolute-delay
    estimates, which is why the overdetermined estimator flags it.

    Attributes:
        probability: per-call chance of an excursion.
        drift_sigma: standard deviation of the relative drift.
    """

    probability: float = 0.01
    drift_sigma: float = 0.02
    name: str = field(default="thermal_excursion", repr=False)

    def __post_init__(self) -> None:
        _validate_probability(self.probability)
        if self.drift_sigma < 0.0:
            raise ValueError("drift_sigma must be non-negative")

    def apply(self, values, rng, session):
        hit = bool(rng.random() < self.probability)
        delta = float(rng.normal(0.0, self.drift_sigma))
        if not hit:
            return values, 0
        values *= 1.0 + delta
        return values, int(values.size)


@dataclass
class AgingDrift(FaultModel):
    """Monotonic mid-session drift: delays grow as the session wears on.

    Models BTI/HCI-style aging over a long measurement session: every
    observation is scaled by ``1 + rate * elements_observed_so_far``, so
    early and late measurements of the *same* ring disagree.  Fully
    deterministic — no random draws — which makes it the cheapest way to
    break "enrollment equals response" assumptions in tests.

    Attributes:
        rate: relative drift per observed element (e.g. ``1e-9`` means a
            billion observations age the fabric by ~100%).
    """

    rate: float = 0.0
    name: str = field(default="aging_drift", repr=False)

    def __post_init__(self) -> None:
        if self.rate < 0.0:
            raise ValueError("rate must be non-negative")

    def apply(self, values, rng, session):
        if self.rate == 0.0:
            return values, 0
        values *= 1.0 + self.rate * session.elements_observed
        return values, int(values.size)
