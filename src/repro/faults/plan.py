"""FaultPlan: a seedable, deterministic composition of fault models.

A :class:`FaultPlan` owns its *own* random generator, seeded at
construction, and applies its models to every observed measurement array —
after the measurement-noise model has drawn from the measurer's RNG.  That
separation is the whole determinism story:

* the measurement-noise stream is untouched, so a plan with **no models**
  (:meth:`FaultPlan.is_noop`) leaves seeded experiments byte-identical to
  running without a plan at all (pinned by ``tests/test_faults.py``);
* the fault stream depends only on the plan seed and the *sequence of
  observation shapes*, so a fixed seed reproduces the exact same faults
  run after run — the :data:`FAULT_DRAW_ORDER` contract.

Like the batch engines' ``enroll-v1`` / ``sweep-v1`` tags, the fault draw
order is versioned per code path shape: scalar paths observe one config at
a time, batch paths observe whole ``(ring, config)`` or ``(op, pair)``
tensors, so the same plan seed faults *different elements* under the two
disciplines.  Within one discipline it is exactly reproducible.

Wiring a plan in
----------------

Plans wrap the measurement stack at the noise-model seam — the one
interface every path (scalar, batch, sweep) funnels through::

    plan = FaultPlan(seed=7, models=[CounterGlitch(probability=0.01)])
    measurer = plan.wrap_measurer(DelayMeasurer())     # chip enrollment
    puf = plan.attach_to_chip(chip_puf)                # or whole-PUF copies
    board = plan.attach_to_board(board_puf)            # response paths

All three return *new* objects; the originals keep running fault-free.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

import numpy as np

from .. import obs
from ..variation.noise import MeasurementNoise, NoiselessMeasurement
from .models import FaultModel, FaultSession

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from ..core.measurement import DelayMeasurer
    from ..core.puf import BoardROPUF, ChipROPUF

__all__ = ["FAULT_DRAW_ORDER", "FaultPlan", "FaultInjectingNoise"]

#: Version tag of the fault-stream draw order: per ``observe`` call, each
#: model draws its decision tensors (one per observation shape) from the
#: plan RNG in model-list order.  Any change to that order must bump this.
FAULT_DRAW_ORDER = "faults-v1"


@dataclass
class FaultPlan:
    """A seeded fault regime: which models fire, driven by one generator.

    Attributes:
        seed: seed of the dedicated fault generator.
        models: fault models applied in order to every observation.
        enabled: master switch; a disabled plan is a guaranteed no-op.
    """

    seed: int = 0
    models: Sequence[FaultModel] = ()
    enabled: bool = True

    def __post_init__(self) -> None:
        self.models = list(self.models)
        self.reset()

    # ------------------------------------------------------------------
    # Lifecycle and bookkeeping
    # ------------------------------------------------------------------

    def reset(self) -> None:
        """Rewind the plan: fresh generator, session clock, and counters."""
        self.rng = np.random.default_rng(self.seed)
        self.session = FaultSession()
        self.injected: dict[str, int] = {}

    @property
    def is_noop(self) -> bool:
        """True when applying the plan can never alter an observation."""
        return not self.enabled or not self.models

    @property
    def total_injected(self) -> int:
        """Faulted elements across all models since the last reset."""
        return sum(self.injected.values())

    # ------------------------------------------------------------------
    # The fault transformation
    # ------------------------------------------------------------------

    def apply(self, values: np.ndarray) -> np.ndarray:
        """Fault one observed array; returns a new array (input unchanged).

        No-op plans return the input object untouched without advancing
        the fault generator — the byte-identity guarantee.
        """
        if self.is_noop:
            return values
        faulted = np.array(values, dtype=float, copy=True)
        self.session.calls += 1
        for model in self.models:
            faulted, count = model.apply(faulted, self.rng, self.session)
            if count:
                self.injected[model.name] = (
                    self.injected.get(model.name, 0) + count
                )
                obs.counter_add(f"faults.injected.{model.name}", count)
        self.session.elements_observed += faulted.size
        return faulted

    # ------------------------------------------------------------------
    # Wiring helpers
    # ------------------------------------------------------------------

    def wrap_noise(self, noise: MeasurementNoise) -> "FaultInjectingNoise":
        """A noise model that observes through ``noise``, then faults."""
        return FaultInjectingNoise(inner=noise, plan=self)

    def wrap_measurer(self, measurer: "DelayMeasurer") -> "DelayMeasurer":
        """A copy of ``measurer`` whose observations pass through the plan.

        Shares the original's RNG object (the measurement-noise stream is
        one stream whether or not faults ride on top), so mixing wrapped
        and unwrapped calls keeps the draw order coherent.
        """
        return dataclasses.replace(measurer, noise=self.wrap_noise(measurer.noise))

    def attach_to_board(self, puf: "BoardROPUF") -> "BoardROPUF":
        """A copy of a board PUF whose response noise is faulted."""
        return dataclasses.replace(
            puf, response_noise=self.wrap_noise(puf.response_noise)
        )

    def attach_to_chip(self, puf: "ChipROPUF") -> "ChipROPUF":
        """A copy of a chip PUF whose delay measurer is faulted.

        Covers every measurement path — scalar ``enroll``/``response``
        loops and the batch/sweep structure-of-arrays paths — because all
        of them observe through ``measurer.noise``.
        """
        return dataclasses.replace(puf, measurer=self.wrap_measurer(puf.measurer))


@dataclass
class FaultInjectingNoise(MeasurementNoise):
    """A measurement-noise model with a fault plan stacked on top.

    ``observe`` first draws the inner model's noise from the *caller's*
    generator (identical stream to the unwrapped model), then faults the
    result via the plan's own generator.  Averaged observations fault each
    raw repeat independently — a glitch hits one capture, not the mean —
    which is what makes median/MAD estimators able to reject it.
    """

    inner: MeasurementNoise = field(default_factory=NoiselessMeasurement)
    plan: FaultPlan = field(default_factory=FaultPlan)

    def observe(
        self, true_values: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        return self.plan.apply(self.inner.observe(true_values, rng))

    def observe_averaged(
        self,
        true_values: np.ndarray,
        rng: np.random.Generator,
        repeats: int = 1,
    ) -> np.ndarray:
        if self.plan.is_noop:
            # Delegate wholesale so models that override observe_averaged
            # keep their exact draw order (byte-identity guarantee).
            return self.inner.observe_averaged(true_values, rng, repeats)
        return super().observe_averaged(true_values, rng, repeats)
