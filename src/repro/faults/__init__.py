"""repro.faults — seedable, deterministic fault injection.

The paper's reliability story assumes every chain-delay measurement
succeeds; real boards glitch, latch, drop windows, drift, and age.  This
package models those pathologies so every layer of the repro can be
tested — and hardened — against them:

* :mod:`~repro.faults.models` — measurement-level fault mechanisms
  (counter glitches, stuck readouts, dropouts, thermal excursions,
  aging drift);
* :mod:`~repro.faults.plan` — :class:`FaultPlan`, a seeded composition
  of models that wraps the measurement stack at the noise-model seam
  (scalar *and* batch paths) under the versioned ``faults-v1`` draw
  order; a no-op plan is byte-identical to no plan at all;
* :mod:`~repro.faults.chaos` — infrastructure chaos for the pipeline
  executor (worker crashes, task hangs, cache corruption), surfaced as
  ``ropuf all --chaos SEED``.

See ``docs/robustness.md`` for the fault catalogue and the hardening
guarantees each fault is pinned against.
"""

from .chaos import ChaosAssignment, ChaosPlan, chaos_worker_action
from .models import (
    AgingDrift,
    CounterGlitch,
    Dropout,
    FaultModel,
    FaultSession,
    StuckAt,
    ThermalExcursion,
)
from .plan import FAULT_DRAW_ORDER, FaultInjectingNoise, FaultPlan

__all__ = [
    "FAULT_DRAW_ORDER",
    "FaultPlan",
    "FaultInjectingNoise",
    "FaultModel",
    "FaultSession",
    "CounterGlitch",
    "StuckAt",
    "Dropout",
    "ThermalExcursion",
    "AgingDrift",
    "ChaosPlan",
    "ChaosAssignment",
    "chaos_worker_action",
]
