"""Chaos harness for the experiment pipeline: crash, hang, corrupt — on seed.

Measurement-level faults (:mod:`repro.faults.models`) stress the
*estimators*; this module stresses the *executor*.  A :class:`ChaosPlan`
deterministically assigns three infrastructure faults to a pipeline run:

* **worker crash** — the worker process handling one task hard-exits
  (``os._exit``) on its first dispatch, exercising crash detection,
  worker replacement, and re-dispatch;
* **task hang** — one task's worker sleeps far past the wall-clock
  timeout on its first dispatch, exercising the deadline kill +
  re-dispatch path;
* **cache corruption** — one task's freshly stored cache entry is
  truncated mid-file after the run writes it, exercising the quarantine
  path (``*.corrupt``) on the next run.

Every decision is a pure function of ``(seed, task name, dispatch
number)``, so a chaos run is exactly reproducible and — because each
fault fires only on the first dispatch — a pipeline with ``retries >= 3``
and a timeout always completes with results bit-identical to a clean run
(the tasks themselves are deterministic).  CI's ``chaos-smoke`` job pins
that guarantee.

The harness needs worker processes to kill: ``run_pipeline`` rejects a
chaos plan with ``jobs < 2``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

__all__ = ["ChaosPlan", "ChaosAssignment", "chaos_worker_action"]

#: Exit code of a chaos-crashed worker — recognisably deliberate in logs.
CHAOS_CRASH_EXIT = 86


def _pick(seed: int, salt: str, count: int) -> int:
    """Deterministic index in [0, count) from (seed, salt)."""
    digest = hashlib.sha256(f"{seed}:{salt}".encode()).digest()
    return int.from_bytes(digest[:8], "big") % count


@dataclass(frozen=True)
class ChaosAssignment:
    """The concrete faults one pipeline run will suffer.

    Plain data (picklable) so the executor can ship it to workers inside
    task messages.

    Attributes:
        crash_task: task whose first dispatch hard-exits the worker.
        hang_task: task whose first dispatch sleeps past the timeout.
        corrupt_task: task whose cache entry is truncated after store.
        hang_seconds: how long the hanging worker sleeps (far beyond any
            sane timeout; the parent kills it long before it wakes).
    """

    crash_task: str | None
    hang_task: str | None
    corrupt_task: str | None
    hang_seconds: float = 3600.0


@dataclass(frozen=True)
class ChaosPlan:
    """Seeded chaos regime for one pipeline run.

    Attributes:
        seed: drives every assignment decision.
        crash: inject the worker-crash fault.
        hang: inject the task-hang fault.
        corrupt_cache: inject the cache-corruption fault.
    """

    seed: int = 0
    crash: bool = True
    hang: bool = True
    corrupt_cache: bool = field(default=True)

    def assign(self, task_names: list[str]) -> ChaosAssignment:
        """Deterministically pin each enabled fault to a task.

        With two or more tasks the crash and hang land on *different*
        tasks, so each costs exactly one retry; with a single task they
        stack on it (dispatch 1 crashes, dispatch 2 hangs) and the run
        needs ``retries >= 3`` to complete.
        """
        if not task_names:
            raise ValueError("chaos needs at least one task to fault")
        names = sorted(task_names)
        crash_task = None
        hang_task = None
        if self.crash:
            crash_task = names[_pick(self.seed, "crash", len(names))]
        if self.hang:
            candidates = [n for n in names if n != crash_task] or names
            hang_task = candidates[_pick(self.seed, "hang", len(candidates))]
        corrupt_task = None
        if self.corrupt_cache:
            corrupt_task = names[_pick(self.seed, "corrupt", len(names))]
        return ChaosAssignment(
            crash_task=crash_task,
            hang_task=hang_task,
            corrupt_task=corrupt_task,
        )


def chaos_worker_action(
    assignment: ChaosAssignment | None, task_name: str, dispatch: int
) -> str | None:
    """What a worker should do before running ``task_name``.

    Returns ``"crash"``, ``"hang"``, or ``None``.  Faults fire on the
    first dispatch only — with one exception: when the crash and hang
    tasks coincide (single-task runs), the hang fires on dispatch 2 so
    both faults are still exercised.
    """
    if assignment is None:
        return None
    if task_name == assignment.crash_task and dispatch == 1:
        return "crash"
    hang_dispatch = 2 if assignment.hang_task == assignment.crash_task else 1
    if task_name == assignment.hang_task and dispatch == hang_dispatch:
        return "hang"
    return None
