"""Opt-in single-precision backend: half the memory traffic, bounded error.

Float kernels down-cast their inputs to ``float32``, reduce in single
precision, and return ``float64`` results, so downstream code sees the
usual dtypes while the hot reductions move half the bytes.  Integer
kernels (:meth:`gram_update`) are inherited exact.

Tolerance contract (vs the exact ``numpy`` backend): delay sums agree
within ``DELAY_RTOL = 1e-5`` relative / ``DELAY_ATOL`` absolute at unit
scale (float32 carries ~7 significant digits; short stage sums lose at
most a couple of ulps).  Decision *bits* agree wherever the margin —
a difference of two nearly equal sums — exceeds that tolerance; ties and
sub-tolerance margins may flip, which is why this backend is opt-in and
never the default.  Pinned by ``tests/test_backends.py``.
"""

from __future__ import annotations

import numpy as np

from .numpy_backend import NumpyBackend

__all__ = ["Float32Backend"]


def _f32(array: np.ndarray) -> np.ndarray:
    return np.asarray(array, dtype=np.float32)


class Float32Backend(NumpyBackend):
    """Single-precision float kernels; see the module tolerance contract."""

    name = "numpy-float32"
    exact = False
    DELAY_RTOL = 1e-5
    DELAY_ATOL = 1e-6

    def masked_row_sums(self, values, mask):
        values, mask = self._validate_masked(values, mask)
        self._count("masked_row_sums", values.size)
        products = _f32(values) * mask
        return products.sum(axis=1, dtype=np.float32).astype(np.float64)

    def pair_delay_sums(self, rows, masks):
        self._count("pair_delay_sums", rows.size)
        return np.einsum("ps,ps->p", _f32(rows), _f32(masks)).astype(
            np.float64
        )

    def sweep_pair_delay_sums(
        self, stacked, top_rings, bottom_rings, top_masks, bottom_masks
    ):
        self._count("sweep_pair_delay_sums", stacked.shape[0] * top_masks.size)
        stacked = _f32(stacked)
        top = np.einsum(
            "ops,ps->op", stacked[:, top_rings, :], _f32(top_masks)
        ).astype(np.float64)
        bottom = np.einsum(
            "ops,ps->op", stacked[:, bottom_rings, :], _f32(bottom_masks)
        ).astype(np.float64)
        return top, bottom

    def loo_delay_matrix(self, selected, bypass, config_masks):
        self._count("loo_delay_matrix", selected.size * len(config_masks))
        chosen = np.where(
            np.asarray(config_masks, dtype=bool)[None, :, :],
            _f32(selected)[:, None, :],
            _f32(bypass)[:, None, :],
        )
        return chosen.sum(axis=2, dtype=np.float32).astype(np.float64)
