"""Cache-blocked (and optionally threaded / numba-jitted) kernels.

The big wins here are algorithmic, not just blocking:

* **Ring-mask reformulation of the sweep kernel.**  The reference sweep
  ``einsum("ops,ps->op", stacked[:, rings, :], masks)`` first materialises
  a fancy-indexed ``(op, pair, stage)`` copy of the ring tensor — twice,
  once per polarity.  When every ring carries at most one mask row (true
  for the standard pairing, where pair ``p`` owns rings ``2p``/``2p+1``),
  the masks scatter into one ``(ring, stage)`` matrix and a *single*
  copy-free pass ``einsum("ors,rs->or", stacked, ring_masks)`` computes
  every ring's masked sum; the per-polarity results are cheap column
  gathers.  Measured ~1.9x single-threaded on fleet-scale shapes (pinned
  by ``benchmarks/test_bench_backend.py``).  Rings referenced by several
  masks fall back to the blocked reference kernel.
* **Matmul leave-one-out solve.**  The ``(ring, config)`` delay matrix is
  ``selected @ M.T + bypass @ (1 - M).T`` for mask matrix ``M`` — two BLAS
  calls instead of an ``(ring, config, stage)`` ``np.where`` temporary.
* **Row-block tiling** everywhere else keeps working sets cache-sized and
  gives the thread pool independent chunks.  Threads are used only when
  ``os.cpu_count() > 1`` and the work is large enough to amortise them
  (numpy releases the GIL inside the reductions).

``numba`` is autodetected as a further opt-in: when importable, the
``numba`` backend name resolves to :class:`NumbaBackend`, which JIT-
compiles the row-sum kernels; when absent the name is simply unavailable
and nothing here requires it.

Tolerance contract (vs the exact ``numpy`` backend): blocking and the
reformulations reassociate float64 sums, so delay kernels agree within
``DELAY_RTOL = 1e-9`` (in practice a few ulps); bits agree wherever the
margin exceeds that.  :meth:`gram_update` remains integer-exact.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from .numpy_backend import NumpyBackend

__all__ = ["TiledBackend", "NumbaBackend", "HAVE_NUMBA"]

try:  # pragma: no cover - exercised only where numba is installed
    import numba  # type: ignore

    HAVE_NUMBA = True
except ImportError:  # the supported configuration in this repo's CI
    numba = None
    HAVE_NUMBA = False

#: Below this many elements a kernel runs single-threaded regardless of
#: core count — thread handoff costs more than the reduction saves.
_THREAD_THRESHOLD = 1 << 20


class TiledBackend(NumpyBackend):
    """Blocked/threaded kernels; see the module tolerance contract.

    Args:
        tile_rows: row-block size (pairs or rings per chunk).
        threads: worker threads; ``None`` sizes to ``os.cpu_count()``.
    """

    name = "tiled"
    exact = False
    DELAY_RTOL = 1e-9
    DELAY_ATOL = 0.0

    def __init__(self, tile_rows: int = 4096, threads: int | None = None):
        if tile_rows < 1:
            raise ValueError(f"tile_rows must be >= 1, got {tile_rows}")
        if threads is not None and threads < 1:
            raise ValueError(f"threads must be >= 1, got {threads}")
        self.tile_rows = tile_rows
        self.threads = threads

    # ------------------------------------------------------------------
    # Blocking helpers
    # ------------------------------------------------------------------

    def _thread_count(self) -> int:
        return self.threads if self.threads is not None else (os.cpu_count() or 1)

    def _blocks(self, rows: int) -> list[tuple[int, int]]:
        tile = self.tile_rows
        return [(r0, min(r0 + tile, rows)) for r0 in range(0, rows, tile)]

    def _map_blocks(self, rows: int, elements: int, fn) -> None:
        """Run ``fn(r0, r1)`` over every row block, threaded when it pays."""
        blocks = self._blocks(rows)
        workers = min(self._thread_count(), len(blocks))
        if workers > 1 and elements >= _THREAD_THRESHOLD:
            with ThreadPoolExecutor(max_workers=workers) as pool:
                # list() re-raises any worker exception in the caller.
                list(pool.map(lambda block: fn(*block), blocks))
        else:
            for r0, r1 in blocks:
                fn(r0, r1)

    # ------------------------------------------------------------------
    # Kernels
    # ------------------------------------------------------------------

    def masked_row_sums(self, values, mask):
        values, mask = self._validate_masked(values, mask)
        self._count("masked_row_sums", values.size)
        sums = np.empty(len(values), dtype=float)

        def block(r0: int, r1: int) -> None:
            sums[r0:r1] = (values[r0:r1] * mask[r0:r1]).sum(axis=1)

        self._map_blocks(len(values), values.size, block)
        return sums

    def pair_delay_sums(self, rows, masks):
        self._count("pair_delay_sums", rows.size)
        sums = np.empty(rows.shape[0], dtype=float)

        def block(r0: int, r1: int) -> None:
            np.einsum("ps,ps->p", rows[r0:r1], masks[r0:r1], out=sums[r0:r1])

        self._map_blocks(rows.shape[0], rows.size, block)
        return sums

    def sweep_pair_delay_sums(
        self, stacked, top_rings, bottom_rings, top_masks, bottom_masks
    ):
        self._count("sweep_pair_delay_sums", stacked.shape[0] * top_masks.size)
        op_count, ring_count, stage_count = stacked.shape
        rings = np.concatenate([top_rings, bottom_rings])
        shared = (
            len(rings)
            and np.bincount(rings, minlength=ring_count).max(initial=0) > 1
        )
        if shared:
            # Some ring feeds several masks: the scatter below would clobber
            # one of them, so keep the reference two-sided kernel, blocked
            # over pairs.
            return self._sweep_blocked(
                stacked, top_rings, bottom_rings, top_masks, bottom_masks
            )
        ring_masks = np.zeros((ring_count, stage_count), dtype=float)
        ring_masks[top_rings] = top_masks
        ring_masks[bottom_rings] = bottom_masks
        sums = np.empty((op_count, ring_count), dtype=float)

        def block(r0: int, r1: int) -> None:
            np.einsum(
                "ors,rs->or",
                stacked[:, r0:r1, :],
                ring_masks[r0:r1],
                out=sums[:, r0:r1],
            )

        self._map_blocks(ring_count, stacked.size, block)
        return sums[:, top_rings], sums[:, bottom_rings]

    def _sweep_blocked(
        self, stacked, top_rings, bottom_rings, top_masks, bottom_masks
    ):
        op_count = stacked.shape[0]
        pair_count = len(top_rings)
        top = np.empty((op_count, pair_count), dtype=float)
        bottom = np.empty((op_count, pair_count), dtype=float)

        def block(p0: int, p1: int) -> None:
            np.einsum(
                "ops,ps->op",
                stacked[:, top_rings[p0:p1], :],
                top_masks[p0:p1],
                out=top[:, p0:p1],
            )
            np.einsum(
                "ops,ps->op",
                stacked[:, bottom_rings[p0:p1], :],
                bottom_masks[p0:p1],
                out=bottom[:, p0:p1],
            )
        self._map_blocks(pair_count, 2 * op_count * top_masks.size, block)
        return top, bottom

    def loo_delay_matrix(self, selected, bypass, config_masks):
        self._count("loo_delay_matrix", selected.size * len(config_masks))
        masks = np.asarray(config_masks, dtype=float)
        selected = np.asarray(selected, dtype=float)
        bypass = np.asarray(bypass, dtype=float)
        out = np.empty((selected.shape[0], masks.shape[0]), dtype=float)

        def block(r0: int, r1: int) -> None:
            out[r0:r1] = selected[r0:r1] @ masks.T + bypass[r0:r1] @ (
                1.0 - masks
            ).T

        self._map_blocks(
            selected.shape[0], selected.size * len(masks), block
        )
        return out

    def gram_update(self, gram, x):
        # Integer addition commutes: per-block x.T @ x folds are exact and
        # identical to the reference single matmul.
        self._count("gram_update", x.size)
        for r0, r1 in self._blocks(x.shape[0]):
            gram += x[r0:r1].T @ x[r0:r1]


class NumbaBackend(TiledBackend):
    """The tiled backend with numba-jitted row-sum kernels.

    Registered under the name ``numba`` only when the ``numba`` package is
    importable; constructing it without numba raises, and nothing else in
    the repo imports numba, so the dependency stays strictly optional.
    """

    name = "numba"

    def __init__(self, tile_rows: int = 4096, threads: int | None = None):
        if not HAVE_NUMBA:  # pragma: no cover - numba absent in repo CI
            raise RuntimeError(
                "the 'numba' backend needs the numba package, which is not "
                "installed; use 'tiled' instead"
            )
        super().__init__(tile_rows=tile_rows, threads=threads)
        self._jit_pair_sums = _jit_pair_sums()

    def pair_delay_sums(self, rows, masks):  # pragma: no cover - needs numba
        self._count("pair_delay_sums", rows.size)
        return self._jit_pair_sums(
            np.ascontiguousarray(rows, dtype=np.float64),
            np.ascontiguousarray(masks, dtype=np.float64),
        )

    def masked_row_sums(self, values, mask):  # pragma: no cover - needs numba
        values, mask = self._validate_masked(values, mask)
        self._count("masked_row_sums", values.size)
        return self._jit_pair_sums(
            np.ascontiguousarray(values), mask.astype(np.float64)
        )


def _jit_pair_sums():  # pragma: no cover - compiled only where numba exists
    @numba.njit(parallel=True, fastmath=False, cache=True)
    def pair_sums(rows, masks):
        out = np.empty(rows.shape[0])
        for p in numba.prange(rows.shape[0]):
            acc = 0.0
            for s in range(rows.shape[1]):
                acc += rows[p, s] * masks[p, s]
            out[p] = acc
        return out

    return pair_sums
