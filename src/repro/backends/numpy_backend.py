"""The default backend: the repo's reference kernels, byte-identity pinned.

Every kernel here is the *exact* code the core engines ran before the
backend seam existed — moved, not rewritten — so dispatching through
:class:`NumpyBackend` changes nothing about any output: the draw-order
golden tests, the batch-vs-scalar selector pins, and the sharded==dense
fleet oracles all hold bit-for-bit.  The other backends subclass this one,
inheriting exactness for every kernel they do not override.
"""

from __future__ import annotations

import numpy as np

from .base import Backend

__all__ = ["NumpyBackend", "exact_masked_row_sums", "_SEQUENTIAL_SUM_WIDTH"]

#: numpy's pairwise summation reduces sums of fewer than 8 elements with a
#: plain left-to-right loop, so a left-packed zero-padded row of this width
#: sums bit-identically to ``np.sum`` of its compressed values.  Pinned by
#: ``tests/test_selection_batch.py::test_sequential_sum_width_invariant``.
_SEQUENTIAL_SUM_WIDTH = 7


def exact_masked_row_sums(values: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """``np.sum(values[p, mask[p]])`` for every row ``p``, bit-for-bit.

    Rows selecting at most :data:`_SEQUENTIAL_SUM_WIDTH` entries are summed
    vectorized, as left-packed zero-padded rows (sequential-summation
    regime, where trailing zeros are exact no-ops); wider rows fall back to
    a per-row ``np.sum`` over the compressed values.  Inputs must already
    be validated/cast (see :meth:`Backend._validate_masked`).
    """
    counts = mask.sum(axis=1)
    sums = np.zeros(len(values), dtype=float)
    narrow = counts <= _SEQUENTIAL_SUM_WIDTH
    if narrow.any():
        sub_values = values[narrow]
        sub_mask = mask[narrow]
        sub_counts = counts[narrow]
        width = int(sub_counts.max(initial=0))
        if width:
            flat = sub_values[sub_mask]
            rows = np.repeat(np.arange(len(sub_values)), sub_counts)
            starts = np.cumsum(sub_counts) - sub_counts
            cols = np.arange(len(flat)) - np.repeat(starts, sub_counts)
            padded = np.zeros((len(sub_values), width))
            padded[rows, cols] = flat
            sums[narrow] = padded.sum(axis=1)
    if not narrow.all():
        for row in np.flatnonzero(~narrow):
            sums[row] = np.sum(values[row, mask[row]])
    return sums


class NumpyBackend(Backend):
    """Reference kernels; see the module docstring for the exactness pin."""

    name = "numpy"
    exact = True
    DELAY_RTOL = 0.0
    DELAY_ATOL = 0.0

    def masked_row_sums(self, values, mask):
        values, mask = self._validate_masked(values, mask)
        self._count("masked_row_sums", values.size)
        return exact_masked_row_sums(values, mask)

    def pair_delay_sums(self, rows, masks):
        self._count("pair_delay_sums", rows.size)
        return np.einsum("ps,ps->p", rows, masks)

    def sweep_pair_delay_sums(
        self, stacked, top_rings, bottom_rings, top_masks, bottom_masks
    ):
        self._count("sweep_pair_delay_sums", stacked.shape[0] * top_masks.size)
        top = np.einsum("ops,ps->op", stacked[:, top_rings, :], top_masks)
        bottom = np.einsum(
            "ops,ps->op", stacked[:, bottom_rings, :], bottom_masks
        )
        return top, bottom

    def loo_delay_matrix(self, selected, bypass, config_masks):
        self._count("loo_delay_matrix", selected.size * len(config_masks))
        # (ring, 1, stage) vs (1, config, stage) -> (ring, config) delays;
        # each entry is the same stage vector summed along the last axis,
        # hence bit-identical to the per-call ConfigurableRO.chain_delay.
        return np.where(
            config_masks[None, :, :], selected[:, None, :], bypass[:, None, :]
        ).sum(axis=2)

    def loo_ddiffs(self, measurements):
        self._count("loo_ddiffs", measurements.size)
        return measurements[:, 0:1] - measurements[:, 1:]

    def gram_update(self, gram, x):
        self._count("gram_update", x.size)
        gram += x.T @ x
