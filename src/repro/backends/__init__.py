"""repro.backends — pluggable compute backends for the dense kernels.

ROADMAP item 3: every hot path of the reproduction — response sweeps,
batch enrollment, the serve coalescer dispatch, fleet-shard statistics —
reduces to a handful of dense kernels.  This package factors those
kernels behind the :class:`~repro.backends.base.Backend` protocol and
lets callers pick an implementation:

* ``numpy`` (default) — the reference kernels, **byte-identity pinned**:
  selecting it changes no output anywhere.
* ``numpy-float32`` — opt-in single precision, tolerance-bounded.
* ``tiled`` — cache-blocked / threaded kernels with algorithmic
  reformulations of the sweep and leave-one-out solves (~1.9x on the
  response-sweep kernel at fleet scale); tolerance-bounded.
* ``numba`` — the tiled backend with JIT row-sum kernels; available only
  when the optional ``numba`` package is importable.

Selection precedence (highest wins):

1. an explicit programmatic override — :func:`set_backend` or the
   :func:`use_backend` context manager;
2. the ``ROPUF_BACKEND`` environment variable (a backend name, or a
   :class:`~repro.backends.base.BackendConfig` JSON document for tuned
   tile/thread settings) — how the ``--backend`` CLI flag propagates,
   including into pipeline worker processes;
3. the default, ``numpy``.

The core engines call :func:`current_backend` at each kernel dispatch, so
a selection change (env var or override) takes effect immediately and
per-process.  Kernel calls record ``backend.<name>.*`` obs counters when
metrics are enabled.  See ``docs/backends.md`` for the full contract.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Callable

from .base import Backend, BackendConfig
from .float32_backend import Float32Backend
from .numpy_backend import NumpyBackend, exact_masked_row_sums
from .tiled_backend import HAVE_NUMBA, NumbaBackend, TiledBackend

__all__ = [
    "Backend",
    "BackendConfig",
    "NumpyBackend",
    "Float32Backend",
    "TiledBackend",
    "NumbaBackend",
    "HAVE_NUMBA",
    "DEFAULT_BACKEND",
    "BACKEND_ENV_VAR",
    "available_backends",
    "register_backend",
    "resolve_backend",
    "current_backend",
    "set_backend",
    "use_backend",
    "exact_masked_row_sums",
]

#: The backend used when nothing selects otherwise (byte-identity pinned).
DEFAULT_BACKEND = "numpy"

#: Environment variable consulted by :func:`current_backend` (a backend
#: name or a :class:`BackendConfig` JSON document).
BACKEND_ENV_VAR = "ROPUF_BACKEND"


_FACTORIES: dict[str, Callable[[BackendConfig], Backend]] = {
    "numpy": lambda config: NumpyBackend(),
    "numpy-float32": lambda config: Float32Backend(),
    "tiled": lambda config: TiledBackend(
        tile_rows=config.tile_rows, threads=config.threads
    ),
    "numba": lambda config: NumbaBackend(
        tile_rows=config.tile_rows, threads=config.threads
    ),
}

#: Resolved instances, keyed by the canonical config JSON that built them.
_INSTANCES: dict[str, Backend] = {}

#: The programmatic override (highest selection precedence), or ``None``.
_OVERRIDE: Backend | None = None


def register_backend(
    name: str, factory: Callable[[BackendConfig], Backend]
) -> None:
    """Register a backend factory under ``name``.

    Extension hook for out-of-tree backends (a GPU library, a hardware
    bridge).  The factory receives the resolved :class:`BackendConfig`.

    Raises:
        ValueError: if the name is already taken.
    """
    if name in _FACTORIES:
        raise ValueError(f"backend {name!r} is already registered")
    _FACTORIES[name] = factory


def available_backends() -> list[str]:
    """Registered backend names usable in this environment.

    ``numba`` is listed only when the numba package is importable.
    """
    names = [name for name in _FACTORIES if name != "numba" or HAVE_NUMBA]
    return sorted(names)


def resolve_backend(
    selection: str | BackendConfig | Backend | None,
) -> Backend:
    """Resolve a selection to a live backend instance (cached per config).

    Accepts a backend name, a :class:`BackendConfig`, a JSON-encoded
    config document (the env-var form), an already-built :class:`Backend`
    (returned as-is), or ``None`` (the default backend).

    Raises:
        ValueError: for unknown names, listing what is available.
    """
    if selection is None:
        selection = DEFAULT_BACKEND
    if isinstance(selection, Backend):
        return selection
    if isinstance(selection, str):
        text = selection.strip()
        if text.startswith("{"):
            config = BackendConfig.from_json(text)
        else:
            config = BackendConfig(name=text or DEFAULT_BACKEND)
    else:
        config = selection
    if config.name not in _FACTORIES or (
        config.name == "numba" and not HAVE_NUMBA
    ):
        raise ValueError(
            f"unknown backend {config.name!r}; available: "
            + ", ".join(available_backends())
            + (
                " (the 'numba' backend needs the optional numba package)"
                if config.name == "numba" and not HAVE_NUMBA
                else ""
            )
        )
    key = config.to_json()
    backend = _INSTANCES.get(key)
    if backend is None:
        backend = _FACTORIES[config.name](config)
        _INSTANCES[key] = backend
    return backend


def current_backend() -> Backend:
    """The backend the core engines should dispatch through *right now*.

    Precedence: programmatic override (:func:`set_backend` /
    :func:`use_backend`) > ``ROPUF_BACKEND`` environment variable >
    ``numpy``.  Cheap enough to call per kernel dispatch (a dict lookup
    on the warm path), so selection changes apply immediately.
    """
    if _OVERRIDE is not None:
        return _OVERRIDE
    return resolve_backend(os.environ.get(BACKEND_ENV_VAR) or None)


def set_backend(
    selection: str | BackendConfig | Backend | None,
) -> Backend | None:
    """Install (or with ``None`` clear) the process-wide override.

    Returns the previous override so callers can restore it.  Note the
    override is per-process: pipeline *worker* processes consult
    ``ROPUF_BACKEND`` instead, which the CLI flag sets so workers inherit
    the selection through ``fork``/``spawn`` alike.
    """
    global _OVERRIDE
    previous = _OVERRIDE
    _OVERRIDE = None if selection is None else resolve_backend(selection)
    return previous


@contextmanager
def use_backend(selection: str | BackendConfig | Backend):
    """Scoped backend override::

        with use_backend("tiled"):
            evaluator.response_sweep(ops)

    Restores the previous override on exit (exception-safe).
    """
    previous = set_backend(selection)
    try:
        yield current_backend()
    finally:
        set_backend(previous)
