"""The compute-backend protocol and its FleetSpec-style configuration.

A :class:`Backend` bundles the dense kernels every hot path of the
reproduction reduces to — the einsum masked row-sums of
:mod:`repro.core.batch`, the exact masked row sums behind the batch
selectors (:mod:`repro.core.selection_batch`), the leave-one-out solve
primitives of :mod:`repro.core.measurement`, and the integer Gram update
of :mod:`repro.metrics.streaming`.  Implementations live in sibling
modules and are selected through :func:`repro.backends.current_backend`.

Contract
--------

Backends come in two flavours, declared by :attr:`Backend.exact`:

* **exact** (``numpy``): every kernel is *bit-for-bit* identical to the
  reference implementation it replaced; the repo's byte-identity pins
  (draw-order golden tests, sharded==dense oracles) hold unchanged.
* **tolerance-bounded** (``numpy-float32``, ``tiled``, ``numba``): float
  kernels may reassociate or down-cast, so delay sums agree with the
  exact backend only within each backend's documented ``DELAY_RTOL`` /
  ``DELAY_ATOL``; response/enrollment *bits* agree wherever the decision
  margin exceeds that tolerance.  Integer kernels (:meth:`gram_update`)
  stay exact on every backend.

Every kernel invocation records ``backend.<name>.calls`` and a per-kernel
element counter when :mod:`repro.obs` metrics are enabled (no-ops
otherwise).  See ``docs/backends.md``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

import numpy as np

from .. import obs

__all__ = ["Backend", "BackendConfig"]


@dataclass(frozen=True)
class BackendConfig:
    """A JSON-round-trippable backend selection (FleetSpec-style).

    Carries only plain numbers/strings so a selection can travel through
    environment variables, CLI flags, or config documents, exactly like
    :class:`repro.datasets.fleet.FleetSpec` travels through task names.

    Attributes:
        name: registered backend name (``"numpy"``, ``"numpy-float32"``,
            ``"tiled"``, ``"numba"``).
        tile_rows: row-block size the tiled backend splits work into.
        threads: worker threads for the tiled backend; ``None`` lets the
            backend size itself to ``os.cpu_count()``.
    """

    name: str = "numpy"
    tile_rows: int = 4096
    threads: int | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("backend name cannot be empty")
        if self.tile_rows < 1:
            raise ValueError(f"tile_rows must be >= 1, got {self.tile_rows}")
        if self.threads is not None and self.threads < 1:
            raise ValueError(f"threads must be >= 1, got {self.threads}")

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "tile_rows": self.tile_rows,
            "threads": self.threads,
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "BackendConfig":
        return cls(
            name=str(doc["name"]),
            tile_rows=int(doc.get("tile_rows", 4096)),
            threads=None if doc.get("threads") is None else int(doc["threads"]),
        )

    def to_json(self) -> str:
        """Canonical (sorted-key, compact) JSON — stable across runs."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "BackendConfig":
        return cls.from_dict(json.loads(text))


class Backend:
    """The kernel protocol the core engines dispatch through.

    Subclasses implement every kernel; :class:`~repro.backends.numpy_backend
    .NumpyBackend` is the reference implementation the byte-identity tests
    pin, and the other backends subclass it so partial overrides inherit
    exact behaviour for everything they do not accelerate.
    """

    #: Registry name (also the obs counter prefix, ``backend.<name>.*``).
    name: str = "abstract"
    #: Whether every kernel is bit-for-bit the reference implementation.
    exact: bool = False
    #: Documented agreement bounds vs the exact backend for float kernels.
    DELAY_RTOL: float = 0.0
    DELAY_ATOL: float = 0.0

    # ------------------------------------------------------------------
    # Kernels
    # ------------------------------------------------------------------

    def masked_row_sums(self, values: np.ndarray, mask: np.ndarray) -> np.ndarray:
        """``np.sum(values[p, mask[p]])`` for every row ``p``.

        The rounding-sensitive reduction of the batch selectors; the exact
        backend reproduces the scalar selectors' sums bit-for-bit.
        """
        raise NotImplementedError

    def pair_delay_sums(self, rows: np.ndarray, masks: np.ndarray) -> np.ndarray:
        """Row-wise masked sums ``einsum("ps,ps->p", rows, masks)``.

        The single-operating-point response kernel (also the coalesced
        serve dispatch after request stacking).
        """
        raise NotImplementedError

    def sweep_pair_delay_sums(
        self,
        stacked: np.ndarray,
        top_rings: np.ndarray,
        bottom_rings: np.ndarray,
        top_masks: np.ndarray,
        bottom_masks: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """(top, bottom) delay sums over an operating-point sweep.

        ``stacked`` is ``(op, ring, stage)``; the result pair is each
        ``(op, pair)`` — the response-sweep kernel behind Fig. 4/5 and
        the fleet-scale sweeps.
        """
        raise NotImplementedError

    def loo_delay_matrix(
        self,
        selected: np.ndarray,
        bypass: np.ndarray,
        config_masks: np.ndarray,
    ) -> np.ndarray:
        """True chain delays of every (ring, config) pair.

        ``selected``/``bypass`` are ``(ring, stage)`` path delays,
        ``config_masks`` is ``(config, stage)``; entry ``(r, c)`` sums
        ``selected[r]`` where the config selects the stage and
        ``bypass[r]`` elsewhere — the leave-one-out measurement solve.
        """
        raise NotImplementedError

    def loo_ddiffs(self, measurements: np.ndarray) -> np.ndarray:
        """Per-unit ddiffs from ``(ring, config)`` leave-one-out delays.

        Column 0 is the all-ones configuration; ``ddiff_j`` is its delay
        minus the leave-one-out-``j`` delay.
        """
        raise NotImplementedError

    def gram_update(self, gram: np.ndarray, x: np.ndarray) -> None:
        """Fold ``x.T @ x`` into ``gram`` in place (integer, exact).

        The streaming-uniqueness sufficient-statistics update; must stay
        exact on every backend (the fleet statistics are integers).
        """
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------

    def _count(self, kernel: str, elements: int) -> None:
        """Record one kernel invocation (no-op while obs metrics are off)."""
        obs.counter_add(f"backend.{self.name}.calls")
        obs.counter_add(f"backend.{self.name}.{kernel}.elements", elements)

    @staticmethod
    def _validate_masked(
        values: np.ndarray, mask: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        values = np.asarray(values, dtype=float)
        mask = np.asarray(mask, dtype=bool)
        if values.shape != mask.shape or values.ndim != 2:
            raise ValueError(
                f"values and mask must be equal-shape 2-D, got {values.shape} "
                f"and {mask.shape}"
            )
        return values, mask

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} name={self.name!r} exact={self.exact}>"
