"""A minimal logistic-regression learner (no external ML dependencies).

Used by the attack analyses to measure how much information about a PUF
bit leaks through observable side data (configuration vectors, challenge
words).  Plain batch gradient descent with L2 regularisation is entirely
adequate at these scales.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["LogisticRegression"]


@dataclass
class LogisticRegression:
    """Binary logistic regression trained by batch gradient descent.

    Attributes:
        learning_rate: gradient step size.
        epochs: number of full-batch passes.
        l2: L2 regularisation strength on the weights (not the bias).
    """

    learning_rate: float = 0.5
    epochs: int = 300
    l2: float = 1e-3
    weights: np.ndarray = field(init=False, default=None)
    bias: float = field(init=False, default=0.0)

    def __post_init__(self) -> None:
        if self.learning_rate <= 0.0:
            raise ValueError("learning_rate must be positive")
        if self.epochs < 1:
            raise ValueError("epochs must be >= 1")
        if self.l2 < 0.0:
            raise ValueError("l2 must be non-negative")

    @staticmethod
    def _sigmoid(z: np.ndarray) -> np.ndarray:
        return 1.0 / (1.0 + np.exp(-np.clip(z, -30.0, 30.0)))

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "LogisticRegression":
        """Train on a (samples, features) matrix and boolean labels."""
        features = np.asarray(features, dtype=float)
        labels = np.asarray(labels).astype(float).ravel()
        if features.ndim != 2:
            raise ValueError(f"features must be 2-D, got shape {features.shape}")
        if len(labels) != features.shape[0]:
            raise ValueError(
                f"{features.shape[0]} samples but {len(labels)} labels"
            )
        samples, width = features.shape
        self.weights = np.zeros(width)
        self.bias = 0.0
        for _ in range(self.epochs):
            predictions = self._sigmoid(features @ self.weights + self.bias)
            error = predictions - labels
            gradient_w = features.T @ error / samples + self.l2 * self.weights
            gradient_b = float(np.mean(error))
            self.weights -= self.learning_rate * gradient_w
            self.bias -= self.learning_rate * gradient_b
        return self

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """P(label = 1) for each sample."""
        if self.weights is None:
            raise RuntimeError("model is not fitted")
        features = np.asarray(features, dtype=float)
        return self._sigmoid(features @ self.weights + self.bias)

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Hard 0/1 predictions."""
        return self.predict_proba(features) >= 0.5

    def accuracy(self, features: np.ndarray, labels: np.ndarray) -> float:
        """Fraction of correct predictions."""
        labels = np.asarray(labels).astype(bool).ravel()
        return float(np.mean(self.predict(features) == labels))
