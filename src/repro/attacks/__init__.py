"""Attack analyses backing the paper's security arguments.

* :mod:`~repro.attacks.config_leakage` — quantifies the equal-selected-
  count constraint of Sec. III.D (unequal counts leak the bit);
* :mod:`~repro.attacks.model_attack` — demonstrates the modeling attack on
  challenge-configurable (reconfigurable) RO PUFs the paper's related-work
  section warns about;
* :mod:`~repro.attacks.logistic` — the self-contained learner both use.
"""

from .config_leakage import LeakageResult, config_features, evaluate_config_leakage
from .logistic import LogisticRegression
from .model_attack import ModelAttackResult, evaluate_model_attack, ms_response

__all__ = [
    "LeakageResult",
    "config_features",
    "evaluate_config_leakage",
    "LogisticRegression",
    "ModelAttackResult",
    "evaluate_model_attack",
    "ms_response",
]
