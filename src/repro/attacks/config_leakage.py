"""Configuration-leakage attack: can the stored configs reveal the bits?

The paper's Sec. III.D imposes equal selected counts on the two rings "for
security concern because the one that uses fewer inverters will most likely
be faster, making it easier for an attacker to guess the bit value".  This
module turns that sentence into an experiment: an attacker who reads the
(non-secret) configuration vectors from device memory trains a classifier
to predict the PUF bits.

* against :func:`~repro.core.selection_ext.select_unconstrained` (counts
  free) the count difference is an almost perfect predictor;
* against Case-1/Case-2 (equal counts) accuracy stays at chance, validating
  the constraint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..core.selection import PairSelection
from .logistic import LogisticRegression

__all__ = ["LeakageResult", "config_features", "evaluate_config_leakage"]


def config_features(selection: PairSelection) -> np.ndarray:
    """Attacker-visible features of one pair's configuration.

    The feature vector contains the two selection-count summaries plus the
    raw configuration bits of both rings — everything stored in the clear.
    """
    top = selection.top_config.as_array().astype(float)
    bottom = selection.bottom_config.as_array().astype(float)
    count_difference = float(top.sum() - bottom.sum())
    total_count = float(top.sum() + bottom.sum())
    return np.concatenate([[count_difference, total_count], top, bottom])


@dataclass
class LeakageResult:
    """Outcome of one leakage evaluation.

    Attributes:
        scheme: name of the selection scheme attacked.
        accuracy: attacker's bit-prediction accuracy on held-out pairs.
        chance: majority-class baseline on the held-out pairs.
        train_pairs / test_pairs: split sizes.
    """

    scheme: str
    accuracy: float
    chance: float
    train_pairs: int
    test_pairs: int

    @property
    def advantage(self) -> float:
        """Accuracy above the majority-class baseline."""
        return self.accuracy - self.chance


def evaluate_config_leakage(
    selector: Callable[[np.ndarray, np.ndarray], PairSelection],
    scheme: str,
    pair_delays: list[tuple[np.ndarray, np.ndarray]],
    train_fraction: float = 0.5,
    seed: int = 0,
) -> LeakageResult:
    """Train/evaluate the configuration-leakage attacker on delay pairs.

    Args:
        selector: the selection scheme under attack.
        scheme: label for reports.
        pair_delays: (alpha, beta) delay vectors of each RO pair.
        train_fraction: fraction of pairs used to train the attacker.
    """
    if not 0.0 < train_fraction < 1.0:
        raise ValueError("train_fraction must be in (0, 1)")
    if len(pair_delays) < 10:
        raise ValueError("need at least 10 pairs for a meaningful attack")

    features = []
    labels = []
    for alpha, beta in pair_delays:
        selection = selector(alpha, beta)
        features.append(config_features(selection))
        labels.append(selection.bit)
    features = np.stack(features)
    labels = np.array(labels, dtype=bool)

    rng = np.random.default_rng(seed)
    order = rng.permutation(len(labels))
    split = int(len(labels) * train_fraction)
    train_idx, test_idx = order[:split], order[split:]

    model = LogisticRegression().fit(features[train_idx], labels[train_idx])
    accuracy = model.accuracy(features[test_idx], labels[test_idx])
    test_labels = labels[test_idx]
    chance = float(max(np.mean(test_labels), 1.0 - np.mean(test_labels)))
    return LeakageResult(
        scheme=scheme,
        accuracy=accuracy,
        chance=chance,
        train_pairs=len(train_idx),
        test_pairs=len(test_idx),
    )
