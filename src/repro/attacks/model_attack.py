"""Modeling attack on challenge-configurable RO PUFs (the paper's [16]
argument).

The paper distinguishes its *fixed-after-configuration* PUF from
reconfigurable PUFs whose configuration doubles as a challenge, noting the
latter "are vulnerable to attacks such as modeling and machine learning".
This module demonstrates the vulnerability concretely on the
Maiti-Schaumont configurable RO pair: the response bit is the sign of a
function *linear* in the per-stage choice bits, so logistic regression
learns it from a handful of challenge-response pairs.

Our paper's PUF exposes no challenge interface (one fixed configuration is
burned in at test time), so this attack surface simply does not exist for
it — which is the point the comparison makes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .logistic import LogisticRegression

__all__ = ["ModelAttackResult", "ms_response", "evaluate_model_attack"]


def ms_response(
    top_stage_delays: np.ndarray,
    bottom_stage_delays: np.ndarray,
    word: np.ndarray,
) -> bool:
    """Maiti-Schaumont response to a challenge word (one bit).

    The word picks one of the two candidate inverters at every stage, in
    *both* rings; the bit is the sign of the resulting delay difference.
    """
    top = np.asarray(top_stage_delays, dtype=float)
    bottom = np.asarray(bottom_stage_delays, dtype=float)
    word = np.asarray(word, dtype=int)
    if top.shape != bottom.shape or top.ndim != 2 or top.shape[1] != 2:
        raise ValueError("stage delays must both be (stages, 2)")
    if word.shape != (top.shape[0],):
        raise ValueError(
            f"word length {word.shape} does not match {top.shape[0]} stages"
        )
    idx = np.arange(top.shape[0])
    margin = float(np.sum(top[idx, word]) - np.sum(bottom[idx, word]))
    return margin > 0.0


@dataclass
class ModelAttackResult:
    """Outcome of the CRP modeling attack.

    Attributes:
        train_crps: challenge-response pairs given to the attacker.
        accuracy: prediction accuracy on unseen challenges.
        chance: majority-class baseline on the test challenges.
    """

    train_crps: int
    accuracy: float
    chance: float

    @property
    def advantage(self) -> float:
        return self.accuracy - self.chance


def evaluate_model_attack(
    stage_count: int = 12,
    train_crps: int = 200,
    test_crps: int = 500,
    seed: int = 0,
) -> ModelAttackResult:
    """Train a model of a random Maiti-Schaumont pair from observed CRPs."""
    if stage_count < 2:
        raise ValueError("stage_count must be >= 2")
    if train_crps < 8 or test_crps < 8:
        raise ValueError("need at least 8 train and test CRPs")
    rng = np.random.default_rng(seed)
    top = rng.normal(1.0, 0.03, (stage_count, 2))
    bottom = rng.normal(1.0, 0.03, (stage_count, 2))
    # Match the pair's mean delays (as a real deployment would, by placing
    # identical ring pairs side by side): otherwise one ring dominates for
    # every challenge word and the response carries no challenge-dependent
    # information to model in the first place.
    bottom = bottom - (np.mean(bottom) - np.mean(top))

    def sample_crps(count: int) -> tuple[np.ndarray, np.ndarray]:
        words = rng.integers(0, 2, size=(count, stage_count))
        responses = np.array(
            [ms_response(top, bottom, word) for word in words]
        )
        return words.astype(float), responses

    train_x, train_y = sample_crps(train_crps)
    test_x, test_y = sample_crps(test_crps)
    model = LogisticRegression(epochs=2000, learning_rate=1.0).fit(
        train_x, train_y
    )
    accuracy = model.accuracy(test_x, test_y)
    chance = float(max(np.mean(test_y), 1.0 - np.mean(test_y)))
    return ModelAttackResult(
        train_crps=train_crps, accuracy=accuracy, chance=chance
    )
