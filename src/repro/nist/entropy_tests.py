"""Serial and approximate-entropy tests (SP 800-22 Secs. 2.11-2.12).

Both scan overlapping m-bit patterns over the cyclically-extended sequence.
"""

from __future__ import annotations

import numpy as np

from .common import TestOutcome, as_bits, igamc, require_length

__all__ = ["serial_test", "approximate_entropy_test", "pattern_counts"]


def pattern_counts(bits: np.ndarray, m: int) -> np.ndarray:
    """Counts of all ``2**m`` overlapping m-bit patterns with wrap-around.

    Pattern index is the big-endian integer value of the window.
    """
    if m < 1:
        raise ValueError(f"pattern length must be >= 1, got {m}")
    n = len(bits)
    if n == 0:
        raise ValueError("empty sequence")
    extended = np.concatenate([bits, bits[: m - 1]]) if m > 1 else bits
    weights = 1 << np.arange(m - 1, -1, -1)
    windows = np.lib.stride_tricks.sliding_window_view(
        extended.astype(np.int64), m
    )
    indices = windows @ weights
    return np.bincount(indices, minlength=2**m)


def _psi_squared(bits: np.ndarray, m: int) -> float:
    """The serial test's psi^2_m statistic; psi^2_0 = 0 by definition."""
    if m == 0:
        return 0.0
    n = len(bits)
    counts = pattern_counts(bits, m)
    return float((2**m / n) * np.sum(counts.astype(float) ** 2) - n)


def serial_test(sequence, m: int = 3) -> list[TestOutcome]:
    """Serial test (Sec. 2.11), producing two p-values.

    Example: ``"0011011101"`` with m = 3 gives p1 = 0.808792 and
    p2 = 0.670320.
    """
    bits = as_bits(sequence)
    if m < 2:
        raise ValueError(f"serial test needs m >= 2, got {m}")
    require_length(bits, 2**m, "Serial")
    psi_m = _psi_squared(bits, m)
    psi_m1 = _psi_squared(bits, m - 1)
    psi_m2 = _psi_squared(bits, m - 2)
    # The psi^2 statistics are non-negative by theory; tiny negative values
    # can appear through floating-point cancellation, so clamp.
    delta1 = max(psi_m - psi_m1, 0.0)
    delta2 = max(psi_m - 2.0 * psi_m1 + psi_m2, 0.0)
    return [
        TestOutcome(
            test="Serial",
            p_value=igamc(2.0 ** (m - 2), delta1 / 2.0),
            statistic=delta1,
            variant="delta",
            details={"m": m, "psi2_m": psi_m},
        ),
        TestOutcome(
            test="Serial",
            p_value=igamc(2.0 ** (m - 3), delta2 / 2.0),
            statistic=delta2,
            variant="delta2",
            details={"m": m},
        ),
    ]


def approximate_entropy_test(sequence, m: int = 2) -> TestOutcome:
    """Approximate entropy test (Sec. 2.12).

    Example: ``"0100110101"`` with m = 3 gives p = 0.261961.
    """
    bits = as_bits(sequence)
    if m < 1:
        raise ValueError(f"approximate entropy needs m >= 1, got {m}")
    require_length(bits, max(2**m, m + 2), "ApproximateEntropy")
    n = len(bits)

    def phi(block_length: int) -> float:
        counts = pattern_counts(bits, block_length)
        probabilities = counts[counts > 0] / n
        return float(np.sum(probabilities * np.log(probabilities)))

    ap_en = phi(m) - phi(m + 1)
    chi_square = 2.0 * n * (np.log(2.0) - ap_en)
    return TestOutcome(
        test="ApproximateEntropy",
        p_value=igamc(2 ** (m - 1), chi_square / 2.0),
        statistic=float(chi_square),
        details={"m": m, "ApEn": ap_en},
    )
