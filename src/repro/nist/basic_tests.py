"""The frequency-family NIST tests: monobit, block frequency, runs,
longest run of ones, and cumulative sums.

Formulas follow NIST SP 800-22 Rev 1a, sections 2.1-2.4 and 2.13.
"""

from __future__ import annotations

import numpy as np
from scipy.special import erfc
from scipy.stats import norm

from .common import (
    TestOutcome,
    as_bits,
    igamc,
    normalized_erfc,
    require_length,
)

__all__ = [
    "frequency_test",
    "block_frequency_test",
    "runs_test",
    "longest_run_test",
    "cumulative_sums_test",
]


def frequency_test(sequence) -> TestOutcome:
    """Monobit frequency test (SP 800-22 Sec. 2.1).

    Example from the specification: ``"1011010101"`` gives p = 0.527089.
    """
    bits = as_bits(sequence)
    require_length(bits, 2, "Frequency")
    n = len(bits)
    s = int(np.sum(bits)) * 2 - n
    s_obs = abs(s) / np.sqrt(n)
    return TestOutcome(
        test="Frequency",
        p_value=normalized_erfc(s_obs),
        statistic=float(s_obs),
        details={"S_n": s, "n": n},
    )


def block_frequency_test(sequence, block_size: int = 8) -> TestOutcome:
    """Frequency test within a block (Sec. 2.2).

    Example: ``"0110011010"`` with ``block_size=3`` gives p = 0.801252.
    """
    bits = as_bits(sequence)
    if block_size < 2:
        raise ValueError(f"block_size must be >= 2, got {block_size}")
    require_length(bits, block_size, "BlockFrequency")
    n = len(bits)
    block_count = n // block_size
    blocks = bits[: block_count * block_size].reshape(block_count, block_size)
    proportions = blocks.mean(axis=1)
    chi_square = 4.0 * block_size * float(np.sum((proportions - 0.5) ** 2))
    return TestOutcome(
        test="BlockFrequency",
        p_value=igamc(block_count / 2.0, chi_square / 2.0),
        statistic=chi_square,
        details={"block_size": block_size, "block_count": block_count},
    )


def runs_test(sequence) -> TestOutcome:
    """Runs test (Sec. 2.3).

    Example: ``"1001101011"`` gives p = 0.147232.  When the prerequisite
    frequency check fails (|pi - 1/2| >= 2/sqrt(n)) the p-value is 0.
    """
    bits = as_bits(sequence)
    require_length(bits, 2, "Runs")
    n = len(bits)
    pi = float(np.mean(bits))
    tau = 2.0 / np.sqrt(n)
    if abs(pi - 0.5) >= tau:
        return TestOutcome(
            test="Runs",
            p_value=0.0,
            statistic=float("inf"),
            details={"pi": pi, "prerequisite_failed": True},
        )
    v_obs = 1 + int(np.sum(bits[1:] != bits[:-1]))
    numerator = abs(v_obs - 2.0 * n * pi * (1.0 - pi))
    denominator = 2.0 * np.sqrt(2.0 * n) * pi * (1.0 - pi)
    # NB: unlike most tests, the runs statistic maps to a p-value via plain
    # erfc (no 1/sqrt(2)); the specification's worked example pins this.
    return TestOutcome(
        test="Runs",
        p_value=float(np.clip(erfc(numerator / denominator), 0.0, 1.0)),
        statistic=float(v_obs),
        details={"pi": pi, "V_obs": v_obs},
    )


# (minimum n, block size M, category edges, category probabilities)
_LONGEST_RUN_TABLES = (
    (
        128,
        8,
        (1, 2, 3, 4),  # v <= 1, v == 2, v == 3, v >= 4
        (0.2148, 0.3672, 0.2305, 0.1875),
    ),
    (
        6272,
        128,
        (4, 5, 6, 7, 8, 9),
        (0.1174, 0.2430, 0.2493, 0.1752, 0.1027, 0.1124),
    ),
    (
        750000,
        10**4,
        (10, 11, 12, 13, 14, 15, 16),
        (0.0882, 0.2092, 0.2483, 0.1933, 0.1208, 0.0675, 0.0727),
    ),
)


def _longest_run_in(block: np.ndarray) -> int:
    """Length of the longest run of ones inside one block."""
    longest = 0
    current = 0
    for bit in block:
        if bit:
            current += 1
            if current > longest:
                longest = current
        else:
            current = 0
    return longest


def longest_run_test(sequence) -> TestOutcome:
    """Longest-run-of-ones test (Sec. 2.4); needs at least 128 bits."""
    bits = as_bits(sequence)
    require_length(bits, 128, "LongestRun")
    n = len(bits)
    minimum, block_size, edges, probabilities = next(
        table for table in reversed(_LONGEST_RUN_TABLES) if n >= table[0]
    )
    del minimum
    block_count = n // block_size
    blocks = bits[: block_count * block_size].reshape(block_count, block_size)
    longest = np.array([_longest_run_in(block) for block in blocks])

    k = len(edges) - 1
    counts = np.zeros(len(edges), dtype=int)
    counts[0] = int(np.sum(longest <= edges[0]))
    for i in range(1, k):
        counts[i] = int(np.sum(longest == edges[i]))
    counts[k] = int(np.sum(longest >= edges[k]))

    expected = block_count * np.asarray(probabilities)
    chi_square = float(np.sum((counts - expected) ** 2 / expected))
    return TestOutcome(
        test="LongestRun",
        p_value=igamc(k / 2.0, chi_square / 2.0),
        statistic=chi_square,
        details={
            "block_size": block_size,
            "block_count": block_count,
            "counts": counts.tolist(),
        },
    )


def _cusum_p_value(z: int, n: int) -> float:
    """The cumulative-sums p-value formula of Sec. 2.13.

    Summation bounds follow the reference C implementation, which computes
    them with integer division truncating toward zero (this is what the
    specification's worked example value 0.4116588 corresponds to).
    """
    sqrt_n = np.sqrt(n)
    n_over_z = n // z
    total = 1.0
    k_values = np.arange(
        int((-n_over_z + 1) / 4.0), int((n_over_z - 1) / 4.0) + 1
    )
    total -= float(
        np.sum(
            norm.cdf((4 * k_values + 1) * z / sqrt_n)
            - norm.cdf((4 * k_values - 1) * z / sqrt_n)
        )
    )
    k_values = np.arange(
        int((-n_over_z - 3) / 4.0), int((n_over_z - 1) / 4.0) + 1
    )
    total += float(
        np.sum(
            norm.cdf((4 * k_values + 3) * z / sqrt_n)
            - norm.cdf((4 * k_values + 1) * z / sqrt_n)
        )
    )
    return float(np.clip(total, 0.0, 1.0))


def cumulative_sums_test(sequence) -> list[TestOutcome]:
    """Cumulative sums test, forward and backward modes (Sec. 2.13).

    Example: ``"1011010111"`` forward gives p = 0.4116588.
    """
    bits = as_bits(sequence)
    require_length(bits, 2, "CumulativeSums")
    n = len(bits)
    steps = bits.astype(int) * 2 - 1
    outcomes = []
    for variant, ordered in (("forward", steps), ("backward", steps[::-1])):
        partial = np.cumsum(ordered)
        z = int(np.max(np.abs(partial)))
        if z == 0:
            p_value = 0.0  # all-zero partial sums are impossible for n >= 1
        else:
            p_value = _cusum_p_value(z, n)
        outcomes.append(
            TestOutcome(
                test="CumulativeSums",
                p_value=p_value,
                statistic=float(z),
                variant=variant,
                details={"z": z},
            )
        )
    return outcomes
