"""Reference bit-stream generators for exercising the NIST suite.

A statistical test suite is only trustworthy if it *fails* the right
inputs.  These generators provide known-good and known-bad streams:

* :func:`lfsr_stream` — maximal-length LFSR output: passes frequency/runs,
  demolished by the linear-complexity test;
* :func:`lcg_stream` — low-bit output of a small linear congruential
  generator: visibly periodic;
* :func:`biased_stream` — Bernoulli(p != 1/2): fails frequency;
* :func:`markov_stream` — correlated bits with tunable persistence: fails
  runs/serial while keeping the frequency balanced;
* :func:`counter_stream` — incrementing counter bits: structured in every
  way.

The test suite uses them as canaries; they are also handy for demos.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "lfsr_stream",
    "lcg_stream",
    "biased_stream",
    "markov_stream",
    "counter_stream",
]

#: Feedback tap masks of maximal-length LFSRs (x^deg + ... + 1).
_LFSR_TAPS = {
    4: (4, 3),
    5: (5, 3),
    7: (7, 6),
    8: (8, 6, 5, 4),
    16: (16, 15, 13, 4),
    23: (23, 18),
}


def lfsr_stream(length: int, degree: int = 16, seed: int = 1) -> np.ndarray:
    """Output bits of a maximal-length Fibonacci LFSR.

    Args:
        length: bits to produce.
        degree: register length; one of 4, 5, 7, 8, 16, 23.
        seed: non-zero initial register state.
    """
    if length < 1:
        raise ValueError("length must be >= 1")
    if degree not in _LFSR_TAPS:
        raise ValueError(
            f"degree must be one of {sorted(_LFSR_TAPS)}, got {degree}"
        )
    state = seed & ((1 << degree) - 1)
    if state == 0:
        raise ValueError("seed must be non-zero modulo 2**degree")
    taps = _LFSR_TAPS[degree]
    # Right-shift Fibonacci form: tap k of the polynomial corresponds to
    # register position (degree - k) counted from the output end.
    shifts = [degree - tap for tap in taps]
    bits = np.empty(length, dtype=bool)
    for i in range(length):
        bits[i] = state & 1
        feedback = 0
        for shift in shifts:
            feedback ^= (state >> shift) & 1
        state = (state >> 1) | (feedback << (degree - 1))
    return bits


def lcg_stream(length: int, seed: int = 1) -> np.ndarray:
    """Least-significant bit of a textbook (bad) LCG: period-2 structure."""
    if length < 1:
        raise ValueError("length must be >= 1")
    modulus = 2**31
    multiplier = 1103515245
    increment = 12345
    state = seed % modulus
    bits = np.empty(length, dtype=bool)
    for i in range(length):
        state = (multiplier * state + increment) % modulus
        bits[i] = state & 1
    return bits


def biased_stream(
    length: int, ones_probability: float, rng: np.random.Generator
) -> np.ndarray:
    """Independent bits with P(1) = ``ones_probability``."""
    if length < 1:
        raise ValueError("length must be >= 1")
    if not 0.0 <= ones_probability <= 1.0:
        raise ValueError("ones_probability must be in [0, 1]")
    return rng.random(length) < ones_probability


def markov_stream(
    length: int, persistence: float, rng: np.random.Generator
) -> np.ndarray:
    """Two-state Markov bits: each bit repeats with ``persistence``.

    ``persistence = 0.5`` is i.i.d.; larger values produce long runs (the
    signature of undistilled systematic variation in PUF outputs).
    """
    if length < 1:
        raise ValueError("length must be >= 1")
    if not 0.0 < persistence < 1.0:
        raise ValueError("persistence must be in (0, 1)")
    bits = np.empty(length, dtype=bool)
    bits[0] = rng.random() < 0.5
    repeats = rng.random(length - 1) < persistence
    for i in range(1, length):
        bits[i] = bits[i - 1] if repeats[i - 1] else not bits[i - 1]
    return bits


def counter_stream(length: int, width: int = 8) -> np.ndarray:
    """Concatenated fixed-width binary counter values: fully structured."""
    if length < 1:
        raise ValueError("length must be >= 1")
    if width < 1:
        raise ValueError("width must be >= 1")
    values = np.arange((length + width - 1) // width, dtype=np.int64)
    shifts = np.arange(width - 1, -1, -1)
    bits = ((values[:, None] >> shifts[None, :]) & 1).astype(bool)
    return bits.ravel()[:length]
