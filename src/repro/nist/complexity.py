"""Linear complexity test (SP 800-22 Sec. 2.10) and Berlekamp-Massey."""

from __future__ import annotations

import numpy as np

from .common import TestOutcome, as_bits, igamc, require_length

__all__ = ["berlekamp_massey", "linear_complexity_test"]


def berlekamp_massey(bits: np.ndarray) -> int:
    """Linear complexity of a binary sequence (Berlekamp-Massey over GF(2)).

    Returns the length of the shortest LFSR generating the sequence.
    """
    bits = as_bits(bits).astype(np.uint8)
    n = len(bits)
    if n == 0:
        raise ValueError("empty sequence")
    c = np.zeros(n, dtype=np.uint8)
    b = np.zeros(n, dtype=np.uint8)
    c[0] = 1
    b[0] = 1
    complexity = 0
    m = -1
    for position in range(n):
        discrepancy = bits[position]
        if complexity > 0:
            discrepancy ^= (
                int(c[1 : complexity + 1] @ bits[position - complexity : position][::-1])
                & 1
            )
        if discrepancy == 1:
            temporary = c.copy()
            shift = position - m
            c[shift : shift + n - shift] ^= b[: n - shift]
            if complexity <= position // 2:
                complexity = position + 1 - complexity
                m = position
                b = temporary
    return complexity


# Category probabilities of the T statistic (SP 800-22 Sec. 3.10).
_COMPLEXITY_PI = (
    0.010417,
    0.03125,
    0.125,
    0.5,
    0.25,
    0.0625,
    0.020833,
)


def linear_complexity_test(sequence, block_size: int = 500) -> TestOutcome:
    """Linear complexity test; the specification recommends n >= 10^6.

    Args:
        block_size: the block length M (500 <= M <= 5000 recommended).
    """
    bits = as_bits(sequence)
    if block_size < 4:
        raise ValueError(f"block_size must be >= 4, got {block_size}")
    # The chi-square approximation needs enough blocks that every category's
    # expected count is healthy (smallest pi is ~0.0104, so 200 blocks give
    # expected counts >= 2); the specification recommends n >= 10^6.
    require_length(bits, 200 * block_size, "LinearComplexity")
    n = len(bits)
    block_count = n // block_size
    mean = (
        block_size / 2.0
        + (9.0 + (-1.0) ** (block_size + 1)) / 36.0
        - (block_size / 3.0 + 2.0 / 9.0) / 2.0**block_size
    )
    counts = np.zeros(7, dtype=int)
    for j in range(block_count):
        block = bits[j * block_size : (j + 1) * block_size]
        complexity = berlekamp_massey(block)
        t = (-1.0) ** block_size * (complexity - mean) + 2.0 / 9.0
        if t <= -2.5:
            counts[0] += 1
        elif t <= -1.5:
            counts[1] += 1
        elif t <= -0.5:
            counts[2] += 1
        elif t <= 0.5:
            counts[3] += 1
        elif t <= 1.5:
            counts[4] += 1
        elif t <= 2.5:
            counts[5] += 1
        else:
            counts[6] += 1
    expected = block_count * np.asarray(_COMPLEXITY_PI)
    chi_square = float(np.sum((counts - expected) ** 2 / expected))
    return TestOutcome(
        test="LinearComplexity",
        p_value=igamc(6.0 / 2.0, chi_square / 2.0),
        statistic=chi_square,
        details={"block_count": block_count, "counts": counts.tolist()},
    )
