"""Battery runner and multi-sequence reporting (the paper's Tables I-II).

The NIST tool's final analysis report summarises, per statistical test, the
distribution of p-values over all tested sequences (ten decile counts
C1..C10), a uniformity P-VALUE (chi-square of the ten bins), and the
PROPORTION of sequences passing at alpha = 0.01.  The paper quotes exactly
this format: "The minimum pass rate for each statistical test is
approximately = 93 for a sample size = 97 binary sequences."

Tests inapplicable at the given length (for 96-bit streams: longest run,
rank, overlapping templates, universal, linear complexity, excursions) are
reported as skipped, mirroring how the reference tool restricts its battery.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .basic_tests import (
    block_frequency_test,
    cumulative_sums_test,
    frequency_test,
    longest_run_test,
    runs_test,
)
from .common import ALPHA, InsufficientDataError, TestOutcome, igamc
from .complexity import linear_complexity_test
from .entropy_tests import approximate_entropy_test, serial_test
from .excursions import random_excursions_test, random_excursions_variant_test
from .spectral import dft_test, rank_test
from .templates import (
    aperiodic_templates,
    non_overlapping_template_test,
    overlapping_template_test,
)
from .universal import universal_test

__all__ = [
    "SuiteConfig",
    "run_battery",
    "TestRow",
    "SuiteReport",
    "evaluate_sequences",
    "minimum_pass_proportion",
]


@dataclass
class SuiteConfig:
    """Parameters of one battery run.

    The defaults auto-scale to the sequence length so that the battery is
    meaningful both on the paper's 96-bit streams and on megabit streams.

    Attributes:
        block_frequency_block_size: M for the block-frequency test; 0 picks
            automatically (128 for long sequences, n // 12 bounded to >= 8
            for short ones).
        serial_m: pattern length of the serial test.
        approximate_entropy_m: pattern length of the approximate entropy
            test.
        template_length: non-overlapping template length; 0 picks 9 for
            long sequences and 3 for short ones.
        max_templates: cap on the number of non-overlapping templates run
            per sequence (the full m=9 set has 148).
        include_excursions: run the excursion tests when applicable.
    """

    block_frequency_block_size: int = 0
    serial_m: int = 3
    approximate_entropy_m: int = 2
    template_length: int = 0
    max_templates: int = 4
    include_excursions: bool = True

    def resolved_block_size(self, n: int) -> int:
        if self.block_frequency_block_size > 0:
            return self.block_frequency_block_size
        if n >= 12800:
            return 128
        return max(8, n // 12)

    def resolved_template_length(self, n: int) -> int:
        if self.template_length > 0:
            return self.template_length
        return 9 if n >= 8 * 9 * 4 else 3


def run_battery(
    sequence, config: SuiteConfig | None = None
) -> tuple[list[TestOutcome], list[str]]:
    """Run every applicable test on one sequence.

    Returns:
        (outcomes, skipped): the flattened test outcomes plus the names of
        tests skipped for insufficient length.
    """
    if config is None:
        config = SuiteConfig()
    bits = np.asarray(sequence)
    n = len(bits)
    outcomes: list[TestOutcome] = []
    skipped: list[str] = []

    def run(callable_, *args, **kwargs):
        try:
            result = callable_(bits, *args, **kwargs)
        except InsufficientDataError as error:
            skipped.append(str(error).split(" needs")[0])
            return
        if isinstance(result, list):
            outcomes.extend(result)
        else:
            outcomes.append(result)

    run(frequency_test)
    run(block_frequency_test, block_size=config.resolved_block_size(n))
    run(cumulative_sums_test)
    run(runs_test)
    run(longest_run_test)
    run(rank_test)
    run(dft_test)

    template_length = config.resolved_template_length(n)
    if n >= 20 * 2**template_length:
        # Shorter sequences make the per-block occurrence counts so small
        # that the chi-square approximation (and the p-value uniformity
        # check over many sequences) breaks down; the reference tool never
        # runs template tests on such inputs either.
        templates = aperiodic_templates(template_length)[: config.max_templates]
        for template in templates:
            run(non_overlapping_template_test, template=template)
    else:
        skipped.append("NonOverlappingTemplate")
    run(overlapping_template_test)
    run(universal_test)
    run(approximate_entropy_test, m=config.approximate_entropy_m)
    run(serial_test, m=config.serial_m)
    run(linear_complexity_test)
    if config.include_excursions:
        run(random_excursions_test)
        run(random_excursions_variant_test)
    return outcomes, sorted(set(skipped))


def minimum_pass_proportion(sample_size: int, alpha: float = ALPHA) -> float:
    """The NIST minimum pass rate: ``(1-a) - 3 sqrt(a(1-a)/s)``.

    For 97 sequences this is 0.9596... , i.e. "approximately 93 of 97",
    matching the paper's quotation.
    """
    if sample_size < 1:
        raise ValueError("sample_size must be >= 1")
    p_hat = 1.0 - alpha
    return p_hat - 3.0 * np.sqrt(p_hat * alpha / sample_size)


#: Uniformity threshold of the NIST final analysis report.
UNIFORMITY_ALPHA = 1e-4


@dataclass
class TestRow:
    """One row of the final analysis report (one test variant).

    Attributes:
        label: test name (plus variant where applicable).
        histogram: ten decile counts C1..C10 of the p-values.
        uniformity_p: chi-square uniformity P-VALUE of the p-values.
        passing: sequences passing at alpha.
        sample_size: sequences that produced this p-value.
        distinct_p_values: number of distinct p-values observed.  The
            uniformity chi-square assumes continuously-distributed p-values;
            on short sequences many tests have a small discrete support
            (e.g. the monobit statistic of a 96-bit stream takes 49 values,
            leaving some deciles structurally empty), so uniformity is not
            assessable — even ideal random data would "fail" it.
    """

    label: str
    histogram: np.ndarray
    uniformity_p: float
    passing: int
    sample_size: int
    distinct_p_values: int = 10**9

    @property
    def proportion(self) -> float:
        return self.passing / self.sample_size

    @property
    def minimum_proportion(self) -> float:
        return minimum_pass_proportion(self.sample_size)

    @property
    def proportion_ok(self) -> bool:
        return self.proportion >= self.minimum_proportion

    @property
    def uniformity_assessable(self) -> bool:
        """True when the p-value sample supports the uniformity chi-square.

        NIST requires at least 55 sequences for the uniformity check; we
        additionally require the observed p-values to behave continuously
        (at least half as many distinct values as samples).
        """
        return (
            self.sample_size >= 55
            and self.distinct_p_values * 2 >= self.sample_size
        )

    @property
    def uniformity_ok(self) -> bool:
        return self.uniformity_p >= UNIFORMITY_ALPHA

    @property
    def passed(self) -> bool:
        if not self.proportion_ok:
            return False
        if self.uniformity_assessable and not self.uniformity_ok:
            return False
        return True


@dataclass
class SuiteReport:
    """Final analysis report over many sequences (the paper's Tables I-II).

    Attributes:
        rows: one per test variant, in battery order.
        sequence_count: number of sequences evaluated.
        bit_count: bits per sequence.
        skipped_tests: tests inapplicable at this length.
    """

    rows: list[TestRow]
    sequence_count: int
    bit_count: int
    skipped_tests: list[str] = field(default_factory=list)

    @property
    def all_passed(self) -> bool:
        return all(row.passed for row in self.rows)

    @property
    def failed_rows(self) -> list[TestRow]:
        return [row for row in self.rows if not row.passed]

    def render(self) -> str:
        """ASCII table in the NIST final-analysis-report layout."""
        lines = []
        lines.append("-" * 98)
        lines.append(
            " ".join(f"C{i}".rjust(4) for i in range(1, 11))
            + "  P-VALUE  PROPORTION  STATISTICAL TEST"
        )
        lines.append("-" * 98)
        for row in self.rows:
            histogram = " ".join(str(int(c)).rjust(4) for c in row.histogram)
            proportion = f"{row.passing}/{row.sample_size}"
            marker = "" if row.passed else " *"
            uniformity = f"{row.uniformity_p:.6f}"
            if not row.uniformity_assessable:
                uniformity += "~"  # discrete p-value support; see TestRow
            lines.append(
                f"{histogram}  {uniformity}  {proportion:>10}  "
                f"{row.label}{marker}"
            )
        lines.append("-" * 98)
        lines.append(
            "The minimum pass rate for each statistical test is approximately "
            f"= {int(np.floor(minimum_pass_proportion(self.sequence_count) * self.sequence_count))} "
            f"for a sample size = {self.sequence_count} binary sequences."
        )
        if self.skipped_tests:
            lines.append(
                "Skipped (sequence too short): " + ", ".join(self.skipped_tests)
            )
        return "\n".join(lines)


def evaluate_sequences(
    sequences: np.ndarray, config: SuiteConfig | None = None
) -> SuiteReport:
    """Run the battery on every row of a bit matrix and aggregate.

    Args:
        sequences: boolean matrix, one sequence per row.
    """
    sequences = np.asarray(sequences)
    if sequences.ndim != 2 or sequences.shape[0] < 1:
        raise ValueError(
            f"expected a non-empty 2-D bit matrix, got shape {sequences.shape}"
        )
    per_label: dict[str, list[float]] = {}
    order: list[str] = []
    skipped: list[str] = []
    for row in sequences:
        outcomes, row_skipped = run_battery(row, config)
        skipped.extend(row_skipped)
        for outcome in outcomes:
            if outcome.label not in per_label:
                per_label[outcome.label] = []
                order.append(outcome.label)
            per_label[outcome.label].append(outcome.p_value)

    rows = []
    for label in order:
        p_values = np.asarray(per_label[label])
        histogram, _ = np.histogram(p_values, bins=10, range=(0.0, 1.0))
        expected = len(p_values) / 10.0
        chi_square = float(np.sum((histogram - expected) ** 2 / expected))
        uniformity = igamc(9.0 / 2.0, chi_square / 2.0)
        rows.append(
            TestRow(
                label=label,
                histogram=histogram,
                uniformity_p=uniformity,
                passing=int(np.sum(p_values >= ALPHA)),
                sample_size=len(p_values),
                distinct_p_values=len(np.unique(np.round(p_values, 12))),
            )
        )
    return SuiteReport(
        rows=rows,
        sequence_count=sequences.shape[0],
        bit_count=sequences.shape[1],
        skipped_tests=sorted(set(skipped)),
    )
