"""Spectral (DFT) and binary matrix rank tests (SP 800-22 Secs. 2.5-2.6)."""

from __future__ import annotations

import numpy as np

from .common import (
    TestOutcome,
    as_bits,
    normalized_erfc,
    require_length,
)

__all__ = ["dft_test", "rank_test", "binary_matrix_rank"]


def dft_test(sequence) -> TestOutcome:
    """Discrete Fourier transform (spectral) test (Sec. 2.5).

    Example from the specification: the 100-bit sequence
    ``"11001001000011111101101010100010001000010110100011"
    "00001000110100110001001100011001100010100010111000"`` gives
    p = 0.168669.
    """
    bits = as_bits(sequence)
    # SP 800-22 recommends n >= 1000; far below that the peak-count N1 takes
    # so few distinct values that the p-value distribution degenerates.
    require_length(bits, 1000, "DFT")
    n = len(bits)
    x = bits.astype(float) * 2.0 - 1.0
    spectrum = np.abs(np.fft.fft(x))[: n // 2]
    threshold = np.sqrt(np.log(1.0 / 0.05) * n)
    expected_below = 0.95 * n / 2.0
    observed_below = float(np.sum(spectrum < threshold))
    d = (observed_below - expected_below) / np.sqrt(n * 0.95 * 0.05 / 4.0)
    return TestOutcome(
        test="DFT",
        p_value=normalized_erfc(abs(d)),
        statistic=float(d),
        details={
            "threshold": float(threshold),
            "observed_below": observed_below,
            "expected_below": expected_below,
        },
    )


def binary_matrix_rank(matrix: np.ndarray) -> int:
    """Rank of a binary matrix over GF(2) by Gaussian elimination."""
    work = np.asarray(matrix, dtype=np.uint8).copy() & 1
    if work.ndim != 2:
        raise ValueError(f"expected a 2-D matrix, got shape {work.shape}")
    rows, columns = work.shape
    rank = 0
    for column in range(columns):
        pivot_rows = np.nonzero(work[rank:, column])[0]
        if len(pivot_rows) == 0:
            continue
        pivot = rank + int(pivot_rows[0])
        if pivot != rank:
            work[[rank, pivot]] = work[[pivot, rank]]
        eliminate = np.nonzero(work[:, column])[0]
        eliminate = eliminate[eliminate != rank]
        work[eliminate] ^= work[rank]
        rank += 1
        if rank == rows:
            break
    return rank


# Asymptotic probabilities that a random 32x32 GF(2) matrix has full rank,
# rank 31, or lower (SP 800-22 Sec. 2.5 / 3.5).
_P_FULL = 0.2888
_P_MINUS_1 = 0.5776
_P_REST = 0.1336

_RANK_MATRIX_SIDE = 32
_RANK_BITS_PER_MATRIX = _RANK_MATRIX_SIDE * _RANK_MATRIX_SIDE


def rank_test(sequence) -> TestOutcome:
    """Binary matrix rank test (Sec. 2.5); needs 38 912 bits (38 matrices)."""
    bits = as_bits(sequence)
    require_length(bits, 38 * _RANK_BITS_PER_MATRIX, "Rank")
    n = len(bits)
    matrix_count = n // _RANK_BITS_PER_MATRIX
    used = bits[: matrix_count * _RANK_BITS_PER_MATRIX]
    matrices = used.reshape(matrix_count, _RANK_MATRIX_SIDE, _RANK_MATRIX_SIDE)
    ranks = np.array([binary_matrix_rank(matrix) for matrix in matrices])

    full = int(np.sum(ranks == _RANK_MATRIX_SIDE))
    minus_one = int(np.sum(ranks == _RANK_MATRIX_SIDE - 1))
    rest = matrix_count - full - minus_one

    chi_square = (
        (full - _P_FULL * matrix_count) ** 2 / (_P_FULL * matrix_count)
        + (minus_one - _P_MINUS_1 * matrix_count) ** 2
        / (_P_MINUS_1 * matrix_count)
        + (rest - _P_REST * matrix_count) ** 2 / (_P_REST * matrix_count)
    )
    # Two degrees of freedom: igamc(1, x/2) == exp(-x/2).
    p_value = float(np.exp(-chi_square / 2.0))
    return TestOutcome(
        test="Rank",
        p_value=p_value,
        statistic=float(chi_square),
        details={
            "matrices": matrix_count,
            "full_rank": full,
            "rank_minus_one": minus_one,
            "lower": rest,
        },
    )
