"""Random excursions and random excursions variant tests
(SP 800-22 Secs. 2.14-2.15)."""

from __future__ import annotations

import numpy as np
from scipy.special import erfc

from .common import (
    InsufficientDataError,
    TestOutcome,
    as_bits,
    igamc,
    require_length,
)

__all__ = ["random_excursions_test", "random_excursions_variant_test"]

_EXCURSION_STATES = (-4, -3, -2, -1, 1, 2, 3, 4)
_VARIANT_STATES = tuple(x for x in range(-9, 10) if x != 0)
_MIN_CYCLES = 500


def _random_walk(bits: np.ndarray) -> np.ndarray:
    """The walk S' = (0, S_1, ..., S_n, 0) used by both excursion tests."""
    steps = bits.astype(int) * 2 - 1
    partial = np.cumsum(steps)
    return np.concatenate([[0], partial, [0]])


def _cycles(walk: np.ndarray) -> list[np.ndarray]:
    """Split the walk into zero-to-zero cycles."""
    zero_positions = np.nonzero(walk == 0)[0]
    return [
        walk[zero_positions[i] : zero_positions[i + 1] + 1]
        for i in range(len(zero_positions) - 1)
    ]


def _state_pi(x: int, k: int) -> float:
    """Pr{exactly k visits to state x in one cycle} (Sec. 3.14)."""
    ax = abs(x)
    if k == 0:
        return 1.0 - 1.0 / (2.0 * ax)
    if 1 <= k <= 4:
        return (1.0 / (4.0 * ax * ax)) * (1.0 - 1.0 / (2.0 * ax)) ** (k - 1)
    return (1.0 / (2.0 * ax)) * (1.0 - 1.0 / (2.0 * ax)) ** 4


def random_excursions_test(
    sequence, min_cycles: int = _MIN_CYCLES
) -> list[TestOutcome]:
    """Random excursions test: 8 p-values, one per state -4..-1, 1..4.

    Raises:
        InsufficientDataError: when the walk has fewer than ``min_cycles``
            zero-to-zero cycles (the specification's applicability bound).
    """
    bits = as_bits(sequence)
    require_length(bits, 128, "RandomExcursions")
    walk = _random_walk(bits)
    cycles = _cycles(walk)
    cycle_count = len(cycles)
    if cycle_count < min_cycles:
        raise InsufficientDataError(
            f"RandomExcursions needs >= {min_cycles} cycles, got {cycle_count}"
        )

    outcomes = []
    for x in _EXCURSION_STATES:
        visit_histogram = np.zeros(6, dtype=int)
        for cycle in cycles:
            visits = int(np.sum(cycle == x))
            visit_histogram[min(visits, 5)] += 1
        expected = cycle_count * np.array([_state_pi(x, k) for k in range(6)])
        chi_square = float(np.sum((visit_histogram - expected) ** 2 / expected))
        outcomes.append(
            TestOutcome(
                test="RandomExcursions",
                p_value=igamc(5.0 / 2.0, chi_square / 2.0),
                statistic=chi_square,
                variant=f"x={x:+d}",
                details={"cycles": cycle_count, "histogram": visit_histogram.tolist()},
            )
        )
    return outcomes


def random_excursions_variant_test(
    sequence, min_cycles: int = _MIN_CYCLES
) -> list[TestOutcome]:
    """Random excursions variant test: 18 p-values for states -9..-1, 1..9."""
    bits = as_bits(sequence)
    require_length(bits, 128, "RandomExcursionsVariant")
    walk = _random_walk(bits)
    cycle_count = int(np.sum(walk[1:] == 0))
    if cycle_count < min_cycles:
        raise InsufficientDataError(
            f"RandomExcursionsVariant needs >= {min_cycles} cycles, "
            f"got {cycle_count}"
        )

    outcomes = []
    interior = walk[1:-1]
    for x in _VARIANT_STATES:
        # Endpoints of the walk are zero, so the interior slice captures
        # every visit to a non-zero state.
        visits = int(np.sum(interior == x))
        denominator = np.sqrt(2.0 * cycle_count * (4.0 * abs(x) - 2.0))
        p_value = float(erfc(abs(visits - cycle_count) / denominator))
        outcomes.append(
            TestOutcome(
                test="RandomExcursionsVariant",
                p_value=p_value,
                statistic=float(visits),
                variant=f"x={x:+d}",
                details={"cycles": cycle_count, "visits": visits},
            )
        )
    return outcomes
